# Install and packaging rules: headers per substrate, static libraries,
# and a CMake package so downstream projects can `find_package(ramr)` and
# link `ramr::core` (which transitively pulls the substrates it needs).
include(GNUInstallDirs)
include(CMakePackageConfigHelpers)

set(RAMR_LIBRARIES
  ramr_common ramr_simd ramr_faults ramr_trace ramr_telemetry ramr_stats ramr_spsc
  ramr_topology ramr_mem ramr_sched ramr_containers ramr_engine ramr_io ramr_adapt
  ramr_service ramr_phoenix ramr_mrphi ramr_core ramr_perf ramr_apps
  ramr_synth ramr_sim)

foreach(lib ${RAMR_LIBRARIES})
  # Public headers keep their substrate-relative paths under include/ramr/.
  string(REPLACE "ramr_" "" substrate ${lib})
  install(DIRECTORY ${CMAKE_SOURCE_DIR}/src/${substrate}/
    DESTINATION ${CMAKE_INSTALL_INCLUDEDIR}/ramr/${substrate}
    FILES_MATCHING PATTERN "*.hpp")
  install(TARGETS ${lib} EXPORT ramrTargets
    ARCHIVE DESTINATION ${CMAKE_INSTALL_LIBDIR})
endforeach()
# The warnings interface target participates in the export set because the
# libraries link it privately at build time.
install(TARGETS ramr_warnings EXPORT ramrTargets)

install(EXPORT ramrTargets
  NAMESPACE ramr::
  DESTINATION ${CMAKE_INSTALL_LIBDIR}/cmake/ramr)

# Re-probe zlib in this scope: src/io's find_package result is directory-
# scoped, and the generated config must know whether ramr_io's link
# interface references ZLIB::ZLIB.
find_package(ZLIB QUIET)
configure_package_config_file(
  ${CMAKE_SOURCE_DIR}/cmake/ramrConfig.cmake.in
  ${CMAKE_BINARY_DIR}/ramrConfig.cmake
  INSTALL_DESTINATION ${CMAKE_INSTALL_LIBDIR}/cmake/ramr)
write_basic_package_version_file(
  ${CMAKE_BINARY_DIR}/ramrConfigVersion.cmake
  VERSION ${PROJECT_VERSION}
  COMPATIBILITY SameMajorVersion)
install(FILES
  ${CMAKE_BINARY_DIR}/ramrConfig.cmake
  ${CMAKE_BINARY_DIR}/ramrConfigVersion.cmake
  DESTINATION ${CMAKE_INSTALL_LIBDIR}/cmake/ramr)
