# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Release")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/examples/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/common" TYPE DIRECTORY FILES "/root/repo/src/common/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libramr_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/trace" TYPE DIRECTORY FILES "/root/repo/src/trace/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/trace/libramr_trace.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/stats" TYPE DIRECTORY FILES "/root/repo/src/stats/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/stats/libramr_stats.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/spsc" TYPE DIRECTORY FILES "/root/repo/src/spsc/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/spsc/libramr_spsc.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/topology" TYPE DIRECTORY FILES "/root/repo/src/topology/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/topology/libramr_topology.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/sched" TYPE DIRECTORY FILES "/root/repo/src/sched/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sched/libramr_sched.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/containers" TYPE DIRECTORY FILES "/root/repo/src/containers/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/containers/libramr_containers.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/phoenix" TYPE DIRECTORY FILES "/root/repo/src/phoenix/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/phoenix/libramr_phoenix.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/mrphi" TYPE DIRECTORY FILES "/root/repo/src/mrphi/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/mrphi/libramr_mrphi.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/core" TYPE DIRECTORY FILES "/root/repo/src/core/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libramr_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/perf" TYPE DIRECTORY FILES "/root/repo/src/perf/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/perf/libramr_perf.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/apps" TYPE DIRECTORY FILES "/root/repo/src/apps/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/apps/libramr_apps.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/synth" TYPE DIRECTORY FILES "/root/repo/src/synth/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/synth/libramr_synth.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/ramr/sim" TYPE DIRECTORY FILES "/root/repo/src/sim/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libramr_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/ramr/ramrTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/ramr/ramrTargets.cmake"
         "/root/repo/build/CMakeFiles/Export/1c8f489d74dc6bc007558b550c7bcc25/ramrTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/ramr/ramrTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/ramr/ramrTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/ramr" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/1c8f489d74dc6bc007558b550c7bcc25/ramrTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ee][Aa][Ss][Ee])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/ramr" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/1c8f489d74dc6bc007558b550c7bcc25/ramrTargets-release.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/ramr" TYPE FILE FILES
    "/root/repo/build/ramrConfig.cmake"
    "/root/repo/build/ramrConfigVersion.cmake"
    )
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
