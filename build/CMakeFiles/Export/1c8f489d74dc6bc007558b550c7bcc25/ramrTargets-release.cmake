#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "ramr::ramr_common" for configuration "Release"
set_property(TARGET ramr::ramr_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_common.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_common )
list(APPEND _cmake_import_check_files_for_ramr::ramr_common "${_IMPORT_PREFIX}/lib/libramr_common.a" )

# Import target "ramr::ramr_trace" for configuration "Release"
set_property(TARGET ramr::ramr_trace APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_trace PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_trace.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_trace )
list(APPEND _cmake_import_check_files_for_ramr::ramr_trace "${_IMPORT_PREFIX}/lib/libramr_trace.a" )

# Import target "ramr::ramr_stats" for configuration "Release"
set_property(TARGET ramr::ramr_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_stats.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_stats )
list(APPEND _cmake_import_check_files_for_ramr::ramr_stats "${_IMPORT_PREFIX}/lib/libramr_stats.a" )

# Import target "ramr::ramr_spsc" for configuration "Release"
set_property(TARGET ramr::ramr_spsc APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_spsc PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_spsc.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_spsc )
list(APPEND _cmake_import_check_files_for_ramr::ramr_spsc "${_IMPORT_PREFIX}/lib/libramr_spsc.a" )

# Import target "ramr::ramr_topology" for configuration "Release"
set_property(TARGET ramr::ramr_topology APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_topology PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_topology.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_topology )
list(APPEND _cmake_import_check_files_for_ramr::ramr_topology "${_IMPORT_PREFIX}/lib/libramr_topology.a" )

# Import target "ramr::ramr_sched" for configuration "Release"
set_property(TARGET ramr::ramr_sched APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_sched PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_sched.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_sched )
list(APPEND _cmake_import_check_files_for_ramr::ramr_sched "${_IMPORT_PREFIX}/lib/libramr_sched.a" )

# Import target "ramr::ramr_containers" for configuration "Release"
set_property(TARGET ramr::ramr_containers APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_containers PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_containers.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_containers )
list(APPEND _cmake_import_check_files_for_ramr::ramr_containers "${_IMPORT_PREFIX}/lib/libramr_containers.a" )

# Import target "ramr::ramr_phoenix" for configuration "Release"
set_property(TARGET ramr::ramr_phoenix APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_phoenix PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_phoenix.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_phoenix )
list(APPEND _cmake_import_check_files_for_ramr::ramr_phoenix "${_IMPORT_PREFIX}/lib/libramr_phoenix.a" )

# Import target "ramr::ramr_mrphi" for configuration "Release"
set_property(TARGET ramr::ramr_mrphi APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_mrphi PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_mrphi.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_mrphi )
list(APPEND _cmake_import_check_files_for_ramr::ramr_mrphi "${_IMPORT_PREFIX}/lib/libramr_mrphi.a" )

# Import target "ramr::ramr_core" for configuration "Release"
set_property(TARGET ramr::ramr_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_core.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_core )
list(APPEND _cmake_import_check_files_for_ramr::ramr_core "${_IMPORT_PREFIX}/lib/libramr_core.a" )

# Import target "ramr::ramr_perf" for configuration "Release"
set_property(TARGET ramr::ramr_perf APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_perf PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_perf.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_perf )
list(APPEND _cmake_import_check_files_for_ramr::ramr_perf "${_IMPORT_PREFIX}/lib/libramr_perf.a" )

# Import target "ramr::ramr_apps" for configuration "Release"
set_property(TARGET ramr::ramr_apps APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_apps PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_apps.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_apps )
list(APPEND _cmake_import_check_files_for_ramr::ramr_apps "${_IMPORT_PREFIX}/lib/libramr_apps.a" )

# Import target "ramr::ramr_synth" for configuration "Release"
set_property(TARGET ramr::ramr_synth APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_synth PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_synth.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_synth )
list(APPEND _cmake_import_check_files_for_ramr::ramr_synth "${_IMPORT_PREFIX}/lib/libramr_synth.a" )

# Import target "ramr::ramr_sim" for configuration "Release"
set_property(TARGET ramr::ramr_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ramr::ramr_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libramr_sim.a"
  )

list(APPEND _cmake_import_check_targets ramr::ramr_sim )
list(APPEND _cmake_import_check_files_for_ramr::ramr_sim "${_IMPORT_PREFIX}/lib/libramr_sim.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
