file(REMOVE_RECURSE
  "CMakeFiles/ramr_mrphi.dir/anchor.cpp.o"
  "CMakeFiles/ramr_mrphi.dir/anchor.cpp.o.d"
  "libramr_mrphi.a"
  "libramr_mrphi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_mrphi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
