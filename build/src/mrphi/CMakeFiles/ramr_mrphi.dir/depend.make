# Empty dependencies file for ramr_mrphi.
# This may be replaced when dependencies are built.
