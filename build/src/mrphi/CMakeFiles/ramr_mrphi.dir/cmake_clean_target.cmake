file(REMOVE_RECURSE
  "libramr_mrphi.a"
)
