file(REMOVE_RECURSE
  "libramr_synth.a"
)
