# Empty compiler generated dependencies file for ramr_synth.
# This may be replaced when dependencies are built.
