file(REMOVE_RECURSE
  "CMakeFiles/ramr_synth.dir/kernels.cpp.o"
  "CMakeFiles/ramr_synth.dir/kernels.cpp.o.d"
  "libramr_synth.a"
  "libramr_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
