
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/cache_model.cpp" "src/perf/CMakeFiles/ramr_perf.dir/cache_model.cpp.o" "gcc" "src/perf/CMakeFiles/ramr_perf.dir/cache_model.cpp.o.d"
  "/root/repo/src/perf/profiles.cpp" "src/perf/CMakeFiles/ramr_perf.dir/profiles.cpp.o" "gcc" "src/perf/CMakeFiles/ramr_perf.dir/profiles.cpp.o.d"
  "/root/repo/src/perf/stall_model.cpp" "src/perf/CMakeFiles/ramr_perf.dir/stall_model.cpp.o" "gcc" "src/perf/CMakeFiles/ramr_perf.dir/stall_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ramr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ramr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/ramr_containers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
