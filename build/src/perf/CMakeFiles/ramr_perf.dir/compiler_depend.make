# Empty compiler generated dependencies file for ramr_perf.
# This may be replaced when dependencies are built.
