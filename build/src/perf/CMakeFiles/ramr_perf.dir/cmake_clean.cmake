file(REMOVE_RECURSE
  "CMakeFiles/ramr_perf.dir/cache_model.cpp.o"
  "CMakeFiles/ramr_perf.dir/cache_model.cpp.o.d"
  "CMakeFiles/ramr_perf.dir/profiles.cpp.o"
  "CMakeFiles/ramr_perf.dir/profiles.cpp.o.d"
  "CMakeFiles/ramr_perf.dir/stall_model.cpp.o"
  "CMakeFiles/ramr_perf.dir/stall_model.cpp.o.d"
  "libramr_perf.a"
  "libramr_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
