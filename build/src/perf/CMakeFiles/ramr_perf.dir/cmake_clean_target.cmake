file(REMOVE_RECURSE
  "libramr_perf.a"
)
