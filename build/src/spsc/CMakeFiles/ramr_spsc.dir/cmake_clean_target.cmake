file(REMOVE_RECURSE
  "libramr_spsc.a"
)
