file(REMOVE_RECURSE
  "CMakeFiles/ramr_spsc.dir/anchor.cpp.o"
  "CMakeFiles/ramr_spsc.dir/anchor.cpp.o.d"
  "libramr_spsc.a"
  "libramr_spsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_spsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
