# Empty dependencies file for ramr_spsc.
# This may be replaced when dependencies are built.
