file(REMOVE_RECURSE
  "libramr_containers.a"
)
