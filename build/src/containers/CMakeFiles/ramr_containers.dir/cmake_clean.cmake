file(REMOVE_RECURSE
  "CMakeFiles/ramr_containers.dir/anchor.cpp.o"
  "CMakeFiles/ramr_containers.dir/anchor.cpp.o.d"
  "libramr_containers.a"
  "libramr_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
