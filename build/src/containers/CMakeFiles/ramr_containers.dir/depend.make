# Empty dependencies file for ramr_containers.
# This may be replaced when dependencies are built.
