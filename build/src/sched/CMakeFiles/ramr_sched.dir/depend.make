# Empty dependencies file for ramr_sched.
# This may be replaced when dependencies are built.
