file(REMOVE_RECURSE
  "CMakeFiles/ramr_sched.dir/task_queue.cpp.o"
  "CMakeFiles/ramr_sched.dir/task_queue.cpp.o.d"
  "CMakeFiles/ramr_sched.dir/thread_pool.cpp.o"
  "CMakeFiles/ramr_sched.dir/thread_pool.cpp.o.d"
  "libramr_sched.a"
  "libramr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
