file(REMOVE_RECURSE
  "libramr_sched.a"
)
