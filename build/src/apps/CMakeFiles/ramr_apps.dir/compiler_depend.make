# Empty compiler generated dependencies file for ramr_apps.
# This may be replaced when dependencies are built.
