file(REMOVE_RECURSE
  "CMakeFiles/ramr_apps.dir/inputs.cpp.o"
  "CMakeFiles/ramr_apps.dir/inputs.cpp.o.d"
  "CMakeFiles/ramr_apps.dir/io.cpp.o"
  "CMakeFiles/ramr_apps.dir/io.cpp.o.d"
  "CMakeFiles/ramr_apps.dir/references.cpp.o"
  "CMakeFiles/ramr_apps.dir/references.cpp.o.d"
  "CMakeFiles/ramr_apps.dir/suite.cpp.o"
  "CMakeFiles/ramr_apps.dir/suite.cpp.o.d"
  "libramr_apps.a"
  "libramr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
