file(REMOVE_RECURSE
  "libramr_apps.a"
)
