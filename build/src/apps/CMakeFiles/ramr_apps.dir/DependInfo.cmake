
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/inputs.cpp" "src/apps/CMakeFiles/ramr_apps.dir/inputs.cpp.o" "gcc" "src/apps/CMakeFiles/ramr_apps.dir/inputs.cpp.o.d"
  "/root/repo/src/apps/io.cpp" "src/apps/CMakeFiles/ramr_apps.dir/io.cpp.o" "gcc" "src/apps/CMakeFiles/ramr_apps.dir/io.cpp.o.d"
  "/root/repo/src/apps/references.cpp" "src/apps/CMakeFiles/ramr_apps.dir/references.cpp.o" "gcc" "src/apps/CMakeFiles/ramr_apps.dir/references.cpp.o.d"
  "/root/repo/src/apps/suite.cpp" "src/apps/CMakeFiles/ramr_apps.dir/suite.cpp.o" "gcc" "src/apps/CMakeFiles/ramr_apps.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ramr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/ramr_containers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
