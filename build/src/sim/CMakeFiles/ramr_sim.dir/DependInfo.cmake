
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/ramr_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/ramr_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/model.cpp" "src/sim/CMakeFiles/ramr_sim.dir/model.cpp.o" "gcc" "src/sim/CMakeFiles/ramr_sim.dir/model.cpp.o.d"
  "/root/repo/src/sim/pipeline_sim.cpp" "src/sim/CMakeFiles/ramr_sim.dir/pipeline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ramr_sim.dir/pipeline_sim.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/ramr_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/ramr_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ramr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ramr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ramr_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ramr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ramr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/ramr_containers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
