file(REMOVE_RECURSE
  "libramr_sim.a"
)
