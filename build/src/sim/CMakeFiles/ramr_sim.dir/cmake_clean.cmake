file(REMOVE_RECURSE
  "CMakeFiles/ramr_sim.dir/machine.cpp.o"
  "CMakeFiles/ramr_sim.dir/machine.cpp.o.d"
  "CMakeFiles/ramr_sim.dir/model.cpp.o"
  "CMakeFiles/ramr_sim.dir/model.cpp.o.d"
  "CMakeFiles/ramr_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/ramr_sim.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/ramr_sim.dir/workload.cpp.o"
  "CMakeFiles/ramr_sim.dir/workload.cpp.o.d"
  "libramr_sim.a"
  "libramr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
