# Empty dependencies file for ramr_sim.
# This may be replaced when dependencies are built.
