file(REMOVE_RECURSE
  "CMakeFiles/ramr_stats.dir/runstats.cpp.o"
  "CMakeFiles/ramr_stats.dir/runstats.cpp.o.d"
  "CMakeFiles/ramr_stats.dir/table.cpp.o"
  "CMakeFiles/ramr_stats.dir/table.cpp.o.d"
  "libramr_stats.a"
  "libramr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
