file(REMOVE_RECURSE
  "libramr_stats.a"
)
