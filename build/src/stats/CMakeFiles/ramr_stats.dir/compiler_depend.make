# Empty compiler generated dependencies file for ramr_stats.
# This may be replaced when dependencies are built.
