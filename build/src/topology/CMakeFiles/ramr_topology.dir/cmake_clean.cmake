file(REMOVE_RECURSE
  "CMakeFiles/ramr_topology.dir/pinning.cpp.o"
  "CMakeFiles/ramr_topology.dir/pinning.cpp.o.d"
  "CMakeFiles/ramr_topology.dir/topology.cpp.o"
  "CMakeFiles/ramr_topology.dir/topology.cpp.o.d"
  "libramr_topology.a"
  "libramr_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
