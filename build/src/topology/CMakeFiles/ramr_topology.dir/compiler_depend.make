# Empty compiler generated dependencies file for ramr_topology.
# This may be replaced when dependencies are built.
