file(REMOVE_RECURSE
  "libramr_topology.a"
)
