file(REMOVE_RECURSE
  "libramr_phoenix.a"
)
