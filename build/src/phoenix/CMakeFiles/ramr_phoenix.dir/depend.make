# Empty dependencies file for ramr_phoenix.
# This may be replaced when dependencies are built.
