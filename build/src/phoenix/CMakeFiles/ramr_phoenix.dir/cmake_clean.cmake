file(REMOVE_RECURSE
  "CMakeFiles/ramr_phoenix.dir/anchor.cpp.o"
  "CMakeFiles/ramr_phoenix.dir/anchor.cpp.o.d"
  "libramr_phoenix.a"
  "libramr_phoenix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_phoenix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
