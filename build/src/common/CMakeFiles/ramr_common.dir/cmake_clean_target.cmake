file(REMOVE_RECURSE
  "libramr_common.a"
)
