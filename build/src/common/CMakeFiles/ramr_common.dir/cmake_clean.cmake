file(REMOVE_RECURSE
  "CMakeFiles/ramr_common.dir/affinity.cpp.o"
  "CMakeFiles/ramr_common.dir/affinity.cpp.o.d"
  "CMakeFiles/ramr_common.dir/config.cpp.o"
  "CMakeFiles/ramr_common.dir/config.cpp.o.d"
  "CMakeFiles/ramr_common.dir/env.cpp.o"
  "CMakeFiles/ramr_common.dir/env.cpp.o.d"
  "CMakeFiles/ramr_common.dir/timing.cpp.o"
  "CMakeFiles/ramr_common.dir/timing.cpp.o.d"
  "libramr_common.a"
  "libramr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
