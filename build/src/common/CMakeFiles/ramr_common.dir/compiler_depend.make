# Empty compiler generated dependencies file for ramr_common.
# This may be replaced when dependencies are built.
