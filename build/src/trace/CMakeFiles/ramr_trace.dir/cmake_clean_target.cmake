file(REMOVE_RECURSE
  "libramr_trace.a"
)
