# Empty dependencies file for ramr_trace.
# This may be replaced when dependencies are built.
