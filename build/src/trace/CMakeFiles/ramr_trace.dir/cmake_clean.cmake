file(REMOVE_RECURSE
  "CMakeFiles/ramr_trace.dir/trace.cpp.o"
  "CMakeFiles/ramr_trace.dir/trace.cpp.o.d"
  "libramr_trace.a"
  "libramr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
