# Empty dependencies file for ramr_core.
# This may be replaced when dependencies are built.
