file(REMOVE_RECURSE
  "libramr_core.a"
)
