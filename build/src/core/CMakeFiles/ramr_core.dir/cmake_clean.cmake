file(REMOVE_RECURSE
  "CMakeFiles/ramr_core.dir/anchor.cpp.o"
  "CMakeFiles/ramr_core.dir/anchor.cpp.o.d"
  "libramr_core.a"
  "libramr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
