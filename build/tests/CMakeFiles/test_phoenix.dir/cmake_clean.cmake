file(REMOVE_RECURSE
  "CMakeFiles/test_phoenix.dir/mini_apps.cpp.o"
  "CMakeFiles/test_phoenix.dir/mini_apps.cpp.o.d"
  "CMakeFiles/test_phoenix.dir/test_phoenix.cpp.o"
  "CMakeFiles/test_phoenix.dir/test_phoenix.cpp.o.d"
  "test_phoenix"
  "test_phoenix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phoenix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
