file(REMOVE_RECURSE
  "CMakeFiles/test_mrphi.dir/test_mrphi.cpp.o"
  "CMakeFiles/test_mrphi.dir/test_mrphi.cpp.o.d"
  "test_mrphi"
  "test_mrphi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrphi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
