# Empty dependencies file for test_mrphi.
# This may be replaced when dependencies are built.
