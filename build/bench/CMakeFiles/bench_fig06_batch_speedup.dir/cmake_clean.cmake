file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_batch_speedup.dir/bench_fig06_batch_speedup.cpp.o"
  "CMakeFiles/bench_fig06_batch_speedup.dir/bench_fig06_batch_speedup.cpp.o.d"
  "bench_fig06_batch_speedup"
  "bench_fig06_batch_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_batch_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
