
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig06_batch_speedup.cpp" "bench/CMakeFiles/bench_fig06_batch_speedup.dir/bench_fig06_batch_speedup.cpp.o" "gcc" "bench/CMakeFiles/bench_fig06_batch_speedup.dir/bench_fig06_batch_speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ramr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ramr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ramr_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ramr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ramr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/phoenix/CMakeFiles/ramr_phoenix.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ramr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/containers/CMakeFiles/ramr_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ramr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ramr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/spsc/CMakeFiles/ramr_spsc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ramr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ramr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
