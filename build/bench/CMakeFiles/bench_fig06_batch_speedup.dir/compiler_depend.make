# Empty compiler generated dependencies file for bench_fig06_batch_speedup.
# This may be replaced when dependencies are built.
