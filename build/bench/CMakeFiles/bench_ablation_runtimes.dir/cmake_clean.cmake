file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_runtimes.dir/bench_ablation_runtimes.cpp.o"
  "CMakeFiles/bench_ablation_runtimes.dir/bench_ablation_runtimes.cpp.o.d"
  "bench_ablation_runtimes"
  "bench_ablation_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
