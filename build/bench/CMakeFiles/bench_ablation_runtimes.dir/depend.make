# Empty dependencies file for bench_ablation_runtimes.
# This may be replaced when dependencies are built.
