# Empty dependencies file for bench_table1_inputs.
# This may be replaced when dependencies are built.
