# Empty dependencies file for bench_fig10_suitability.
# This may be replaced when dependencies are built.
