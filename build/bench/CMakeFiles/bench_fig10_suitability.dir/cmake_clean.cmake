file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_suitability.dir/bench_fig10_suitability.cpp.o"
  "CMakeFiles/bench_fig10_suitability.dir/bench_fig10_suitability.cpp.o.d"
  "bench_fig10_suitability"
  "bench_fig10_suitability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_suitability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
