# Empty compiler generated dependencies file for bench_fig07_batch_sensitivity.
# This may be replaced when dependencies are built.
