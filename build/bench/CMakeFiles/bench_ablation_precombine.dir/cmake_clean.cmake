file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_precombine.dir/bench_ablation_precombine.cpp.o"
  "CMakeFiles/bench_ablation_precombine.dir/bench_ablation_precombine.cpp.o.d"
  "bench_ablation_precombine"
  "bench_ablation_precombine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_precombine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
