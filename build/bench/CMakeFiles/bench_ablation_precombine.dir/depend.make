# Empty dependencies file for bench_ablation_precombine.
# This may be replaced when dependencies are built.
