# Empty compiler generated dependencies file for bench_fig05_pinning_policy.
# This may be replaced when dependencies are built.
