# Empty compiler generated dependencies file for bench_fig04_synthetic_ratio.
# This may be replaced when dependencies are built.
