# Empty dependencies file for bench_fig09_phi.
# This may be replaced when dependencies are built.
