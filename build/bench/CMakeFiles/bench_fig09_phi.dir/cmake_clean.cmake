file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_phi.dir/bench_fig09_phi.cpp.o"
  "CMakeFiles/bench_fig09_phi.dir/bench_fig09_phi.cpp.o.d"
  "bench_fig09_phi"
  "bench_fig09_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
