file(REMOVE_RECURSE
  "CMakeFiles/bench_native_synthetic.dir/bench_native_synthetic.cpp.o"
  "CMakeFiles/bench_native_synthetic.dir/bench_native_synthetic.cpp.o.d"
  "bench_native_synthetic"
  "bench_native_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
