# Empty compiler generated dependencies file for bench_native_synthetic.
# This may be replaced when dependencies are built.
