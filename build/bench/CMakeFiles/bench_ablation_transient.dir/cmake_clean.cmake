file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transient.dir/bench_ablation_transient.cpp.o"
  "CMakeFiles/bench_ablation_transient.dir/bench_ablation_transient.cpp.o.d"
  "bench_ablation_transient"
  "bench_ablation_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
