# Empty compiler generated dependencies file for bench_ablation_transient.
# This may be replaced when dependencies are built.
