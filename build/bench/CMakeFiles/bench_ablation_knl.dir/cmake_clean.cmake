file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_knl.dir/bench_ablation_knl.cpp.o"
  "CMakeFiles/bench_ablation_knl.dir/bench_ablation_knl.cpp.o.d"
  "bench_ablation_knl"
  "bench_ablation_knl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
