# Empty compiler generated dependencies file for bench_ablation_knl.
# This may be replaced when dependencies are built.
