file(REMOVE_RECURSE
  "CMakeFiles/bench_spsc_queue.dir/bench_spsc_queue.cpp.o"
  "CMakeFiles/bench_spsc_queue.dir/bench_spsc_queue.cpp.o.d"
  "bench_spsc_queue"
  "bench_spsc_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spsc_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
