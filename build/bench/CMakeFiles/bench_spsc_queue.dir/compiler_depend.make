# Empty compiler generated dependencies file for bench_spsc_queue.
# This may be replaced when dependencies are built.
