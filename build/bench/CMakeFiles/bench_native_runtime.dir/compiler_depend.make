# Empty compiler generated dependencies file for bench_native_runtime.
# This may be replaced when dependencies are built.
