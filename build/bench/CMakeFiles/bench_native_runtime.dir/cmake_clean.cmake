file(REMOVE_RECURSE
  "CMakeFiles/bench_native_runtime.dir/bench_native_runtime.cpp.o"
  "CMakeFiles/bench_native_runtime.dir/bench_native_runtime.cpp.o.d"
  "bench_native_runtime"
  "bench_native_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
