file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_haswell.dir/bench_fig08_haswell.cpp.o"
  "CMakeFiles/bench_fig08_haswell.dir/bench_fig08_haswell.cpp.o.d"
  "bench_fig08_haswell"
  "bench_fig08_haswell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_haswell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
