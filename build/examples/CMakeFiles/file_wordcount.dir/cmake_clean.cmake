file(REMOVE_RECURSE
  "CMakeFiles/file_wordcount.dir/file_wordcount.cpp.o"
  "CMakeFiles/file_wordcount.dir/file_wordcount.cpp.o.d"
  "file_wordcount"
  "file_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
