# Empty dependencies file for file_wordcount.
# This may be replaced when dependencies are built.
