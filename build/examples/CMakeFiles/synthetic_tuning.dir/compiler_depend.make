# Empty compiler generated dependencies file for synthetic_tuning.
# This may be replaced when dependencies are built.
