file(REMOVE_RECURSE
  "CMakeFiles/synthetic_tuning.dir/synthetic_tuning.cpp.o"
  "CMakeFiles/synthetic_tuning.dir/synthetic_tuning.cpp.o.d"
  "synthetic_tuning"
  "synthetic_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
