file(REMOVE_RECURSE
  "CMakeFiles/histogram_image.dir/histogram_image.cpp.o"
  "CMakeFiles/histogram_image.dir/histogram_image.cpp.o.d"
  "histogram_image"
  "histogram_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
