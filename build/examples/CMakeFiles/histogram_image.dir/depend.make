# Empty dependencies file for histogram_image.
# This may be replaced when dependencies are built.
