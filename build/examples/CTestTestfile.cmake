# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke_example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_example_kmeans_clustering "/root/repo/build/examples/kmeans_clustering")
set_tests_properties(smoke_example_kmeans_clustering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_example_synthetic_tuning "/root/repo/build/examples/synthetic_tuning")
set_tests_properties(smoke_example_synthetic_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_example_platform_explorer "/root/repo/build/examples/platform_explorer")
set_tests_properties(smoke_example_platform_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_example_histogram_image "/root/repo/build/examples/histogram_image")
set_tests_properties(smoke_example_histogram_image PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_example_pipeline_trace "/root/repo/build/examples/pipeline_trace")
set_tests_properties(smoke_example_pipeline_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_example_file_wordcount "/root/repo/build/examples/file_wordcount")
set_tests_properties(smoke_example_file_wordcount PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_example_suite_runner "/root/repo/build/examples/suite_runner" "km" "--scale=8192" "--reps=1")
set_tests_properties(smoke_example_suite_runner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
