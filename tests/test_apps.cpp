// Tests for the six suite applications: input generators, serial
// references, both container flavors, and execution under both runtimes
// (Phoenix++ baseline and RAMR), plus the Table I registry.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/io.hpp"
#include "containers/metis_container.hpp"
#include "apps/string_match.hpp"
#include "apps/suite.hpp"
#include "common/config.hpp"
#include "core/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "topology/topology.hpp"

namespace ramr::apps {
namespace {

// Small helpers: run an app under both runtimes and compare its pairs with
// a reference map.
template <typename App, typename Ref>
void expect_both_runtimes_match(const App& app,
                                const typename App::input_type& input,
                                const Ref& ref, double tolerance = 0.0) {
  phoenix::Options po;
  po.num_workers = 3;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<App> baseline(topo::host(), po);

  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 2;
  cfg.queue_capacity = 1024;
  cfg.batch_size = 64;
  cfg.pin_policy = PinPolicy::kOsDefault;
  core::Runtime<App> ramr(topo::host(), cfg);

  for (const auto& result : {baseline.run(app, input), ramr.run(app, input)}) {
    ASSERT_EQ(result.pairs.size(), ref.size());
    auto it = ref.begin();
    for (const auto& [k, v] : result.pairs) {
      EXPECT_EQ(k, it->first);
      if constexpr (std::is_floating_point_v<std::decay_t<decltype(v)>>) {
        EXPECT_NEAR(v, it->second, tolerance)
            << "key " << k;
      } else {
        EXPECT_EQ(v, it->second) << "key " << k;
      }
      ++it;
    }
  }
}

// ---------- generators -------------------------------------------------------

TEST(Inputs, TextIsDeterministicAndSized) {
  const std::string a = make_text(10000, 100, 1);
  const std::string b = make_text(10000, 100, 1);
  EXPECT_EQ(a, b);
  EXPECT_GE(a.size(), 10000u);
  EXPECT_LT(a.size(), 10100u);
  EXPECT_NE(a, make_text(10000, 100, 2));
}

TEST(Inputs, TextIsZipfSkewed) {
  const TextInput in{make_text(200000, 500, 3), 4096};
  const auto counts = wordcount_reference(in);
  std::uint64_t max_count = 0;
  std::uint64_t total = 0;
  for (const auto& [w, c] : counts) {
    max_count = std::max(max_count, c);
    total += c;
  }
  // Zipf over 500 words: the top word carries far more than 1/500 of mass.
  EXPECT_GT(max_count * 20, total / 10);
  EXPECT_GT(counts.size(), 100u);  // plenty of distinct words appear
}

TEST(Inputs, PixelsCoverRangeDeterministically) {
  const auto px = make_pixels(30000, 4);
  EXPECT_EQ(px, make_pixels(30000, 4));
  std::set<std::uint8_t> values(px.begin(), px.end());
  EXPECT_GT(values.size(), 128u);  // uniform floor reaches most intensities
}

TEST(Inputs, PointsClusterAroundCentres) {
  const auto pts = make_points(5000, 8, 5);
  EXPECT_EQ(pts.size(), 5000u);
  const auto centroids = initial_centroids(pts, 8);
  EXPECT_EQ(centroids.size(), 8u);
  EXPECT_THROW(initial_centroids(std::vector<KmPoint>(3), 8), Error);
}

TEST(Inputs, LrPointsFollowConfiguredLine) {
  const auto pts = make_lr_points(50000, 6);
  const auto ref = lr_reference({pts, 4096});
  const auto fit = lr_fit_from_moments(ref.at(kLrSx), ref.at(kLrSy),
                                       ref.at(kLrSxx), ref.at(kLrSxy),
                                       pts.size());
  EXPECT_NEAR(fit.slope, 0.8, 0.05);
  EXPECT_NEAR(fit.intercept, 12.0, 3.0);
}

TEST(Inputs, MatrixShapeAndRange) {
  const Matrix m = make_matrix(10, 20, 7);
  EXPECT_EQ(m.rows, 10u);
  EXPECT_EQ(m.cols, 20u);
  EXPECT_EQ(m.data.size(), 200u);
  for (double v : m.data) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

// ---------- Word Count ---------------------------------------------------------

TEST(WordCount, BothFlavorsBothRuntimesMatchReference) {
  const TextInput input{make_text(60000, 300, 11), 2048};
  const auto ref = wordcount_reference(input);
  expect_both_runtimes_match(WordCountApp<ContainerFlavor::kDefault>{}, input,
                             ref);
  expect_both_runtimes_match(WordCountApp<ContainerFlavor::kHash>{}, input,
                             ref);
}

TEST(WordCount, SplitBoundariesNeverSplitWords) {
  // Tiny splits stress the boundary-snapping: totals must be identical for
  // any split size.
  const TextInput big{make_text(5000, 50, 12), 64};
  const TextInput small{big.text, 7};
  const WordCountApp<ContainerFlavor::kDefault> app;
  const auto ref = wordcount_reference(big);
  phoenix::Options po;
  po.num_workers = 2;
  po.pin_policy = PinPolicy::kOsDefault;
  const auto result = phoenix::run_once(app, small, po);
  ASSERT_EQ(result.pairs.size(), ref.size());
  for (const auto& [k, v] : result.pairs) EXPECT_EQ(v, ref.at(k));
}

TEST(WordCount, EmptyTextYieldsNoPairs) {
  const WordCountApp<ContainerFlavor::kDefault> app;
  EXPECT_EQ(app.num_splits(TextInput{}), 0u);
}

// ---------- Histogram ------------------------------------------------------------

TEST(Histogram, BothFlavorsBothRuntimesMatchReference) {
  const PixelInput input{make_pixels(90000, 13), 4096};
  const auto ref = histogram_reference(input);
  expect_both_runtimes_match(HistogramApp<ContainerFlavor::kDefault>{}, input,
                             ref);
  expect_both_runtimes_match(HistogramApp<ContainerFlavor::kHash>{}, input,
                             ref);
}

TEST(Histogram, TotalCountEqualsBytes) {
  const PixelInput input{make_pixels(12345, 14), 1000};
  const auto ref = histogram_reference(input);
  std::uint64_t total = 0;
  for (const auto& [k, v] : ref) {
    EXPECT_LT(k, kHistogramBins);
    total += v;
  }
  EXPECT_EQ(total, 12345u);
}

// ---------- Linear Regression ------------------------------------------------------

TEST(LinearRegression, BothFlavorsBothRuntimesMatchReference) {
  const LrInput input{make_lr_points(40000, 15), 1024};
  const auto ref = lr_reference(input);
  expect_both_runtimes_match(LinearRegressionApp<ContainerFlavor::kDefault>{},
                             input, ref);
  expect_both_runtimes_match(LinearRegressionApp<ContainerFlavor::kHash>{},
                             input, ref);
}

TEST(LinearRegression, FitRejectsDegenerateInput) {
  EXPECT_THROW(lr_fit_from_moments(0, 0, 0, 0, 0), Error);
  // All x equal -> zero denominator.
  EXPECT_THROW(lr_fit_from_moments(10, 5, 20, 10, 5), Error);
}

// ---------- KMeans ------------------------------------------------------------------

TEST(KMeans, BothFlavorsBothRuntimesMatchReference) {
  KmInput input;
  input.points = make_points(20000, 8, 16);
  input.centroids = initial_centroids(input.points, 8);
  input.split_points = 1024;
  const auto ref = km_reference(input);
  KMeansApp<ContainerFlavor::kDefault> app;
  app.num_clusters = 8;
  KMeansApp<ContainerFlavor::kHash> hash_app;
  hash_app.num_clusters = 8;
  expect_both_runtimes_match(app, input, ref);
  expect_both_runtimes_match(hash_app, input, ref);
}

TEST(KMeans, IterationsConverge) {
  KmInput input;
  input.points = make_points(5000, 4, 17);
  input.centroids = initial_centroids(input.points, 4);
  input.split_points = 512;
  KMeansApp<ContainerFlavor::kDefault> app;
  app.num_clusters = 4;
  phoenix::Options po;
  po.num_workers = 2;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<KMeansApp<ContainerFlavor::kDefault>> rt(topo::host(), po);
  double prev_shift = std::numeric_limits<double>::max();
  for (int iter = 0; iter < 6; ++iter) {
    const auto result = rt.run(app, input);
    const auto next = km_next_centroids(result.pairs, input.centroids);
    double shift = 0.0;
    for (std::size_t k = 0; k < next.size(); ++k) {
      for (std::size_t d = 0; d < kKmDim; ++d) {
        shift += std::abs(next[k].coord[d] - input.centroids[k].coord[d]);
      }
    }
    input.centroids = next;
    if (iter >= 2) {
      EXPECT_LE(shift, prev_shift + 1e-3);
    }
    prev_shift = shift;
  }
  EXPECT_LT(prev_shift, 1.0);  // converged to (near) fixed point
}

TEST(KMeans, NextCentroidsKeepsEmptyClusters) {
  std::vector<KmPoint> prev(3, KmPoint{{1.0f, 2.0f, 3.0f}});
  std::vector<std::pair<std::uint64_t, KmAccum>> merged;
  KmAccum a;
  a.sum = {10.0, 20.0, 30.0};
  a.n = 10;
  merged.emplace_back(1, a);
  const auto next = km_next_centroids(merged, prev);
  EXPECT_FLOAT_EQ(next[0].coord[0], 1.0f);  // untouched
  EXPECT_FLOAT_EQ(next[1].coord[0], 1.0f);  // 10/10
  EXPECT_FLOAT_EQ(next[1].coord[2], 3.0f);
}

// ---------- PCA ----------------------------------------------------------------------

TEST(Pca, PackedIndexIsBijective) {
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j <= i; ++j) seen.insert(pca_pack(i, j));
  }
  EXPECT_EQ(seen.size(), pca_pair_count(40));
  EXPECT_EQ(*seen.rbegin(), pca_pair_count(40) - 1);  // dense packing
}

TEST(Pca, MeansMatchDirectComputation) {
  const Matrix m = make_matrix(6, 40, 18);
  const auto means = pca_row_means(m);
  ASSERT_EQ(means.size(), 6u);
  double direct = 0.0;
  for (std::size_t c = 0; c < m.cols; ++c) direct += m.at(2, c);
  EXPECT_NEAR(means[2], direct / 40.0, 1e-12);
}

TEST(Pca, CovBothFlavorsBothRuntimesMatchReference) {
  PcaInput input;
  input.matrix = make_matrix(24, 200, 19);
  input.row_means = pca_row_means(input.matrix);
  input.split_cols = 16;
  const auto ref = pca_cov_reference(input);
  PcaCovApp<ContainerFlavor::kDefault> app;
  app.rows = 24;
  PcaCovApp<ContainerFlavor::kHash> hash_app;
  hash_app.rows = 24;
  expect_both_runtimes_match(app, input, ref, 1e-9);
  expect_both_runtimes_match(hash_app, input, ref, 1e-9);
}

TEST(Pca, MeanAppFeedsCovApp) {
  // End-to-end two-job pipeline: mean job output == pca_row_means * cols.
  PcaInput input;
  input.matrix = make_matrix(12, 96, 20);
  input.split_cols = 10;
  PcaMeanApp<ContainerFlavor::kDefault> app;
  app.in_rows_hint = 12;
  phoenix::Options po;
  po.num_workers = 2;
  po.pin_policy = PinPolicy::kOsDefault;
  const auto result = phoenix::run_once(app, input, po);
  const auto means = pca_row_means(input.matrix);
  ASSERT_EQ(result.pairs.size(), 12u);
  for (const auto& [r, sum] : result.pairs) {
    EXPECT_NEAR(sum / 96.0, means[r], 1e-12);
  }
}

TEST(Pca, CovarianceIsSymmetricPositiveDiagonal) {
  PcaInput input;
  input.matrix = make_matrix(10, 300, 21);
  input.row_means = pca_row_means(input.matrix);
  const auto ref = pca_cov_reference(input);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GE(ref.at(pca_pack(i, i)), 0.0);  // variances non-negative
  }
}

// ---------- Matrix Multiply -------------------------------------------------------------

TEST(MatMul, BothFlavorsBothRuntimesMatchReference) {
  MmInput input;
  input.a = make_matrix(20, 30, 22);
  input.b = make_matrix(30, 20, 23);
  input.split_rows = 4;
  const Matrix c = mm_reference(input);
  std::map<std::uint64_t, double> ref;
  for (std::size_t i = 0; i < c.rows; ++i) {
    for (std::size_t j = 0; j < c.cols; ++j) {
      ref[i * c.cols + j] = c.at(i, j);
    }
  }
  MatrixMultiplyApp<ContainerFlavor::kDefault> app;
  app.rows_a = 20;
  app.cols_b = 20;
  MatrixMultiplyApp<ContainerFlavor::kHash> hash_app;
  hash_app.rows_a = 20;
  hash_app.cols_b = 20;
  expect_both_runtimes_match(app, input, ref, 1e-9);
  expect_both_runtimes_match(hash_app, input, ref, 1e-9);
}

TEST(MatMul, ReferenceRejectsShapeMismatch) {
  MmInput bad;
  bad.a = make_matrix(4, 5, 1);
  bad.b = make_matrix(6, 4, 2);
  EXPECT_THROW(mm_reference(bad), Error);
}

TEST(MatMul, IdentityProduct) {
  MmInput input;
  input.a = make_matrix(8, 8, 24);
  input.b.rows = input.b.cols = 8;
  input.b.data.assign(64, 0.0);
  for (std::size_t i = 0; i < 8; ++i) input.b.at(i, i) = 1.0;
  const Matrix c = mm_reference(input);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c.at(i, j), input.a.at(i, j), 1e-12);
    }
  }
}

// ---------- String Match (extension app, original Phoenix suite) ----------------------

TEST(StringMatch, BothFlavorsBothRuntimesMatchReference) {
  SmInput input;
  input.text = {make_text(40000, 50, 31), 1500};
  // Patterns drawn from the generator's vocabulary plus one guaranteed miss.
  const auto counts = wordcount_reference(input.text);
  for (const auto& [w, c] : counts) {
    input.patterns.emplace_back(w);
    if (input.patterns.size() == 5) break;
  }
  input.patterns.emplace_back("zzz-never-generated");
  const auto ref = string_match_reference(input);

  StringMatchApp<ContainerFlavor::kDefault> app;
  app.num_patterns = input.patterns.size();
  StringMatchApp<ContainerFlavor::kHash> hash_app;
  hash_app.num_patterns = input.patterns.size();
  expect_both_runtimes_match(app, input, ref);
  expect_both_runtimes_match(hash_app, input, ref);
}

TEST(StringMatch, CountsAgreeWithWordCount) {
  // Matching pattern p must count exactly as often as word-count says.
  SmInput input;
  input.text = {make_text(20000, 30, 32), 2000};
  const auto wc = wordcount_reference(input.text);
  input.patterns.emplace_back(wc.begin()->first);
  const auto ref = string_match_reference(input);
  ASSERT_EQ(ref.size(), 1u);
  EXPECT_EQ(ref.at(0), wc.begin()->second);
}

TEST(StringMatch, NoPatternsMatchNothing) {
  SmInput input;
  input.text = {make_text(5000, 20, 33), 1000};
  input.patterns = {"absent-a", "absent-b"};
  EXPECT_TRUE(string_match_reference(input).empty());
}

// ---------- container pluggability: Metis container through both runtimes -------------

TEST(MetisThroughRuntimes, WordCountWithMetisContainerMatchesReference) {
  // Any IntermediateContainer plugs into the AppSpec — run WC with the
  // Metis-style bucketed container instead of its usual hash table.
  struct WcMetis : WordCountApp<ContainerFlavor::kDefault> {
    using container_type =
        containers::MetisContainer<std::string_view, std::uint64_t,
                                   containers::CountCombiner>;
    container_type make_container() const {
      return container_type(max_distinct_words);
    }
  };
  const TextInput input{make_text(30000, 200, 41), 2048};
  const auto ref = wordcount_reference(input);
  expect_both_runtimes_match(WcMetis{}, input, ref);
}

// ---------- file I/O --------------------------------------------------------------------

TEST(Io, LoadTextFileNormalisesWhitespaceAndRoundTrips) {
  const std::string path = ::testing::TempDir() + "/ramr_io_text.txt";
  {
    std::ofstream out(path);
    out << "hello world\nhello\tagain\rhello";
  }
  const TextInput input = load_text_file(path, 7);
  EXPECT_EQ(input.text, "hello world hello again hello");
  const auto ref = wordcount_reference(input);
  EXPECT_EQ(ref.at("hello"), 3u);
  EXPECT_EQ(ref.at("world"), 1u);
  EXPECT_EQ(ref.at("again"), 1u);
}

TEST(Io, NormalizeWordsFoldsCaseAndPunctuation) {
  std::string s = "Hello, World! It's 2020...";
  normalize_words(s);
  EXPECT_EQ(s, "hello  world  it s 2020   ");
  TextInput in{s, 4096};
  const auto ref = wordcount_reference(in);
  EXPECT_EQ(ref.at("hello"), 1u);
  EXPECT_EQ(ref.at("world"), 1u);
  EXPECT_EQ(ref.at("2020"), 1u);
  EXPECT_EQ(ref.count("Hello,"), 0u);
}

TEST(Io, LoadTextFileWithWordFolding) {
  const std::string path = ::testing::TempDir() + "/ramr_io_fold.txt";
  {
    std::ofstream out(path);
    out << "The cat, the CAT and THE cat.";
  }
  const TextInput input = load_text_file(path, 4096, /*fold_words=*/true);
  const auto ref = wordcount_reference(input);
  EXPECT_EQ(ref.at("the"), 3u);
  EXPECT_EQ(ref.at("cat"), 3u);
  EXPECT_EQ(ref.at("and"), 1u);
}

TEST(Io, LoadBinaryFilePreservesBytes) {
  const std::string path = ::testing::TempDir() + "/ramr_io_bin.dat";
  std::vector<std::uint8_t> bytes{0, 255, 10, 13, 32, 7};
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  const PixelInput input = load_binary_file(path);
  EXPECT_EQ(input.bytes, bytes);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_text_file("/nonexistent/ramr/file.txt"), Error);
  EXPECT_THROW(load_binary_file("/nonexistent/ramr/file.bin"), Error);
}

TEST(Io, SavePairsCsvWritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/ramr_io_pairs.csv";
  std::vector<std::pair<std::string, std::uint64_t>> pairs{{"a", 1},
                                                           {"b", 22}};
  save_pairs_csv(path, pairs);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "key,value");
  std::getline(in, line);
  EXPECT_EQ(line, "a,1");
  std::getline(in, line);
  EXPECT_EQ(line, "b,22");
  EXPECT_THROW(save_pairs_csv("/nonexistent/dir/x.csv", pairs), Error);
}

TEST(Io, FileDrivenWordCountEndToEnd) {
  const std::string path = ::testing::TempDir() + "/ramr_io_wc.txt";
  {
    std::ofstream out(path);
    for (int i = 0; i < 500; ++i) out << "alpha beta beta gamma\n";
  }
  const TextInput input = load_text_file(path, 512);
  const WordCountApp<ContainerFlavor::kDefault> app;
  phoenix::Options po;
  po.num_workers = 2;
  po.pin_policy = PinPolicy::kOsDefault;
  const auto result = phoenix::run_once(app, input, po);
  ASSERT_EQ(result.pairs.size(), 3u);
  EXPECT_EQ(result.pairs[1].first, "beta");
  EXPECT_EQ(result.pairs[1].second, 1000u);
}

// ---------- Table I registry --------------------------------------------------------------

TEST(TableOne, MatchesPaperValues) {
  using enum AppId;
  using enum SizeClass;
  using enum PlatformId;
  EXPECT_EQ(table1_input(kWordCount, kHaswell, kSmall).describe(kWordCount),
            "400MB");
  EXPECT_EQ(table1_input(kWordCount, kXeonPhi, kLarge).describe(kWordCount),
            "800MB");
  EXPECT_EQ(table1_input(kKMeans, kHaswell, kLarge).describe(kKMeans), "2M");
  EXPECT_EQ(table1_input(kKMeans, kXeonPhi, kSmall).describe(kKMeans),
            "200K");
  EXPECT_EQ(table1_input(kHistogram, kHaswell, kMedium).describe(kHistogram),
            "800MB");
  EXPECT_EQ(table1_input(kPca, kHaswell, kSmall).primary, 500u);
  EXPECT_EQ(table1_input(kPca, kXeonPhi, kLarge).primary, 800u);
  EXPECT_EQ(
      table1_input(kMatrixMultiply, kHaswell, kSmall).describe(kMatrixMultiply),
      "2Kx2K");
  EXPECT_EQ(
      table1_input(kMatrixMultiply, kXeonPhi, kLarge).describe(kMatrixMultiply),
      "4Kx4K");
  EXPECT_EQ(table1_input(kLinearRegression, kHaswell, kLarge)
                .describe(kLinearRegression),
            "1GB");
  EXPECT_EQ(table1_input(kLinearRegression, kXeonPhi, kLarge)
                .describe(kLinearRegression),
            "600MB");
}

TEST(TableOne, HaswellInputsAtLeastPhiInputs) {
  // "As a system with greater potential, the Haswell setup was tested under
  // heavier inputs than Xeon Phi."
  for (AppId app : kAllApps) {
    for (SizeClass size : kAllSizes) {
      const auto hwl = table1_input(app, PlatformId::kHaswell, size);
      const auto phi = table1_input(app, PlatformId::kXeonPhi, size);
      EXPECT_GE(hwl.primary, phi.primary)
          << app_name(app) << " " << size_name(size);
    }
  }
}

TEST(TableOne, SizesGrowMonotonically) {
  for (AppId app : kAllApps) {
    for (PlatformId platform : kAllPlatforms) {
      const auto s = table1_input(app, platform, SizeClass::kSmall);
      const auto m = table1_input(app, platform, SizeClass::kMedium);
      const auto l = table1_input(app, platform, SizeClass::kLarge);
      EXPECT_LE(s.primary, m.primary) << app_name(app);
      EXPECT_LE(m.primary, l.primary) << app_name(app);
    }
  }
}

TEST(TableOne, ScaledBridgesProduceUsableInputs) {
  const std::uint64_t divisor = 4096;
  const auto wc = make_wc_input(
      table1_input(AppId::kWordCount, PlatformId::kHaswell, SizeClass::kSmall),
      divisor);
  EXPECT_GT(wc.text.size(), 1000u);
  const auto km = make_km_input(
      table1_input(AppId::kKMeans, PlatformId::kHaswell, SizeClass::kSmall),
      divisor);
  EXPECT_GE(km.points.size(), 97u);
  EXPECT_EQ(km.centroids.size(), 16u);
  const auto mm = make_mm_input(table1_input(AppId::kMatrixMultiply,
                                             PlatformId::kHaswell,
                                             SizeClass::kSmall),
                                divisor);
  EXPECT_GE(mm.a.rows, 8u);
  EXPECT_EQ(mm.a.cols, mm.b.rows);
}

}  // namespace
}  // namespace ramr::apps
