// Tests for the workload-aware synthetic test-suite (paper Sec. III-C).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "core/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "synth/kernels.hpp"
#include "synth/synth_app.hpp"
#include "synth/zipf.hpp"
#include "topology/topology.hpp"

namespace ramr::synth {
namespace {

// ---------- kernels ----------------------------------------------------------

TEST(Kernels, CpuKernelIsDeterministic) {
  EXPECT_DOUBLE_EQ(cpu_kernel(100, 1.0), cpu_kernel(100, 1.0));
  EXPECT_NE(cpu_kernel(100, 1.0), cpu_kernel(100, 2.0));
}

TEST(Kernels, CpuKernelStaysFinite) {
  const double r = cpu_kernel(10000, 123.0);
  EXPECT_TRUE(std::isfinite(r));
}

TEST(Kernels, ChaseArenaIsSingleCyclePermutation) {
  const auto arena = make_chase_arena(64 * 1024, 7);
  // Every value in [0, n) exactly once...
  std::set<std::uint64_t> values(arena.begin(), arena.end());
  EXPECT_EQ(values.size(), arena.size());
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), arena.size() - 1);
  // ...and following the chain visits all slots before returning (single
  // cycle, Sattolo's property).
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i + 1 < arena.size(); ++i) {
    idx = arena[idx];
    EXPECT_NE(idx, 0u) << "cycle closed early at step " << i;
  }
  EXPECT_EQ(arena[idx], 0u);
}

TEST(Kernels, ChaseArenaRejectsTinySizes) {
  EXPECT_THROW(make_chase_arena(8, 1), Error);
}

TEST(Kernels, MemoryKernelFollowsChain) {
  const auto arena = make_chase_arena(4096, 3);
  const std::uint64_t two_hops = memory_kernel(arena, 2, 5);
  EXPECT_EQ(two_hops, arena[arena[5 % arena.size()]]);
  EXPECT_EQ(memory_kernel(arena, 0, 9), 9 % arena.size());
}

TEST(Kernels, RunKernelDispatches) {
  EXPECT_NO_THROW(run_kernel(WorkKind::kCpu, 10, 1, 1 << 16));
  EXPECT_NO_THROW(run_kernel(WorkKind::kMemory, 10, 1, 1 << 16));
  EXPECT_STREQ(to_string(WorkKind::kCpu), "cpu");
  EXPECT_STREQ(to_string(WorkKind::kMemory), "memory");
}

// ---------- synthetic app through the runtimes --------------------------------

RuntimeConfig small_config() {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 256;
  cfg.batch_size = 32;
  return cfg;
}

SynthParams small_params() {
  SynthParams p;
  p.elements = 3000;
  p.keys = 16;
  p.split_elements = 250;
  p.map_intensity = 4;
  p.combine_intensity = 2;
  p.arena_bytes = 1 << 16;  // small arenas: tests must stay fast
  return p;
}

std::uint64_t payload_sum(
    const std::vector<std::pair<std::size_t, SynthValue>>& pairs) {
  std::uint64_t sum = 0;
  for (const auto& [k, v] : pairs) sum += v.payload;
  return sum;
}

TEST(SynthApp, EveryElementCombinedExactlyOnceUnderRamr) {
  const SynthParams params = small_params();
  SynthApp app;
  app.container_keys = params.keys;
  core::Runtime<SynthApp> rt(topo::host(), small_config());
  const auto result = rt.run(app, params);
  EXPECT_EQ(result.pairs.size(), params.keys);
  EXPECT_EQ(payload_sum(result.pairs),
            synth_expected_payload_sum(params.elements));
}

TEST(SynthApp, PhoenixAndRamrAgreeOnPayloads) {
  const SynthParams params = small_params();
  SynthApp app;
  app.container_keys = params.keys;
  phoenix::Options po;
  po.num_workers = 2;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<SynthApp> baseline(topo::host(), po);
  core::Runtime<SynthApp> ramr(topo::host(), small_config());
  const auto a = baseline.run(app, params);
  const auto b = ramr.run(app, params);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].first, b.pairs[i].first);
    EXPECT_EQ(a.pairs[i].second.payload, b.pairs[i].second.payload);
  }
}

class SynthKindSweep
    : public ::testing::TestWithParam<std::tuple<WorkKind, WorkKind>> {};

TEST_P(SynthKindSweep, AllKindCombinationsStayCorrect) {
  const auto [mk, ck] = GetParam();
  SynthParams params = small_params();
  params.map_kind = mk;
  params.combine_kind = ck;
  SynthApp app;
  app.container_keys = params.keys;
  core::Runtime<SynthApp> rt(topo::host(), small_config());
  const auto result = rt.run(app, params);
  EXPECT_EQ(payload_sum(result.pairs),
            synth_expected_payload_sum(params.elements));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SynthKindSweep,
    ::testing::Combine(::testing::Values(WorkKind::kCpu, WorkKind::kMemory),
                       ::testing::Values(WorkKind::kCpu, WorkKind::kMemory)));

TEST(SynthApp, IntensityKnobsScaleWork) {
  // Heavier map intensity must take measurably longer (single-threaded to
  // keep the comparison clean on a 1-core host).
  // Intensities far enough apart that the kernel dominates the per-element
  // framework overhead even in -O0 builds.
  SynthParams light = small_params();
  light.elements = 2000;
  light.map_intensity = 1;
  SynthParams heavy = light;
  heavy.map_intensity = 5000;
  SynthApp app;
  app.container_keys = light.keys;
  phoenix::Options po;
  po.num_workers = 1;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<SynthApp> rt(topo::host(), po);
  const double t_light = rt.run(app, light).timers.total();
  const double t_heavy = rt.run(app, heavy).timers.total();
  EXPECT_GT(t_heavy, t_light * 2.0);
}

TEST(SynthApp, ExpectedPayloadSumFormula) {
  EXPECT_EQ(synth_expected_payload_sum(0), 0u);
  EXPECT_EQ(synth_expected_payload_sum(1), 0u);
  EXPECT_EQ(synth_expected_payload_sum(5), 10u);  // 0+1+2+3+4
}

// ---------- zipf key generator ----------------------------------------------

TEST(Zipf, DeterministicInSeed) {
  const auto a = ZipfGenerator::sample(1000, 64, 1.0, 7);
  const auto b = ZipfGenerator::sample(1000, 64, 1.0, 7);
  const auto c = ZipfGenerator::sample(1000, 64, 1.0, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Zipf, RanksStayInRange) {
  ZipfGenerator gen(32, 1.5, 11);
  EXPECT_EQ(gen.num_keys(), 32u);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.next(), 32u);
}

TEST(Zipf, FrequenciesDecreaseByRank) {
  // Rank 0 must dominate and empirical frequencies must track the exact
  // probabilities within a loose tolerance.
  const std::size_t n = 200000;
  ZipfGenerator gen(16, 1.0, 3);
  std::vector<std::size_t> hist(16, 0);
  for (std::size_t i = 0; i < n; ++i) hist[gen.next()]++;
  EXPECT_GT(hist[0], hist[4]);
  EXPECT_GT(hist[4], hist[15]);
  for (std::size_t r = 0; r < 16; ++r) {
    const double expected = gen.probability(r);
    const double observed =
        static_cast<double>(hist[r]) / static_cast<double>(n);
    EXPECT_NEAR(observed, expected, 0.01) << "rank " << r;
  }
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfGenerator gen(100, 1.2, 1);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < 100; ++r) sum += gen.probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfGenerator gen(8, 0.0, 5);
  for (std::uint64_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(gen.probability(r), 1.0 / 8.0, 1e-12);
  }
}

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfGenerator(0, 1.0, 1), Error);
  EXPECT_THROW(ZipfGenerator(8, -0.5, 1), Error);
}

}  // namespace
}  // namespace ramr::synth
