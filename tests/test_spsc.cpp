// Unit, property, and stress tests for the SPSC ring, ring sets, backoff
// policies, and the dynamic-queue ablation baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "spsc/backoff.hpp"
#include "spsc/dynamic_queue.hpp"
#include "spsc/ring.hpp"
#include "spsc/ring_set.hpp"

namespace ramr::spsc {
namespace {

// ---------- Ring: single-threaded semantics ---------------------------------

TEST(Ring, CapacityRoundsUpToPowerOfTwo) {
  Ring<int> r(5000);
  EXPECT_EQ(r.capacity(), 8192u);
  Ring<int> r2(64);
  EXPECT_EQ(r2.capacity(), 64u);
}

TEST(Ring, RejectsTinyCapacity) {
  EXPECT_THROW(Ring<int>(0), ConfigError);
  EXPECT_THROW(Ring<int>(1), ConfigError);
}

TEST(Ring, PushPopFifoOrder) {
  Ring<int> r(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));  // full: all 8 slots usable
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(r.try_pop(out));
}

TEST(Ring, FullThenFreeAcceptsAgain) {
  Ring<int> r(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(4));
  int out;
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_TRUE(r.try_push(4));
}

TEST(Ring, WrapAroundPreservesOrder) {
  Ring<int> r(4);
  int out;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(r.try_push(round * 2));
    ASSERT_TRUE(r.try_push(round * 2 + 1));
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, round * 2);
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, round * 2 + 1);
  }
}

TEST(Ring, SizeTracksOccupancy) {
  Ring<int> r(8);
  EXPECT_TRUE(r.empty());
  r.try_push(1);
  r.try_push(2);
  EXPECT_EQ(r.size(), 2u);
  int out;
  r.try_pop(out);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Ring, MoveOnlyElements) {
  Ring<std::unique_ptr<int>> r(4);
  EXPECT_TRUE(r.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(r.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

TEST(Ring, DestroysLeftoverElements) {
  // shared_ptr use-count observes that the ring destroys undrained slots.
  auto marker = std::make_shared<int>(0);
  {
    Ring<std::shared_ptr<int>> r(8);
    for (int i = 0; i < 5; ++i) r.try_push(marker);
    EXPECT_EQ(marker.use_count(), 6);
  }
  EXPECT_EQ(marker.use_count(), 1);
}

TEST(Ring, FailedPushLeavesValueIntactForRetry) {
  // Regression: push() retries with the same object after a full-queue
  // failure, so try_push must not move from its argument when it fails.
  Ring<std::string> r(2);
  ASSERT_TRUE(r.try_push(std::string("a")));
  ASSERT_TRUE(r.try_push(std::string("b")));
  std::string v = "sticky";
  EXPECT_FALSE(r.try_push(std::move(v)));
  EXPECT_EQ(v, "sticky");
  std::string out;
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_TRUE(r.try_push(std::move(v)));
  ASSERT_TRUE(r.try_pop(out));
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_EQ(out, "sticky");
}

TEST(Ring, CloseIsVisible) {
  Ring<int> r(4);
  EXPECT_FALSE(r.closed());
  r.close();
  EXPECT_TRUE(r.closed());
}

TEST(Ring, MaxOccupancyHighWaterMark) {
  Ring<int> r(16);
  int out;
  // Fill to 5, drain 2, fill to 9: consumer observes depth when its cached
  // tail refreshes, so pops must interleave.
  for (int i = 0; i < 5; ++i) r.try_push(i);
  r.try_pop(out);  // refresh: sees 5
  EXPECT_EQ(r.consumer_stats().max_occupancy, 5u);
  r.try_pop(out);
  for (int i = 0; i < 6; ++i) r.try_push(i);
  while (r.try_pop(out)) {
  }
  EXPECT_GE(r.consumer_stats().max_occupancy, 5u);
  EXPECT_LE(r.consumer_stats().max_occupancy, 16u);
}

TEST(RingSet, SingleRingDegenerateCase) {
  Ring<int> only(8);
  RingSet<int> set({&only});
  only.try_push(1);
  only.try_push(2);
  only.close();
  int sum = 0;
  BusyWaitBackoff idle;
  const std::size_t n = set.drain(
      [&](std::span<int> block) {
        for (int v : block) sum += v;
      },
      4, idle);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(sum, 3);
  EXPECT_TRUE(set.finished());
}

TEST(Ring, ConsumeBatchZeroMaxElementsIsANoOp) {
  Ring<int> r(8);
  r.try_push(1);
  EXPECT_EQ(r.consume_batch([](std::span<int>) {}, 0), 0u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Ring, StatsCountPushesAndFailures) {
  Ring<int> r(2);
  r.try_push(1);
  r.try_push(2);
  r.try_push(3);  // fails
  EXPECT_EQ(r.producer_stats().pushes, 2u);
  EXPECT_EQ(r.producer_stats().failed_pushes, 1u);
  int out;
  r.try_pop(out);
  r.try_pop(out);
  r.try_pop(out);  // fails
  EXPECT_EQ(r.consumer_stats().pops, 2u);
  EXPECT_EQ(r.consumer_stats().failed_pops, 1u);
}

// ---------- Ring: batched consume -------------------------------------------

TEST(RingBatch, ConsumesUpToBatchSize) {
  Ring<int> r(16);
  for (int i = 0; i < 10; ++i) r.try_push(i);
  std::vector<int> got;
  const std::size_t n = r.consume_batch(
      [&](std::span<int> block) {
        got.insert(got.end(), block.begin(), block.end());
      },
      4);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(r.size(), 6u);
}

TEST(RingBatch, HandlesWrapWithTwoSpans) {
  Ring<int> r(4);
  int out;
  // Advance head to 3 so a 4-element batch wraps.
  for (int i = 0; i < 3; ++i) {
    r.try_push(i);
    r.try_pop(out);
  }
  for (int i = 10; i < 14; ++i) ASSERT_TRUE(r.try_push(i));
  std::vector<std::size_t> span_sizes;
  std::vector<int> got;
  const std::size_t n = r.consume_batch(
      [&](std::span<int> block) {
        span_sizes.push_back(block.size());
        got.insert(got.end(), block.begin(), block.end());
      },
      8);
  EXPECT_EQ(n, 4u);
  ASSERT_EQ(span_sizes.size(), 2u);  // wrapped: two contiguous blocks
  EXPECT_EQ(span_sizes[0], 1u);
  EXPECT_EQ(span_sizes[1], 3u);
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12, 13}));
}

TEST(RingBatch, EmptyReturnsZeroWithoutCallingFunctor) {
  Ring<int> r(8);
  bool called = false;
  EXPECT_EQ(r.consume_batch([&](std::span<int>) { called = true; }, 4), 0u);
  EXPECT_FALSE(called);
}

TEST(RingBatch, CountsBatches) {
  Ring<int> r(8);
  for (int i = 0; i < 6; ++i) r.try_push(i);
  r.consume_batch([](std::span<int>) {}, 3);
  r.consume_batch([](std::span<int>) {}, 3);
  EXPECT_EQ(r.consumer_stats().batches, 2u);
  EXPECT_EQ(r.consumer_stats().pops, 6u);
}

// ---------- Ring: batched publish --------------------------------------------

TEST(RingPushBatch, PublishesAPrefixInFifoOrder) {
  Ring<int> r(8);
  std::vector<int> batch{0, 1, 2, 3, 4};
  EXPECT_EQ(r.try_push_batch(std::span<int>(batch)), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(r.try_pop(out));
}

TEST(RingPushBatch, EmptySpanIsANoOp) {
  Ring<int> r(4);
  EXPECT_EQ(r.try_push_batch(std::span<int>{}), 0u);
  EXPECT_EQ(r.producer_stats().push_batches, 0u);
  EXPECT_EQ(r.producer_stats().failed_pushes, 0u);
}

TEST(RingPushBatch, PartialAcceptanceNearFull) {
  Ring<int> r(4);
  ASSERT_TRUE(r.try_push(100));
  ASSERT_TRUE(r.try_push(101));
  std::vector<int> batch{0, 1, 2, 3};
  // Only 2 slots free: a prefix of 2 is accepted, the rest stays valid.
  EXPECT_EQ(r.try_push_batch(std::span<int>(batch)), 2u);
  EXPECT_EQ(batch[2], 2);
  EXPECT_EQ(batch[3], 3);
  int out;
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_EQ(out, 100);
  ASSERT_TRUE(r.try_pop(out));
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_EQ(out, 1);
}

TEST(RingPushBatch, FullRingReturnsZeroAndCountsOneFailedPush) {
  Ring<int> r(2);
  ASSERT_TRUE(r.try_push(1));
  ASSERT_TRUE(r.try_push(2));
  std::vector<int> batch{3, 4};
  EXPECT_EQ(r.try_push_batch(std::span<int>(batch)), 0u);
  EXPECT_EQ(r.producer_stats().failed_pushes, 1u);
  EXPECT_EQ(r.producer_stats().push_batches, 0u);
  EXPECT_EQ(batch[0], 3);  // nothing was moved from
}

TEST(RingPushBatch, WrapAroundSplitsIntoTwoSpansCorrectly) {
  Ring<int> r(4);
  int out;
  // Advance the indices so the next batch wraps the slot array.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(r.try_push(i));
    ASSERT_TRUE(r.try_pop(out));
  }
  std::vector<int> batch{10, 11, 12, 13};
  EXPECT_EQ(r.try_push_batch(std::span<int>(batch)), 4u);
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(RingPushBatch, OneControlUpdatePerBlock) {
  // The whole point of the batch: control-variable traffic per BLOCK, not
  // per element. 16 elements through batches of 4 on a roomy ring must
  // count 4 push_batches and 0 head refreshes (the cached head never goes
  // stale with a same-thread consumer draining between blocks).
  Ring<int> r(16);
  int out;
  std::vector<int> block{0, 1, 2, 3};
  for (int b = 0; b < 4; ++b) {
    ASSERT_EQ(r.try_push_batch(std::span<int>(block)), 4u);
    while (r.try_pop(out)) {
    }
  }
  EXPECT_EQ(r.producer_stats().pushes, 16u);
  EXPECT_EQ(r.producer_stats().push_batches, 4u);
  EXPECT_EQ(r.producer_stats().head_refreshes, 0u);
}

TEST(RingPushBatch, MoveOnlyElements) {
  Ring<std::unique_ptr<int>> r(4);
  std::vector<std::unique_ptr<int>> batch;
  for (int i = 0; i < 3; ++i) batch.push_back(std::make_unique<int>(i));
  EXPECT_EQ(r.try_push_batch(std::span<std::unique_ptr<int>>(batch)), 3u);
  std::unique_ptr<int> out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(r.try_pop(out));
    ASSERT_TRUE(out);
    EXPECT_EQ(*out, i);
  }
}

TEST(RingPushBatch, CloseAfterFinalBatchDeliversEverything) {
  // The mapper's shutdown path: flush the leftover partial block, then
  // close. Nothing buffered may be lost and the consumer must observe
  // closed + empty only after draining the final batch.
  Ring<int> r(8);
  std::vector<int> batch{1, 2, 3};
  ASSERT_EQ(r.try_push_batch(std::span<int>(batch)), 3u);
  r.close();
  EXPECT_TRUE(r.closed());
  int out;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(r.try_pop(out));
  EXPECT_TRUE(r.closed() && r.empty());
}

TEST(RingPushBatch, ConcurrentBatchedProducerTransfersEverythingOnce) {
  Ring<std::uint64_t> r(64);
  const std::uint64_t total = 50000;
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::uint64_t last = 0;
  bool ordered = true;

  std::thread consumer([&] {
    SleepBackoff idle(std::chrono::microseconds(20));
    for (;;) {
      const std::size_t got = r.consume_batch(
          [&](std::span<std::uint64_t> block) {
            for (std::uint64_t v : block) {
              if (count > 0 && v != last + 1) ordered = false;
              last = v;
              sum += v;
              ++count;
            }
          },
          32);
      if (got == 0) {
        if (r.closed() && r.empty()) break;
        idle.wait();
      }
    }
  });

  SleepBackoff backoff(std::chrono::microseconds(20));
  std::vector<std::uint64_t> staging;
  std::uint64_t next = 1;
  while (next <= total) {
    staging.clear();
    for (int i = 0; i < 17 && next <= total; ++i) staging.push_back(next++);
    std::span<std::uint64_t> rest(staging);
    while (!rest.empty()) {
      const std::size_t n = r.try_push_batch(rest);
      if (n == 0) {
        backoff.wait();
        continue;
      }
      rest = rest.subspan(n);
    }
  }
  r.close();
  consumer.join();

  EXPECT_EQ(count, total);
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sum, total * (total + 1) / 2);
  EXPECT_EQ(r.producer_stats().pushes, total);
  EXPECT_GT(r.producer_stats().push_batches, 0u);
}

// Property sweep: every (capacity, batch) combination moves all elements
// exactly once, in order.
class RingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RingSweep, AllElementsArriveInOrder) {
  const auto [capacity, batch] = GetParam();
  Ring<std::uint64_t> r(capacity);
  const std::uint64_t total = 1000;
  std::uint64_t next_push = 0;
  std::vector<std::uint64_t> got;
  // Interleave pushes and batched pops single-threadedly.
  while (got.size() < total) {
    while (next_push < total && r.try_push(next_push)) ++next_push;
    r.consume_batch(
        [&](std::span<std::uint64_t> block) {
          got.insert(got.end(), block.begin(), block.end());
        },
        batch);
  }
  ASSERT_EQ(got.size(), total);
  for (std::uint64_t i = 0; i < total; ++i) EXPECT_EQ(got[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    CapacityBatchGrid, RingSweep,
    ::testing::Combine(::testing::Values(2, 4, 16, 64, 1024),
                       ::testing::Values(1, 3, 16, 100)));

// ---------- Ring: concurrent stress ------------------------------------------

class RingStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingStress, ProducerConsumerTransfersEverythingOnce) {
  const std::size_t capacity = GetParam();
  Ring<std::uint64_t> r(capacity);
  const std::uint64_t total = 20000;
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::uint64_t last = 0;
  bool ordered = true;

  std::thread consumer([&] {
    SleepBackoff idle(std::chrono::microseconds(20));
    for (;;) {
      const std::size_t got = r.consume_batch(
          [&](std::span<std::uint64_t> block) {
            for (std::uint64_t v : block) {
              if (count > 0 && v != last + 1) ordered = false;
              last = v;
              sum += v;
              ++count;
            }
          },
          64);
      if (got == 0) {
        if (r.closed() && r.empty()) break;
        idle.wait();
      }
    }
  });

  SleepBackoff backoff(std::chrono::microseconds(20));
  for (std::uint64_t i = 1; i <= total; ++i) r.push(i, backoff);
  r.close();
  consumer.join();

  EXPECT_EQ(count, total);
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sum, total * (total + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingStress,
                         ::testing::Values(2, 8, 128, 5000));

TEST(RingStress, BusyWaitBackoffAlsoCompletes) {
  Ring<int> r(4);
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    int out;
    BusyWaitBackoff idle;
    for (;;) {
      if (r.try_pop(out)) {
        sum += out;
      } else if (r.closed() && r.empty()) {
        break;
      } else {
        idle.wait();
      }
    }
  });
  BusyWaitBackoff backoff;
  for (int i = 1; i <= 5000; ++i) r.push(i, backoff);
  r.close();
  consumer.join();
  EXPECT_EQ(sum.load(), 5000LL * 5001 / 2);
}

// ---------- RingSet -----------------------------------------------------------

TEST(RingSet, DrainsMultipleQueuesToCompletion) {
  constexpr std::size_t kQueues = 3;
  std::vector<std::unique_ptr<Ring<std::uint64_t>>> rings;
  for (std::size_t q = 0; q < kQueues; ++q) {
    rings.push_back(std::make_unique<Ring<std::uint64_t>>(64));
  }
  std::vector<Ring<std::uint64_t>*> ptrs;
  for (auto& r : rings) ptrs.push_back(r.get());
  RingSet<std::uint64_t> set(ptrs);
  EXPECT_EQ(set.queue_count(), kQueues);

  const std::uint64_t per_queue = 5000;
  std::uint64_t sum = 0;
  std::thread combiner([&] {
    SleepBackoff idle(std::chrono::microseconds(20));
    set.drain(
        [&](std::span<std::uint64_t> block) {
          for (std::uint64_t v : block) sum += v;
        },
        32, idle);
  });

  std::vector<std::thread> producers;
  for (std::size_t q = 0; q < kQueues; ++q) {
    producers.emplace_back([&, q] {
      SleepBackoff backoff(std::chrono::microseconds(20));
      for (std::uint64_t i = 1; i <= per_queue; ++i) {
        rings[q]->push(i, backoff);
      }
      rings[q]->close();
    });
  }
  for (auto& t : producers) t.join();
  combiner.join();

  EXPECT_EQ(sum, kQueues * per_queue * (per_queue + 1) / 2);
}

TEST(RingSet, FinishedOnlyWhenAllClosedAndEmpty) {
  Ring<int> a(4), b(4);
  RingSet<int> set({&a, &b});
  EXPECT_FALSE(set.finished());
  a.close();
  EXPECT_FALSE(set.finished());  // b still open
  b.try_push(1);
  b.close();
  EXPECT_FALSE(set.finished());  // b closed but not empty
  int out;
  b.try_pop(out);
  EXPECT_TRUE(set.finished());
}

// ---------- DynamicQueue (ablation baseline) ----------------------------------

TEST(DynamicQueue, BlockingPopReturnsNulloptAfterClose) {
  DynamicQueue<int> q;
  q.push(1);
  q.close();
  auto a = q.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(DynamicQueue, SoftCapacityBoundsTryPush) {
  DynamicQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.try_pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(DynamicQueue, ConcurrentTransfer) {
  DynamicQueue<std::uint64_t> q(128);
  const std::uint64_t total = 20000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    for (;;) {
      auto v = q.pop();
      if (!v) break;
      sum += *v;
    }
  });
  for (std::uint64_t i = 1; i <= total; ++i) q.push(i);
  q.close();
  consumer.join();
  EXPECT_EQ(sum, total * (total + 1) / 2);
}

// ---------- backoff -----------------------------------------------------------

TEST(Backoff, SleepBackoffSpinsBeforeSleeping) {
  SleepBackoff b(std::chrono::microseconds(1), /*spin_limit=*/4);
  for (int i = 0; i < 4; ++i) b.wait();
  EXPECT_EQ(b.sleep_count(), 0u);
  b.wait();
  EXPECT_EQ(b.sleep_count(), 1u);
  b.reset();
  b.wait();  // spinning again after reset
  EXPECT_EQ(b.sleep_count(), 1u);
}

TEST(Backoff, ExponentialDoublesUpToCapAndResets) {
  ExponentialSleepBackoff b(std::chrono::microseconds(2),
                            std::chrono::microseconds(16),
                            /*spin_limit=*/0);
  EXPECT_EQ(b.current_period(), std::chrono::microseconds(2));
  b.wait();  // sleeps 2us, ladder moves to 4
  EXPECT_EQ(b.current_period(), std::chrono::microseconds(4));
  b.wait();
  b.wait();
  EXPECT_EQ(b.current_period(), std::chrono::microseconds(16));
  b.wait();  // capped: stays at 16
  EXPECT_EQ(b.current_period(), std::chrono::microseconds(16));
  EXPECT_EQ(b.sleep_count(), 4u);
  b.reset();
  EXPECT_EQ(b.current_period(), std::chrono::microseconds(2));
  EXPECT_EQ(b.sleep_count(), 4u);  // counter is cumulative
}

TEST(Backoff, ExponentialSpinsBeforeFirstSleep) {
  ExponentialSleepBackoff b(std::chrono::microseconds(1),
                            std::chrono::microseconds(8),
                            /*spin_limit=*/3);
  for (int i = 0; i < 3; ++i) b.wait();
  EXPECT_EQ(b.sleep_count(), 0u);
  b.wait();
  EXPECT_EQ(b.sleep_count(), 1u);
}

TEST(Backoff, AllPoliciesStopWhenBoundFlagRaised) {
  std::atomic<bool> stop{false};
  BusyWaitBackoff busy;
  SleepBackoff sleep(std::chrono::microseconds(1), 0);
  ExponentialSleepBackoff expo(std::chrono::microseconds(1),
                               std::chrono::microseconds(8), 0);
  busy.bind(&stop);
  sleep.bind(&stop);
  expo.bind(&stop);
  EXPECT_TRUE(busy.wait());
  EXPECT_TRUE(sleep.wait());
  EXPECT_TRUE(expo.wait());
  stop.store(true);
  EXPECT_FALSE(busy.wait());
  EXPECT_FALSE(sleep.wait());
  EXPECT_FALSE(expo.wait());
  // A stopped wait performs no sleep.
  EXPECT_EQ(sleep.sleep_count(), 1u);
  EXPECT_EQ(expo.sleep_count(), 1u);
}

TEST(Backoff, UnboundPoliciesNeverStop) {
  BusyWaitBackoff busy;
  SleepBackoff sleep(std::chrono::microseconds(1), 4);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(busy.wait());
    EXPECT_TRUE(sleep.wait());
  }
}

}  // namespace
}  // namespace ramr::spsc
