// Tests for the MRPhi-style runtime and its atomic global container (the
// paper's Sec. II third architecture).
#include <gtest/gtest.h>

#include <thread>

#include "apps/global_apps.hpp"
#include "apps/suite.hpp"
#include "containers/atomic_array_container.hpp"
#include "mrphi/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "topology/topology.hpp"

namespace ramr::mrphi {
namespace {

using apps::HistogramGlobalApp;
using apps::LinearRegressionGlobalApp;
using containers::AtomicArrayContainer;
using containers::AtomicOp;

// ---------- the atomic container ------------------------------------------------

TEST(AtomicContainer, SingleThreadedSemantics) {
  AtomicArrayContainer<std::uint64_t> c(8);
  c.emit(3, 2);
  c.emit(3, 5);
  c.emit(0, 1);
  EXPECT_EQ(c.at(3), 7u);
  EXPECT_EQ(c.at(0), 1u);
  EXPECT_EQ(c.size(), 2u);
  std::vector<std::size_t> keys;
  c.for_each([&](std::size_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::size_t>{0, 3}));
  c.clear();
  EXPECT_EQ(c.size(), 0u);
}

TEST(AtomicContainer, ConcurrentIncrementsAreExact) {
  AtomicArrayContainer<std::uint64_t> c(4);
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.emit(static_cast<std::size_t>(t % 2), 1);  // two hot slots
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.at(0) + c.at(1), 4 * kPerThread);
  EXPECT_EQ(c.at(0), 2 * kPerThread);
}

TEST(AtomicContainer, MinMaxOps) {
  AtomicArrayContainer<std::int64_t, AtomicOp::kMin> lo(2);
  AtomicArrayContainer<std::int64_t, AtomicOp::kMax> hi(2);
  for (std::int64_t v : {5, -3, 9, 0}) {
    lo.emit(0, v);
    hi.emit(0, v);
  }
  EXPECT_EQ(lo.at(0), -3);
  EXPECT_EQ(hi.at(0), 9);
}

#ifndef NDEBUG
TEST(AtomicContainer, DebugBoundsCheck) {
  AtomicArrayContainer<std::uint64_t> c(2);
  EXPECT_THROW(c.emit(2, 1), CapacityError);
}
#endif

// ---------- the runtime ------------------------------------------------------------

Options small_options(std::size_t workers) {
  Options o;
  o.num_workers = workers;
  o.pin_policy = PinPolicy::kOsDefault;
  return o;
}

TEST(MrphiRuntime, HistogramMatchesPhoenixBaseline) {
  apps::PixelInput input{apps::make_pixels(120000, 3), 4096};
  const HistogramGlobalApp app;
  Runtime<HistogramGlobalApp> rt(topo::host(), small_options(4));
  const auto result = rt.run(app, input);

  const auto ref = apps::histogram_reference(input);
  ASSERT_EQ(result.pairs.size(), ref.size());
  for (const auto& [k, v] : result.pairs) EXPECT_EQ(v, ref.at(k));
}

TEST(MrphiRuntime, LinearRegressionMatchesReference) {
  apps::LrInput input{apps::make_lr_points(30000, 4), 1024};
  const LinearRegressionGlobalApp app;
  Runtime<LinearRegressionGlobalApp> rt(topo::host(), small_options(3));
  const auto result = rt.run(app, input);
  const auto ref = apps::lr_reference(input);
  ASSERT_EQ(result.pairs.size(), ref.size());
  for (const auto& [k, v] : result.pairs) {
    EXPECT_EQ(v, ref.at(k)) << "moment " << k;
  }
}

TEST(MrphiRuntime, NoReducePhaseTimeIsAccounted) {
  apps::PixelInput input{apps::make_pixels(30000, 5), 2048};
  Runtime<HistogramGlobalApp> rt(topo::host(), small_options(2));
  const auto result = rt.run(HistogramGlobalApp{}, input);
  // MRPhi has no reduce phase at all — the container is already global.
  EXPECT_DOUBLE_EQ(result.timers.seconds(Phase::kReduce), 0.0);
  EXPECT_GT(result.timers.seconds(Phase::kMapCombine), 0.0);
}

TEST(MrphiRuntime, ResultsStableAcrossWorkerCounts) {
  apps::PixelInput input{apps::make_pixels(60000, 6), 1024};
  const HistogramGlobalApp app;
  std::vector<std::pair<std::size_t, std::uint64_t>> first;
  for (std::size_t workers : {1u, 2u, 6u}) {
    Runtime<HistogramGlobalApp> rt(topo::host(), small_options(workers));
    const auto result = rt.run(app, input);
    if (first.empty()) {
      first = result.pairs;
    } else {
      EXPECT_EQ(result.pairs, first) << workers << " workers";
    }
  }
}

TEST(MrphiRuntime, RejectsZeroWorkers) {
  Options o;
  o.num_workers = 1;
  Runtime<HistogramGlobalApp> ok(topo::host(), o);
  EXPECT_EQ(ok.num_workers(), 1u);
}

}  // namespace
}  // namespace ramr::mrphi
