// Tests for topology presets, the thridtocpu() proximity remap (Fig. 3),
// distances, and the three pinning policies (Sec. III-B / IV-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"

namespace ramr::topo {
namespace {

// ---------- presets ---------------------------------------------------------

TEST(Topology, HaswellPresetMatchesPaper) {
  const Topology t = haswell_server();
  EXPECT_EQ(t.num_logical(), 56u);  // "the system can run a total of 56 threads"
  EXPECT_EQ(t.num_sockets(), 2u);
  EXPECT_EQ(t.num_cores(), 28u);  // 14 cores-per-socket x 2
  EXPECT_EQ(t.smt_per_core(), 2u);
  EXPECT_FALSE(t.uniform_l2());
}

TEST(Topology, XeonPhiPresetMatchesPaper) {
  const Topology t = xeon_phi();
  EXPECT_EQ(t.num_logical(), 228u);  // "Xeon Phi can run 228 hardware threads"
  EXPECT_EQ(t.num_sockets(), 1u);
  EXPECT_EQ(t.num_cores(), 57u);
  EXPECT_EQ(t.smt_per_core(), 4u);
  EXPECT_TRUE(t.uniform_l2());
}

TEST(Topology, Fig3ExampleMatchesPaper) {
  const Topology t = fig3_example();
  EXPECT_EQ(t.num_logical(), 16u);  // 2 nodes x 4 cores x 2 HT
  EXPECT_EQ(t.num_sockets(), 2u);
  EXPECT_EQ(t.smt_per_core(), 2u);
}

TEST(Topology, HostDetectionProducesValidTopology) {
  const Topology t = host();
  EXPECT_GE(t.num_logical(), 1u);
  EXPECT_GE(t.num_sockets(), 1u);
  // Every os_id resolves.
  for (const LogicalCpu& c : t.cpus()) {
    EXPECT_EQ(t.by_os_id(c.os_id).os_id, c.os_id);
  }
}

TEST(Topology, MakeServerBuildsArbitraryShapes) {
  const Topology t = make_server("what-if", 4, 8, 2);
  EXPECT_EQ(t.num_logical(), 64u);
  EXPECT_EQ(t.num_sockets(), 4u);
  EXPECT_EQ(t.smt_per_core(), 2u);
  // Interleaved enumeration: SMT siblings are num_sockets*cores apart.
  EXPECT_EQ(t.distance(0, 32), Distance::kSameCore);
  EXPECT_EQ(t.distance(0, 8), Distance::kCrossSocket);
}

TEST(Topology, RejectsEmptyAndDuplicateIds) {
  EXPECT_THROW(Topology("empty", {}), Error);
  std::vector<LogicalCpu> dup{{.os_id = 0}, {.os_id = 0}};
  EXPECT_THROW(Topology("dup", dup), Error);
}

TEST(Topology, ByOsIdThrowsForUnknown) {
  const Topology t = fig3_example();
  EXPECT_THROW(t.by_os_id(1000), Error);
}

// ---------- distance --------------------------------------------------------

TEST(Distance, HaswellTiers) {
  const Topology t = haswell_server();
  // Interleaved enumeration: cpu 0 and cpu 28 are SMT siblings of core 0.
  EXPECT_EQ(t.distance(0, 0), Distance::kSameCpu);
  EXPECT_EQ(t.distance(0, 28), Distance::kSameCore);
  EXPECT_EQ(t.distance(0, 1), Distance::kSameSocket);
  EXPECT_EQ(t.distance(0, 14), Distance::kCrossSocket);
}

TEST(Distance, IsSymmetric) {
  const Topology t = haswell_server();
  for (std::size_t a : {0u, 5u, 28u, 41u, 55u}) {
    for (std::size_t b : {0u, 14u, 29u, 42u}) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    }
  }
}

TEST(Distance, PhiSmtSiblingsShareCore) {
  const Topology t = xeon_phi();
  EXPECT_EQ(t.distance(0, 1), Distance::kSameCore);
  EXPECT_EQ(t.distance(0, 3), Distance::kSameCore);
  EXPECT_EQ(t.distance(0, 4), Distance::kSameSocket);  // next core on ring
  EXPECT_EQ(t.distance(0, 224), Distance::kSameSocket);
}

// ---------- proximity order (thridtocpu) --------------------------------------

TEST(ProximityOrder, Fig3RemapInterleavesSmtSiblings) {
  // Fig. 3: thridtocpu() re-maps CPU ids so consecutive positions share a
  // physical core. With the interleaved enumeration (siblings 8 apart), the
  // expected remap starts 0,8,1,9,2,10,...
  const Topology t = fig3_example();
  const auto order = t.proximity_order();
  const std::vector<std::size_t> expected{0, 8,  1, 9,  2, 10, 3, 11,
                                          4, 12, 5, 13, 6, 14, 7, 15};
  EXPECT_EQ(order, expected);
}

TEST(ProximityOrder, IsAPermutation) {
  for (const Topology& t :
       {haswell_server(), xeon_phi(), fig3_example(), host()}) {
    auto order = t.proximity_order();
    std::set<std::size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), t.num_logical()) << t.name();
  }
}

TEST(ProximityOrder, SocketChangesExactlyOncePerBoundary) {
  // Walking the proximity order, socket changes happen exactly
  // num_sockets-1 times (each socket is exhausted before moving on).
  const Topology t = haswell_server();
  const auto order = t.proximity_order();
  std::size_t socket_changes = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (t.by_os_id(order[i]).socket != t.by_os_id(order[i - 1]).socket) {
      ++socket_changes;
    }
  }
  EXPECT_EQ(socket_changes, t.num_sockets() - 1);
}

TEST(ProximityOrder, ConsecutivePairsShareCoreWithSmt) {
  // With 2-way SMT, positions (2i, 2i+1) must be SMT siblings — that is what
  // lets a ratio-1 mapper/combiner pair communicate through shared L1/L2.
  const Topology t = haswell_server();
  const auto order = t.proximity_order();
  for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
    EXPECT_EQ(t.distance(order[i], order[i + 1]), Distance::kSameCore)
        << "positions " << i << "," << i + 1;
  }
}

// ---------- queue assignment ---------------------------------------------------

TEST(Assignment, PartitionsMappersEvenly) {
  const auto groups = assign_mappers_to_combiners(10, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size(), 4u);  // remainder goes to the first groups
  EXPECT_EQ(groups[1].size(), 3u);
  EXPECT_EQ(groups[2].size(), 3u);
  std::set<std::size_t> all;
  for (const auto& g : groups) all.insert(g.begin(), g.end());
  EXPECT_EQ(all.size(), 10u);
}

TEST(Assignment, RejectsDegenerateCounts) {
  EXPECT_THROW(assign_mappers_to_combiners(0, 1), ConfigError);
  EXPECT_THROW(assign_mappers_to_combiners(3, 0), ConfigError);
  EXPECT_THROW(assign_mappers_to_combiners(2, 3), ConfigError);
}

// ---------- pinning plans -------------------------------------------------------

TEST(PinningPlan, OsDefaultLeavesCpusEmpty) {
  const Topology t = haswell_server();
  const auto plan = make_plan(t, PinPolicy::kOsDefault, 100, 50);
  EXPECT_TRUE(plan.mapper_cpu.empty());
  EXPECT_TRUE(plan.combiner_cpu.empty());
  EXPECT_EQ(plan.num_mappers(), 100u);  // assignment exists regardless
}

TEST(PinningPlan, PinnedPoliciesRejectOversubscription) {
  const Topology t = fig3_example();  // 16 logical CPUs
  EXPECT_THROW(make_plan(t, PinPolicy::kRamrPaired, 12, 8), ConfigError);
  EXPECT_THROW(make_plan(t, PinPolicy::kRoundRobin, 16, 1), ConfigError);
  EXPECT_NO_THROW(make_plan(t, PinPolicy::kOsDefault, 16, 8));
}

TEST(PinningPlan, CpusAreDistinctAcrossAllThreads) {
  const Topology t = haswell_server();
  for (PinPolicy p : {PinPolicy::kRamrPaired, PinPolicy::kRoundRobin}) {
    const auto plan = make_plan(t, p, 28, 14);
    std::set<std::size_t> used(plan.mapper_cpu.begin(), plan.mapper_cpu.end());
    used.insert(plan.combiner_cpu.begin(), plan.combiner_cpu.end());
    EXPECT_EQ(used.size(), 42u) << to_string(p);
  }
}

TEST(PinningPlan, RatioOnePairsShareAPhysicalCore) {
  // Fig. 3's configuration: ratio 1 on the 2x4x2 machine -> each
  // mapper/combiner pair must land on SMT siblings (shared L1/L2).
  const Topology t = fig3_example();
  const auto plan = make_plan(t, PinPolicy::kRamrPaired, 8, 8);
  for (std::size_t j = 0; j < 8; ++j) {
    ASSERT_EQ(plan.mappers_of_combiner[j].size(), 1u);
    const std::size_t m = plan.mappers_of_combiner[j][0];
    EXPECT_EQ(t.distance(plan.mapper_cpu[m], plan.combiner_cpu[j]),
              Distance::kSameCore)
        << "pair " << j;
  }
}

TEST(PinningPlan, RamrPolicyKeepsGroupsWithinASocket) {
  const Topology t = haswell_server();
  const auto plan = make_plan(t, PinPolicy::kRamrPaired, 24, 8);  // ratio 3
  for (std::size_t j = 0; j < 8; ++j) {
    const std::size_t combiner_socket =
        t.by_os_id(plan.combiner_cpu[j]).socket;
    for (std::size_t m : plan.mappers_of_combiner[j]) {
      EXPECT_EQ(t.by_os_id(plan.mapper_cpu[m]).socket, combiner_socket)
          << "combiner " << j << " mapper " << m;
    }
  }
}

TEST(PinningPlan, RamrBeatsRoundRobinOnMeanDistance) {
  // The quantity the policy optimises: mean mapper<->combiner distance.
  const Topology t = haswell_server();
  const auto ramr = make_plan(t, PinPolicy::kRamrPaired, 24, 12);
  const auto rr = make_plan(t, PinPolicy::kRoundRobin, 24, 12);
  EXPECT_LT(ramr.mean_pair_distance(t), rr.mean_pair_distance(t));
}

TEST(PinningPlan, PhiNeverCrossesSocketsButHaswellRrDoes) {
  // On Xeon Phi (single package, ring-shared L2) even the worst placement
  // stays within the kSameSocket tier, while Haswell's RR plan strands
  // pairs across the QPI link — the structural reason pinning matters on
  // Haswell (2.28x) but not on Phi (1-3%). The cycle-cost consequence is
  // asserted in test_sim's Fig. 5 checks.
  const Topology hwl = haswell_server();
  const Topology phi = xeon_phi();
  const auto worst_pair = [](const Topology& t) {
    const std::size_t m = t.num_logical() / 2;
    const std::size_t c = t.num_logical() / 4;
    const auto plan = make_plan(t, PinPolicy::kRoundRobin, m, c);
    Distance worst = Distance::kSameCpu;
    for (std::size_t j = 0; j < plan.mappers_of_combiner.size(); ++j) {
      for (std::size_t mi : plan.mappers_of_combiner[j]) {
        worst = std::max(
            worst, t.distance(plan.mapper_cpu[mi], plan.combiner_cpu[j]));
      }
    }
    return worst;
  };
  EXPECT_EQ(worst_pair(phi), Distance::kSameSocket);
  EXPECT_EQ(worst_pair(hwl), Distance::kCrossSocket);
}

TEST(PinningPlan, CombinerOfMapperIsInverse) {
  const auto plan = make_plan(fig3_example(), PinPolicy::kOsDefault, 9, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t m : plan.mappers_of_combiner[j]) {
      EXPECT_EQ(plan.combiner_of_mapper(m), j);
    }
  }
  EXPECT_THROW(plan.combiner_of_mapper(100), Error);
}

}  // namespace
}  // namespace ramr::topo
