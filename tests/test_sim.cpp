// Tests for the platform simulator: machine presets, model invariants, and
// figure-shape assertions (who wins, where crossovers fall) against the
// paper's evaluation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/machine.hpp"
#include "sim/model.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/workload.hpp"

namespace ramr::sim {
namespace {

using apps::AppId;
using apps::ContainerFlavor;
using apps::PlatformId;
using apps::SizeClass;

SimWorkload hwl_workload(AppId app,
                         ContainerFlavor f = ContainerFlavor::kDefault) {
  return suite_workload(app, f, PlatformId::kHaswell, SizeClass::kLarge);
}
SimWorkload phi_workload(AppId app,
                         ContainerFlavor f = ContainerFlavor::kDefault) {
  return suite_workload(app, f, PlatformId::kXeonPhi, SizeClass::kLarge);
}

double speedup(const SimMachine& m, const SimWorkload& w,
               std::size_t batch) {
  RamrConfig base;
  base.batch = batch;
  return ramr_speedup(m, w, tuned_config(m, w, base));
}

// ---------- machines ------------------------------------------------------------

TEST(Machine, PresetsMatchPaperSystems) {
  const SimMachine h = haswell();
  EXPECT_EQ(h.topology.num_logical(), 56u);
  EXPECT_TRUE(h.out_of_order);
  EXPECT_GT(h.l3_bytes, 0.0);
  const SimMachine p = xeon_phi();
  EXPECT_EQ(p.topology.num_logical(), 228u);
  EXPECT_FALSE(p.out_of_order);
  EXPECT_DOUBLE_EQ(p.l3_bytes, 0.0);
  EXPECT_TRUE(p.topology.uniform_l2());
  // Ring: inter-core transfers cost the same regardless of "distance".
  EXPECT_DOUBLE_EQ(p.comm_line_same_socket, p.comm_line_cross_socket);
}

TEST(Machine, WhatIfPresetsAreConsistent) {
  const SimMachine scaled = haswell_scaled(2, 28, 2);
  EXPECT_EQ(scaled.topology.num_logical(), 112u);
  EXPECT_GT(scaled.l3_bytes, haswell().l3_bytes);  // scales with cores
  EXPECT_TRUE(scaled.out_of_order);

  const SimMachine knl = knights_landing();
  EXPECT_EQ(knl.topology.num_logical(), 256u);
  EXPECT_TRUE(knl.out_of_order);  // the generational difference vs KNC
  EXPECT_TRUE(knl.topology.uniform_l2());
  EXPECT_GT(knl.socket_mem_bw_gbps, xeon_phi().socket_mem_bw_gbps);
}

// ---------- workloads --------------------------------------------------------------

TEST(Workload, InputBytesMatchTable1) {
  // WC large on Haswell: 1.6GB of text.
  const auto wc = hwl_workload(AppId::kWordCount);
  EXPECT_NEAR(wc.input_bytes, 1.6 * 1024 * 1024 * 1024, 3e7);
  // KM large: 2M points x 12 bytes.
  const auto km = hwl_workload(AppId::kKMeans);
  EXPECT_DOUBLE_EQ(km.input_bytes, 2e6 * 12);
  // MM large: two 4000x4000 double matrices.
  const auto mm = hwl_workload(AppId::kMatrixMultiply);
  EXPECT_DOUBLE_EQ(mm.input_bytes, 2.0 * 4000 * 4000 * 8);
}

TEST(Workload, SynthProfileTracksKnobs) {
  synth::SynthParams p;
  p.map_kind = synth::WorkKind::kCpu;
  p.map_intensity = 100;
  p.combine_kind = synth::WorkKind::kMemory;
  p.combine_intensity = 10;
  const SimWorkload w = synth_workload(p);
  EXPECT_GT(w.profile.map.instr_per_byte, 100.0);
  EXPECT_GT(w.profile.map.regularity, 0.9);
  EXPECT_LT(w.profile.combine.regularity, 0.1);
  synth::SynthParams heavier = p;
  heavier.combine_intensity = 100;
  EXPECT_GT(synth_workload(heavier).profile.combine.bytes_per_byte,
            w.profile.combine.bytes_per_byte);
}

// ---------- model invariants ---------------------------------------------------------

TEST(Model, RejectsBadConfigs) {
  const SimMachine m = haswell();
  const SimWorkload w = hwl_workload(AppId::kKMeans);
  RamrConfig bad;
  bad.ratio = 0;
  EXPECT_THROW(simulate_ramr(m, w, bad), ConfigError);
  bad.ratio = 2;
  bad.batch = 0;
  EXPECT_THROW(simulate_ramr(m, w, bad), ConfigError);
  bad.batch = 10000;
  bad.queue_capacity = 5000;
  EXPECT_THROW(simulate_ramr(m, w, bad), ConfigError);
}

TEST(Model, TimesArePositiveAndFinite) {
  for (const SimMachine& m : {haswell(), xeon_phi()}) {
    for (AppId app : apps::kAllApps) {
      const SimWorkload w = suite_workload(
          app, ContainerFlavor::kDefault,
          m.out_of_order ? PlatformId::kHaswell : PlatformId::kXeonPhi,
          SizeClass::kSmall);
      const auto base = simulate_phoenix(m, w);
      EXPECT_GT(base.phases.total(), 0.0);
      EXPECT_TRUE(std::isfinite(base.phases.total()));
      const auto ours = simulate_ramr(m, w, RamrConfig{});
      EXPECT_GT(ours.phases.total(), 0.0);
      EXPECT_TRUE(std::isfinite(ours.phases.total()));
    }
  }
}

TEST(Model, MoreInputTakesLonger) {
  const SimMachine m = haswell();
  const auto small = suite_workload(AppId::kKMeans, ContainerFlavor::kDefault,
                                    PlatformId::kHaswell, SizeClass::kSmall);
  const auto large = hwl_workload(AppId::kKMeans);
  EXPECT_LT(simulate_phoenix(m, small).phases.total(),
            simulate_phoenix(m, large).phases.total());
  EXPECT_LT(simulate_ramr(m, small, RamrConfig{}).phases.total(),
            simulate_ramr(m, large, RamrConfig{}).phases.total());
}

TEST(Model, WorkerCountsFillTheMachine) {
  const SimMachine m = haswell();
  RamrConfig cfg;
  cfg.ratio = 3;
  const auto r = simulate_ramr(m, hwl_workload(AppId::kKMeans), cfg);
  EXPECT_EQ(r.num_mappers, 42u);   // 14 groups x 3
  EXPECT_EQ(r.num_combiners, 14u);
  EXPECT_LE(r.num_mappers + r.num_combiners, 56u);
}

// ---------- Fig. 1: run-time breakdown ------------------------------------------------

TEST(Fig1, MapCombineDominatesOnAverage) {
  // Paper: map-combine accounts for 82.4% of run time on average.
  const SimMachine m = haswell();
  double sum = 0.0;
  for (AppId app : apps::kAllApps) {
    sum += simulate_phoenix(m, hwl_workload(app))
               .phases.map_combine_fraction();
  }
  const double avg = sum / 6.0;
  EXPECT_GT(avg, 0.75);
  EXPECT_LT(avg, 0.99);
}

// ---------- Fig. 4: synthetic ratio crossover ------------------------------------------

TEST(Fig4, OptimalRatioFallsAsCombineIntensityGrows) {
  const SimMachine m = haswell();
  auto best_ratio = [&](std::uint64_t combine_intensity) {
    synth::SynthParams p;
    p.map_kind = synth::WorkKind::kCpu;
    p.map_intensity = 24;
    p.combine_kind = synth::WorkKind::kMemory;
    p.combine_intensity = combine_intensity;
    const SimWorkload w = synth_workload(p);
    std::size_t best = 0;
    double best_t = 1e300;
    for (std::size_t ratio : {1u,2u,3u}) {
      RamrConfig c;
      c.ratio = ratio;
      c.batch = 1000;
      const double t = simulate_ramr(m, w, c).phases.total();
      if (t < best_t) {
        best_t = t;
        best = ratio;
      }
    }
    return best;
  };
  const std::size_t light = best_ratio(1);
  const std::size_t heavy = best_ratio(32);
  EXPECT_EQ(light, 3u);  // one combiner keeps up with three mappers
  EXPECT_EQ(heavy, 1u);  // heavy combine: one combiner per mapper
}

TEST(Fig4, RamrBeatsPhoenixOnComplementarySynthetic) {
  const SimMachine m = haswell();
  synth::SynthParams p;
  p.map_kind = synth::WorkKind::kCpu;
  p.map_intensity = 24;
  p.combine_kind = synth::WorkKind::kMemory;
  p.combine_intensity = 8;
  const SimWorkload w = synth_workload(p);
  EXPECT_GT(speedup(m, w, 1000), 1.0);
}

// ---------- Fig. 5: pinning policies -----------------------------------------------------

TEST(Fig5, RamrPolicyBeatsBothBaselinesOnHaswell) {
  const SimMachine m = haswell();
  double sum_rr = 0.0;
  double sum_os = 0.0;
  for (AppId app : apps::kAllApps) {
    const SimWorkload w = hwl_workload(app);
    RamrConfig c = tuned_config(m, w, RamrConfig{.batch = 1000});
    c.pin = PinPolicy::kRamrPaired;
    const double t_ramr = simulate_ramr(m, w, c).phases.total();
    c.pin = PinPolicy::kRoundRobin;
    sum_rr += simulate_ramr(m, w, c).phases.total() / t_ramr;
    c.pin = PinPolicy::kOsDefault;
    sum_os += simulate_ramr(m, w, c).phases.total() / t_ramr;
  }
  const double avg_rr = sum_rr / 6.0;
  const double avg_os = sum_os / 6.0;
  // Paper: 2.28x vs RR, 2.04x vs the Linux scheduler.
  EXPECT_GT(avg_rr, 1.7);
  EXPECT_GT(avg_os, 1.5);
  EXPECT_GT(avg_rr, avg_os);  // Linux does better than naive RR
}

TEST(Fig5, LightAppsBenefitMostFromPinning) {
  // "in HG and LR RAMR is exceptionally faster than the baseline".
  const SimMachine m = haswell();
  auto gain = [&](AppId app) {
    const SimWorkload w = hwl_workload(app);
    RamrConfig c = tuned_config(m, w, RamrConfig{.batch = 1000});
    c.pin = PinPolicy::kRamrPaired;
    const double t = simulate_ramr(m, w, c).phases.total();
    c.pin = PinPolicy::kRoundRobin;
    return simulate_ramr(m, w, c).phases.total() / t;
  };
  EXPECT_GT(gain(AppId::kHistogram), gain(AppId::kMatrixMultiply));
  EXPECT_GT(gain(AppId::kLinearRegression), gain(AppId::kPca));
}

TEST(Fig5, PhiPinningGainsAreMarginal) {
  // Paper: 1-3% on Xeon Phi (ring-shared L2, barrel-scheduled cores).
  const SimMachine m = xeon_phi();
  for (AppId app : apps::kAllApps) {
    const SimWorkload w = phi_workload(app);
    RamrConfig c = tuned_config(m, w, RamrConfig{.batch = 200});
    c.pin = PinPolicy::kRamrPaired;
    const double t_ramr = simulate_ramr(m, w, c).phases.total();
    c.pin = PinPolicy::kRoundRobin;
    const double t_rr = simulate_ramr(m, w, c).phases.total();
    EXPECT_LT(t_rr / t_ramr, 1.10) << apps::app_name(app);
    EXPECT_GT(t_rr / t_ramr, 0.93) << apps::app_name(app);
  }
}

// ---------- Figs. 6/7: batched reads -------------------------------------------------------

TEST(Fig6, BatchingGainsAreLargerOnPhi) {
  // Paper: speedups up to 3.1x on Haswell and up to 11.4x on Xeon Phi.
  auto best_gain = [](const SimMachine& m, const SimWorkload& w) {
    RamrConfig c = tuned_config(m, w, RamrConfig{});
    c.batch = 1;
    const double t1 = simulate_ramr(m, w, c).phases.total();
    double best = t1;
    for (std::size_t b : {10u,100u,500u,1000u,2000u}) {
      c.batch = b;
      best = std::min(best, simulate_ramr(m, w, c).phases.total());
    }
    return t1 / best;
  };
  const double hwl = best_gain(haswell(), hwl_workload(AppId::kHistogram));
  const double phi = best_gain(xeon_phi(), phi_workload(AppId::kHistogram));
  EXPECT_GT(hwl, 2.0);
  EXPECT_LT(hwl, 6.0);
  EXPECT_GT(phi, 6.0);
  EXPECT_GT(phi, hwl);
}

TEST(Fig7, PhiPrefersSmallerBatches) {
  // Paper: Haswell apps profit up to ~1000 elements; Phi optima are 20-500
  // ("much smaller amount of cache capacity per thread").
  auto best_batch = [](const SimMachine& m, const SimWorkload& w) {
    RamrConfig c = tuned_config(m, w, RamrConfig{});
    double best_t = 1e300;
    std::size_t best_b = 1;
    for (std::size_t b : {1u,10u,20u,100u,500u,1000u,2000u,4000u}) {
      c.batch = b;
      const double t = simulate_ramr(m, w, c).phases.total();
      if (t < best_t) {
        best_t = t;
        best_b = b;
      }
    }
    return best_b;
  };
  const std::size_t hwl = best_batch(haswell(), hwl_workload(AppId::kHistogram));
  const std::size_t phi = best_batch(xeon_phi(), phi_workload(AppId::kHistogram));
  EXPECT_LE(phi, 500u);
  EXPECT_LE(phi, hwl);
}

TEST(Fig7, OverDeepBatchesHurt) {
  // The curve is U-shaped: batch == capacity is worse than the optimum.
  const SimMachine m = xeon_phi();
  const SimWorkload w = phi_workload(AppId::kHistogram);
  RamrConfig c = tuned_config(m, w, RamrConfig{});
  c.batch = 500;
  const double mid = simulate_ramr(m, w, c).phases.total();
  c.batch = c.queue_capacity;
  const double deep = simulate_ramr(m, w, c).phases.total();
  EXPECT_GT(deep, mid);
}

// ---------- Figs. 8/9: RAMR vs Phoenix++ ------------------------------------------------------

TEST(Fig8a, HaswellDefaultContainers) {
  const SimMachine m = haswell();
  // KM and MM profit (paper: 1.95x and 1.77x).
  EXPECT_GT(speedup(m, hwl_workload(AppId::kKMeans), 1000), 1.4);
  EXPECT_GT(speedup(m, hwl_workload(AppId::kMatrixMultiply), 1000), 1.2);
  // PCA performs similarly.
  EXPECT_NEAR(speedup(m, hwl_workload(AppId::kPca), 1000), 1.0, 0.15);
  // WC slightly slower; HG and LR outperformed by ~3x / ~3.8x.
  EXPECT_LT(speedup(m, hwl_workload(AppId::kWordCount), 1000), 1.0);
  EXPECT_LT(speedup(m, hwl_workload(AppId::kHistogram), 1000), 0.6);
  EXPECT_LT(speedup(m, hwl_workload(AppId::kLinearRegression), 1000), 0.6);
}

TEST(Fig8b, HaswellHashContainersShiftTowardsRamr) {
  const SimMachine m = haswell();
  int faster = 0;
  double sum = 0.0;
  double mm = 0.0;
  for (AppId app : apps::kAllApps) {
    const double s = speedup(m, hwl_workload(app, ContainerFlavor::kHash), 1000);
    sum += s;
    faster += s > 1.0;
    if (app == AppId::kMatrixMultiply) mm = s;
  }
  // Paper: 5/6 faster, 1.57x average, MM the maximum (2.46x).
  EXPECT_GE(faster, 3);
  EXPECT_GT(sum / 6.0, 1.2);
  EXPECT_GT(mm, 1.5);
}

TEST(Fig9a, PhiDefaultContainers) {
  const SimMachine m = xeon_phi();
  // Paper: WC 1.59x, KM 2.8x, MM 1.52x faster; PCA similar; HG/LR ~2.85x slower.
  EXPECT_GT(speedup(m, phi_workload(AppId::kWordCount), 200), 1.2);
  EXPECT_GT(speedup(m, phi_workload(AppId::kKMeans), 200), 1.8);
  EXPECT_GT(speedup(m, phi_workload(AppId::kMatrixMultiply), 200), 1.0);
  EXPECT_LT(speedup(m, phi_workload(AppId::kHistogram), 200), 0.6);
  EXPECT_LT(speedup(m, phi_workload(AppId::kLinearRegression), 200), 0.6);
}

TEST(Fig9b, PhiHashContainersAverageLargeGain) {
  const SimMachine m = xeon_phi();
  int faster = 0;
  double sum = 0.0;
  for (AppId app : apps::kAllApps) {
    const double s = speedup(m, phi_workload(app, ContainerFlavor::kHash), 200);
    sum += s;
    faster += s > 1.0;
  }
  // Paper: 5/6 faster, 2.6x average, 5.34x max.
  EXPECT_GE(faster, 4);
  EXPECT_GT(sum / 6.0, 1.7);
}

TEST(Fig89, KMeansGainsMoreOnPhiThanHaswell) {
  // Paper: KM 1.95x on Haswell vs 2.8x on Phi.
  EXPECT_GT(speedup(xeon_phi(), phi_workload(AppId::kKMeans), 200),
            speedup(haswell(), hwl_workload(AppId::kKMeans), 1000));
}

// ---------- ablations -------------------------------------------------------------------------

TEST(Ablation, SleepOnFullBeatsBusyWaitWhenCombinerLimited) {
  // HG hash on Haswell is combiner-limited: spinning mappers must hurt.
  const SimMachine m = haswell();
  const SimWorkload w = hwl_workload(AppId::kHistogram, ContainerFlavor::kHash);
  RamrConfig c;
  c.ratio = 2;
  c.batch = 1000;
  c.sleep_on_full = true;
  const double asleep = simulate_ramr(m, w, c).phases.total();
  c.sleep_on_full = false;
  const double spinning = simulate_ramr(m, w, c).phases.total();
  EXPECT_GT(spinning, asleep);
}

TEST(Ablation, QueueCapacityNearPaperDefaultIsNearOptimal) {
  // Paper Sec. III-A: 5000 elements is within 2% of optimal.
  const SimMachine m = haswell();
  const SimWorkload w = hwl_workload(AppId::kKMeans);
  RamrConfig c = tuned_config(m, w, RamrConfig{.batch = 256});
  c.queue_capacity = 5000;
  const double t5000 = simulate_ramr(m, w, c).phases.total();
  double best = t5000;
  for (std::size_t cap : {1000u,2000u,10000u,20000u,50000u}) {
    c.queue_capacity = cap;
    best = std::min(best, simulate_ramr(m, w, c).phases.total());
  }
  EXPECT_LT((t5000 - best) / best, 0.05);
}

// ---------- transient pipeline simulation ------------------------------------------------

TEST(Transient, ConservesRecordsAndDrainsCompletely) {
  const SimMachine m = haswell();
  const auto w = suite_workload(AppId::kKMeans, ContainerFlavor::kDefault,
                                PlatformId::kHaswell, SizeClass::kSmall);
  RamrConfig cfg;
  cfg.ratio = 2;
  cfg.batch = 256;
  const auto t = simulate_ramr_transient(m, w, cfg);
  EXPECT_GT(t.seconds, 0.0);
  EXPECT_NEAR(t.records_produced, t.records_consumed,
              1e-6 * t.records_produced + 1e-6);
  EXPECT_LE(t.max_depth, static_cast<double>(cfg.queue_capacity) + 1e-9);
}

TEST(Transient, AgreesWithSteadyStateMakespan) {
  const SimMachine m = haswell();
  for (AppId app : {AppId::kKMeans, AppId::kHistogram, AppId::kWordCount}) {
    const auto w = suite_workload(app, ContainerFlavor::kDefault,
                                  PlatformId::kHaswell, SizeClass::kSmall);
    RamrConfig cfg = tuned_config(m, w, RamrConfig{.batch = 500});
    const double steady = simulate_ramr(m, w, cfg).phases.map_combine;
    const double transient = simulate_ramr_transient(m, w, cfg).seconds;
    EXPECT_NEAR(transient, steady, 0.30 * steady) << apps::app_name(app);
  }
}

TEST(Transient, TinyQueueCausesBlocking) {
  const SimMachine m = haswell();
  // HG is combiner-limited: with a tiny ring the producers must block.
  const auto w = suite_workload(AppId::kHistogram, ContainerFlavor::kHash,
                                PlatformId::kHaswell, SizeClass::kSmall);
  RamrConfig small;
  small.ratio = 2;
  small.queue_capacity = 16;
  small.batch = 8;
  RamrConfig big = small;
  big.queue_capacity = 50000;
  big.batch = 8;
  const auto ts = simulate_ramr_transient(m, w, small);
  const auto tb = simulate_ramr_transient(m, w, big);
  EXPECT_LT(ts.mapper_busy_fraction, 1.0);
  EXPECT_LT(ts.mapper_busy_fraction, tb.mapper_busy_fraction + 0.05);
  EXPECT_LE(ts.max_depth, 16.0 + 1e-9);
}

TEST(Transient, MapperLimitedPipelineHasIdleCombiner) {
  const SimMachine m = haswell();
  // PCA is map-dominated: the combiner should be idle much of the time,
  // and the queues should stay shallow.
  const auto w = suite_workload(AppId::kPca, ContainerFlavor::kDefault,
                                PlatformId::kHaswell, SizeClass::kSmall);
  RamrConfig cfg;
  cfg.ratio = 1;
  cfg.batch = 100;
  const auto t = simulate_ramr_transient(m, w, cfg);
  EXPECT_LT(t.combiner_busy_fraction, 0.95);
  EXPECT_LT(t.mean_depth, static_cast<double>(cfg.queue_capacity) * 0.5);
  EXPECT_GT(t.mapper_busy_fraction, 0.9);
}

TEST(Transient, DepthSeriesIsSampled) {
  const SimMachine m = haswell();
  const auto w = suite_workload(AppId::kHistogram, ContainerFlavor::kDefault,
                                PlatformId::kHaswell, SizeClass::kSmall);
  const auto t = simulate_ramr_transient(m, w, RamrConfig{});
  EXPECT_GT(t.depth_series.size(), 10u);
  EXPECT_GT(t.sample_period_seconds, 0.0);
}

TEST(Ablation, PrecombineFactorShrinksQueueCosts) {
  const SimMachine m = haswell();
  const SimWorkload w = hwl_workload(AppId::kWordCount);
  RamrConfig cfg;
  cfg.batch = 1000;
  const double off = simulate_ramr(m, w, cfg).phases.total();
  cfg.precombine_factor = 5.7;  // WC's measured record reduction
  const double on = simulate_ramr(m, w, cfg).phases.total();
  EXPECT_LT(on, off);
  cfg.precombine_factor = 0.5;
  EXPECT_THROW(simulate_ramr(m, w, cfg), ConfigError);
}

TEST(TunedConfig, PrefersLargerRatioWhenCombinerIsCheap) {
  const SimMachine m = haswell();
  const auto cfg = tuned_config(m, hwl_workload(AppId::kPca), RamrConfig{});
  EXPECT_GE(cfg.ratio, 3u);
}

}  // namespace
}  // namespace ramr::sim
