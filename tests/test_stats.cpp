// Unit tests for the statistics/reporting module.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/runstats.hpp"
#include "stats/table.hpp"

namespace ramr::stats {
namespace {

TEST(RunStats, EmptyIsAllZero) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunStats, SingleValue) {
  RunStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunStats, KnownSequence) {
  RunStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunStats, CvMatchesDefinition) {
  RunStats s;
  for (double x : {10.0, 12.0, 8.0, 10.0}) s.add(x);
  EXPECT_NEAR(s.cv(), s.stddev() / s.mean(), 1e-15);
}

TEST(RunStats, MergeEqualsSequential) {
  Xoshiro256 rng(11);
  RunStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunStats, MergeWithEmptyIsIdentity) {
  RunStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunStats, PaperStyleTwentyRunsLowCv) {
  // The evaluation protocol: 20 runs, stddev ~1% of the mean.
  Xoshiro256 rng(21);
  RunStats s;
  for (int i = 0; i < 20; ++i) s.add(100.0 + rng.uniform(-1.0, 1.0));
  EXPECT_EQ(s.count(), 20u);
  EXPECT_LT(s.cv(), 0.02);
}

TEST(Table, AlignsAndPadsRows) {
  Table t({"app", "speedup"});
  t.add_row({"wordcount", "1.59"});
  t.add_row({"km"});  // short row gets padded
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("wordcount"), std::string::npos);
  EXPECT_NE(out.find("speedup"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"k", "v"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RowAccessorsExposeContents) {
  Table t({"a", "b"});
  t.add_row({"x", "y"});
  EXPECT_EQ(t.columns(), 2u);
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[0], "x");
  EXPECT_EQ(t.row(0)[1], "y");
}

TEST(Table, EmptyTablePrintsHeaderOnly) {
  Table t({"only", "header"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("header"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "only,header\n");
}

TEST(Table, FmtRespectsPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Series, PrintSeriesProducesOneColumnPerSeries) {
  Series a{"ramr", {}, {}};
  Series b{"phoenix", {}, {}};
  for (int i = 0; i < 4; ++i) {
    a.add(i, i * 2.0);
    b.add(i, i * 3.0);
  }
  std::ostringstream os;
  print_series(os, "x", {a, b});
  const std::string out = os.str();
  EXPECT_NE(out.find("ramr"), std::string::npos);
  EXPECT_NE(out.find("phoenix"), std::string::npos);
  EXPECT_NE(out.find("6.000"), std::string::npos);  // b at x=2
}

TEST(Series, MismatchedXVectorsThrow) {
  Series a{"a", {0.0, 1.0}, {0.0, 0.0}};
  Series b{"b", {0.0, 2.0}, {0.0, 0.0}};
  std::ostringstream os;
  EXPECT_THROW(print_series(os, "x", {a, b}), Error);
}

TEST(Series, MismatchedYLengthThrows) {
  Series a{"a", {0.0, 1.0}, {0.0}};
  std::ostringstream os;
  EXPECT_THROW(print_series(os, "x", {a}), Error);
}

}  // namespace
}  // namespace ramr::stats
