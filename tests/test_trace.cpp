// Tests for the execution-trace subsystem and its runtime integration.
#include <gtest/gtest.h>

#include <thread>

#include "common/config.hpp"
#include "core/runtime.hpp"
#include "mini_apps.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace ramr::trace {
namespace {

TEST(Lane, RecordsEventsInOrder) {
  Recorder rec;
  Lane& lane = rec.lane("worker");
  lane.record(rec.epoch(), EventKind::kTaskStart, 1);
  lane.record(rec.epoch(), EventKind::kTaskEnd, 1);
  ASSERT_EQ(lane.events().size(), 2u);
  EXPECT_EQ(lane.events()[0].kind, EventKind::kTaskStart);
  EXPECT_EQ(lane.events()[1].kind, EventKind::kTaskEnd);
  EXPECT_LE(lane.events()[0].seconds, lane.events()[1].seconds);
  EXPECT_EQ(lane.events()[0].arg, 1u);
}

TEST(Lane, BoundedCapacityDropsInsteadOfGrowing) {
  Recorder rec(/*per_lane_capacity=*/4);
  Lane& lane = rec.lane("small");
  for (int i = 0; i < 10; ++i) {
    lane.record(rec.epoch(), EventKind::kDrainActive, 0);
  }
  EXPECT_EQ(lane.events().size(), 4u);
  EXPECT_EQ(lane.dropped(), 6u);
}

TEST(Recorder, LaneLookupIsIdempotent) {
  Recorder rec;
  Lane& a = rec.lane("x");
  Lane& b = rec.lane("x");
  EXPECT_EQ(&a, &b);
  rec.lane("y");
  EXPECT_EQ(rec.lane_count(), 2u);
}

TEST(Recorder, SealsAgainstNewLanesOnceRecordingStarts) {
  Recorder rec;
  Lane& lane = rec.lane("setup");
  EXPECT_FALSE(rec.sealed());
  lane.record(rec.epoch(), EventKind::kTaskStart, 0);
  EXPECT_TRUE(rec.sealed());
  // Looking up an existing lane stays valid (long-lived recorders span
  // several run() calls)...
  EXPECT_EQ(&rec.lane("setup"), &lane);
  // ...but creating a NEW lane violates the setup-only contract.
  EXPECT_THROW(rec.lane("late"), Error);
  EXPECT_EQ(rec.lane_count(), 1u);
}

TEST(EventKinds, NewKindsHaveNames) {
  EXPECT_STREQ(to_string(EventKind::kBackoffSleep), "backoff-sleep");
  EXPECT_STREQ(to_string(EventKind::kTaskRetry), "task-retry");
}

TEST(Recorder, CollectMergesAndSortsAcrossLanes) {
  Recorder rec;
  Lane& a = rec.lane("a");
  Lane& b = rec.lane("b");
  a.record(rec.epoch(), EventKind::kTaskStart, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  b.record(rec.epoch(), EventKind::kTaskStart, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  a.record(rec.epoch(), EventKind::kTaskEnd, 0);
  const auto all = rec.collect();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_LE(all[0].seconds, all[1].seconds);
  EXPECT_LE(all[1].seconds, all[2].seconds);
  EXPECT_EQ(all[0].lane, 0u);
  EXPECT_EQ(all[1].lane, 1u);
  EXPECT_GT(rec.span(), 0.0);
}

TEST(Render, EmptyRecorderSaysSo) {
  Recorder rec;
  EXPECT_EQ(render_timeline(rec), "(no events)\n");
}

TEST(Render, TimelineShowsActiveBuckets) {
  Recorder rec;
  Lane& lane = rec.lane("m0");
  lane.record(rec.epoch(), EventKind::kTaskStart, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  lane.record(rec.epoch(), EventKind::kTaskEnd, 0);
  const std::string out = render_timeline(rec, 10);
  EXPECT_NE(out.find("m0"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_THROW(render_timeline(rec, 0), Error);
}

TEST(RuntimeIntegration, RamrRunProducesCoherentTrace) {
  const testing::ModCountApp app;
  const auto input = testing::make_numbers(5000, 3);
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 256;
  cfg.batch_size = 32;
  core::Runtime<testing::ModCountApp> rt(topo::host(), cfg);
  Recorder rec;
  rt.set_recorder(&rec);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(testing::pairs_match(result.pairs, app.reference(input)));

  // Lanes: the driver's phase-mark lane + 2 mappers + 1 combiner.
  EXPECT_EQ(rec.lane_count(), 4u);
  std::size_t task_starts = 0;
  std::size_t task_ends = 0;
  std::size_t closes = 0;
  std::size_t done = 0;
  std::size_t drained = 0;
  for (const Event& e : rec.collect()) {
    switch (e.kind) {
      case EventKind::kTaskStart: ++task_starts; break;
      case EventKind::kTaskEnd: ++task_ends; break;
      case EventKind::kStreamClose: ++closes; break;
      case EventKind::kDrainDone: ++done; break;
      case EventKind::kDrainActive: drained += e.arg; break;
      default: break;
    }
  }
  EXPECT_EQ(task_starts, task_ends);
  EXPECT_EQ(task_starts, result.tasks_executed);
  EXPECT_EQ(closes, 2u);  // one per mapper
  EXPECT_EQ(done, 1u);    // one combiner
  EXPECT_EQ(drained, result.queue_pushes);  // every record drained once

  // Rendering works on a real trace.
  const std::string timeline = render_timeline(rec, 40);
  EXPECT_NE(timeline.find("mapper-0"), std::string::npos);
  EXPECT_NE(timeline.find("combiner-0"), std::string::npos);
  EXPECT_FALSE(summarize(rec).empty());
}

TEST(RuntimeIntegration, BackoffSleepEventsMatchTheResultCounter) {
  // Tiny ring + tiny batches force backpressure, so the sleep-backoff paths
  // actually fire. Each backoff wait() sleeps at most once and the event is
  // recorded with the per-wait delta, so the sum of kBackoffSleep args must
  // equal the aggregate the result reports — regardless of scheduling.
  const testing::ModCountApp app;
  const auto input = testing::make_numbers(20000, 3);
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 8;
  cfg.batch_size = 4;
  core::Runtime<testing::ModCountApp> rt(topo::host(), cfg);
  // Idle combiners record one drain-idle event per sweep, so the lanes need
  // room well beyond the default: the invariant only holds when no lane
  // dropped events (asserted below).
  Recorder rec(/*per_lane_capacity=*/1 << 22);
  rt.set_recorder(&rec);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(testing::pairs_match(result.pairs, app.reference(input)));

  std::size_t slept = 0;
  for (const Event& e : rec.collect()) {
    if (e.kind == EventKind::kBackoffSleep) slept += e.arg;
  }
  for (std::size_t i = 0; i < rec.lane_count(); ++i) {
    ASSERT_EQ(rec.lane_at(i).dropped(), 0u) << rec.lane_at(i).name();
  }
  EXPECT_EQ(slept, result.backoff_sleeps);
}

TEST(RuntimeIntegration, TaskRetryEventsMatchTheResultCounter) {
  // One injected transient failure on the first map task; with a retry
  // budget the task re-executes exactly once and the retry is traced.
  const testing::ModCountApp app;
  const auto input = testing::make_numbers(2000, 3);
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 256;
  cfg.batch_size = 32;
  cfg.max_task_retries = 1;
  cfg.fault_spec = "map_task=0,map_transient=1,map_fires=1";
  core::Runtime<testing::ModCountApp> rt(topo::host(), cfg);
  Recorder rec;
  rt.set_recorder(&rec);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(testing::pairs_match(result.pairs, app.reference(input)));
  EXPECT_EQ(result.task_retries, 1u);

  std::size_t retries = 0;
  for (const Event& e : rec.collect()) {
    if (e.kind == EventKind::kTaskRetry) ++retries;
  }
  EXPECT_EQ(retries, result.task_retries);
}

TEST(RuntimeIntegration, TracingIsOptIn) {
  // Without a recorder the run must not create lanes anywhere (no crash,
  // no overhead path) — just complete correctly.
  const testing::ModCountApp app;
  const auto input = testing::make_numbers(1000, 4);
  RuntimeConfig cfg;
  cfg.num_mappers = 1;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  core::Runtime<testing::ModCountApp> rt(topo::host(), cfg);
  EXPECT_TRUE(
      testing::pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

}  // namespace
}  // namespace ramr::trace
