// Tests for combiners and the three intermediate container variants,
// including property checks against std::map as the reference semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "containers/combiners.hpp"
#include "containers/container_traits.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "containers/metis_container.hpp"

namespace ramr::containers {
namespace {

// ---------- combiners --------------------------------------------------------

TEST(Combiners, SumAndCount) {
  std::uint64_t acc = CountCombiner::identity();
  CountCombiner::combine(acc, 3);
  CountCombiner::combine(acc, 4);
  EXPECT_EQ(acc, 7u);
}

TEST(Combiners, MinMax) {
  double lo = MinCombiner<double>::identity();
  double hi = MaxCombiner<double>::identity();
  for (double v : {3.0, -1.0, 7.0}) {
    MinCombiner<double>::combine(lo, v);
    MaxCombiner<double>::combine(hi, v);
  }
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 7.0);
}

struct Moments {
  double sum = 0.0;
  std::uint64_t n = 0;
  void merge(const Moments& o) {
    sum += o.sum;
    n += o.n;
  }
  bool operator==(const Moments&) const = default;
};

TEST(Combiners, MergeCombinerUsesMemberMerge) {
  using C = MergeCombiner<Moments>;
  Moments acc = C::identity();
  C::combine(acc, Moments{2.5, 1});
  C::combine(acc, Moments{1.5, 2});
  EXPECT_EQ(acc, (Moments{4.0, 3}));
  static_assert(Combiner<C>);
}

// ---------- FixedArrayContainer -----------------------------------------------

TEST(FixedArray, EmitCombinesIntoSlots) {
  FixedArrayContainer<std::uint64_t, CountCombiner> c(8);
  c.emit(3, 1);
  c.emit(3, 1);
  c.emit(5, 2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.at(3), 2u);
  EXPECT_EQ(c.at(5), 2u);
  EXPECT_TRUE(c.contains(3));
  EXPECT_FALSE(c.contains(4));
}

TEST(FixedArray, ForEachVisitsInKeyOrder) {
  FixedArrayContainer<std::uint64_t, CountCombiner> c(16);
  c.emit(9, 1);
  c.emit(2, 1);
  c.emit(13, 1);
  std::vector<std::size_t> keys;
  c.for_each([&](std::size_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::size_t>{2, 9, 13}));
}

TEST(FixedArray, MergeFromCombinesAndCountsDistinct) {
  FixedArrayContainer<std::uint64_t, CountCombiner> a(8), b(8);
  a.emit(1, 1);
  b.emit(1, 2);
  b.emit(7, 5);
  a.merge_from(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at(1), 3u);
  EXPECT_EQ(a.at(7), 5u);
}

TEST(FixedArray, MergeRejectsShapeMismatch) {
  FixedArrayContainer<std::uint64_t, CountCombiner> a(8), b(16);
  EXPECT_THROW(a.merge_from(b), Error);
}

TEST(FixedArray, ClearResets) {
  FixedArrayContainer<std::uint64_t, CountCombiner> c(4);
  c.emit(0, 1);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.contains(0));
}

#ifndef NDEBUG
TEST(FixedArray, DebugBoundsCheck) {
  FixedArrayContainer<std::uint64_t, CountCombiner> c(4);
  EXPECT_THROW(c.emit(4, 1), CapacityError);
}
#endif

// ---------- hash containers (fixed and regular) --------------------------------

template <typename Ct>
class HashContainerTyped : public ::testing::Test {};

using HashVariants =
    ::testing::Types<FixedHashContainer<std::string, std::uint64_t, CountCombiner>,
                     HashContainer<std::string, std::uint64_t, CountCombiner>,
                     MetisContainer<std::string, std::uint64_t, CountCombiner>>;
TYPED_TEST_SUITE(HashContainerTyped, HashVariants);

TYPED_TEST(HashContainerTyped, EmitCombineLookup) {
  TypeParam c(16);
  c.emit("alpha", 1);
  c.emit("beta", 2);
  c.emit("alpha", 3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.at("alpha"), 4u);
  EXPECT_EQ(c.at("beta"), 2u);
  EXPECT_TRUE(c.contains("alpha"));
  EXPECT_FALSE(c.contains("gamma"));
  EXPECT_THROW(c.at("gamma"), Error);
}

TYPED_TEST(HashContainerTyped, MatchesStdMapReference) {
  TypeParam c(512);
  std::map<std::string, std::uint64_t> ref;
  Xoshiro256 rng(77);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(rng.below(300));
    const std::uint64_t v = rng.below(10);
    c.emit(key, v);
    ref[key] += v;
  }
  EXPECT_EQ(c.size(), ref.size());
  const auto pairs = to_sorted_pairs(c);
  ASSERT_EQ(pairs.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : pairs) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TYPED_TEST(HashContainerTyped, MergeFromEqualsUnion) {
  TypeParam a(64), b(64);
  a.emit("x", 1);
  a.emit("y", 2);
  b.emit("y", 3);
  b.emit("z", 4);
  a.merge_from(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at("y"), 5u);
  EXPECT_EQ(a.at("z"), 4u);
}

TYPED_TEST(HashContainerTyped, ClearEmptiesEverything) {
  TypeParam c(16);
  c.emit("a", 1);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.contains("a"));
  c.emit("a", 2);  // usable after clear
  EXPECT_EQ(c.at("a"), 2u);
}

TEST(FixedHash, ThrowsWhenCapacityExhausted) {
  FixedHashContainer<std::uint64_t, std::uint64_t, CountCombiner> c(4);
  for (std::uint64_t k = 0; k < 4; ++k) c.emit(k, 1);
  c.emit(2, 1);  // existing key: fine
  EXPECT_THROW(c.emit(99, 1), CapacityError);
}

TEST(RegularHash, GrowsBeyondInitialSizing) {
  HashContainer<std::uint64_t, std::uint64_t, CountCombiner> c(4);
  const std::size_t initial_slots = c.slot_count();
  for (std::uint64_t k = 0; k < 1000; ++k) c.emit(k, k);
  EXPECT_GT(c.slot_count(), initial_slots);
  EXPECT_EQ(c.size(), 1000u);
  for (std::uint64_t k : {0ull, 137ull, 999ull}) EXPECT_EQ(c.at(k), k);
}

TEST(RegularHash, SequentialIntegerKeysProbeFine) {
  // Guards the hash mixing: identity-hashed sequential keys would cluster.
  HashContainer<std::uint64_t, std::uint64_t, CountCombiner> c(1 << 12);
  for (std::uint64_t k = 0; k < 4096; ++k) c.emit(k * 64, 1);
  EXPECT_EQ(c.size(), 4096u);
}

TEST(Metis, BucketsStayOrderedAndGrowWithoutRehash) {
  MetisContainer<std::uint64_t, std::uint64_t, CountCombiner> c(16);
  const std::size_t buckets_before = c.bucket_count();
  for (std::uint64_t k = 0; k < 5000; ++k) c.emit(k, 1);
  EXPECT_EQ(c.size(), 5000u);
  EXPECT_EQ(c.bucket_count(), buckets_before);  // never rehashes
  for (std::uint64_t k : {0ull, 1234ull, 4999ull}) EXPECT_EQ(c.at(k), 1u);
  EXPECT_FALSE(c.contains(5000));
}

TEST(Metis, SatisfiesIntermediateContainerConcept) {
  static_assert(IntermediateContainer<
                MetisContainer<std::uint64_t, std::uint64_t, CountCombiner>>);
  SUCCEED();
}

// Property sweep over expected_keys sizing: the fixed container accepts
// exactly `expected` distinct keys, never fewer.
class FixedHashCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FixedHashCapacity, AcceptsExactlyTheAdvertisedCapacity) {
  const std::size_t cap = GetParam();
  FixedHashContainer<std::uint64_t, std::uint64_t, CountCombiner> c(cap);
  for (std::uint64_t k = 0; k < cap; ++k) {
    ASSERT_NO_THROW(c.emit(k, 1)) << "key " << k << " of " << cap;
  }
  EXPECT_THROW(c.emit(cap + 1000000, 1), CapacityError);
}

INSTANTIATE_TEST_SUITE_P(Capacities, FixedHashCapacity,
                         ::testing::Values(1, 2, 3, 7, 64, 1000));

// KeyValue record behaves as a regular aggregate (pipelined through rings).
TEST(KeyValueRecord, AggregateEquality) {
  KeyValue<std::string, std::uint64_t> a{"w", 2}, b{"w", 2}, c{"w", 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  static_assert(
      std::is_trivially_copyable_v<KeyValue<std::uint64_t, std::uint64_t>>);
}

}  // namespace
}  // namespace ramr::containers
