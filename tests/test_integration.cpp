// Integration tests: whole-pipeline behaviour across modules — env-knob
// driven configuration, cross-runtime equivalence on the real suite apps,
// failure injection (map/combine exceptions, container capacity
// exhaustion), oversubscription, and back-to-back heterogeneous jobs on
// one runtime's pools.
#include <gtest/gtest.h>

#include <atomic>

#include "apps/suite.hpp"
#include "common/env.hpp"
#include "core/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "spsc/lamport.hpp"
#include "topology/topology.hpp"

namespace ramr {
namespace {

using namespace ramr::apps;

// ---------- env-driven configuration end-to-end ---------------------------------

TEST(Integration, FullEnvKnobSetDrivesARealRun) {
  env::ScopedOverride a(kEnvMappers, "3");
  env::ScopedOverride b(kEnvCombiners, "2");
  env::ScopedOverride c(kEnvTaskSize, "2");
  env::ScopedOverride d(kEnvQueueCapacity, "128");
  env::ScopedOverride e(kEnvBatchSize, "16");
  env::ScopedOverride f(kEnvPinPolicy, "os");
  env::ScopedOverride g(kEnvSleepOnFull, "1");
  env::ScopedOverride h(kEnvSleepMicros, "10");

  PixelInput input{make_pixels(50000, 1), 2048};
  const HistogramApp<ContainerFlavor::kDefault> app;
  core::Runtime<HistogramApp<ContainerFlavor::kDefault>> rt(
      topo::host(), RuntimeConfig::from_env());
  EXPECT_EQ(rt.config().num_mappers, 3u);
  EXPECT_EQ(rt.config().num_combiners, 2u);
  EXPECT_EQ(rt.config().batch_size, 16u);
  const auto result = rt.run(app, input);
  const auto ref = histogram_reference(input);
  ASSERT_EQ(result.pairs.size(), ref.size());
  for (const auto& [k, v] : result.pairs) EXPECT_EQ(v, ref.at(k));
}

// ---------- failure injection -----------------------------------------------------

struct ThrowingMapApp {
  using input_type = std::vector<int>;
  using container_type =
      containers::FixedArrayContainer<std::uint64_t, containers::CountCombiner>;

  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_container() const { return container_type(8); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    if (in[split] < 0) throw Error("poisoned split");
    emit(static_cast<std::uint64_t>(in[split]) % 8, std::uint64_t{1});
  }
};

// A fixed hash container that is too small for the emitted key range:
// CapacityError fires inside the combine path.
struct TinyHashApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type =
      containers::FixedHashContainer<std::uint64_t, std::uint64_t,
                                     containers::CountCombiner>;
  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_container() const { return container_type(4); }
  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    emit(in[split], std::uint64_t{1});
  }
};

TEST(Integration, MapExceptionPropagatesFromPhoenix) {
  phoenix::Options po;
  po.num_workers = 2;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<ThrowingMapApp> rt(topo::host(), po);
  std::vector<int> poisoned(100, 1);
  poisoned[57] = -1;
  EXPECT_THROW(rt.run(ThrowingMapApp{}, poisoned), Error);
  // The pool survives; a clean run afterwards succeeds.
  const std::vector<int> clean(100, 1);
  const auto result = rt.run(ThrowingMapApp{}, clean);
  EXPECT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].second, 100u);
}

TEST(Integration, CombineCapacityExhaustionPropagatesFromPhoenix) {
  phoenix::Options po;
  po.num_workers = 1;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<TinyHashApp> rt(topo::host(), po);
  std::vector<std::uint64_t> input(64);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = i;
  EXPECT_THROW(rt.run(TinyHashApp{}, input), CapacityError);
}

TEST(Integration, MapExceptionDoesNotHangRamr) {
  // The decoupled runtime's failure protocol: a dying mapper still closes
  // its ring so combiners terminate, and the runtime stays usable.
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 16;
  cfg.batch_size = 4;
  core::Runtime<ThrowingMapApp> rt(topo::host(), cfg);
  std::vector<int> poisoned(200, 1);
  poisoned[123] = -1;
  EXPECT_THROW(rt.run(ThrowingMapApp{}, poisoned), Error);
  const std::vector<int> clean(200, 2);
  const auto result = rt.run(ThrowingMapApp{}, clean);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].second, 200u);
}

TEST(Integration, CombinerExceptionAbortsRamrCleanly) {
  // The combiner hits CapacityError mid-drain; blocked mappers must abort
  // (combiner_failed flag) instead of pushing into a dead queue forever.
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 8;  // tiny: mappers block quickly once it dies
  cfg.batch_size = 2;
  core::Runtime<TinyHashApp> rt(topo::host(), cfg);
  std::vector<std::uint64_t> input(500);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = i;
  EXPECT_THROW(rt.run(TinyHashApp{}, input), Error);
  // Usable afterwards with in-capacity keys.
  std::vector<std::uint64_t> small(100);
  for (std::size_t i = 0; i < small.size(); ++i) small[i] = i % 4;
  const auto result = rt.run(TinyHashApp{}, small);
  EXPECT_EQ(result.pairs.size(), 4u);
}

// ---------- heterogeneous back-to-back jobs ------------------------------------------

TEST(Integration, SameRuntimeRunsGrowingInputs) {
  const WordCountApp<ContainerFlavor::kDefault> app;
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 64;  // force wraparound + backpressure across runs
  cfg.batch_size = 8;
  core::Runtime<WordCountApp<ContainerFlavor::kDefault>> rt(topo::host(), cfg);
  for (std::size_t kb : {4u, 16u, 64u}) {
    TextInput input{make_text(kb * 1024, 100, kb), 1024};
    const auto result = rt.run(app, input);
    const auto ref = wordcount_reference(input);
    ASSERT_EQ(result.pairs.size(), ref.size()) << kb << "KB";
    for (const auto& [w, n] : result.pairs) EXPECT_EQ(n, ref.at(w));
  }
}

// ---------- oversubscription stress -----------------------------------------------------

TEST(Integration, HeavyOversubscriptionOnTinyHost) {
  // 12 mappers + 6 combiners regardless of host size: progress and
  // correctness must not depend on thread count <= cores.
  KmInput input = make_km_input(
      table1_input(AppId::kKMeans, PlatformId::kHaswell, SizeClass::kSmall),
      /*divisor=*/1000, /*num_clusters=*/8);
  input.split_points = 512;
  KMeansApp<ContainerFlavor::kDefault> app;
  app.num_clusters = 8;
  RuntimeConfig cfg;
  cfg.num_mappers = 12;
  cfg.num_combiners = 6;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 32;
  cfg.batch_size = 8;
  core::Runtime<KMeansApp<ContainerFlavor::kDefault>> rt(topo::host(), cfg);
  const auto result = rt.run(app, input);
  const auto ref = km_reference(input);
  ASSERT_EQ(result.pairs.size(), ref.size());
  for (const auto& [k, acc] : result.pairs) {
    EXPECT_EQ(acc.n, ref.at(k).n);
  }
}

// ---------- suite-wide cross-runtime equivalence (the headline invariant) -------------

template <typename App, typename Input>
void expect_equivalent(const App& app, const Input& input) {
  phoenix::Options po;
  po.num_workers = 3;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<App> baseline(topo::host(), po);
  RuntimeConfig cfg;
  cfg.num_mappers = 3;
  cfg.num_combiners = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 512;
  cfg.batch_size = 64;
  core::Runtime<App> ramr(topo::host(), cfg);
  const auto a = baseline.run(app, input);
  const auto b = ramr.run(app, input);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].first, b.pairs[i].first) << "index " << i;
  }
}

TEST(Integration, AllSixAppsEquivalentAcrossRuntimes) {
  const std::uint64_t div = 16384;
  expect_equivalent(
      WordCountApp<ContainerFlavor::kDefault>{},
      make_wc_input(table1_input(AppId::kWordCount, PlatformId::kHaswell,
                                 SizeClass::kSmall),
                    div));
  expect_equivalent(
      HistogramApp<ContainerFlavor::kDefault>{},
      make_hg_input(table1_input(AppId::kHistogram, PlatformId::kHaswell,
                                 SizeClass::kSmall),
                    div));
  expect_equivalent(
      LinearRegressionApp<ContainerFlavor::kDefault>{},
      make_lr_input(table1_input(AppId::kLinearRegression,
                                 PlatformId::kHaswell, SizeClass::kSmall),
                    div));
  {
    auto in = make_km_input(
        table1_input(AppId::kKMeans, PlatformId::kHaswell, SizeClass::kSmall),
        div, 8);
    KMeansApp<ContainerFlavor::kDefault> app;
    app.num_clusters = 8;
    expect_equivalent(app, in);
  }
  {
    auto in = make_pca_input(
        table1_input(AppId::kPca, PlatformId::kHaswell, SizeClass::kSmall),
        div * 16);
    PcaCovApp<ContainerFlavor::kDefault> app;
    app.rows = in.matrix.rows;
    expect_equivalent(app, in);
  }
  {
    auto in = make_mm_input(table1_input(AppId::kMatrixMultiply,
                                         PlatformId::kHaswell,
                                         SizeClass::kSmall),
                            div * 16);
    MatrixMultiplyApp<ContainerFlavor::kDefault> app;
    app.rows_a = in.a.rows;
    app.cols_b = in.b.cols;
    expect_equivalent(app, in);
  }
}

// ---------- LamportQueue basic coverage (ablation baseline) ----------------------------

TEST(Integration, LamportQueueTransfersEverything) {
  spsc::LamportQueue<std::uint64_t> q(64);
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t out;
    std::uint64_t received = 0;
    while (received < 10000) {
      if (q.try_pop(out)) {
        sum += out;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    while (!q.try_push(std::uint64_t{i})) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum, 10000ull * 10001 / 2);
}

TEST(Integration, LamportQueueSemantics) {
  spsc::LamportQueue<int> q(4);
  EXPECT_THROW(spsc::LamportQueue<int>(1), ConfigError);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(int{4}));
  int out;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_EQ(q.size(), 3u);
}

}  // namespace
}  // namespace ramr
