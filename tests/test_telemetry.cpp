// Tests for the telemetry subsystem: metric registry aggregation, the
// sampler thread, PMU capability handling with forced fallback, and the
// two exporters (chrome trace + run report) against embedded goldens.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/pmu.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/session.hpp"

namespace ramr::telemetry {
namespace {

// ---- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, EscapesAndFormats) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("text", "a\"b\\c\n\t\x01z");
  w.field("num", 1.5);
  w.field("neg", std::int64_t{-3});
  w.field("flag", true);
  w.begin_array("arr");
  w.element(std::uint64_t{7});
  w.element("x");
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\"text\":\"a\\\"b\\\\c\\n\\t\\u0001z\",\"num\":1.5,"
            "\"neg\":-3,\"flag\":true,\"arr\":[7,\"x\"]}");
}

TEST(JsonWriter, NumbersStayStrictJson) {
  EXPECT_EQ(JsonWriter::number(0.0), "0");
  EXPECT_EQ(JsonWriter::number(-0.0), "0");
  // NaN/inf are not JSON; strict parsers require null.
  EXPECT_EQ(JsonWriter::number(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::number(1.0 / 0.0), "null");
}

// ---- metric registry ------------------------------------------------------

TEST(Metrics, RegistryCreateOrReturnIsIdempotent) {
  MetricRegistry reg(2);
  Counter& a = reg.counter("c");
  Counter& b = reg.counter("c");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
  EXPECT_EQ(a.num_slots(), 2u);
}

TEST(Metrics, CounterAggregatesSingleWriterSlotsUnderThreads) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  MetricRegistry reg(kThreads);
  Counter& counter = reg.counter("ops");
  Histogram& hist = reg.histogram("sizes");
  Gauge& gauge = reg.gauge("level");

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.increment(t);
        hist.record(t, i % 8);
      }
      gauge.set(t, static_cast<double>(t));
    });
  }
  for (auto& th : threads) th.join();

  const MetricsSnapshot snap = reg.collect();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "ops");
  EXPECT_EQ(snap.counters[0].total, kThreads * kPerThread);
  ASSERT_EQ(snap.counters[0].per_slot.size(), kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counters[0].per_slot[t], kPerThread);
  }
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].max, kThreads - 1.0);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  MetricRegistry reg(1);
  Histogram& hist = reg.histogram("h");
  // Values 0..7: bucket 0 holds {0}, bucket 1 {1}, bucket 2 {2,3},
  // bucket 3 {4..7}.
  for (std::uint64_t v = 0; v < 8; ++v) hist.record(0, v);

  const MetricsSnapshot snap = reg.collect();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0];
  EXPECT_EQ(h.count, 8u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 4u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 3u);   // rank 4 falls in bucket 2 -> bound 3
  EXPECT_EQ(h.quantile(1.0), 7u);
  EXPECT_EQ(Histogram::upper_bound(0), 0u);
  EXPECT_EQ(Histogram::upper_bound(1), 1u);
  EXPECT_EQ(Histogram::upper_bound(3), 7u);
}

TEST(Metrics, EmptyHistogramQuantileIsZero) {
  HistogramSnapshot h;
  EXPECT_EQ(h.quantile(0.5), 0u);
}

// ---- sampler --------------------------------------------------------------

TEST(SamplerTest, RejectsNonPositivePeriod) {
  EXPECT_THROW(Sampler(std::chrono::microseconds(0)), ConfigError);
}

TEST(SamplerTest, CollectsMonotoneSeriesWhileWritersRun) {
  // Also a TSan check: the probe reads an atomic the writers bump.
  Sampler sampler(std::chrono::microseconds(200));
  std::atomic<std::uint64_t> value{0};
  auto handle = sampler.scoped_probe(
      "v", [&] { return static_cast<double>(value.load()); });
  sampler.start();
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20'000; ++i) value.fetch_add(1);
    });
  }
  for (auto& th : writers) th.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sampler.stop();

  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "v");
  ASSERT_FALSE(series[0].points.empty());
  for (std::size_t i = 1; i < series[0].points.size(); ++i) {
    EXPECT_GE(series[0].points[i].first, series[0].points[i - 1].first);
    EXPECT_GE(series[0].points[i].second, series[0].points[i - 1].second);
  }
}

TEST(SamplerTest, RetiredProbesKeepTheirSeries) {
  Sampler sampler(std::chrono::microseconds(200));
  const std::size_t id = sampler.add_probe("once", [] { return 1.0; });
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sampler.remove_probe(id);
  sampler.stop();
  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "once");
}

// ---- PMU capability -------------------------------------------------------

TEST(Pmu, ParseModeAcceptsTheDocumentedSpellings) {
  EXPECT_EQ(parse_pmu_mode("auto"), PmuMode::kAuto);
  EXPECT_EQ(parse_pmu_mode("1"), PmuMode::kAuto);
  EXPECT_EQ(parse_pmu_mode("on"), PmuMode::kOn);
  EXPECT_EQ(parse_pmu_mode("force"), PmuMode::kOn);
  EXPECT_EQ(parse_pmu_mode("off"), PmuMode::kOff);
  EXPECT_EQ(parse_pmu_mode("0"), PmuMode::kOff);
  EXPECT_EQ(parse_pmu_mode("none"), PmuMode::kOff);
  EXPECT_THROW(parse_pmu_mode("sideways"), ConfigError);
  EXPECT_STREQ(to_string(PmuMode::kAuto).c_str(), "auto");
  EXPECT_STREQ(to_string(PmuMode::kOff).c_str(), "off");
}

TEST(Pmu, ProbeIsCachedAndNeverThrows) {
  const PmuAvailability& a = pmu_probe();
  const PmuAvailability& b = pmu_probe();
  EXPECT_EQ(&a, &b);
  if (!a.available) {
    EXPECT_FALSE(a.reason.empty());  // callers surface the cause
  }
}

TEST(Pmu, PoolWithNoThreadsIsNotMeasuring) {
  PoolPmu pool({});
  EXPECT_FALSE(pool.measuring());
  pool.begin();  // no-ops, must not crash
  const PmuSample sample = pool.end();
  EXPECT_FALSE(sample.instructions_valid);
}

// ---- session --------------------------------------------------------------

TEST(SessionTest, FromConfigIsNullWhenTelemetryOff) {
  RuntimeConfig cfg;
  EXPECT_EQ(Session::from_config(cfg), nullptr);
  cfg.telemetry = true;
  cfg.pmu_mode = "off";
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  auto session = Session::from_config(cfg);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->pmu_mode(), PmuMode::kOff);
  EXPECT_EQ(session->options().num_mappers, 2u);
}

TEST(SessionTest, ForcedPmuOffFallsBackToTheModel) {
  SessionOptions opt;
  opt.pmu = PmuMode::kOff;  // RAMR_PMU=off: never open hardware counters
  opt.num_mappers = 2;
  opt.num_combiners = 1;
  Session session(opt);
  session.attach_pools({1, 2}, {3});  // must be ignored under kOff
  session.begin_run(Clock::now());
  session.begin_phase(Phase::kMapCombine);
  session.end_phase(Phase::kMapCombine, 0.5);
  session.end_run();
  EXPECT_FALSE(session.pmu_active());
  EXPECT_DOUBLE_EQ(session.phase_seconds(Phase::kMapCombine), 0.5);

  // Without a model the cell is unlabeled...
  EXPECT_EQ(session.phase_counters(Phase::kMapCombine, PoolKind::kMapper)
                .source,
            CounterSource::kNone);

  // ...and with one it reports the analytic source, input bytes filled in.
  session.set_input_bytes(1024.0);
  perf::Counters model;
  model.instructions = 100.0;
  model.mem_stall_cycles = 10.0;
  model.resource_stall_cycles = 5.0;
  session.set_modeled(Phase::kMapCombine, PoolKind::kMapper, model);
  const PhaseCounters pc =
      session.phase_counters(Phase::kMapCombine, PoolKind::kMapper);
  EXPECT_EQ(pc.source, CounterSource::kModel);
  EXPECT_DOUBLE_EQ(pc.counters.instructions, 100.0);
  EXPECT_DOUBLE_EQ(pc.counters.input_bytes, 1024.0);
  EXPECT_FALSE(pc.cycles_measured);
}

TEST(SessionTest, EngineMetricHandlesArePreCreated) {
  SessionOptions opt;
  opt.pmu = PmuMode::kOff;
  opt.num_mappers = 2;
  opt.num_combiners = 2;
  Session session(opt);
  EngineMetrics* m = session.engine_metrics();
  ASSERT_NE(m, nullptr);
  ASSERT_NE(m->tasks_executed, nullptr);
  ASSERT_NE(m->batch_sizes, nullptr);
  ASSERT_NE(m->queue_max_occupancy, nullptr);
  EXPECT_EQ(m->combiner_slot_base, 2u);
  EXPECT_EQ(m->combiner_slot(1), 3u);
  m->tasks_executed->increment(0);
  m->tasks_executed->increment(m->combiner_slot(0));
  EXPECT_EQ(m->tasks_executed->total(), 2u);
}

// ---- exporters ------------------------------------------------------------

// The golden inputs are hand-built (deterministic timestamps), so the
// serialised form is byte-stable; a formatting change must update these
// goldens deliberately.
TEST(Exporters, ChromeTraceMatchesGolden) {
  std::vector<LaneView> lanes(2);
  lanes[0].name = "driver";
  lanes[0].events = {
      {0.0, trace::EventKind::kPhaseStart, 0, 1},
      {0.001, trace::EventKind::kPhaseEnd, 0, 1},
  };
  lanes[1].name = "mapper-0";
  lanes[1].events = {
      {0.0001, trace::EventKind::kTaskStart, 1, 7},
      {0.0005, trace::EventKind::kTaskEnd, 1, 7},
      {0.0006, trace::EventKind::kBackoffSleep, 1, 1},
  };
  std::vector<Sampler::Series> series(1);
  series[0].name = "queue_occupancy_total";
  series[0].points = {{0.0002, 3.0}, {0.0004, 5.0}};

  std::ostringstream out;
  chrome_trace_json(out, lanes, series, "golden");
  const std::string kGolden =
      R"({"traceEvents":[{"ph":"M","name":"process_name","pid":1,"args":{"name":"golden"}},)"
      R"({"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"driver"}},)"
      R"({"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"mapper-0"}},)"
      R"({"name":"map-combine","ph":"B","ts":0,"pid":1,"tid":0},)"
      R"({"name":"map-combine","ph":"E","ts":1000,"pid":1,"tid":0},)"
      R"({"name":"task","ph":"B","ts":100,"pid":1,"tid":1,"args":{"first_split":7}},)"
      R"({"name":"task","ph":"E","ts":500,"pid":1,"tid":1},)"
      R"({"name":"backoff-sleep","ph":"i","ts":600,"pid":1,"tid":1,"s":"t","args":{"arg":1}},)"
      R"({"name":"queue_occupancy_total","ph":"C","ts":200,"pid":1,"tid":2,"args":{"value":3}},)"
      R"({"name":"queue_occupancy_total","ph":"C","ts":400,"pid":1,"tid":2,"args":{"value":5}}],)"
      R"("displayTimeUnit":"ms"})"
      "\n";
  EXPECT_EQ(out.str(), kGolden);
}

TEST(Exporters, RunReportMatchesGolden) {
  RunReport report;
  report.app = "mini";
  report.runtime = "ramr";
  report.config_summary = "mappers=2 combiners=1";
  report.pmu_mode = "off";
  report.pmu_available = false;
  report.pmu_reason = "forced off";
  report.pmu_active = false;
  report.input_bytes = 1024.0;
  report.result.split_seconds = 0.001;
  report.result.map_combine_seconds = 0.01;
  report.result.pairs = 3;
  report.result.tasks_executed = 4;
  report.result.queue_pushes = 100;
  PhaseEntry entry;
  entry.phase = "map-combine";
  entry.pool = "mapper";
  entry.source = "model";
  entry.seconds = 0.01;
  entry.counters.instructions = 8192;
  entry.counters.mem_stall_cycles = 512;
  entry.counters.resource_stall_cycles = 256;
  entry.counters.input_bytes = 1024;
  report.phases.push_back(entry);
  CounterSnapshot cs;
  cs.name = "tasks_executed";
  cs.total = 4;
  cs.per_slot = {3, 1};
  report.metrics.counters.push_back(cs);
  GaugeSnapshot gs;
  gs.name = "queue_max_occupancy";
  gs.max = 5.0;
  gs.per_slot = {5.0, 2.0};
  report.metrics.gauges.push_back(gs);
  HistogramSnapshot hs;
  hs.name = "batch_sizes";
  hs.count = 3;
  hs.buckets[2] = 2;
  hs.buckets[3] = 1;
  report.metrics.histograms.push_back(hs);
  Sampler::Series series;
  series.name = "heartbeat/mapper-0";
  series.points = {{0.001, 1.0}};
  report.series.push_back(series);

  std::ostringstream out;
  run_report_json(out, report);
  const std::string kGolden =
      R"({"schema":"ramr-run-report-v1","app":"mini","runtime":"ramr",)"
      R"("config":"mappers=2 combiners=1",)"
      R"("pmu":{"mode":"off","available":false,"reason":"forced off","active":false},)"
      R"("input_bytes":1024,)"
      R"("result":{"split_seconds":0.001,"map_combine_seconds":0.01,)"
      R"("reduce_seconds":0,"merge_seconds":0,"pairs":3,"tasks_executed":4,)"
      R"("local_pops":0,"steals":0,"queue_pushes":100,"queue_failed_pushes":0,)"
      R"("queue_batches":0,"queue_push_batches":0,)"
      R"("queue_max_occupancy":0,"backoff_sleeps":0,)"
      R"("task_retries":0,"task_aborts":0},)"
      R"("memory":{"peak_rss_bytes":0},)"
      R"("phases":[{"phase":"map-combine","pool":"mapper","source":"model",)"
      R"("seconds":0.01,"instructions":8192,"mem_stall_cycles":512,)"
      R"("resource_stall_cycles":256,"input_bytes":1024,)"
      R"("ipb":8,"mspi":0.0625,"rspi":0.03125}],)"
      R"("metrics":{"counters":[{"name":"tasks_executed","total":4,"per_slot":[3,1]}],)"
      R"("gauges":[{"name":"queue_max_occupancy","max":5,"per_slot":[5,2]}],)"
      R"("histograms":[{"name":"batch_sizes","count":3,"p50":3,"p90":7,"p99":7,)"
      R"("max":7,"buckets":[[2,2],[3,1]]}]},)"
      R"("series":[{"name":"heartbeat/mapper-0","dropped":0,"points":[[0.001,1]]}]})"
      "\n";
  EXPECT_EQ(out.str(), kGolden);
}

TEST(Exporters, LaneViewsSnapshotARecorder) {
  trace::Recorder rec;
  trace::Lane& lane = rec.lane("w0");
  lane.record(rec.epoch(), trace::EventKind::kTaskStart, 2);
  lane.record(rec.epoch(), trace::EventKind::kTaskEnd, 2);
  const auto lanes = lane_views(rec);
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].name, "w0");
  ASSERT_EQ(lanes[0].events.size(), 2u);
  EXPECT_EQ(lanes[0].events[0].kind, trace::EventKind::kTaskStart);
}

TEST(Exporters, WriteJsonFileRoundTripsAndThrowsOnBadPath) {
  const std::string path = "test_telemetry_artifact.json";
  write_json_file(path, [](std::ostream& out) { out << "{\"ok\":true}"; });
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.substr(0, 11), "{\"ok\":true}");
  std::remove(path.c_str());
  EXPECT_THROW(
      write_json_file("no_such_dir/x.json", [](std::ostream&) {}), Error);
}

}  // namespace
}  // namespace ramr::telemetry
