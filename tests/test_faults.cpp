// Fault-injection matrix for the execution engine (docs/ARCHITECTURE.md §6):
// injected mapper/combiner/allocation failures across all three coupling
// strategies, transient-fault retry, watchdog verdicts (stall + deadline),
// the join protocol's suppressed-error accounting, and the FaultPlan spec
// parser. Time bounds are deliberately generous — this suite runs under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "containers/atomic_array_container.hpp"
#include "core/runtime.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_pipelined.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "mini_apps.hpp"
#include "mrphi/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "sched/thread_pool.hpp"
#include "topology/topology.hpp"

namespace ramr {
namespace {

using testing::make_numbers;
using testing::ModCountApp;
using testing::pairs_match;

RuntimeConfig ramr_config(std::size_t mappers, std::size_t combiners) {
  RuntimeConfig cfg;
  cfg.num_mappers = mappers;
  cfg.num_combiners = combiners;
  cfg.pin_policy = PinPolicy::kOsDefault;  // host may be tiny
  cfg.queue_capacity = 512;
  cfg.batch_size = 32;
  return cfg;
}

phoenix::Options phoenix_options(std::size_t workers) {
  phoenix::Options o;
  o.num_workers = workers;
  o.pin_policy = PinPolicy::kOsDefault;
  return o;
}

// Minimal MRPhi-shape app (GlobalAppSpec) for the atomic strategy column.
struct ModCountGlobalApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type = containers::AtomicArrayContainer<std::uint64_t>;

  std::size_t buckets = 16;
  std::size_t chunk = 64;

  std::size_t num_splits(const input_type& in) const {
    return (in.size() + chunk - 1) / chunk;
  }
  container_type make_global_container() const {
    return container_type(buckets);
  }
  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * chunk;
    const std::size_t end = std::min(begin + chunk, in.size());
    for (std::size_t i = begin; i < end; ++i) {
      emit(in[i] % buckets, std::uint64_t{1});
    }
  }
};

// ---------- FaultPlan spec parsing ------------------------------------------

TEST(FaultPlan, EmptySpecDisabled) {
  const auto plan = faults::FaultPlan::parse("");
  EXPECT_FALSE(plan.enabled);
  EXPECT_EQ(plan.map_task, -1);
  EXPECT_EQ(plan.combiner_batch, -1);
  EXPECT_EQ(plan.stall_emit, 0u);
  EXPECT_EQ(plan.alloc, -1);
}

TEST(FaultPlan, ParsesMapSiteFields) {
  const auto plan =
      faults::FaultPlan::parse("map_task=5,map_transient=1,map_fires=2");
  EXPECT_TRUE(plan.enabled);
  EXPECT_EQ(plan.map_task, 5);
  EXPECT_TRUE(plan.map_transient);
  EXPECT_EQ(plan.map_fires, 2u);
}

TEST(FaultPlan, ParsesAllSites) {
  const auto plan = faults::FaultPlan::parse(
      "combiner_batch=3,combiner=1,stall_emit=10,stall_ms=500,alloc=2,"
      "map_p=0.25,seed=7");
  EXPECT_TRUE(plan.enabled);
  EXPECT_EQ(plan.combiner_batch, 3);
  EXPECT_EQ(plan.combiner, 1u);
  EXPECT_EQ(plan.stall_emit, 10u);
  EXPECT_EQ(plan.stall_ms, 500u);
  EXPECT_EQ(plan.alloc, 2);
  EXPECT_DOUBLE_EQ(plan.map_p, 0.25);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_FALSE(plan.summary().empty());
}

TEST(FaultPlan, ParsesJobSiteFields) {
  const auto plan = faults::FaultPlan::parse("job_run=2,job_fires=3");
  EXPECT_TRUE(plan.enabled);
  EXPECT_EQ(plan.job_run, 2);
  EXPECT_EQ(plan.job_fires, 3u);
  EXPECT_NE(plan.summary().find("job_run=2"), std::string::npos);

  const auto prob = faults::FaultPlan::parse("job_p=0.5,seed=9");
  EXPECT_DOUBLE_EQ(prob.job_p, 0.5);
  EXPECT_EQ(prob.seed, 9u);
  EXPECT_NE(prob.summary().find("job_p=0.5"), std::string::npos);
}

TEST(FaultPlan, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(faults::FaultPlan::parse("bogus=1"), ConfigError);
  EXPECT_THROW(faults::FaultPlan::parse("map_task=abc"), ConfigError);
  EXPECT_THROW(faults::FaultPlan::parse("map_p=1.5"), ConfigError);
  EXPECT_THROW(faults::FaultPlan::parse("job_p=-0.1"), ConfigError);
  EXPECT_THROW(faults::FaultPlan::parse("map_task"), ConfigError);
  // The unknown-key error names the valid sites and modifiers, matching
  // the RAMR_* knob-validation convention.
  try {
    faults::FaultPlan::parse("bogus=1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'bogus'"), std::string::npos) << what;
    EXPECT_NE(what.find("job_run"), std::string::npos) << what;
  }
}

TEST(FaultPlan, RejectsInertModifiersNamingTheMissingSite) {
  // A modifier without its site key would silently do nothing; the parser
  // must fail fast and name the inert token.
  for (const char* spec : {"map_fires=2", "map_transient=1", "combiner=1",
                           "stall_ms=100", "job_fires=2", "seed=5"}) {
    try {
      faults::FaultPlan::parse(spec);
      FAIL() << "expected ConfigError for '" << spec << "'";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("inert"), std::string::npos)
          << spec << ": " << e.what();
    }
  }
  // The same modifiers paired with their sites parse fine.
  EXPECT_NO_THROW(faults::FaultPlan::parse("map_task=0,map_fires=2"));
  EXPECT_NO_THROW(faults::FaultPlan::parse("map_p=0.2,map_transient=1"));
  EXPECT_NO_THROW(faults::FaultPlan::parse("combiner_batch=1,combiner=1"));
  EXPECT_NO_THROW(faults::FaultPlan::parse("stall_emit=10,stall_ms=100"));
  EXPECT_NO_THROW(faults::FaultPlan::parse("job_p=0.1,job_fires=2,seed=3"));
}

// ---------- Injector unit behaviour -----------------------------------------

TEST(Injector, DisabledInjectorNeverFires) {
  faults::Injector injector;  // default: disabled
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(injector.on_map_task(i % 3));
    EXPECT_NO_THROW(injector.on_combiner_batch(0, i));
    EXPECT_NO_THROW(injector.on_emit(0));
    EXPECT_NO_THROW(injector.on_container_alloc());
  }
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(Injector, MapSiteFiresBoundedTimes) {
  faults::Injector injector(
      faults::FaultPlan::parse("map_task=0,map_fires=2"));
  EXPECT_THROW(injector.on_map_task(0), faults::InjectedFault);
  EXPECT_THROW(injector.on_map_task(1), faults::InjectedFault);
  EXPECT_NO_THROW(injector.on_map_task(2));  // budget exhausted
  EXPECT_EQ(injector.injected(), 2u);
}

TEST(Injector, TransientFaultIsRetryClassified) {
  faults::Injector injector(
      faults::FaultPlan::parse("map_task=0,map_transient=1"));
  EXPECT_THROW(injector.on_map_task(0), TransientError);
}

TEST(Injector, JobSiteFiresTransientAndBounded) {
  faults::Injector injector(
      faults::FaultPlan::parse("job_run=0,job_fires=2"));
  // The job boundary is where job-level retry applies, so the site always
  // throws the retry-classified fault type.
  EXPECT_THROW(injector.on_job_run("job-a"), faults::TransientInjectedFault);
  try {
    injector.on_job_run("job-b");
    FAIL() << "expected a job-boundary fault";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("job boundary"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("job-b"), std::string::npos);
  }
  EXPECT_NO_THROW(injector.on_job_run("job-c"));  // budget exhausted
  EXPECT_EQ(injector.injected(), 2u);
}

// ---------- injected failures across the three strategies -------------------

TEST(FaultMatrix, PipelinedMapperFaultSurfacesWithAttribution) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 1);
  RuntimeConfig cfg = ramr_config(3, 2);
  cfg.fault_spec = "map_task=0";
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  try {
    rt.run(app, input);
    FAIL() << "expected an injected fault";
  } catch (const faults::InjectedFault& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("injected fault: map task"), std::string::npos);
    EXPECT_NE(what.find("mapper-"), std::string::npos);
    EXPECT_NE(what.find("map-combine"), std::string::npos);
  }
}

TEST(FaultMatrix, FusedMapperFaultSurfaces) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 2);
  phoenix::Options o = phoenix_options(3);
  o.fault_spec = "map_task=0";
  phoenix::Runtime<ModCountApp> rt(topo::host(), o);
  EXPECT_THROW(rt.run(app, input), faults::InjectedFault);
}

TEST(FaultMatrix, AtomicMapperFaultSurfaces) {
  const ModCountGlobalApp app;
  const auto input = make_numbers(10000, 3);
  mrphi::Options o;
  o.num_workers = 3;
  o.pin_policy = PinPolicy::kOsDefault;
  o.fault_spec = "map_task=0";
  mrphi::Runtime<ModCountGlobalApp> rt(topo::host(), o);
  EXPECT_THROW(rt.run(app, input), faults::InjectedFault);
}

TEST(FaultMatrix, PipelinedCombinerFaultSurfacesWithAttribution) {
  const ModCountApp app;
  const auto input = make_numbers(20000, 4);
  RuntimeConfig cfg = ramr_config(3, 2);
  cfg.fault_spec = "combiner_batch=1,combiner=0";
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  try {
    rt.run(app, input);
    FAIL() << "expected an injected fault";
  } catch (const faults::InjectedFault& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("combiner-0"), std::string::npos);
  }
}

TEST(FaultMatrix, BothPoolsFailingStillTerminates) {
  // The join protocol must report one root cause and *suppress* (not hang
  // on, not drop silently) the other pool's failure.
  const ModCountApp app;
  const auto input = make_numbers(20000, 5);
  RuntimeConfig cfg = ramr_config(2, 2);
  cfg.fault_spec = "map_task=0,combiner_batch=1";
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  EXPECT_THROW(rt.run(app, input), faults::InjectedFault);
}

TEST(FaultMatrix, ContainerAllocationFaultSurfaces) {
  const ModCountApp app;
  const auto input = make_numbers(1000, 6);
  RuntimeConfig cfg = ramr_config(2, 1);
  cfg.fault_spec = "alloc=0";
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  try {
    rt.run(app, input);
    FAIL() << "expected an injected fault";
  } catch (const faults::InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("container allocation"),
              std::string::npos);
  }

  phoenix::Options o = phoenix_options(2);
  o.fault_spec = "alloc=1";
  phoenix::Runtime<ModCountApp> baseline(topo::host(), o);
  EXPECT_THROW(baseline.run(app, input), faults::InjectedFault);
}

// ---------- task-level retry -------------------------------------------------

TEST(TaskRetry, TransientFaultsRetriedToSuccessPipelined) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 7);
  RuntimeConfig cfg = ramr_config(2, 1);
  cfg.fault_spec = "map_task=0,map_transient=1,map_fires=2";
  cfg.max_task_retries = 3;
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
  EXPECT_EQ(result.task_retries, 2u);  // one retry per injected fire
  EXPECT_EQ(result.task_aborts, 0u);
}

TEST(TaskRetry, TransientFaultsRetriedToSuccessFused) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 8);
  phoenix::Options o = phoenix_options(2);
  o.fault_spec = "map_task=0,map_transient=1,map_fires=2";
  o.max_task_retries = 3;
  phoenix::Runtime<ModCountApp> rt(topo::host(), o);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
  EXPECT_EQ(result.task_retries, 2u);
  EXPECT_EQ(result.task_aborts, 0u);
}

TEST(TaskRetry, ExhaustedBudgetAborts) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 9);
  RuntimeConfig cfg = ramr_config(2, 1);
  // Far more fires than the budget of 1 retry can absorb.
  cfg.fault_spec = "map_task=0,map_transient=1,map_fires=100";
  cfg.max_task_retries = 1;
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  EXPECT_THROW(rt.run(app, input), TransientError);
}

TEST(TaskRetry, NoRetryBudgetFailsImmediately) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 10);
  RuntimeConfig cfg = ramr_config(2, 1);
  cfg.fault_spec = "map_task=0,map_transient=1";
  core::Runtime<ModCountApp> rt(topo::host(), cfg);  // max_task_retries = 0
  EXPECT_THROW(rt.run(app, input), TransientError);
}

// ---------- watchdog: stall + deadline ---------------------------------------

TEST(Watchdog, InjectedStallTripsStallVerdict) {
  const ModCountApp app;
  const auto input = make_numbers(40000, 11);
  RuntimeConfig cfg = ramr_config(2, 1);
  // Emission #100 hangs "forever"; the watchdog must cut the run loose long
  // before the stall would naturally end.
  cfg.fault_spec = "stall_emit=100,stall_ms=60000";
  cfg.stall_timeout_ms = 250;
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto start = std::chrono::steady_clock::now();
  try {
    rt.run(app, input);
    FAIL() << "expected an AbortError";
  } catch (const common::AbortError& e) {
    EXPECT_EQ(e.cause(), common::CancelCause::kStall);
    EXPECT_EQ(e.phase(), "map-combine");
    EXPECT_NE(e.worker().find("mapper-"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("stall"), std::string::npos);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Generous bound (TSan): but far below the 60 s injected stall.
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(Watchdog, DeadlineVerdictAbortsRun) {
  const ModCountApp app;
  const auto input = make_numbers(40000, 12);
  RuntimeConfig cfg = ramr_config(2, 1);
  cfg.fault_spec = "stall_emit=100,stall_ms=60000";
  cfg.deadline_ms = 200;
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto start = std::chrono::steady_clock::now();
  try {
    rt.run(app, input);
    FAIL() << "expected an AbortError";
  } catch (const common::AbortError& e) {
    EXPECT_EQ(e.cause(), common::CancelCause::kDeadline);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(30));
}

TEST(Watchdog, CleanRunUnaffectedByWatchdog) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 13);
  RuntimeConfig cfg = ramr_config(2, 1);
  cfg.deadline_ms = 120000;  // plenty
  cfg.stall_timeout_ms = 60000;
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
  EXPECT_EQ(result.task_retries, 0u);
}

// ---------- configuration validation -----------------------------------------

TEST(Config, PipelinedRejectsSinglePoolShape) {
  // The zero-combiner crash class: driving the pipelined strategy from a
  // single-pool PoolSet must be a structured ConfigError, not a crash in
  // collect().
  const ModCountApp app;
  const auto input = make_numbers(100, 14);
  engine::PoolSet pools(topo::host(), 2, PinPolicy::kOsDefault);
  engine::PhaseDriver driver(pools);
  engine::PipelinedSpsc<ModCountApp> strategy;
  EXPECT_THROW(driver.run(strategy, app, input), ConfigError);
}

TEST(Config, ResolvedRejectsCombinerHeavyShape) {
  RuntimeConfig cfg = ramr_config(1, 2);
  EXPECT_THROW(cfg.resolved(8), ConfigError);
}

TEST(Config, RobustnessKnobsReadFromEnv) {
  env::ScopedOverride faults(kEnvFaults, "map_task=3");
  env::ScopedOverride retries(kEnvTaskRetries, "2");
  env::ScopedOverride backoff(kEnvBackoff, "exp");
  env::ScopedOverride cap(kEnvSleepCapMicros, "4000");
  env::ScopedOverride deadline(kEnvDeadlineMs, "9000");
  env::ScopedOverride stall(kEnvStallMs, "700");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.fault_spec, "map_task=3");
  EXPECT_EQ(cfg.max_task_retries, 2u);
  EXPECT_EQ(cfg.backoff, BackoffKind::kExponential);
  EXPECT_EQ(cfg.sleep_cap_micros, 4000u);
  EXPECT_EQ(cfg.deadline_ms, 9000u);
  EXPECT_EQ(cfg.stall_timeout_ms, 700u);
}

TEST(Config, ExponentialBackoffRunStaysCorrect) {
  const ModCountApp app;
  const auto input = make_numbers(30000, 15);
  RuntimeConfig cfg = ramr_config(3, 1);
  cfg.backoff = BackoffKind::kExponential;
  cfg.sleep_micros = 10;
  cfg.sleep_cap_micros = 500;
  cfg.queue_capacity = 8;  // force backpressure through the ladder
  cfg.batch_size = 4;
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
  EXPECT_GT(result.queue_failed_pushes, 0u);
}

// ---------- the join protocol ------------------------------------------------

TEST(JoinProtocol, CollectRecordsSuppressedSecondError) {
  sched::ThreadPool a(1);
  sched::ThreadPool b(1);
  a.start([](std::size_t) { throw Error("first pool failure"); });
  b.start([](std::size_t) { throw Error("second pool failure"); });
  const engine::JoinOutcome outcome = engine::join_pools_collect(a, b);
  ASSERT_TRUE(outcome.first_error);
  EXPECT_EQ(outcome.suppressed, 1u);
  EXPECT_EQ(outcome.suppressed_message, "second pool failure");
  try {
    std::rethrow_exception(outcome.first_error);
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "first pool failure");
  }
}

TEST(JoinProtocol, CleanJoinReportsNothing) {
  sched::ThreadPool a(1);
  sched::ThreadPool b(1);
  a.start([](std::size_t) {});
  b.start([](std::size_t) {});
  const engine::JoinOutcome outcome = engine::join_pools_collect(a, b);
  EXPECT_FALSE(outcome.first_error);
  EXPECT_EQ(outcome.suppressed, 0u);
}

// ---------- pools survive a failed run ---------------------------------------

TEST(Recovery, PoolsReusableAfterInjectedFailure) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 16);
  // A transient plan whose budget empties during run #1: run #2 on the SAME
  // runtime re-parses the plan (fresh Injector) and fails identically — but
  // critically the pools must still join and execute cleanly in between.
  RuntimeConfig cfg = ramr_config(2, 1);
  cfg.fault_spec = "map_task=0,map_transient=1,map_fires=2";
  cfg.max_task_retries = 3;
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto first = rt.run(app, input);
  EXPECT_TRUE(pairs_match(first.pairs, app.reference(input)));
  const auto second = rt.run(app, input);
  EXPECT_TRUE(pairs_match(second.pairs, app.reference(input)));
  EXPECT_EQ(second.task_retries, 2u);  // fresh injector per run()
}

}  // namespace
}  // namespace ramr
