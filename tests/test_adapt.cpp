// Tests for the adaptive runtime controller (src/adapt/): the suitability
// model against the repo's Fig. 10a reproduction, the plan cache (round
// trip + corrupt-file recovery), env-knob validation, the governor policy
// and thread, and end-to-end probe/commit/cache runs on real inputs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/governor.hpp"
#include "adapt/plan.hpp"
#include "adapt/plan_cache.hpp"
#include "adapt/suitability.hpp"
#include "apps/flavor.hpp"
#include "apps/suite.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "core/runtime.hpp"
#include "mini_apps.hpp"
#include "sim/machine.hpp"
#include "sim/model.hpp"
#include "sim/workload.hpp"
#include "synth/synth_app.hpp"
#include "telemetry/metrics.hpp"
#include "topology/topology.hpp"

namespace ramr::adapt {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ramr_" + name;
}

// ---- suitability model ----------------------------------------------------

// The default floors must reproduce the paper's Fig. 10a verdicts on the
// repo's own reproduction of the figure (Haswell model, default
// containers): WC/KM/MM profit from decoupling, HG/LR are too light, PCA
// is heavy but stall-free.
TEST(Suitability, Fig10aVerdictsMatchPaper) {
  const auto machine = sim::haswell();
  const SuitabilityModel model;
  const struct {
    apps::AppId id;
    bool pipelined;
  } expected[] = {
      {apps::AppId::kWordCount, true},
      {apps::AppId::kKMeans, true},
      {apps::AppId::kHistogram, false},
      {apps::AppId::kPca, false},
      {apps::AppId::kMatrixMultiply, true},
      {apps::AppId::kLinearRegression, false},
  };
  for (const auto& e : expected) {
    const auto workload =
        sim::suite_workload(e.id, apps::ContainerFlavor::kDefault,
                            apps::PlatformId::kHaswell, apps::SizeClass::kLarge);
    const auto counters = sim::simulate_phoenix(machine, workload).counters;
    const Verdict v = judge_counters(model, counters);
    EXPECT_EQ(v.pipelined, e.pipelined)
        << apps::app_full_name(e.id) << ": " << v.reason;
  }
}

TEST(Suitability, SplitCountersComplementarityStrengthensScore) {
  const SuitabilityModel model;
  perf::Counters map_side;
  map_side.instructions = 1000;
  map_side.mem_stall_cycles = 10;
  map_side.resource_stall_cycles = 5;
  map_side.input_bytes = 50;
  perf::Counters combine_side;
  combine_side.instructions = 500;
  combine_side.mem_stall_cycles = 150;
  combine_side.resource_stall_cycles = 100;
  combine_side.input_bytes = 50;

  const Verdict split = judge_split_counters(model, map_side, combine_side);
  EXPECT_TRUE(split.pipelined);
  EXPECT_NE(split.reason.find("complementary"), std::string::npos);

  // Same totals with the stalls on the map side: verdict holds (the Fig. 10
  // rule sees identical totals) but the complementarity bump is gone.
  const Verdict swapped = judge_split_counters(model, combine_side, map_side);
  EXPECT_TRUE(swapped.pipelined);
  EXPECT_GT(split.score, swapped.score);
}

TEST(Suitability, EmpiricalRuleNeedsBothIntensityAndCombineShare) {
  const SuitabilityModel model;
  EmpiricalSample heavy;
  heavy.map_cpu_seconds = 0.6;
  heavy.combine_cpu_seconds = 0.4;
  heavy.records = 1'000'000;  // 1000 ns/record
  EXPECT_TRUE(judge_empirical(model, heavy).pipelined);

  EmpiricalSample cheap = heavy;
  cheap.records = 100'000'000;  // 10 ns/record: too light
  const Verdict light = judge_empirical(model, cheap);
  EXPECT_FALSE(light.pipelined);
  EXPECT_NE(light.reason.find("too cheap"), std::string::npos);

  EmpiricalSample map_bound = heavy;
  map_bound.map_cpu_seconds = 0.95;
  map_bound.combine_cpu_seconds = 0.05;  // combine share 5%
  EXPECT_FALSE(judge_empirical(model, map_bound).pipelined);

  EXPECT_FALSE(judge_empirical(model, EmpiricalSample{}).pipelined);
}

// ---- plan identity + cache ------------------------------------------------

TEST(Plan, SizeBucketAndCacheKeyAreStable)
{
  EXPECT_EQ(input_size_bucket(0), 0u);
  EXPECT_EQ(input_size_bucket(1), 1u);
  EXPECT_EQ(input_size_bucket(1023), 10u);
  EXPECT_EQ(input_size_bucket(1024), 11u);

  const PlanKey key{"wc", 11, 0xabcULL};
  EXPECT_EQ(key.cache_key(), "wc/b11/tabc");

  const auto host = topo::host();
  EXPECT_EQ(topology_hash(host), topology_hash(host));
}

TEST(PlanCache, RoundTripAcrossInstances) {
  const std::string path = temp_path("plan_cache_roundtrip.json");
  std::remove(path.c_str());

  PlanCache cache(path);
  EXPECT_FALSE(cache.corrupt());
  EXPECT_EQ(cache.size(), 0u);

  const PlanKey key{"synth", 8, 0x1234ULL};
  engine::PlanInfo plan;
  plan.strategy = "pipelined";
  plan.ratio = 3;
  plan.batch_size = 512;
  plan.queue_capacity = 4096;
  plan.pin_policy = "os-default";
  plan.source = "probe";
  cache.store(key, plan);

  PlanCache reloaded(path);
  EXPECT_FALSE(reloaded.corrupt());
  EXPECT_EQ(reloaded.size(), 1u);
  const auto hit = reloaded.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->strategy, "pipelined");
  EXPECT_EQ(hit->ratio, 3u);
  EXPECT_EQ(hit->batch_size, 512u);
  EXPECT_EQ(hit->queue_capacity, 4096u);
  EXPECT_EQ(hit->pin_policy, "os-default");
  EXPECT_EQ(hit->source, "cache");  // provenance reflects this run, not store

  const PlanKey other{"synth", 9, 0x1234ULL};
  EXPECT_FALSE(reloaded.lookup(other).has_value());
  std::remove(path.c_str());
}

TEST(PlanCache, CorruptFileDegradesAndStoreRecovers) {
  const std::string path = temp_path("plan_cache_corrupt.json");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"plans\": [this is not json";
  }
  PlanCache cache(path);
  EXPECT_TRUE(cache.corrupt());
  EXPECT_EQ(cache.size(), 0u);

  const PlanKey key{"wc", 4, 0x9ULL};
  engine::PlanInfo plan;
  plan.strategy = "fused";
  plan.ratio = 2;
  plan.batch_size = 256;
  plan.queue_capacity = 5000;
  plan.pin_policy = "paired";
  cache.store(key, plan);  // whole-file rewrite is the recovery path
  EXPECT_FALSE(cache.corrupt());

  PlanCache reloaded(path);
  EXPECT_FALSE(reloaded.corrupt());
  ASSERT_TRUE(reloaded.lookup(key).has_value());
  EXPECT_EQ(reloaded.lookup(key)->strategy, "fused");
  std::remove(path.c_str());
}

TEST(PlanCache, MissingFileIsEmptyNotCorrupt) {
  const std::string path = temp_path("plan_cache_missing.json");
  std::remove(path.c_str());
  PlanCache cache(path);
  EXPECT_FALSE(cache.corrupt());
  EXPECT_EQ(cache.size(), 0u);
}

// ---- env-knob validation --------------------------------------------------

TEST(EnvValidation, OutOfRangeKnobsNameTheVariable) {
  const struct {
    const char* name;
    const char* value;
  } bad[] = {
      {kEnvRatio, "0"},
      {kEnvRatio, "4096"},
      {kEnvSleepCapMicros, "0"},
      {kEnvSampleMicros, "70000000"},
  };
  for (const auto& b : bad) {
    env::ScopedOverride guard(b.name, b.value);
    try {
      (void)RuntimeConfig::from_env();
      FAIL() << b.name << "=" << b.value << " was accepted";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(b.name), std::string::npos)
          << "error does not name the variable: " << e.what();
    }
  }
}

TEST(EnvValidation, InRangeKnobsStillParse) {
  env::ScopedOverride ratio(kEnvRatio, "3");
  env::ScopedOverride cap(kEnvSleepCapMicros, "2000");
  env::ScopedOverride sample(kEnvSampleMicros, "500");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.mapper_combiner_ratio, 3u);
  EXPECT_EQ(cfg.sleep_cap_micros, 2000u);
  EXPECT_EQ(cfg.sample_interval_us, 500u);
  EXPECT_TRUE(cfg.env_overrides.ratio);
  EXPECT_TRUE(cfg.env_overrides.sleep_cap);
  EXPECT_TRUE(cfg.env_overrides.any_plan_knob());
}

TEST(EnvValidation, AdaptModeParsesAndRejects) {
  EXPECT_EQ(parse_adapt_mode("off"), AdaptMode::kOff);
  EXPECT_EQ(parse_adapt_mode("probe"), AdaptMode::kProbe);
  EXPECT_EQ(parse_adapt_mode("full"), AdaptMode::kFull);
  EXPECT_THROW(parse_adapt_mode("bogus"), ConfigError);

  env::ScopedOverride mode(kEnvAdapt, "full");
  env::ScopedOverride cache(kEnvPlanCache, "/tmp/x.json");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.adapt_mode, AdaptMode::kFull);
  EXPECT_EQ(cfg.plan_cache_path, "/tmp/x.json");
}

// ---- governor -------------------------------------------------------------

TEST(Governor, DefaultPolicyDoublesUnderCongestion) {
  DefaultTuningPolicy policy;
  engine::TuningObservation obs;
  obs.failed_push_rate = 0.20;
  obs.batch_size = 64;
  obs.sleep_cap_us = 100;
  const engine::TuningDecision d = policy.on_observation(obs);
  ASSERT_TRUE(d.batch_size.has_value());
  EXPECT_EQ(*d.batch_size, 128u);
  ASSERT_TRUE(d.sleep_cap_us.has_value());
  EXPECT_EQ(*d.sleep_cap_us, 200u);
}

TEST(Governor, DefaultPolicyHalvesOnClearUnderrun) {
  DefaultTuningPolicy policy;
  engine::TuningObservation obs;
  obs.failed_push_rate = 0.0;
  obs.occupancy_fraction = 0.02;
  obs.batch_p50 = 10;
  obs.batch_size = 64;
  obs.sleep_cap_us = 100;
  const engine::TuningDecision d = policy.on_observation(obs);
  ASSERT_TRUE(d.batch_size.has_value());
  EXPECT_EQ(*d.batch_size, 32u);
  EXPECT_FALSE(d.sleep_cap_us.has_value());
}

TEST(Governor, DefaultPolicyLeavesHealthySteadyStateAlone) {
  DefaultTuningPolicy policy;
  engine::TuningObservation obs;
  obs.failed_push_rate = 0.01;
  obs.occupancy_fraction = 0.5;
  obs.batch_p50 = 60;
  obs.batch_size = 64;
  const engine::TuningDecision d = policy.on_observation(obs);
  EXPECT_FALSE(d.batch_size.has_value());
  EXPECT_FALSE(d.sleep_cap_us.has_value());
}

// The governor thread over fabricated live metrics: sustained failed
// pushes must grow the batch, and every applied change stays within the
// safe bounds (batch in [1, capacity/2]).
TEST(Governor, ThreadReactsToFailedPushesWithinBounds) {
  telemetry::MetricRegistry registry(1);
  telemetry::Counter& failed = registry.counter("queue_failed_pushes");
  telemetry::Histogram& batches = registry.histogram("batch_sizes");

  engine::TuningControl control(64, 100);
  DefaultTuningPolicy policy;
  GovernorOptions options;
  options.interval = std::chrono::microseconds(1000);
  options.queue_capacity = 1024;
  Governor governor(control, policy, registry, options);
  governor.start();
  for (int i = 0; i < 100 && control.batch_size() < 512; ++i) {
    failed.add(0, 50);       // ~34% failure rate per window
    batches.record(0, 96);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  governor.stop();

  EXPECT_GT(control.batch_size(), 64u);
  EXPECT_LE(control.batch_size(), 512u);  // capacity / 2
  const auto actions = governor.actions();
  ASSERT_FALSE(actions.empty());
  for (const auto& a : actions) {
    EXPECT_TRUE(a.knob == "batch_size" || a.knob == "sleep_cap_us") << a.knob;
    if (a.knob == "batch_size") {
      EXPECT_GE(a.to, 1u);
      EXPECT_LE(a.to, 512u);
    } else {
      EXPECT_GE(a.to, 1u);
      EXPECT_LE(a.to, 10'000'000u);
    }
  }
}

// ---- end-to-end controller runs -------------------------------------------

RuntimeConfig adaptive_config(const std::string& cache_path) {
  RuntimeConfig cfg;
  cfg.adapt_mode = AdaptMode::kFull;
  cfg.plan_cache_path = cache_path;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  return cfg;
}

// Light histogram-like workload: records are far too cheap to amortize
// queue traffic, so the probe must commit the fused plan — and the stitched
// result (probe slices + main run) must still count every element.
TEST(AdaptE2E, LightWorkloadCommitsFusedAndStaysCorrect) {
  const std::string cache = temp_path("adapt_light.json");
  std::remove(cache.c_str());
  const RuntimeConfig cfg = adaptive_config(cache);

  ramr::testing::ModCountApp app;
  app.chunk = 128;  // 256 splits; each probe slice covers thousands of
                    // records so fixed probe costs amortize out
  std::vector<std::uint64_t> input(32768);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = i;

  core::Runtime<ramr::testing::ModCountApp> runtime(topo::host(), cfg);
  const auto result = runtime.run(app, input);

  EXPECT_EQ(result.plan.strategy, "fused");
  EXPECT_EQ(result.plan.source, "probe");
  EXPECT_TRUE(result.plan.decided());
  std::uint64_t total = 0;
  for (const auto& [k, v] : result.pairs) total += v;
  EXPECT_EQ(total, input.size());
  const auto reference = app.reference(input);
  ASSERT_EQ(result.pairs.size(), reference.size());
  for (const auto& [k, v] : result.pairs) {
    EXPECT_EQ(reference.at(k), v) << "key " << k;
  }

  // Warm run: same app, same input bucket, same machine — cache hit, no
  // probe, same verdict.
  core::Runtime<ramr::testing::ModCountApp> warm(topo::host(), cfg);
  const auto again = warm.run(app, input);
  EXPECT_EQ(again.plan.strategy, "fused");
  EXPECT_EQ(again.plan.source, "cache");
  std::uint64_t warm_total = 0;
  for (const auto& [k, v] : again.pairs) warm_total += v;
  EXPECT_EQ(warm_total, input.size());
  std::remove(cache.c_str());
}

// Heavy synthetic workload (expensive per-record combine carried in the
// value): the empirical rule must commit the pipelined plan, the governor
// must stay within bounds, and the plan report must be written.
TEST(AdaptE2E, HeavyWorkloadCommitsPipelinedWithGovernor) {
  const std::string cache = temp_path("adapt_heavy.json");
  const std::string report = temp_path("adapt_heavy_report.json");
  std::remove(cache.c_str());
  std::remove(report.c_str());
  env::ScopedOverride report_env(kEnvAdaptReport, report);
  const RuntimeConfig cfg = adaptive_config(cache);

  synth::SynthParams params;
  params.map_kind = synth::WorkKind::kCpu;
  params.map_intensity = 60;
  params.combine_kind = synth::WorkKind::kCpu;
  params.combine_intensity = 2000;
  params.elements = 3000;
  params.keys = 32;
  params.split_elements = 12;  // 250 splits; probes use at most half
  params.arena_bytes = 1 << 16;
  synth::SynthApp app;
  app.container_keys = params.keys;

  core::Runtime<synth::SynthApp> runtime(topo::host(), cfg);
  const auto result = runtime.run(app, params);

  EXPECT_EQ(result.plan.strategy, "pipelined");
  EXPECT_EQ(result.plan.source, "probe");
  std::uint64_t payload = 0;
  for (const auto& [k, v] : result.pairs) payload += v.payload;
  EXPECT_EQ(payload, synth::synth_expected_payload_sum(params.elements));

  // Governor actions (if any fired on this host) stay within safe bounds.
  for (const auto& a : result.governor_actions) {
    EXPECT_TRUE(a.knob == "batch_size" || a.knob == "sleep_cap_us") << a.knob;
    if (a.knob == "batch_size") {
      EXPECT_GE(a.to, 1u);
      EXPECT_LE(a.to, cfg.queue_capacity / 2);
    }
  }

  // The ramr-adapt-plan-v1 report documents the decision.
  std::ifstream in(report);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"schema\":\"ramr-adapt-plan-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"strategy\":\"pipelined\""), std::string::npos);
  EXPECT_NE(doc.find("\"source\":\"probe\""), std::string::npos);
  EXPECT_NE(doc.find("\"candidates\":["), std::string::npos);
  std::remove(cache.c_str());
  std::remove(report.c_str());
}

// RAMR_ADAPT=off keeps the historical path: no probe, default provenance,
// and a summary() with no plan mention (byte-stable output).
TEST(AdaptE2E, OffModeRunsTheStaticPath) {
  RuntimeConfig cfg;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  ASSERT_EQ(cfg.adapt_mode, AdaptMode::kOff);

  ramr::testing::ModCountApp app;
  std::vector<std::uint64_t> input(2048);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = i * 7;

  core::Runtime<ramr::testing::ModCountApp> runtime(topo::host(), cfg);
  const auto result = runtime.run(app, input);
  EXPECT_EQ(result.plan.strategy, "pipelined");
  EXPECT_EQ(result.plan.source, "default");
  EXPECT_FALSE(result.plan.decided());
  EXPECT_TRUE(result.governor_actions.empty());
  EXPECT_EQ(result.summary().find("plan="), std::string::npos);
}

// Inputs too small to afford the calibration budget skip probing and run
// the static plan (correctness first, adaptivity only when affordable).
TEST(AdaptE2E, TinyInputSkipsProbing) {
  const std::string cache = temp_path("adapt_tiny.json");
  std::remove(cache.c_str());
  const RuntimeConfig cfg = adaptive_config(cache);

  ramr::testing::ModCountApp app;
  std::vector<std::uint64_t> input(96);  // 2 splits at chunk 64
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = i;

  core::Runtime<ramr::testing::ModCountApp> runtime(topo::host(), cfg);
  const auto result = runtime.run(app, input);
  EXPECT_EQ(result.plan.source, "default");  // no probe, nothing cached
  std::uint64_t total = 0;
  for (const auto& [k, v] : result.pairs) total += v;
  EXPECT_EQ(total, input.size());
  EXPECT_FALSE(PlanCache(cache).lookup(PlanKey{
      app_label<ramr::testing::ModCountApp>(),
      input_size_bucket(app.num_splits(input)),
      topology_hash(topo::host())}).has_value());
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace ramr::adapt
