// Tests for the Phoenix++-style baseline runtime: correctness against serial
// references, phase accounting, worker/task knobs.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "mini_apps.hpp"
#include "phoenix/runtime.hpp"
#include "topology/topology.hpp"

namespace ramr::phoenix {
namespace {

using testing::make_lines;
using testing::make_numbers;
using testing::ModCountApp;
using testing::pairs_match;
using testing::WordCountMiniApp;

Options small_options(std::size_t workers) {
  Options o;
  o.num_workers = workers;
  o.pin_policy = PinPolicy::kOsDefault;  // host may be tiny
  return o;
}

TEST(PhoenixRuntime, ModCountMatchesReference) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 1);
  Runtime<ModCountApp> rt(topo::host(), small_options(4));
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

TEST(PhoenixRuntime, WordCountMatchesReference) {
  const WordCountMiniApp app;
  const auto input = make_lines(500, 2);
  Runtime<WordCountMiniApp> rt(topo::host(), small_options(3));
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

TEST(PhoenixRuntime, SingleWorkerIsCorrect) {
  const ModCountApp app;
  const auto input = make_numbers(1000, 3);
  Runtime<ModCountApp> rt(topo::host(), small_options(1));
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

TEST(PhoenixRuntime, EmptyInputYieldsEmptyOutput) {
  const ModCountApp app;
  Runtime<ModCountApp> rt(topo::host(), small_options(2));
  const auto result = rt.run(app, {});
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.tasks_executed, 0u);
}

TEST(PhoenixRuntime, PhaseTimersCoverMapCombine) {
  const ModCountApp app;
  const auto input = make_numbers(20000, 4);
  Runtime<ModCountApp> rt(topo::host(), small_options(2));
  const auto result = rt.run(app, input);
  EXPECT_GT(result.timers.seconds(Phase::kMapCombine), 0.0);
  EXPECT_GT(result.timers.total(), 0.0);
}

TEST(PhoenixRuntime, TaskAccountingMatchesSplitCount) {
  ModCountApp app;
  app.chunk = 100;
  const auto input = make_numbers(1000, 5);  // 10 splits
  Options o = small_options(2);
  o.task_size = 3;  // ceil(10/3) = 4 tasks
  Runtime<ModCountApp> rt(topo::host(), o);
  const auto result = rt.run(app, input);
  EXPECT_EQ(result.tasks_executed, 4u);
  EXPECT_EQ(result.local_pops + result.steals, 4u);
}

TEST(PhoenixRuntime, ResultIdenticalAcrossWorkerCounts) {
  const ModCountApp app;
  const auto input = make_numbers(5000, 6);
  const auto ref = app.reference(input);
  for (std::size_t workers : {1u, 2u, 5u, 8u}) {
    Runtime<ModCountApp> rt(topo::host(), small_options(workers));
    EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, ref))
        << workers << " workers";
  }
}

TEST(PhoenixRuntime, RuntimeReusableAcrossRuns) {
  const ModCountApp app;
  Runtime<ModCountApp> rt(topo::host(), small_options(2));
  const auto in1 = make_numbers(1000, 7);
  const auto in2 = make_numbers(2000, 8);
  EXPECT_TRUE(pairs_match(rt.run(app, in1).pairs, app.reference(in1)));
  EXPECT_TRUE(pairs_match(rt.run(app, in2).pairs, app.reference(in2)));
}

TEST(PhoenixRuntime, PinnedPoliciesStillCorrectOnModelledTopology) {
  // Pinning to CPUs the host lacks must degrade gracefully, never corrupt.
  const ModCountApp app;
  const auto input = make_numbers(3000, 9);
  for (PinPolicy p : {PinPolicy::kRoundRobin, PinPolicy::kRamrPaired}) {
    Options o;
    o.num_workers = 4;
    o.pin_policy = p;
    Runtime<ModCountApp> rt(topo::haswell_server(), o);
    EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
  }
}

TEST(PhoenixRuntime, DefaultWorkerCountFillsTopology) {
  Options o;
  o.pin_policy = PinPolicy::kOsDefault;
  Runtime<ModCountApp> rt(topo::fig3_example(), o);
  EXPECT_EQ(rt.num_workers(), 16u);
}

TEST(PhoenixRuntime, BlockedSplitDistributionStaysCorrect) {
  const ModCountApp app;
  const auto input = make_numbers(6000, 22);
  Options o = small_options(3);
  o.split_distribution = SplitDistribution::kBlocked;
  Runtime<ModCountApp> rt(topo::host(), o);
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

TEST(PhoenixRuntime, RunOnceConvenienceWorks) {
  const ModCountApp app;
  const auto input = make_numbers(500, 10);
  Options o = small_options(2);
  const auto result = run_once(app, input, o);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

}  // namespace
}  // namespace ramr::phoenix
