// Tests for the RAMR_MEM subsystem: bump arenas (alignment, high-water,
// wholesale reset with chunk reuse), page-backed buffers (forced fallback
// via RAMR_HUGEPAGES=0), the MemoryLayer's node assignment and ring-storage
// hook, and end-to-end runs under mem=arena / mem=numa matching the default
// path's results exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_pipelined.hpp"
#include "mem/arena.hpp"
#include "mem/layer.hpp"
#include "mem/pages.hpp"
#include "mini_apps.hpp"
#include "spsc/ring.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"

namespace ramr::mem {
namespace {

using ramr::testing::make_numbers;
using ramr::testing::ModCountApp;
using ramr::testing::pairs_match;

// ---------- Arena ----------------------------------------------------------------

TEST(Arena, BumpAllocationsAreAlignedAndDisjoint) {
  Arena arena(8192);
  auto* a = static_cast<unsigned char*>(arena.allocate(100, 8));
  auto* b = static_cast<unsigned char*>(arena.allocate(100, 64));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  // Disjoint: writing one block never touches the other.
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(a[99], 0xAA);
  EXPECT_EQ(b[0], 0xBB);
  EXPECT_GE(arena.stats().allocated, 200u);
  EXPECT_EQ(arena.stats().high_water, arena.stats().allocated);
}

TEST(Arena, ResetKeepsChunksAndRewindsAllocation) {
  Arena arena(4096);
  for (int i = 0; i < 64; ++i) arena.allocate(512, 8);
  const std::size_t chunks_before = arena.stats().chunks;
  const std::size_t chunk_bytes_before = arena.stats().chunk_bytes;
  const std::size_t high_water = arena.stats().high_water;
  EXPECT_GT(chunks_before, 1u);  // must have grown past the first chunk

  arena.reset();
  EXPECT_EQ(arena.stats().allocated, 0u);
  EXPECT_EQ(arena.stats().resets, 1u);
  // Wholesale reset keeps the backing storage for reuse...
  EXPECT_EQ(arena.stats().chunks, chunks_before);
  EXPECT_EQ(arena.stats().chunk_bytes, chunk_bytes_before);
  // ...and the high-water mark survives across resets.
  EXPECT_EQ(arena.stats().high_water, high_water);

  // The same allocation pattern after reset reuses chunks: no growth.
  for (int i = 0; i < 64; ++i) arena.allocate(512, 8);
  EXPECT_EQ(arena.stats().chunks, chunks_before);
  EXPECT_EQ(arena.stats().chunk_bytes, chunk_bytes_before);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  Arena arena(4096);
  void* small = arena.allocate(64, 8);
  void* big = arena.allocate(1 << 20, 64);  // far beyond the chunk size
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5C, 1 << 20);  // the whole block must be writable
  EXPECT_GE(arena.stats().chunk_bytes, std::size_t{1} << 20);
}

TEST(Arena, ReleaseReturnsAllStorage) {
  Arena arena(4096);
  arena.allocate(10000, 8);
  arena.release();
  EXPECT_EQ(arena.stats().chunks, 0u);
  EXPECT_EQ(arena.stats().chunk_bytes, 0u);
  // Still usable afterwards.
  EXPECT_NE(arena.allocate(64, 8), nullptr);
}

TEST(ArenaAllocator, BacksAStdVector) {
  Arena arena(4096);
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> v{
      ArenaAllocator<std::uint64_t>(&arena)};
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), std::uint64_t{0}),
            1000u * 999u / 2);
  EXPECT_GE(arena.stats().high_water, 1000 * sizeof(std::uint64_t));
}

// ---------- PageBuffer ------------------------------------------------------------

TEST(PageBuffer, AllocatesWritableAlignedMemory) {
  PageBuffer buf(1 << 16, 64, /*node=*/-1, /*want_huge=*/true);
  ASSERT_TRUE(static_cast<bool>(buf));
  EXPECT_GE(buf.size(), std::size_t{1} << 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  std::memset(buf.data(), 0x7E, buf.size());
  EXPECT_EQ(static_cast<unsigned char*>(buf.data())[buf.size() - 1], 0x7E);
}

TEST(PageBuffer, ForcedFallbackViaEnvDisablesHugePages) {
  env::ScopedOverride off(kEnvHugePages, "0");
  EXPECT_FALSE(hugepages_enabled());
  PageBuffer buf(1 << 16, 64, -1, /*want_huge=*/true);
  ASSERT_TRUE(static_cast<bool>(buf));
  EXPECT_FALSE(buf.huge());  // the advice must not have been applied
  std::memset(buf.data(), 0x11, buf.size());  // still fully usable
}

TEST(PageBuffer, UnboundableNodeDegradesSilently) {
  // Node 4095 does not exist on any test host; binding must fail softly
  // and the block stay usable (first-touch placement takes over).
  PageBuffer buf(1 << 14, 64, /*node=*/4095, false);
  ASSERT_TRUE(static_cast<bool>(buf));
  std::memset(buf.data(), 0x22, buf.size());
  SUCCEED();  // no throw is the contract; bound() may be either way
}

TEST(PageBuffer, MoveTransfersOwnership) {
  PageBuffer a(1 << 12, 64, -1, false);
  void* data = a.data();
  PageBuffer b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(a.data(), nullptr);
}

// ---------- MemoryLayer -----------------------------------------------------------

topo::PinningPlan tiny_plan(const topo::Topology& topo) {
  // kOsDefault works on any host (including the 1-CPU CI box, where a
  // pinning policy would reject 2+1 workers); unpinned workers get node -1.
  return topo::make_plan(topo, PinPolicy::kOsDefault, 2, 1);
}

TEST(MemoryLayer, ArenaModeNeverBindsNodes) {
  const auto topo = topo::host();
  MemoryLayer layer(MemMode::kArena, topo, tiny_plan(topo));
  EXPECT_FALSE(layer.placement());
  EXPECT_EQ(layer.node_of_mapper(0), -1);
  EXPECT_EQ(layer.node_of_combiner(0), -1);
}

TEST(MemoryLayer, NumaModeAssignsNodesFromThePlan) {
  // Single-node hosts (the CI box) must still work: every node id is then
  // 0 or -1 (unpinned workers). The invariant is "never out of range", not
  // a particular numbering.
  const auto topo = topo::host();
  MemoryLayer layer(MemMode::kNuma, topo, tiny_plan(topo));
  EXPECT_TRUE(layer.placement());
  for (std::size_t m = 0; m < 2; ++m) {
    const int node = layer.node_of_mapper(m);
    EXPECT_GE(node, -1);
    EXPECT_LT(node, static_cast<int>(topo.num_sockets()));
  }
}

TEST(MemoryLayer, RingStorageRoundTripsThroughARing) {
  const auto topo = topo::host();
  MemoryLayer layer(MemMode::kArena, topo, tiny_plan(topo));
  {
    spsc::Ring<std::uint64_t> ring(64, layer.ring_storage(-1));
    ring.prefault();
    for (std::uint64_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(ring.try_push(std::uint64_t{i}));
    }
    std::uint64_t out = 0, sum = 0;
    while (ring.try_pop(out)) sum += out;
    EXPECT_EQ(sum, 64u * 63u / 2);
    EXPECT_GE(layer.end_run().ring_bytes, 64 * sizeof(std::uint64_t));
  }
  // The ring's destructor returned its block: the layer no longer counts it.
  EXPECT_EQ(layer.end_run().ring_bytes, 0u);
}

TEST(MemoryLayer, EndRunResetsArenasAndFoldsStats) {
  const auto topo = topo::host();
  MemoryLayer layer(MemMode::kArena, topo, tiny_plan(topo));
  layer.mapper_arena(0).allocate(5000, 8);
  layer.mapper_arena(1).allocate(100, 8);
  layer.combiner_arena(0).allocate(300, 8);
  const LayerStats stats = layer.end_run();
  EXPECT_EQ(stats.mode, "arena");
  EXPECT_GE(stats.arena_high_water, 5000u);  // deepest single arena
  EXPECT_GT(stats.arena_chunk_bytes, 0u);
  EXPECT_EQ(stats.arena_resets, 3u);  // one per arena
  EXPECT_EQ(layer.mapper_arena(0).stats().allocated, 0u);
}

// ---------- end-to-end: mem modes preserve results --------------------------------

engine::RunResult<std::uint64_t, std::uint64_t> run_mod_count(
    MemMode mode, std::size_t emit_batch = 0) {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 64;
  cfg.batch_size = 8;
  cfg.mem_mode = mode;
  cfg.emit_batch = emit_batch;
  engine::PoolSet pools(topo::host(), cfg);
  engine::PhaseDriver driver(pools);
  engine::PipelinedSpsc<ModCountApp> strategy;
  const auto input = make_numbers(20000, 42);
  return driver.run(strategy, ModCountApp{}, input);
}

TEST(MemEndToEnd, ArenaModeMatchesDefaultResults) {
  const auto base = run_mod_count(MemMode::kOff);
  const auto arena = run_mod_count(MemMode::kArena, /*emit_batch=*/16);
  ASSERT_EQ(arena.pairs.size(), base.pairs.size());
  EXPECT_EQ(arena.pairs, base.pairs);

  EXPECT_FALSE(base.mem.enabled());
  ASSERT_TRUE(arena.mem.enabled());
  EXPECT_EQ(arena.mem.mode, "arena");
  // The emit buffers allocate from the mapper arenas.
  EXPECT_GT(arena.mem.arena_high_water, 0u);
  EXPECT_GT(arena.mem.arena_resets, 0u);
  EXPECT_GT(arena.mem.ring_bytes, 0u);
  // Batched emit actually engaged.
  EXPECT_GT(arena.queue_push_batches, 0u);
  EXPECT_EQ(base.queue_push_batches, 0u);
  // And the stats line appears only when the subsystem is on.
  EXPECT_NE(arena.summary().find("mem=arena"), std::string::npos);
  EXPECT_EQ(base.summary().find("mem="), std::string::npos);
}

TEST(MemEndToEnd, NumaModeMatchesDefaultResults) {
  const auto base = run_mod_count(MemMode::kOff);
  const auto numa = run_mod_count(MemMode::kNuma, /*emit_batch=*/16);
  EXPECT_EQ(numa.pairs, base.pairs);
  ASSERT_TRUE(numa.mem.enabled());
  EXPECT_EQ(numa.mem.mode, "numa");
  EXPECT_GT(numa.mem.ring_bytes, 0u);
}

TEST(MemEndToEnd, ElementWiseEmitStillWorksUnderArenaMode) {
  // RAMR_EMIT_BATCH=0 opt-out: mem on, producer batching off.
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 64;
  cfg.batch_size = 8;
  cfg.mem_mode = MemMode::kArena;
  cfg.emit_batch = 0;
  cfg.env_overrides.emit_batch = true;  // as RAMR_EMIT_BATCH=0 would set
  engine::PoolSet pools(topo::host(), cfg);
  engine::PhaseDriver driver(pools);
  engine::PipelinedSpsc<ModCountApp> strategy;
  const auto input = make_numbers(5000, 7);
  const auto result = driver.run(strategy, ModCountApp{}, input);
  EXPECT_TRUE(pairs_match(result.pairs, ModCountApp{}.reference(input)));
  EXPECT_EQ(result.queue_push_batches, 0u);
  EXPECT_TRUE(result.mem.enabled());
}

// A mapper failure mid-phase with batched emit on: the failing worker's
// unwind path must flush/discard its buffer without hanging the combiner
// or the peer mapper (the cancel token interrupts a blocked flush).
struct FailingModApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type = ModCountApp::container_type;

  ModCountApp inner;

  std::size_t num_splits(const input_type& in) const {
    return inner.num_splits(in);
  }
  container_type make_container() const { return inner.make_container(); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * inner.chunk;
    const std::size_t end = std::min(begin + inner.chunk, in.size());
    for (std::size_t i = begin; i < end; ++i) {
      if (in[i] == 777) {
        throw Error("injected map failure");
      }
      emit(in[i] % inner.buckets, std::uint64_t{1});
    }
  }
};

TEST(MemEndToEnd, MapFailureUnderBatchedEmitJoinsCleanly) {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 8;  // tiny: producers block, exercising wait_full
  cfg.batch_size = 2;
  cfg.mem_mode = MemMode::kArena;
  cfg.emit_batch = 4;
  engine::PoolSet pools(topo::host(), cfg);
  engine::PhaseDriver driver(pools);
  engine::PipelinedSpsc<FailingModApp> strategy;
  auto input = make_numbers(50000, 3);
  input[input.size() / 2] = 777;  // poison one split mid-stream
  EXPECT_THROW(driver.run(strategy, FailingModApp{}, input), Error);

  // The same pools run clean work afterwards (arenas were reset).
  engine::PhaseDriver driver2(pools);
  engine::PipelinedSpsc<ModCountApp> ok;
  const auto small = make_numbers(2000, 5);
  const auto result = driver2.run(ok, ModCountApp{}, small);
  EXPECT_TRUE(pairs_match(result.pairs, ModCountApp{}.reference(small)));
}

// ---------- config plumbing -------------------------------------------------------

TEST(MemConfig, ParseMemModeAcceptsTheDocumentedSpellings) {
  EXPECT_EQ(parse_mem_mode("off"), MemMode::kOff);
  EXPECT_EQ(parse_mem_mode("0"), MemMode::kOff);
  EXPECT_EQ(parse_mem_mode("arena"), MemMode::kArena);
  EXPECT_EQ(parse_mem_mode("numa"), MemMode::kNuma);
  EXPECT_THROW(parse_mem_mode("bogus"), ConfigError);
}

TEST(MemConfig, MemModeDefaultsEmitBatchOn) {
  RuntimeConfig cfg;
  cfg.mem_mode = MemMode::kArena;
  const RuntimeConfig r = cfg.resolved(8);
  EXPECT_GT(r.emit_batch, 0u);
  EXPECT_LE(r.emit_batch, r.queue_capacity / 2);
}

TEST(MemConfig, ExplicitZeroEmitBatchWinsOverTheMemDefault) {
  RuntimeConfig cfg;
  cfg.mem_mode = MemMode::kArena;
  cfg.emit_batch = 0;
  cfg.env_overrides.emit_batch = true;  // as RAMR_EMIT_BATCH=0 would set
  EXPECT_EQ(cfg.resolved(8).emit_batch, 0u);
}

TEST(MemConfig, EmitBatchAboveCapacityIsRejected) {
  RuntimeConfig cfg;
  cfg.emit_batch = cfg.queue_capacity + 1;
  EXPECT_THROW(cfg.resolved(8), ConfigError);
}

TEST(MemConfig, SummaryMentionsMemOnlyWhenOn) {
  RuntimeConfig cfg;
  EXPECT_EQ(cfg.summary().find("mem="), std::string::npos);
  cfg.mem_mode = MemMode::kNuma;
  EXPECT_NE(cfg.summary().find("mem=numa"), std::string::npos);
}

}  // namespace
}  // namespace ramr::mem
