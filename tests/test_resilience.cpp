// Resilience layer of service mode (docs/ARCHITECTURE.md §13): job-level
// retry with backoff, the graceful-degradation ladder, hedged execution,
// the per-app circuit breaker, overload shedding, the job-boundary fault
// site, and the chaos harness — a concurrent job stream under injected
// map-task faults, emit stalls, and job-boundary faults that must end with
// every job terminal, retried outputs identical to the fault-free
// reference, and zero leaked cores or pool leases. Time bounds are
// generous: this suite runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <latch>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "engine/pool_depot.hpp"
#include "faults/injector.hpp"
#include "mini_apps.hpp"
#include "service/scheduler.hpp"
#include "topology/topology.hpp"

namespace ramr::service {
namespace {

using testing::make_numbers;
using testing::ModCountApp;
using testing::pairs_match;

RuntimeConfig job_config(std::size_t mappers, std::size_t combiners) {
  RuntimeConfig cfg;
  cfg.num_mappers = mappers;
  cfg.num_combiners = combiners;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 256;
  cfg.batch_size = 16;
  return cfg;
}

topo::Topology small_server() {
  return topo::make_server("resil-test", 1, 4, 2);  // 8 logical CPUs
}

// ---------- job-level retry --------------------------------------------------

TEST(Retry, TransientJobFaultsRetriedToSuccess) {
  Scheduler::Options opts;
  opts.max_retries = 3;
  opts.fault_spec = "job_run=0,job_fires=2";  // first two attempts fail
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(10000, 41);
  JobSpec spec;
  spec.name = "retry-me";
  spec.cores = 4;
  spec.config = job_config(2, 1);
  auto [id, future] = sched.submit(spec, app, input);

  const JobReport r = sched.wait(id);
  EXPECT_EQ(r.status, JobStatus::kDone) << r.describe();
  EXPECT_EQ(r.attempts, 3u);  // two faulted attempts + the success
  EXPECT_TRUE(r.error.empty());
  EXPECT_TRUE(r.degraded_steps.empty());  // transient faults do not degrade
  EXPECT_TRUE(pairs_match(future.get().pairs, app.reference(input)));

  const ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.job_faults, 2u);
  EXPECT_EQ(stats.done, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(Retry, ExhaustedBudgetFailsWithAttribution) {
  Scheduler::Options opts;
  opts.max_retries = 2;
  opts.fault_spec = "job_run=0,job_fires=100";  // every attempt fails
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(1000, 42);
  JobSpec spec;
  spec.name = "doomed";
  spec.cores = 4;
  spec.config = job_config(2, 1);
  auto [id, future] = sched.submit(spec, app, input);

  const JobReport r = sched.wait(id);
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 3u);  // initial attempt + 2 retries
  EXPECT_NE(r.error.find("job boundary"), std::string::npos) << r.error;
  // The typed future surfaces the final attempt's exception.
  EXPECT_THROW(future.get(), TransientError);
  EXPECT_EQ(sched.stats().retries, 2u);
}

TEST(Retry, SpecBudgetOverridesSchedulerDefault) {
  Scheduler::Options opts;
  opts.max_retries = 5;
  opts.fault_spec = "job_run=0,job_fires=100";
  Scheduler sched(small_server(), opts);

  JobSpec spec;
  spec.name = "no-retry";
  spec.max_retries = 0;  // opt this job out of the scheduler's budget
  const JobId id = sched.submit(spec, [](JobContext&) {});
  const JobReport r = sched.wait(id);
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(sched.stats().retries, 0u);
}

// ---------- graceful-degradation ladder -------------------------------------

TEST(Degrade, LadderStepsFusedThenCoresThenMem) {
  Scheduler sched(small_server());

  const ModCountApp app;
  const auto input = make_numbers(20000, 43);
  std::atomic<std::size_t> calls{0};

  JobSpec spec;
  spec.name = "ladder";
  spec.cores = 6;
  spec.config = job_config(2, 1);
  spec.max_retries = 5;
  // Three plan failures walk the whole ladder; the fourth attempt runs for
  // real on the degraded plan: fused strategy, halved core ask, mem off.
  const JobId id = sched.submit(spec, [&](JobContext& ctx) {
    const std::size_t call = calls.fetch_add(1);
    if (call < 3) throw ConfigError("synthetic plan failure");
    EXPECT_EQ(ctx.lease().size(), 3u);
    const auto result = ctx.run(app, input);
    EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
  });

  const JobReport r = sched.wait(id);
  EXPECT_EQ(r.status, JobStatus::kDone) << r.describe();
  EXPECT_EQ(r.attempts, 4u);
  ASSERT_EQ(r.degraded_steps.size(), 3u);
  EXPECT_EQ(r.degraded_steps[0], "strategy=fused");
  EXPECT_EQ(r.degraded_steps[1], "cores=6->3");
  EXPECT_EQ(r.degraded_steps[2], "mem=off");
  EXPECT_EQ(r.plan.source, "degraded");
  ASSERT_EQ(r.cores.size(), 3u);
  EXPECT_EQ(sched.stats().degraded, 3u);
}

// ---------- circuit breaker --------------------------------------------------

TEST(Breaker, OpensAfterKConsecutiveFailuresAndFastFails) {
  Scheduler::Options opts;
  opts.breaker_k = 2;
  opts.breaker_cooldown_ms = 60'000;  // never half-opens during this test
  Scheduler sched(small_server(), opts);

  JobSpec spec;
  spec.name = "flaky";
  auto failing = [](JobContext&) { throw Error("app bug"); };
  EXPECT_EQ(sched.wait(sched.submit(spec, failing)).status,
            JobStatus::kFailed);
  EXPECT_EQ(sched.wait(sched.submit(spec, failing)).status,
            JobStatus::kFailed);

  // Open: submissions of this app fast-fail without queueing or running.
  const JobId rejected = sched.submit(spec, [](JobContext&) {});
  const JobReport r = sched.report(rejected);
  EXPECT_EQ(r.status, JobStatus::kRejected);
  EXPECT_NE(r.error.find("circuit breaker open"), std::string::npos)
      << r.error;

  // Other apps are unaffected.
  spec.name = "healthy";
  EXPECT_EQ(sched.wait(sched.submit(spec, [](JobContext&) {})).status,
            JobStatus::kDone);

  const ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_rejects, 1u);
}

TEST(Breaker, HalfOpenTrialClosesOnSuccessReopensOnFailure) {
  Scheduler::Options opts;
  opts.breaker_k = 2;
  opts.breaker_cooldown_ms = 50;
  Scheduler sched(small_server(), opts);

  JobSpec spec;
  spec.name = "flaky";
  auto failing = [](JobContext&) { throw Error("app bug"); };
  auto ok = [](JobContext&) {};

  sched.wait(sched.submit(spec, failing));
  sched.wait(sched.submit(spec, failing));
  EXPECT_EQ(sched.report(sched.submit(spec, ok)).status,
            JobStatus::kRejected);

  // Cooldown elapses: the next submission is the half-open trial; its
  // success closes the breaker for good.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(sched.wait(sched.submit(spec, ok)).status, JobStatus::kDone);
  EXPECT_EQ(sched.wait(sched.submit(spec, ok)).status, JobStatus::kDone);

  // Trip again; a failing half-open trial reopens immediately.
  sched.wait(sched.submit(spec, failing));
  sched.wait(sched.submit(spec, failing));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(sched.wait(sched.submit(spec, failing)).status,
            JobStatus::kFailed);
  EXPECT_EQ(sched.report(sched.submit(spec, ok)).status,
            JobStatus::kRejected);
  EXPECT_GE(sched.stats().breaker_trips, 3u);
}

// ---------- overload shedding ------------------------------------------------

TEST(Shed, LowestPriorityNewestFirstAboveWatermark) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 1;
  opts.queue_depth = 16;
  opts.shed_watermark = 4;
  Scheduler sched(small_server(), opts);

  // A holder occupies the single slot so later submissions provably queue.
  std::latch release(1);
  std::atomic<bool> running{false};
  JobSpec holder;
  holder.name = "holder";
  holder.config = job_config(1, 1);
  const JobId h = sched.submit(holder, [&](JobContext&) {
    running.store(true);
    release.wait();
  });
  while (!running.load()) std::this_thread::yield();

  JobSpec spec;
  spec.config = job_config(1, 1);
  const int prios[5] = {0, 0, 10, 0, 0};
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    spec.name = "q" + std::to_string(i);
    spec.priority = prios[i];
    ids.push_back(sched.submit(spec, [](JobContext&) {}));
  }

  // The fifth submission pushed the queued cost to 5 > 4: shedding drains
  // to watermark/2 = 2, evicting lowest priority first, ties newest-first.
  EXPECT_EQ(sched.report(ids[4]).status, JobStatus::kShed);
  EXPECT_EQ(sched.report(ids[3]).status, JobStatus::kShed);
  EXPECT_EQ(sched.report(ids[1]).status, JobStatus::kShed);
  EXPECT_EQ(sched.report(ids[0]).status, JobStatus::kQueued);
  EXPECT_EQ(sched.report(ids[2]).status, JobStatus::kQueued);
  EXPECT_NE(sched.report(ids[4]).error.find("watermark"), std::string::npos);

  release.count_down();
  EXPECT_EQ(sched.wait(h).status, JobStatus::kDone);
  EXPECT_EQ(sched.wait(ids[0]).status, JobStatus::kDone);
  EXPECT_EQ(sched.wait(ids[2]).status, JobStatus::kDone);
  EXPECT_EQ(sched.stats().shed, 3u);
}

// ---------- hedged execution -------------------------------------------------

TEST(Hedge, StragglerHedgedAndFirstFinisherWins) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 2;
  opts.hedge_factor = 2.0;
  opts.hedge_min_samples = 1;
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(5000, 44);

  // One clean run seeds the app's EWMA so the straggler has a baseline.
  JobSpec spec;
  spec.name = "hedge-app";
  spec.cores = 3;
  spec.config = job_config(1, 1);
  {
    auto [id, future] = sched.submit(spec, app, input);
    ASSERT_EQ(sched.wait(id).status, JobStatus::kDone);
  }

  // The primary invocation stalls until cancelled; the hedge twin (second
  // invocation of the same body) returns promptly and wins the race.
  std::atomic<int> calls{0};
  const JobId primary = sched.submit(spec, [&](JobContext& ctx) {
    if (calls.fetch_add(1) == 0) {
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (!ctx.cancel_token().cancelled() &&
             std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  const JobReport rp = sched.wait(primary);
  EXPECT_EQ(rp.status, JobStatus::kDone) << rp.describe();
  EXPECT_EQ(rp.hedge_winner, "hedge");

  const ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.hedges, 1u);
  EXPECT_EQ(stats.hedge_wins, 1u);

  // The twin's own report is terminal and linked back to its primary.
  bool found_twin = false;
  for (const JobReport& r : sched.drain()) {
    if (r.hedge_of == primary) {
      found_twin = true;
      EXPECT_EQ(r.status, JobStatus::kDone) << r.describe();
    }
  }
  EXPECT_TRUE(found_twin);
  EXPECT_EQ(sched.cores().available(), sched.cores().total());
}

// ---------- client-owned cancellation token (satellite regression) ----------

TEST(ClientToken, PreTrippedTokenCancelsWithoutConsumingLease) {
  Scheduler sched(small_server());
  common::CancellationToken token;
  token.cancel(common::CancelCause::kExternal, {}, {}, "client gave up");

  std::atomic<bool> ran{false};
  JobSpec spec;
  spec.name = "stillborn";
  spec.cancel = &token;
  const JobId id = sched.submit(spec, [&](JobContext&) { ran.store(true); });

  const JobReport r = sched.wait(id);
  EXPECT_EQ(r.status, JobStatus::kCancelled);  // not kFailed
  EXPECT_NE(r.error.find("before admission"), std::string::npos) << r.error;
  EXPECT_FALSE(ran.load());
  EXPECT_TRUE(r.cores.empty());
  EXPECT_EQ(sched.cores().available(), sched.cores().total());
  EXPECT_EQ(sched.depot().stats().built, 0u);

  // The typed submit surfaces the same outcome through its future.
  const ModCountApp app;
  const auto input = make_numbers(100, 45);
  auto [typed_id, future] = sched.submit(spec, app, input);
  EXPECT_EQ(sched.wait(typed_id).status, JobStatus::kCancelled);
  EXPECT_THROW(future.get(), Error);
  EXPECT_EQ(sched.stats().cancelled, 2u);
}

// ---------- env knobs --------------------------------------------------------

TEST(Knobs, EnvRangeValidationNamesTheVariable) {
  {
    env::ScopedOverride bad(kEnvServiceRetries, "101");
    EXPECT_THROW(RuntimeConfig::from_env(), ConfigError);
  }
  {
    env::ScopedOverride bad(kEnvHedgeFactor, "0.5");  // below 1x EWMA
    EXPECT_THROW(RuntimeConfig::from_env(), ConfigError);
  }
  {
    env::ScopedOverride bad(kEnvBreakerK, "1001");
    EXPECT_THROW(RuntimeConfig::from_env(), ConfigError);
  }
  {
    env::ScopedOverride bad(kEnvShedWatermark, "100001");
    EXPECT_THROW(RuntimeConfig::from_env(), ConfigError);
  }
  {
    env::ScopedOverride off(kEnvHedgeFactor, "0");  // 0 = disabled, valid
    EXPECT_DOUBLE_EQ(RuntimeConfig::from_env().service_hedge_factor, 0.0);
  }
}

TEST(Knobs, OptionsFromEnvPicksUpResilienceKnobs) {
  env::ScopedOverride retries(kEnvServiceRetries, "2");
  env::ScopedOverride hedge(kEnvHedgeFactor, "2.5");
  env::ScopedOverride breaker(kEnvBreakerK, "4");
  env::ScopedOverride shed(kEnvShedWatermark, "10");
  env::ScopedOverride faults(kEnvFaults, "job_p=0.1,job_fires=3,seed=5");

  const Scheduler::Options o = Scheduler::Options::from_env();
  EXPECT_EQ(o.max_retries, 2u);
  EXPECT_DOUBLE_EQ(o.hedge_factor, 2.5);
  EXPECT_EQ(o.breaker_k, 4u);
  EXPECT_EQ(o.shed_watermark, 10u);
  EXPECT_EQ(o.fault_spec, "job_p=0.1,job_fires=3,seed=5");

  // The knobs appear in the config summary only when enabled; the default
  // summary is byte-identical to the pre-resilience one.
  const std::string summary = RuntimeConfig::from_env().summary();
  EXPECT_NE(summary.find("service_retries=2"), std::string::npos) << summary;
  EXPECT_NE(summary.find("hedge_factor=2.5"), std::string::npos) << summary;
  EXPECT_NE(summary.find("breaker_k=4"), std::string::npos) << summary;
  EXPECT_NE(summary.find("shed_watermark=10"), std::string::npos) << summary;
  EXPECT_EQ(RuntimeConfig{}.summary().find("service_retries"),
            std::string::npos);
}

// ---------- the chaos harness ------------------------------------------------

// A concurrent stream of 12 jobs under three fault classes at once:
// transient map-task faults (recovered by task-level retry inside the run),
// real emit stalls mid-run, and deterministic job-boundary faults from the
// scheduler's own injector (recovered by job-level retry). Every job must
// end terminal — here, successfully — with output identical to the
// fault-free reference, and the scheduler must hold zero cores and zero
// depot leases once the stream drains.
TEST(Chaos, ConcurrentJobStreamUnderFaultsEndsTerminalAndCorrect) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 2;
  opts.queue_depth = 32;
  opts.max_retries = 6;
  // The first four run attempts (across the whole stream) fail at the job
  // boundary; retries draw fresh ordinals and succeed.
  opts.fault_spec = "job_run=0,job_fires=4";
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  constexpr std::size_t kJobs = 12;
  std::vector<std::vector<std::uint64_t>> inputs;
  std::vector<std::map<std::uint64_t, std::uint64_t>> refs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    inputs.push_back(make_numbers(8000, 100 + i));
    refs.push_back(app.reference(inputs.back()));
  }

  std::vector<JobId> ids;
  std::vector<std::shared_future<mr::result_of<ModCountApp>>> futures;
  for (std::size_t i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.name = "chaos-" + std::to_string(i);
    spec.cores = 4;
    spec.config = job_config(2, 1);
    switch (i % 3) {
      case 0:  // transient map-task faults, absorbed by task-level retry
        spec.config.fault_spec = "map_task=5,map_transient=1,map_fires=2";
        spec.config.max_task_retries = 3;
        break;
      case 1:  // a real (bounded) emit stall mid-run
        spec.config.fault_spec = "stall_emit=40,stall_ms=100";
        break;
      default:  // clean, except for job-boundary faults
        break;
    }
    auto [id, future] = sched.submit(spec, app, inputs[i]);
    ids.push_back(id);
    futures.push_back(std::move(future));
  }

  std::size_t total_attempts = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const JobReport r = sched.wait(ids[i]);
    ASSERT_TRUE(terminal(r.status)) << r.describe();
    EXPECT_EQ(r.status, JobStatus::kDone) << r.describe();
    total_attempts += r.attempts;
    // A retried job's output is identical to the fault-free reference.
    EXPECT_TRUE(pairs_match(futures[i].get().pairs, refs[i]))
        << "job " << i;
  }

  const ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.done, kJobs);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.job_faults, 4u);
  EXPECT_EQ(stats.retries, 4u);
  EXPECT_EQ(total_attempts, kJobs + 4);
  EXPECT_NE(stats.summary().find("retries=4"), std::string::npos);
  const std::string json = sched.stats_json();
  EXPECT_NE(json.find("ramr-service-stats-v1"), std::string::npos) << json;
  EXPECT_NE(json.find("job_faults"), std::string::npos) << json;

  // Zero leaked cores or pool leases once the stream drains...
  EXPECT_EQ(sched.cores().available(), sched.cores().total());
  const engine::PoolDepot::Stats depot = sched.depot().stats();
  EXPECT_EQ(depot.leased, 0u);
  EXPECT_LE(depot.idle, depot.built);  // the shelf stays bounded

  // ...and still after shutdown.
  sched.shutdown();
  EXPECT_EQ(sched.cores().available(), sched.cores().total());
  EXPECT_EQ(sched.depot().stats().leased, 0u);
}

}  // namespace
}  // namespace ramr::service
