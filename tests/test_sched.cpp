// Tests for the thread pool and the per-locality-group task queues.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/parallel_sort.hpp"
#include "sched/task_queue.hpp"
#include "sched/thread_pool.hpp"

namespace ramr::sched {
namespace {

// ---------- ThreadPool -------------------------------------------------------

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](std::size_t w) { hits[w]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.run_on_all([&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, StartWaitOverlapsTwoPools) {
  // The RAMR usage pattern: combiners started first, mappers second, both
  // pools active at once, waits in mapper-then-combiner order.
  ThreadPool producers(2), consumers(1);
  std::atomic<int> produced{0};
  std::atomic<bool> done{false};
  std::atomic<int> seen_by_consumer{0};

  consumers.start([&](std::size_t) {
    while (!done.load()) {
      seen_by_consumer.store(produced.load());
      std::this_thread::yield();
    }
    seen_by_consumer.store(produced.load());
  });
  producers.start([&](std::size_t) {
    for (int i = 0; i < 1000; ++i) produced++;
  });
  producers.wait();
  done.store(true);
  consumers.wait();
  EXPECT_EQ(seen_by_consumer.load(), 2000);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_on_all([](std::size_t w) {
        if (w == 1) throw Error("boom");
      }),
      Error);
  // Pool still usable afterwards.
  std::atomic<int> ok{0};
  pool.run_on_all([&](std::size_t) { ok++; });
  EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), ConfigError);
}

TEST(ThreadPool, RejectsOverlappingRegionsOnOnePool) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.start([&](std::size_t) {
    while (!release.load()) std::this_thread::yield();
  });
  EXPECT_THROW(pool.start([](std::size_t) {}), Error);
  release.store(true);
  pool.wait();
}

TEST(ThreadPool, DistinctWorkerIndices) {
  ThreadPool pool(8);
  std::mutex m;
  std::set<std::size_t> ids;
  pool.run_on_all([&](std::size_t w) {
    std::lock_guard lock(m);
    ids.insert(w);
  });
  EXPECT_EQ(ids.size(), 8u);
}

TEST(ThreadPool, PinningRequestsAreBestEffort) {
  // Pin worker 0 to CPU 0 (should succeed on Linux) and worker 1 to an
  // impossible CPU (must degrade to unpinned, not fail).
  ThreadPool pool(2, {std::size_t{0}, std::size_t{1} << 40});
  std::atomic<int> ran{0};
  pool.run_on_all([&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 2);
  EXPECT_LE(pool.pinned_count(), 2u);
}

// ---------- TaskQueues ---------------------------------------------------------

TEST(TaskQueues, DistributeCoversAllSplitsOnce) {
  TaskQueues q(3);
  q.distribute(/*num_splits=*/100, /*task_size=*/7);
  std::vector<bool> seen(100, false);
  std::size_t tasks = 0;
  for (std::size_t g = 0; g < 3; ++g) {
    while (auto t = q.pop(g)) {
      ++tasks;
      EXPECT_LE(t->size(), 7u);
      for (std::size_t s = t->begin; s < t->end; ++s) {
        EXPECT_FALSE(seen[s]) << "split " << s << " scheduled twice";
        seen[s] = true;
      }
    }
  }
  EXPECT_EQ(tasks, 15u);  // ceil(100/7)
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(TaskQueues, DistributeBlockedGivesContiguousRangesPerGroup) {
  TaskQueues q(3);
  q.distribute_blocked(/*num_splits=*/10, /*task_size=*/2);
  // Blocks: group0 [0,4), group1 [4,7), group2 [7,10) -> exactly two tasks
  // per group with task_size 2. Popping that many per group never steals.
  std::vector<std::vector<TaskRange>> per_group(3);
  for (std::size_t g = 0; g < 3; ++g) {
    for (int i = 0; i < 2; ++i) {
      auto t = q.pop(g);
      ASSERT_TRUE(t.has_value());
      per_group[g].push_back(*t);
    }
  }
  EXPECT_EQ(q.steals(), 0u);
  EXPECT_EQ(q.pending(), 0u);
  ASSERT_FALSE(per_group[0].empty());
  EXPECT_EQ(per_group[0].front().begin, 0u);
  EXPECT_EQ(per_group[0].back().end, 4u);
  EXPECT_EQ(per_group[1].front().begin, 4u);
  EXPECT_EQ(per_group[1].back().end, 7u);
  EXPECT_EQ(per_group[2].front().begin, 7u);
  EXPECT_EQ(per_group[2].back().end, 10u);
  // Contiguity within each group's block.
  for (const auto& tasks : per_group) {
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      EXPECT_EQ(tasks[i].begin, tasks[i - 1].end);
    }
  }
}

TEST(TaskQueues, DistributeBlockedCoversAllSplitsOnce) {
  TaskQueues q(4);
  q.distribute_blocked(101, 7);
  std::vector<bool> seen(101, false);
  for (std::size_t g = 0; g < 4; ++g) {
    while (auto t = q.pop(g)) {
      for (std::size_t s = t->begin; s < t->end; ++s) {
        EXPECT_FALSE(seen[s]);
        seen[s] = true;
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(TaskQueues, LocalPopsPreferOwnGroup) {
  TaskQueues q(2);
  q.push(0, {0, 1});
  q.push(0, {1, 2});
  q.push(1, {2, 3});
  auto t = q.pop(0);
  ASSERT_TRUE(t);
  EXPECT_EQ(t->begin, 0u);  // FIFO from own queue
  EXPECT_EQ(q.local_pops(), 1u);
  EXPECT_EQ(q.steals(), 0u);
}

TEST(TaskQueues, StealsWhenLocalEmpty) {
  TaskQueues q(2);
  q.push(1, {5, 6});
  auto t = q.pop(0);
  ASSERT_TRUE(t);
  EXPECT_EQ(t->begin, 5u);
  EXPECT_EQ(q.steals(), 1u);
}

TEST(TaskQueues, PopReturnsNulloptWhenAllEmpty) {
  TaskQueues q(2);
  EXPECT_EQ(q.pop(0), std::nullopt);
  EXPECT_EQ(q.pop(1), std::nullopt);
}

TEST(TaskQueues, PendingTracksRemaining) {
  TaskQueues q(1);
  q.distribute(10, 5);
  EXPECT_EQ(q.pending(), 2u);
  q.pop(0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(TaskQueues, RejectsBadArguments) {
  EXPECT_THROW(TaskQueues(0), ConfigError);
  TaskQueues q(1);
  EXPECT_THROW(q.distribute(10, 0), ConfigError);
  EXPECT_THROW(q.pop(5), Error);
}

TEST(TaskQueues, ConcurrentDrainExecutesEachTaskOnce) {
  TaskQueues q(4);
  const std::size_t splits = 4000;
  q.distribute(splits, 3);
  std::vector<std::atomic<int>> hit(splits);
  ThreadPool pool(8);
  pool.run_on_all([&](std::size_t w) {
    const std::size_t group = w % 4;
    while (auto t = q.pop(group)) {
      for (std::size_t s = t->begin; s < t->end; ++s) hit[s]++;
    }
  });
  for (std::size_t s = 0; s < splits; ++s) {
    EXPECT_EQ(hit[s].load(), 1) << "split " << s;
  }
  EXPECT_GT(q.local_pops() + q.steals(), 0u);
}

TEST(ThreadPool, DestructionAfterStartWithoutWaitIsClean) {
  // A pool destroyed with a region started but never waited on must let the
  // workers finish the region and join cleanly.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    pool.start([&](std::size_t) { ran++; });
    // no wait(): destructor runs with the region possibly in flight
  }
  EXPECT_EQ(ran.load(), 3);
}

// ---------- parallel_sort / parallel_tree_merge --------------------------------

TEST(ParallelSort, MatchesStdSortOnRandomData) {
  ThreadPool pool(4);
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> items(50000);
  for (auto& v : items) v = rng.next();
  std::vector<std::uint64_t> expected = items;
  std::sort(expected.begin(), expected.end());
  parallel_sort(pool, items, std::less<>{});
  EXPECT_EQ(items, expected);
}

TEST(ParallelSort, HandlesSmallAndEmptyInputs) {
  ThreadPool pool(3);
  std::vector<int> empty;
  parallel_sort(pool, empty, std::less<>{});
  EXPECT_TRUE(empty.empty());
  std::vector<int> tiny{3, 1, 2};
  parallel_sort(pool, tiny, std::less<>{});
  EXPECT_EQ(tiny, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelSort, RespectsCustomComparator) {
  ThreadPool pool(4);
  std::vector<int> items(10000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<int>(i % 977);
  }
  parallel_sort(pool, items, std::greater<>{});
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end(), std::greater<>{}));
}

TEST(ParallelSort, WorkerCountLargerThanInput) {
  ThreadPool pool(8);
  std::vector<int> items{5, 4, 3, 2, 1};
  parallel_sort(pool, items, std::less<>{});
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
}

namespace {
// Minimal mergeable container for tree-merge tests.
struct Bag {
  std::uint64_t sum = 0;
  std::size_t merges = 0;
  void merge_from(const Bag& other) {
    sum += other.sum;
    ++merges;
  }
};
}  // namespace

TEST(ParallelTreeMerge, CombinesEverythingIntoSlotZero) {
  for (std::size_t workers : {1u, 2u, 4u}) {
    for (std::size_t count : {1u, 2u, 3u, 7u, 8u, 16u, 33u}) {
      ThreadPool pool(workers);
      std::vector<Bag> bags(count);
      std::uint64_t expected = 0;
      for (std::size_t i = 0; i < count; ++i) {
        bags[i].sum = i + 1;
        expected += i + 1;
      }
      parallel_tree_merge(pool, bags);
      EXPECT_EQ(bags[0].sum, expected)
          << "workers=" << workers << " count=" << count;
    }
  }
}

// Parameterised: distribute() with varying task sizes always partitions the
// split range exactly.
class DistributeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DistributeSweep, PartitionExact) {
  const auto [splits, task_size] = GetParam();
  TaskQueues q(2);
  q.distribute(splits, task_size);
  std::size_t covered = 0;
  for (std::size_t g = 0; g < 2; ++g) {
    while (auto t = q.pop(g)) covered += t->size();
  }
  EXPECT_EQ(covered, splits);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistributeSweep,
    ::testing::Combine(::testing::Values(0, 1, 7, 64, 1000),
                       ::testing::Values(1, 3, 8, 1000)));

}  // namespace
}  // namespace ramr::sched
