// Tests for the perf substrate: counters, the set-associative cache
// simulator, the analytic stall model (including its monotonicity
// properties), and the per-app workload profiles against the paper's
// Fig. 10 characterisation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "perf/cache_model.hpp"
#include "perf/counters.hpp"
#include "perf/profiles.hpp"
#include "perf/stall_model.hpp"

namespace ramr::perf {
namespace {

using apps::AppId;
using apps::ContainerFlavor;

// ---------- counters -----------------------------------------------------------

TEST(Counters, MetricsMatchDefinitions) {
  Counters c;
  c.instructions = 1000;
  c.mem_stall_cycles = 50;
  c.resource_stall_cycles = 20;
  c.input_bytes = 100;
  EXPECT_DOUBLE_EQ(c.ipb(), 10.0);
  EXPECT_DOUBLE_EQ(c.mspi(), 0.05);
  EXPECT_DOUBLE_EQ(c.rspi(), 0.02);
}

TEST(Counters, ZeroDenominatorsAreSafe) {
  Counters c;
  EXPECT_DOUBLE_EQ(c.ipb(), 0.0);
  EXPECT_DOUBLE_EQ(c.mspi(), 0.0);
  EXPECT_DOUBLE_EQ(c.rspi(), 0.0);
}

TEST(Counters, AccumulationAdds) {
  Counters a, b;
  a.instructions = 10;
  a.input_bytes = 5;
  b.instructions = 20;
  b.input_bytes = 5;
  a += b;
  EXPECT_DOUBLE_EQ(a.instructions, 30.0);
  EXPECT_DOUBLE_EQ(a.ipb(), 3.0);
}

// ---------- cache simulator -------------------------------------------------------

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim({.size_bytes = 1000, .line_bytes = 60, .ways = 2}),
               Error);
  EXPECT_THROW(CacheSim({.size_bytes = 0, .line_bytes = 64, .ways = 1}),
               Error);
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheSim, LruEvictionOrder) {
  // 2-way: three lines mapping to the same set evict the least recent.
  CacheSim c({.size_bytes = 2 * 64, .line_bytes = 64, .ways = 2});  // 1 set
  c.access(0);    // A miss
  c.access(64);   // B miss
  c.access(0);    // A hit (A most recent)
  c.access(128);  // C miss, evicts B
  EXPECT_TRUE(c.access(0));     // A still resident
  EXPECT_FALSE(c.access(64));   // B was evicted
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashes) {
  CacheSim c({.size_bytes = 8 * 1024, .line_bytes = 64, .ways = 4});
  // Two sequential passes over 4x the capacity: second pass still misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64) c.access(a);
  }
  EXPECT_GT(c.miss_rate(), 0.9);
}

TEST(CacheSim, WorkingSetWithinCacheHitsAfterWarmup) {
  CacheSim c({.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 8});
  for (std::uint64_t a = 0; a < 16 * 1024; a += 64) c.access(a);  // warm
  c.flush();
  // flush() clears stats AND contents; warm again, then measure.
  for (std::uint64_t a = 0; a < 16 * 1024; a += 64) c.access(a);
  const std::uint64_t cold_misses = c.misses();
  for (int pass = 0; pass < 9; ++pass) {
    for (std::uint64_t a = 0; a < 16 * 1024; a += 64) c.access(a);
  }
  EXPECT_EQ(c.misses(), cold_misses);  // no capacity misses afterwards
}

TEST(CacheHierarchy, MissFallsThroughLevels) {
  CacheHierarchy h({{.size_bytes = 1024, .line_bytes = 64, .ways = 2},
                    {.size_bytes = 8192, .line_bytes = 64, .ways = 4}});
  EXPECT_EQ(h.access(0), 2u);  // cold: misses both levels
  EXPECT_EQ(h.access(0), 0u);  // L1 hit
  // Touch enough lines to evict line 0 from L1 but not from L2.
  for (std::uint64_t a = 64; a <= 2048; a += 64) h.access(a);
  EXPECT_EQ(h.access(0), 1u);  // L1 miss, L2 hit
}

// ---------- analytic stall model: property tests ----------------------------------

MemSystemView haswell_like() {
  return MemSystemView{};  // defaults model one Haswell thread
}

PhaseProfile base_profile() {
  return PhaseProfile{.instr_per_byte = 10.0,
                      .bytes_per_byte = 4.0,
                      .footprint_bytes = 1e6,
                      .regularity = 0.3,
                      .resource_pressure = 0.4};
}

TEST(StallModel, BiggerFootprintNeverReducesStalls) {
  const auto mem = haswell_like();
  double prev = -1.0;
  for (double fp : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    PhaseProfile p = base_profile();
    p.footprint_bytes = fp;
    const double stall = estimate_phase(p, 1e6, mem).mem_stall_cycles;
    EXPECT_GE(stall, prev) << "footprint " << fp;
    prev = stall;
  }
}

TEST(StallModel, MoreRegularAccessNeverIncreasesStalls) {
  const auto mem = haswell_like();
  double prev = 1e30;
  for (double reg : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    PhaseProfile p = base_profile();
    p.regularity = reg;
    const double stall = estimate_phase(p, 1e6, mem).mem_stall_cycles;
    EXPECT_LE(stall, prev) << "regularity " << reg;
    prev = stall;
  }
}

TEST(StallModel, InOrderCoreStallsAtLeastAsMuch) {
  MemSystemView ooo = haswell_like();
  MemSystemView in_order = ooo;
  in_order.out_of_order = false;
  const PhaseProfile p = base_profile();
  EXPECT_GE(estimate_phase(p, 1e6, in_order).mem_stall_cycles,
            estimate_phase(p, 1e6, ooo).mem_stall_cycles);
}

TEST(StallModel, FitsInL1MeansNoMemoryStalls) {
  PhaseProfile p = base_profile();
  p.footprint_bytes = 16e3;  // inside the 32KB L1 view
  EXPECT_DOUBLE_EQ(estimate_phase(p, 1e6, haswell_like()).mem_stall_cycles,
                   0.0);
}

TEST(StallModel, ResourceStallsScaleWithPressure) {
  const auto mem = haswell_like();
  PhaseProfile lo = base_profile();
  lo.resource_pressure = 0.1;
  PhaseProfile hi = base_profile();
  hi.resource_pressure = 0.8;
  EXPECT_LT(estimate_phase(lo, 1e6, mem).resource_stall_cycles,
            estimate_phase(hi, 1e6, mem).resource_stall_cycles);
}

TEST(StallModel, CountersScaleLinearlyWithInput) {
  const auto mem = haswell_like();
  const PhaseProfile p = base_profile();
  const Counters c1 = estimate_phase(p, 1e6, mem);
  const Counters c2 = estimate_phase(p, 2e6, mem);
  EXPECT_NEAR(c2.instructions, 2.0 * c1.instructions, 1e-6);
  EXPECT_NEAR(c2.mem_stall_cycles, 2.0 * c1.mem_stall_cycles, 1e-6);
}

TEST(StallModel, AgreesQualitativelyWithCacheSim) {
  // Random access over a footprint 8x the only cache level: the analytic
  // model and the simulator must both report heavy missing; a footprint
  // inside the cache must report (near) none.
  const CacheConfig cache{.size_bytes = 32 * 1024, .line_bytes = 64,
                          .ways = 8};
  MemSystemView view;
  view.l1_bytes = 32e3;
  view.l2_bytes = 32e3;  // collapse to one effective level
  view.l3_bytes = 0.0;
  view.out_of_order = false;

  for (const double fp : {16e3, 256e3}) {
    CacheSim sim(cache);
    Xoshiro256 rng(5);
    for (int i = 0; i < 50000; ++i) {
      sim.access(rng.below(static_cast<std::uint64_t>(fp)));
    }
    PhaseProfile p;
    p.footprint_bytes = fp;
    p.regularity = 0.0;
    p.bytes_per_byte = 64.0;  // one line per byte
    const double model_stall =
        estimate_phase(p, 1000.0, view).mem_stall_cycles;
    if (fp <= static_cast<double>(cache.size_bytes)) {
      EXPECT_LT(sim.miss_rate(), 0.05);
      EXPECT_DOUBLE_EQ(model_stall, 0.0);
    } else {
      EXPECT_GT(sim.miss_rate(), 0.6);
      EXPECT_GT(model_stall, 0.0);
    }
  }
}

TEST(StallModel, TraceDrivenValidationOfTheCapacityModel) {
  // Validate the analytic model's capacity/hierarchy component against the
  // real set-associative simulator: for every suite app's combine
  // footprint, drive a RANDOM trace (regularity 0 — the simulator has no
  // prefetcher, so the streaming/prefetch part of the model is out of
  // scope here) through a Haswell-like 3-level hierarchy and compare
  // latency-weighted per-access costs. The model must (a) rank footprints
  // like the simulator and (b) agree within 2x wherever both see stalls.
  MemSystemView view;
  view.l3_bytes = 32e6;       // power-of-two-friendly stand-in for 35MB
  view.out_of_order = false;  // compare raw costs, no OoO hiding

  struct Sample {
    const char* name;
    double model_cost;
    double sim_cost;
  };
  std::vector<Sample> samples;
  for (AppId app : apps::kAllApps) {
    PhaseProfile prof = app_profile(app, ContainerFlavor::kDefault).combine;
    prof.regularity = 0.0;
    CacheHierarchy caches(
        {{.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 8},
         {.size_bytes = 256 * 1024, .line_bytes = 64, .ways = 8},
         {.size_bytes = 32 * 1024 * 1024, .line_bytes = 64, .ways = 16}});
    Xoshiro256 rng(static_cast<std::uint64_t>(app) + 1);
    const auto footprint = static_cast<std::uint64_t>(prof.footprint_bytes);
    const double level_cost[] = {0.0, view.l2_latency, view.l3_latency,
                                 view.mem_latency};
    double sim_cycles = 0.0;
    const std::int64_t kAccesses = 60000;
    // Warm until the random trace has covered the footprint a few times
    // over, so compulsory misses don't masquerade as capacity misses.
    const std::int64_t warmup =
        std::max<std::int64_t>(20000, 4 * static_cast<std::int64_t>(
                                              footprint / 64));
    for (std::int64_t i = 0; i < kAccesses + warmup; ++i) {
      const std::size_t level = caches.access(rng.below(footprint));
      if (i >= warmup) sim_cycles += level_cost[level];
    }
    samples.push_back({apps::app_name(app),
                       expected_stall_per_line(prof, view),
                       sim_cycles / kAccesses});
  }
  for (std::size_t a = 0; a < samples.size(); ++a) {
    for (std::size_t b = a + 1; b < samples.size(); ++b) {
      const double dm = samples[a].model_cost - samples[b].model_cost;
      const double ds = samples[a].sim_cost - samples[b].sim_cost;
      // (a) comparative order agrees (ties allowed when close).
      if (std::abs(dm) > 2.0 && std::abs(ds) > 2.0) {
        EXPECT_GT(dm * ds, 0.0)
            << samples[a].name << " vs " << samples[b].name;
      }
    }
    // (b) rough magnitude agreement where stalls are non-trivial.
    if (samples[a].sim_cost > 5.0) {
      EXPECT_GT(samples[a].model_cost, samples[a].sim_cost / 2.5)
          << samples[a].name;
      EXPECT_LT(samples[a].model_cost, samples[a].sim_cost * 2.5)
          << samples[a].name;
    }
  }
}

// ---------- app profiles vs the paper's Fig. 10 -----------------------------------

double fused_ipb(AppId app, ContainerFlavor f) {
  const AppProfile p = app_profile(app, f);
  return p.map.instr_per_byte + p.combine.instr_per_byte;
}

TEST(Profiles, DefaultIpbOrderingMatchesFig10a) {
  using enum AppId;
  const auto f = ContainerFlavor::kDefault;
  EXPECT_GT(fused_ipb(kPca, f), fused_ipb(kMatrixMultiply, f));
  EXPECT_GT(fused_ipb(kMatrixMultiply, f), fused_ipb(kKMeans, f));
  EXPECT_GT(fused_ipb(kKMeans, f), fused_ipb(kLinearRegression, f));
  EXPECT_GT(fused_ipb(kWordCount, f), fused_ipb(kLinearRegression, f));
  EXPECT_GT(fused_ipb(kLinearRegression, f), fused_ipb(kHistogram, f));
}

TEST(Profiles, HashFlavorRaisesIpbExceptWordCount) {
  // Fig. 10b: "an increase in the IPB ... is expected. WC is a reasonable
  // exception" (its default container is already a hash table).
  for (AppId app : apps::kAllApps) {
    const double d = fused_ipb(app, ContainerFlavor::kDefault);
    const double h = fused_ipb(app, ContainerFlavor::kHash);
    if (app == AppId::kWordCount) {
      EXPECT_NEAR(h, d, 0.15 * d);
    } else {
      EXPECT_GT(h, d);
    }
  }
}

TEST(Profiles, LightAppsAreLight) {
  // HG and LR: light workload, streaming map (Sec. IV-E).
  for (AppId app : {AppId::kHistogram, AppId::kLinearRegression}) {
    const AppProfile p = app_profile(app, ContainerFlavor::kDefault);
    EXPECT_LT(p.map.instr_per_byte, 10.0);
    EXPECT_GT(p.map.regularity, 0.9);
  }
}

TEST(Profiles, PcaHasSufficientComplexityButFewStalls) {
  const AppProfile p = app_profile(AppId::kPca, ContainerFlavor::kDefault);
  EXPECT_GT(p.map.instr_per_byte, 100.0);
  EXPECT_LT(p.map.resource_pressure, 0.1);
  EXPECT_GT(p.map.regularity, 0.9);
}

TEST(Profiles, MmHashShrinksContainer) {
  // Sec. IV-E: switching MM to the hash table right-sizes the container.
  EXPECT_LT(app_profile(AppId::kMatrixMultiply, ContainerFlavor::kHash)
                .combine.footprint_bytes,
            app_profile(AppId::kMatrixMultiply, ContainerFlavor::kDefault)
                .combine.footprint_bytes);
}

TEST(Profiles, EmissionTrafficMatchesApps) {
  // HG emits one record per byte; LR five per 4-byte point.
  EXPECT_DOUBLE_EQ(
      app_profile(AppId::kHistogram, ContainerFlavor::kDefault).kv_per_byte,
      1.0);
  EXPECT_DOUBLE_EQ(app_profile(AppId::kLinearRegression,
                               ContainerFlavor::kDefault)
                       .kv_per_byte,
                   1.25);
}

}  // namespace
}  // namespace ramr::perf
