// Observability plane (docs/OBSERVABILITY.md, docs/ARCHITECTURE.md §14):
// the ramr-metrics-v1 scrape formats and their Prometheus/JSON parity, the
// flight-recorder ring and its post-mortem dumps, the stitched service
// trace, and the straggler/skew profiler on a synthetic zipf stream. The
// scheduler-level tests run with the plane on and assert the exported
// counters exactly match ServiceStats. Runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "core/runtime.hpp"
#include "engine/skew_profiler.hpp"
#include "mini_apps.hpp"
#include "service/scheduler.hpp"
#include "synth/zipf.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_export.hpp"
#include "topology/topology.hpp"

namespace ramr {
namespace {

using testing::make_numbers;
using testing::ModCountApp;
using testing::pairs_match;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------- metrics exporters ------------------------------------------------

telemetry::ServiceMetricsFrame golden_frame() {
  telemetry::ServiceMetricsFrame frame;
  frame.uptime_seconds = 1.5;
  frame.queue_depth = 3;
  frame.running = 2;
  frame.cores_total = 8;
  frame.cores_leased = 6;
  frame.depot_built = 4;
  frame.depot_reused = 9;
  frame.depot_shelved = 1;
  frame.depot_leased = 2;
  frame.counters = {{"submitted", 10}, {"done", 7}, {"retries", 2}};
  frame.apps.push_back({"kmeans", 0.25, 7, 1, "open"});
  frame.apps.push_back({"wordcount", 0.5, 3, 0, "closed"});
  return frame;
}

TEST(MetricsExport, PrometheusGolden) {
  const std::string prom = telemetry::metrics_prometheus(golden_frame());
  EXPECT_TRUE(contains(prom, "# TYPE ramr_service_queue_depth gauge"));
  EXPECT_TRUE(contains(prom, "ramr_service_queue_depth 3\n"));
  EXPECT_TRUE(contains(prom, "ramr_service_cores_leased 6\n"));
  EXPECT_TRUE(contains(prom, "ramr_depot_shelved 1\n"));
  EXPECT_TRUE(contains(prom, "# TYPE ramr_service_submitted_total counter"));
  EXPECT_TRUE(contains(prom, "ramr_service_submitted_total 10\n"));
  EXPECT_TRUE(contains(prom, "ramr_service_retries_total 2\n"));
  EXPECT_TRUE(contains(prom, "ramr_app_ewma_seconds{app=\"kmeans\"} 0.25\n"));
  EXPECT_TRUE(contains(prom, "ramr_app_samples{app=\"wordcount\"} 3\n"));
  // Breaker states graph as 0/1/2.
  EXPECT_TRUE(contains(prom, "ramr_app_breaker_state{app=\"kmeans\"} 1\n"));
  EXPECT_TRUE(
      contains(prom, "ramr_app_breaker_state{app=\"wordcount\"} 0\n"));
}

TEST(MetricsExport, JsonGolden) {
  const std::string json = telemetry::metrics_json(golden_frame());
  EXPECT_TRUE(contains(json, "\"schema\":\"ramr-metrics-v1\""));
  EXPECT_TRUE(contains(json, "\"queue_depth\":3"));
  EXPECT_TRUE(contains(json, "\"cores_leased\":6"));
  EXPECT_TRUE(contains(json, "\"shelved\":1"));
  EXPECT_TRUE(contains(json, "\"submitted\":10"));
  EXPECT_TRUE(contains(json, "\"retries\":2"));
  EXPECT_TRUE(contains(json, "\"name\":\"kmeans\""));
  EXPECT_TRUE(contains(json, "\"breaker\":\"open\""));
  EXPECT_TRUE(contains(json, "\"breaker_state\":1"));
}

// The two formats are rendered from the same frame; spot-check that every
// counter value the JSON carries also appears in the text format.
TEST(MetricsExport, PrometheusJsonParity) {
  const telemetry::ServiceMetricsFrame frame = golden_frame();
  const std::string prom = telemetry::metrics_prometheus(frame);
  const std::string json = telemetry::metrics_json(frame);
  for (const auto& [name, value] : frame.counters) {
    const std::string sample =
        "ramr_service_" + name + "_total " + std::to_string(value) + "\n";
    EXPECT_TRUE(contains(prom, sample)) << sample;
    const std::string field = "\"" + name + "\":" + std::to_string(value);
    EXPECT_TRUE(contains(json, field)) << field;
  }
}

TEST(MetricsExport, PrometheusLabelEscaping) {
  telemetry::ServiceMetricsFrame frame;
  frame.apps.push_back({"we\"ird\\app", 0.1, 1, 0, "closed"});
  const std::string prom = telemetry::metrics_prometheus(frame);
  EXPECT_TRUE(contains(prom, "{app=\"we\\\"ird\\\\app\"}"));
}

TEST(MetricsExport, BreakerStateValues) {
  EXPECT_EQ(telemetry::breaker_state_value("closed"), 0);
  EXPECT_EQ(telemetry::breaker_state_value("open"), 1);
  EXPECT_EQ(telemetry::breaker_state_value("half-open"), 2);
  EXPECT_EQ(telemetry::breaker_state_value("???"), 0);
}

// ---------- flight recorder --------------------------------------------------

TEST(FlightRecorder, RingWrapsOldestFirst) {
  telemetry::FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(static_cast<std::uint64_t>(i), "event-" + std::to_string(i),
               {});
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(events.front().kind, "event-6");
  EXPECT_EQ(events.back().kind, "event-9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].seconds, events[i - 1].seconds);
  }
}

TEST(FlightRecorder, DumpCarriesReasonConfigAndExtra) {
  telemetry::FlightRecorder rec(8);
  rec.set_config("topo=test cores=8");
  rec.record(7, "retry", "attempt 1 failed: boom");
  std::ostringstream os;
  rec.dump_json(os, "job-failed", [](telemetry::JsonWriter& w) {
    w.field("answer", std::uint64_t{42});
  });
  const std::string dump = os.str();
  EXPECT_TRUE(contains(dump, "\"schema\":\"ramr-flight-v1\""));
  EXPECT_TRUE(contains(dump, "\"reason\":\"job-failed\""));
  EXPECT_TRUE(contains(dump, "topo=test cores=8"));
  EXPECT_TRUE(contains(dump, "\"kind\":\"retry\""));
  EXPECT_TRUE(contains(dump, "attempt 1 failed: boom"));
  EXPECT_TRUE(contains(dump, "\"answer\":42"));
}

// ---------- skew profiler ----------------------------------------------------

TEST(Zipf, SkewProfilerFindsHotKeyOnZipfStream) {
  // A zipf(1.2) stream over 1024 keys: rank 0 dominates, and the sampled
  // count-min estimate must rank it first among the reported hot keys.
  const std::vector<std::uint64_t> stream =
      synth::ZipfGenerator::sample(200000, 1024, 1.2, 99);
  engine::SkewProfiler prof(/*num_mappers=*/2, /*num_combiners=*/2);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::size_t mapper = i & 1;
    if (prof.tick(mapper)) prof.sample_key(mapper, stream[i]);
  }
  prof.add_busy(0, 0.010);
  prof.add_busy(1, 0.030);
  prof.add_drained(0, 1000, 16);
  prof.add_drained(1, 3000, 128);

  const engine::SkewStats s = prof.finalize(
      [](std::size_t m) { return "mapper-" + std::to_string(m); });
  EXPECT_TRUE(s.enabled);
  EXPECT_GT(s.sampled, 2000u);  // 200k emissions / 64 per sample
  ASSERT_FALSE(s.hot_keys.empty());
  EXPECT_EQ(s.hot_keys[0].key, "0");  // rank 0 is the hottest key
  EXPECT_GT(s.hot_keys[0].share, 0.05);
  for (std::size_t i = 1; i < s.hot_keys.size(); ++i) {
    EXPECT_GE(s.hot_keys[i - 1].est_count, s.hot_keys[i].est_count);
  }
  // Busy time: mapper 1 did 3x the work of mapper 0.
  EXPECT_NEAR(s.map_imbalance, 1.5, 0.01);  // 0.030 / mean(0.020)
  EXPECT_EQ(s.straggler, "mapper-1");
  EXPECT_NEAR(s.drain_imbalance, 1.5, 0.01);  // 3000 / mean(2000)
  EXPECT_EQ(s.ring_depth, 128u);
  EXPECT_TRUE(contains(s.summary(), "skew: map_imb=1.50"));
  EXPECT_TRUE(contains(s.summary(), "straggler=mapper-1"));
}

TEST(Zipf, ProfilerOffByDefaultInRun) {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  const topo::Topology topo = topo::make_server("obs-test", 1, 2, 2);
  const ModCountApp app;
  const auto input = make_numbers(20000, 17);

  core::Runtime<ModCountApp> runtime(topo, cfg);
  const auto result = runtime.run(app, input);
  EXPECT_FALSE(result.skew.enabled);
  EXPECT_FALSE(contains(result.summary(), "skew:"));
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

TEST(Zipf, ProfilerOnWhenObservabilitySet) {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.observability = true;
  const topo::Topology topo = topo::make_server("obs-test", 1, 2, 2);
  const ModCountApp app;  // 16 buckets: every key is hot
  const auto input = make_numbers(50000, 17);

  core::Runtime<ModCountApp> runtime(topo, cfg);
  const auto result = runtime.run(app, input);
  EXPECT_TRUE(result.skew.enabled);
  EXPECT_GT(result.skew.sampled, 0u);
  EXPECT_GE(result.skew.map_imbalance, 1.0);
  EXPECT_FALSE(result.skew.straggler.empty());
  EXPECT_FALSE(result.skew.hot_keys.empty());
  EXPECT_TRUE(contains(result.summary(), "skew:"));
  // Profiling must not perturb the answer.
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

// ---------- scheduler plane --------------------------------------------------

RuntimeConfig job_config() {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 256;
  cfg.batch_size = 16;
  return cfg;
}

topo::Topology small_server() {
  return topo::make_server("obs-test", 1, 4, 2);  // 8 logical CPUs
}

TEST(ServiceObs, CountersMatchServiceStatsExactly) {
  service::Scheduler::Options opts;
  opts.observability = true;
  opts.metrics_interval_ms = 10;
  opts.postmortem_path = "";  // no dumps from this test
  opts.max_retries = 2;
  opts.fault_spec = "job_run=0,job_fires=1";  // first attempt faults
  service::Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(10000, 23);
  service::JobSpec spec;
  spec.name = "parity";
  spec.cores = 4;
  spec.config = job_config();
  auto [id, future] = sched.submit(spec, app, input);
  const service::JobReport r = sched.wait(id);
  ASSERT_EQ(r.status, service::JobStatus::kDone) << r.describe();
  EXPECT_EQ(r.trace_id, "parity#" + std::to_string(id));
  EXPECT_TRUE(pairs_match(future.get().pairs, app.reference(input)));

  const service::ServiceStats stats = sched.stats();
  const telemetry::ServiceMetricsFrame frame = sched.metrics_frame();
  const std::vector<std::pair<std::string, std::uint64_t>> expected = {
      {"submitted", stats.submitted},   {"done", stats.done},
      {"failed", stats.failed},         {"cancelled", stats.cancelled},
      {"rejected", stats.rejected},     {"shed", stats.shed},
      {"retries", stats.retries},       {"degraded", stats.degraded},
      {"hedges", stats.hedges},         {"hedge_wins", stats.hedge_wins},
      {"breaker_trips", stats.breaker_trips},
      {"breaker_rejects", stats.breaker_rejects},
      {"job_faults", stats.job_faults}};
  ASSERT_EQ(frame.counters.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(frame.counters[i].first, expected[i].first);
    EXPECT_EQ(frame.counters[i].second, expected[i].second)
        << frame.counters[i].first;
  }
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.job_faults, 1u);

  // Both scrape formats render that frame's numbers.
  const std::string prom = sched.metrics_text();
  EXPECT_TRUE(contains(prom, "ramr_service_retries_total 1\n"));
  EXPECT_TRUE(contains(prom, "ramr_service_done_total 1\n"));
  const std::string json = sched.metrics_json();
  EXPECT_TRUE(contains(json, "\"schema\":\"ramr-metrics-v1\""));
  EXPECT_TRUE(contains(json, "\"retries\":1"));
  // The app row exists once the job succeeded.
  EXPECT_TRUE(contains(json, "\"name\":\"parity\""));
}

TEST(ServiceObs, StitchedTraceHasLifecycleAndRunLanes) {
  service::Scheduler::Options opts;
  opts.observability = true;
  opts.metrics_interval_ms = 10;
  opts.postmortem_path = "";
  opts.max_retries = 1;
  opts.fault_spec = "job_run=0,job_fires=1";  // force one retry
  service::Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(5000, 29);
  service::JobSpec spec;
  spec.name = "traced";
  spec.cores = 4;
  spec.config = job_config();
  auto [id, future] = sched.submit(spec, app, input);
  (void)future;
  ASSERT_EQ(sched.wait(id).status, service::JobStatus::kDone);

  std::ostringstream os;
  sched.write_trace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(contains(trace, "\"traceEvents\""));
  // pid 0 is the scheduler with its counter tracks.
  EXPECT_TRUE(contains(trace, "\"scheduler\""));
  // The job has its own named process track and lifecycle spans.
  EXPECT_TRUE(
      contains(trace, "job " + std::to_string(id) + ": traced"));
  EXPECT_TRUE(contains(trace, "\"lifecycle\""));
  EXPECT_TRUE(contains(trace, "\"queued\""));
  EXPECT_TRUE(contains(trace, "\"run\""));
  EXPECT_TRUE(contains(trace, "\"retry\""));
  EXPECT_TRUE(contains(trace, "\"done\""));
  // Per-run engine lanes stitched under the job's process.
  EXPECT_TRUE(contains(trace, "\"mapper-0\""));
  EXPECT_TRUE(contains(trace, "\"driver\""));
}

TEST(ServiceObs, TraceUnavailableWhenPlaneOff) {
  service::Scheduler sched(small_server());
  EXPECT_FALSE(sched.observability());
  std::ostringstream os;
  EXPECT_THROW(sched.write_trace(os), Error);
  // The scrape surface still works without the plane.
  EXPECT_TRUE(contains(sched.metrics_json(), "ramr-metrics-v1"));
}

TEST(ServiceObs, PostmortemOnJobFailure) {
  const std::string path = "obs_postmortem_fail.json";
  std::remove(path.c_str());
  service::Scheduler::Options opts;
  opts.observability = true;
  opts.metrics_interval_ms = 10;
  opts.postmortem_path = path;
  opts.max_retries = 1;
  opts.fault_spec = "job_run=0,job_fires=100";  // every attempt faults
  service::Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(1000, 31);
  service::JobSpec spec;
  spec.name = "doomed-obs";
  spec.cores = 4;
  spec.config = job_config();
  auto [id, future] = sched.submit(spec, app, input);
  (void)future;
  ASSERT_EQ(sched.wait(id).status, service::JobStatus::kFailed);

  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty()) << "post-mortem not written to " << path;
  EXPECT_TRUE(contains(dump, "\"schema\":\"ramr-flight-v1\""));
  EXPECT_TRUE(contains(dump, "\"reason\":\"job-failed\""));
  // Names the aborted job by trace id and carries its lifecycle.
  EXPECT_TRUE(contains(dump, "doomed-obs#" + std::to_string(id)));
  EXPECT_TRUE(contains(dump, "\"kind\":\"retry\""));
  EXPECT_TRUE(contains(dump, "\"status\":\"failed\""));
  std::remove(path.c_str());
}

TEST(ServiceObs, PostmortemOnBreakerOpen) {
  const std::string path = "obs_postmortem_breaker.json";
  std::remove(path.c_str());
  service::Scheduler::Options opts;
  opts.observability = true;
  opts.metrics_interval_ms = 10;
  opts.postmortem_path = path;
  opts.breaker_k = 1;  // first final failure trips the breaker
  opts.fault_spec = "job_run=0,job_fires=100";
  service::Scheduler sched(small_server(), opts);

  service::JobSpec spec;
  spec.name = "breaker-obs";
  const service::JobId id = sched.submit(spec, [](service::JobContext&) {});
  ASSERT_EQ(sched.wait(id).status, service::JobStatus::kFailed);

  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(contains(dump, "\"reason\":\"breaker-open\""));
  EXPECT_TRUE(contains(dump, "breaker-obs#" + std::to_string(id)));
  EXPECT_EQ(sched.stats().breaker_trips, 1u);
  // The metrics frame reports the open breaker for the app row.
  bool found = false;
  for (const auto& app : sched.metrics_frame().apps) {
    if (app.name == "breaker-obs") {
      EXPECT_EQ(app.breaker, "open");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(ServiceObs, MetricsPathDumpedBySampler) {
  const std::string path = "obs_metrics_dump.prom";
  std::remove(path.c_str());
  {
    service::Scheduler::Options opts;
    opts.observability = true;
    opts.metrics_interval_ms = 5;
    opts.metrics_path = path;
    opts.postmortem_path = "";
    service::Scheduler sched(small_server(), opts);
    service::JobSpec spec;
    spec.name = "dumped";
    const service::JobId id =
        sched.submit(spec, [](service::JobContext&) {});
    sched.wait(id);
    sched.shutdown();  // final sampler flush happens before join
  }
  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty()) << "sampler never wrote " << path;
  EXPECT_TRUE(contains(dump, "ramr_service_uptime_seconds"));
  EXPECT_TRUE(contains(dump, "ramr_service_submitted_total 1"));
  std::remove(path.c_str());
}

// With the plane off, reports and summaries carry no observability text at
// all (the byte-identical-output contract).
TEST(ServiceObs, OffByDefaultLeavesReportsUntouched) {
  service::Scheduler sched(small_server());
  const ModCountApp app;
  const auto input = make_numbers(5000, 37);
  service::JobSpec spec;
  spec.name = "plain";
  spec.cores = 4;
  spec.config = job_config();
  auto [id, future] = sched.submit(spec, app, input);
  (void)future;
  const service::JobReport r = sched.wait(id);
  ASSERT_EQ(r.status, service::JobStatus::kDone);
  EXPECT_FALSE(contains(r.describe(), "trace"));
  EXPECT_FALSE(contains(r.run_summary, "skew:"));
  EXPECT_EQ(r.trace_id, "plain#" + std::to_string(id));  // stamped, unused
}

}  // namespace
}  // namespace ramr
