// Tests for the unified execution engine: PoolSet pin resolution per
// policy, PhaseDriver error-join semantics (mapper throw, combiner throw),
// trace wiring for every strategy, and cross-strategy result parity on the
// mini apps.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "containers/atomic_array_container.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_atomic.hpp"
#include "engine/strategy_fused.hpp"
#include "engine/strategy_pipelined.hpp"
#include "mini_apps.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace ramr::engine {
namespace {

using testing::make_numbers;
using testing::ModCountApp;
using testing::pairs_match;

// ---------- PoolSet: pin resolution per policy -----------------------------------

TEST(PoolSet, SinglePoolOsDefaultLeavesEveryWorkerUnpinned) {
  PoolSet pools(topo::fig3_example(), 6, PinPolicy::kOsDefault);
  EXPECT_FALSE(pools.dual());
  EXPECT_EQ(pools.num_mappers(), 6u);
  EXPECT_EQ(pools.num_combiners(), 0u);
  for (const auto& pin : pools.mapper_pins()) {
    EXPECT_FALSE(pin.has_value());
  }
}

TEST(PoolSet, SinglePoolRoundRobinPinsInOsIdOrder) {
  const auto topo = topo::fig3_example();
  PoolSet pools(topo, topo.num_logical() + 2, PinPolicy::kRoundRobin);
  ASSERT_EQ(pools.mapper_pins().size(), topo.num_logical() + 2);
  for (std::size_t i = 0; i < pools.mapper_pins().size(); ++i) {
    ASSERT_TRUE(pools.mapper_pins()[i].has_value());
    EXPECT_EQ(*pools.mapper_pins()[i],
              topo.cpus()[i % topo.num_logical()].os_id);
  }
}

TEST(PoolSet, SinglePoolPairedPolicyDegeneratesToProximityOrder) {
  // With a single pool there is no mapper/combiner pair structure; the
  // paired policy walks the topology's proximity order instead.
  const auto topo = topo::haswell_server();
  const auto order = topo.proximity_order();
  PoolSet pools(topo, 8, PinPolicy::kRamrPaired);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(pools.mapper_pins()[i].has_value());
    EXPECT_EQ(*pools.mapper_pins()[i], order[i % order.size()]);
  }
}

TEST(PoolSet, SinglePoolZeroWorkersFillsTopology) {
  PoolSet pools(topo::fig3_example(), 0, PinPolicy::kOsDefault);
  EXPECT_EQ(pools.num_mappers(), 16u);
}

TEST(PoolSet, DualPoolPairedPinsFollowThePinningPlan) {
  const auto topo = topo::haswell_server();
  RuntimeConfig cfg;
  cfg.num_mappers = 6;
  cfg.num_combiners = 3;
  cfg.pin_policy = PinPolicy::kRamrPaired;
  PoolSet pools(topo, cfg);
  EXPECT_TRUE(pools.dual());
  const auto plan = topo::make_plan(topo, PinPolicy::kRamrPaired, 6, 3);
  ASSERT_EQ(pools.mapper_pins().size(), 6u);
  ASSERT_EQ(pools.combiner_pins().size(), 3u);
  for (std::size_t m = 0; m < 6; ++m) {
    ASSERT_TRUE(pools.mapper_pins()[m].has_value());
    EXPECT_EQ(*pools.mapper_pins()[m], plan.mapper_cpu[m]);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(pools.combiner_pins()[j].has_value());
    EXPECT_EQ(*pools.combiner_pins()[j], plan.combiner_cpu[j]);
  }
}

TEST(PoolSet, DualPoolOsDefaultLeavesPinsEmpty) {
  RuntimeConfig cfg;
  cfg.num_mappers = 3;
  cfg.num_combiners = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;
  PoolSet pools(topo::host(), cfg);
  for (const auto& pin : pools.mapper_pins()) EXPECT_FALSE(pin.has_value());
  for (const auto& pin : pools.combiner_pins()) EXPECT_FALSE(pin.has_value());
}

TEST(PoolSet, DualPoolResolvesDerivedWorkerCounts) {
  RuntimeConfig cfg;
  cfg.mapper_combiner_ratio = 3;
  cfg.pin_policy = PinPolicy::kOsDefault;
  PoolSet pools(topo::fig3_example(), cfg);  // 16 logical CPUs
  EXPECT_EQ(pools.config().num_mappers, 12u);
  EXPECT_EQ(pools.config().num_combiners, 4u);
}

TEST(PoolSet, DualPoolRejectsMoreCombinersThanMappers) {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 4;
  EXPECT_THROW(PoolSet(topo::host(), cfg), ConfigError);
}

// ---------- PhaseDriver: error-join semantics ------------------------------------

RuntimeConfig tiny_dual_config() {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 8;  // tiny: mappers block quickly on failure
  cfg.batch_size = 2;
  return cfg;
}

struct ThrowingMapApp {
  using input_type = std::vector<int>;
  using container_type =
      containers::FixedArrayContainer<std::uint64_t, containers::CountCombiner>;

  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_container() const { return container_type(8); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    if (in[split] < 0) throw Error("poisoned split");
    emit(static_cast<std::uint64_t>(in[split]) % 8, std::uint64_t{1});
  }
};

// Combiner-side failure: the container capacity is exhausted inside the
// combiner's emit, not in map.
struct TinyHashApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type =
      containers::FixedHashContainer<std::uint64_t, std::uint64_t,
                                     containers::CountCombiner>;
  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_container() const { return container_type(4); }
  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    emit(in[split], std::uint64_t{1});
  }
};

TEST(PhaseDriver, MapperThrowJoinsBothPoolsAndStaysReusable) {
  PoolSet pools(topo::host(), tiny_dual_config());
  PhaseDriver driver(pools);
  std::vector<int> poisoned(200, 1);
  poisoned[123] = -1;
  {
    PipelinedSpsc<ThrowingMapApp> strategy;
    EXPECT_THROW(driver.run(strategy, ThrowingMapApp{}, poisoned), Error);
  }
  // Both pools were joined: a clean run on the same driver succeeds.
  const std::vector<int> clean(200, 2);
  PipelinedSpsc<ThrowingMapApp> strategy;
  const auto result = driver.run(strategy, ThrowingMapApp{}, clean);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].second, 200u);
}

TEST(PhaseDriver, CombinerThrowAbortsBlockedMappersAndStaysReusable) {
  PoolSet pools(topo::host(), tiny_dual_config());
  PhaseDriver driver(pools);
  std::vector<std::uint64_t> input(500);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = i;
  {
    PipelinedSpsc<TinyHashApp> strategy;
    EXPECT_THROW(driver.run(strategy, TinyHashApp{}, input), Error);
  }
  std::vector<std::uint64_t> small(100);
  for (std::size_t i = 0; i < small.size(); ++i) small[i] = i % 4;
  PipelinedSpsc<TinyHashApp> strategy;
  const auto result = driver.run(strategy, TinyHashApp{}, small);
  EXPECT_EQ(result.pairs.size(), 4u);
}

TEST(PhaseDriver, FusedStrategyPropagatesMapExceptions) {
  PoolSet pools(topo::host(), 2, PinPolicy::kOsDefault);
  PhaseDriver driver(pools);
  std::vector<int> poisoned(100, 1);
  poisoned[57] = -1;
  {
    FusedCombine<ThrowingMapApp> strategy;
    EXPECT_THROW(driver.run(strategy, ThrowingMapApp{}, poisoned), Error);
  }
  const std::vector<int> clean(100, 1);
  FusedCombine<ThrowingMapApp> strategy;
  const auto result = driver.run(strategy, ThrowingMapApp{}, clean);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].second, 100u);
}

// ---------- cross-strategy result parity -----------------------------------------

// The ModCount workload expressed for the atomic-global strategy: same map
// body, shared atomically-accessed container.
struct ModCountGlobalApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type =
      containers::AtomicArrayContainer<std::uint64_t,
                                       containers::AtomicOp::kAdd>;

  ModCountApp base;

  std::size_t num_splits(const input_type& in) const {
    return base.num_splits(in);
  }
  container_type make_global_container() const {
    return container_type(base.buckets);
  }
  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    base.map(in, split, emit);
  }
};

TEST(Engine, AllThreeStrategiesProduceIdenticalPairs) {
  const ModCountApp app;
  const ModCountGlobalApp global_app;
  const auto input = make_numbers(12000, 17);
  const auto ref = app.reference(input);

  PoolSet single(topo::host(), 3, PinPolicy::kOsDefault);
  PhaseDriver fused_driver(single);
  FusedCombine<ModCountApp> fused;
  const auto fused_result = fused_driver.run(fused, app, input);

  RuntimeConfig cfg = tiny_dual_config();
  cfg.queue_capacity = 256;
  cfg.batch_size = 32;
  PoolSet dual(topo::host(), cfg);
  PhaseDriver pipelined_driver(dual);
  PipelinedSpsc<ModCountApp> pipelined;
  const auto pipelined_result = pipelined_driver.run(pipelined, app, input);

  PoolSet atomic_pool(topo::host(), 3, PinPolicy::kOsDefault);
  PhaseDriver atomic_driver(atomic_pool);
  AtomicGlobal<ModCountGlobalApp> atomic;
  const auto atomic_result = atomic_driver.run(atomic, global_app, input);

  EXPECT_TRUE(pairs_match(fused_result.pairs, ref));
  EXPECT_EQ(fused_result.pairs, pipelined_result.pairs);
  EXPECT_EQ(fused_result.pairs, atomic_result.pairs);

  // The unified result reports queue traffic only for the pipelined
  // strategy, and a reduce phase only where one exists.
  EXPECT_EQ(fused_result.queue_pushes, 0u);
  EXPECT_GT(pipelined_result.queue_pushes, 0u);
  EXPECT_EQ(atomic_result.queue_pushes, 0u);
  EXPECT_DOUBLE_EQ(atomic_result.timers.seconds(Phase::kReduce), 0.0);
}

// ---------- trace wiring for every strategy --------------------------------------

TEST(Engine, TracedFusedRunProducesNonEmptyWorkerLanes) {
  // The acceptance bar for the engine refactor: a traced Phoenix-style
  // (fused) run records real events, not just RAMR runs.
  const ModCountApp app;
  const auto input = make_numbers(5000, 5);
  PoolSet pools(topo::host(), 2, PinPolicy::kOsDefault);
  PhaseDriver driver(pools);
  trace::Recorder rec;
  driver.set_recorder(&rec);
  FusedCombine<ModCountApp> strategy;
  const auto result = driver.run(strategy, app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));

  ASSERT_EQ(rec.lane_count(), 3u);  // driver phase lane + one per worker
  std::size_t task_starts = 0;
  std::size_t task_ends = 0;
  for (const trace::Event& e : rec.collect()) {
    if (e.kind == trace::EventKind::kTaskStart) ++task_starts;
    if (e.kind == trace::EventKind::kTaskEnd) ++task_ends;
  }
  EXPECT_GT(task_starts, 0u);
  EXPECT_EQ(task_starts, task_ends);
  EXPECT_EQ(task_starts, result.tasks_executed);
  const std::string timeline = trace::render_timeline(rec, 40);
  EXPECT_NE(timeline.find("worker-0"), std::string::npos);
}

TEST(Engine, TracedAtomicGlobalRunProducesNonEmptyWorkerLanes) {
  const ModCountGlobalApp app;
  const auto input = make_numbers(4000, 6);
  PoolSet pools(topo::host(), 2, PinPolicy::kOsDefault);
  PhaseDriver driver(pools);
  trace::Recorder rec;
  driver.set_recorder(&rec);
  AtomicGlobal<ModCountGlobalApp> strategy;
  const auto result = driver.run(strategy, app, input);
  EXPECT_GT(result.tasks_executed, 0u);
  EXPECT_EQ(rec.lane_count(), 3u);  // driver phase lane + one per worker
  EXPECT_GT(rec.collect().size(), 0u);
}

}  // namespace
}  // namespace ramr::engine
