// Tests for the out-of-core streaming input subsystem (src/io/): window
// chunking invariants (record-aligned cuts, carry-over, EOF probe), the
// RAMR_IO* knob validation, streaming-vs-slurped result parity for the
// three text/byte suite apps under both window sources, gzip round-trip,
// IO-lane fault injection, and streaming through the service scheduler.
// Time bounds are generous — this suite runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "apps/io.hpp"
#include "apps/streaming.hpp"
#include "apps/string_match.hpp"
#include "apps/suite.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_fused.hpp"
#include "io/chunk_source.hpp"
#include "io/gzip.hpp"
#include "io/io_config.hpp"
#include "io/stream_feeder.hpp"
#include "io/stream_input.hpp"
#include "service/scheduler.hpp"
#include "topology/topology.hpp"

namespace ramr {
namespace {

using apps::StreamOptions;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ramr_io_" + name;
}

std::string write_temp(const std::string& name, std::string_view content) {
  const std::string path = temp_path(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  EXPECT_TRUE(out.good()) << path;
  return path;
}

// Engine knobs shared by the streaming runs: small worker counts and
// advisory pinning so the suite runs on any host.
RuntimeConfig stream_config() {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 512;
  cfg.batch_size = 32;
  return cfg;
}

StreamOptions stream_options(io::IoMode mode,
                             std::size_t window = 4096,
                             std::size_t split = 1024) {
  StreamOptions opts;
  opts.config = stream_config();
  opts.io.mode = mode;
  opts.io.window_bytes = window;
  opts.io.depth = 3;
  opts.split_bytes = split;
  return opts;
}

template <typename K, typename V>
std::map<std::string, V> as_map(const std::vector<std::pair<K, V>>& pairs) {
  std::map<std::string, V> m;
  for (const auto& [k, v] : pairs) m[std::string(k)] += v;
  return m;
}

// std::string-keyed view of a reference map (whose keys are views into
// the slurped input).
template <typename K, typename V>
std::map<std::string, V> as_map(const std::map<K, V>& ref) {
  std::map<std::string, V> m;
  for (const auto& [k, v] : ref) m[std::string(k)] += v;
  return m;
}

// ---------- RAMR_IO* knob validation ----------------------------------------

TEST(IoConfig, ParseModeAcceptsKnownAndNamesKnobOnError) {
  EXPECT_EQ(io::parse_io_mode("off"), io::IoMode::kOff);
  EXPECT_EQ(io::parse_io_mode("mmap"), io::IoMode::kMmap);
  EXPECT_EQ(io::parse_io_mode("direct"), io::IoMode::kDirect);
  try {
    io::parse_io_mode("weird");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("RAMR_IO"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("weird"), std::string::npos);
  }
}

TEST(IoConfig, FromEnvReadsAllThreeKnobs) {
  env::ScopedOverride mode("RAMR_IO", "mmap");
  env::ScopedOverride window("RAMR_IO_WINDOW", "131072");
  env::ScopedOverride depth("RAMR_IO_DEPTH", "4");
  const io::IoConfig cfg = io::IoConfig::from_env();
  EXPECT_EQ(cfg.mode, io::IoMode::kMmap);
  EXPECT_EQ(cfg.window_bytes, 131072u);
  EXPECT_EQ(cfg.depth, 4u);
  EXPECT_TRUE(cfg.enabled());
}

TEST(IoConfig, FromEnvRejectsOutOfRangeNamingTheVariable) {
  {
    env::ScopedOverride window("RAMR_IO_WINDOW", "1024");  // < 64 KiB floor
    try {
      io::IoConfig::from_env();
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("RAMR_IO_WINDOW"),
                std::string::npos);
    }
  }
  {
    env::ScopedOverride depth("RAMR_IO_DEPTH", "1");  // < 2 floor
    try {
      io::IoConfig::from_env();
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("RAMR_IO_DEPTH"),
                std::string::npos);
    }
  }
  {
    env::ScopedOverride mode("RAMR_IO", "turbo");
    EXPECT_THROW(io::IoConfig::from_env(), ConfigError);
  }
}

TEST(IoConfig, DefaultIsOffAndFactoryRefusesOff) {
  const io::IoConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  const std::string path = write_temp("off.txt", "hello world");
  EXPECT_THROW(io::open_chunk_source(path, cfg, io::text_record_break),
               ConfigError);
}

// ---------- window chunking invariants --------------------------------------

// Reassemble the stream from windows and check every cut landed on a
// record break; shared by the copy and mmap source tests.
void expect_windowed_exactly(io::ChunkSource& source, std::size_t window,
                             const std::string& expected) {
  std::vector<char> scratch(window);
  std::string reassembled;
  std::uint64_t next_offset = 0;
  for (;;) {
    const io::WindowData w = source.next(scratch.data(), window);
    if (w.size == 0) break;
    EXPECT_LE(w.size, window);
    EXPECT_EQ(w.base_offset, next_offset);
    next_offset += w.size;
    reassembled.append(w.data, w.size);
    const bool final_window = reassembled.size() == expected.size();
    if (!final_window) {
      EXPECT_TRUE(io::text_record_break(w.data[w.size - 1]))
          << "window cut mid-word at offset " << next_offset;
    }
    source.retire(w);
  }
  EXPECT_EQ(reassembled, expected);
  EXPECT_EQ(source.bytes_read(), expected.size());
}

TEST(ChunkSource, CopySourceCutsOnlyAtRecordBreaks) {
  const std::string text = apps::make_text(20000, 120, 5);
  const std::string path = write_temp("copy_cuts.txt", text);
  io::CopyChunkSource source(io::open_buffered_reader(path),
                             io::text_record_break, 96);
  expect_windowed_exactly(source, 96, text);
  EXPECT_GT(source.carry_bytes(), 0u);  // words straddled window edges
}

TEST(ChunkSource, MmapSourceCutsOnlyAtRecordBreaks) {
  const std::string text = apps::make_text(20000, 120, 6);
  const std::string path = write_temp("mmap_cuts.txt", text);
  io::MmapChunkSource source(path, 96, io::text_record_break);
  EXPECT_TRUE(source.zero_copy());
  expect_windowed_exactly(source, 96, text);
}

TEST(ChunkSource, EmptyFileYieldsNoWindows) {
  const std::string path = write_temp("empty.txt", "");
  std::vector<char> scratch(64);
  io::CopyChunkSource copy(io::open_buffered_reader(path),
                           io::text_record_break, 64);
  EXPECT_EQ(copy.next(scratch.data(), 64).size, 0u);
  io::MmapChunkSource mapped(path, 64, io::text_record_break);
  EXPECT_EQ(mapped.next(nullptr, 64).size, 0u);
}

TEST(ChunkSource, RecordLargerThanWindowNamesTheKnob) {
  const std::string giant(300, 'x');  // one record, no break
  const std::string path = write_temp("giant.txt", giant + " tail");
  std::vector<char> scratch(64);
  io::CopyChunkSource copy(io::open_buffered_reader(path),
                           io::text_record_break, 64);
  try {
    copy.next(scratch.data(), 64);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("RAMR_IO_WINDOW"),
              std::string::npos);
  }
  io::MmapChunkSource mapped(path, 64, io::text_record_break);
  EXPECT_THROW(mapped.next(nullptr, 64), ConfigError);
}

TEST(ChunkSource, ExactlyWindowSizedFinalRecordIsNotTooBig) {
  // 64 bytes, no whitespace, EOF right at the window edge: the one-byte
  // probe must discover EOF instead of reporting the record too big.
  const std::string record(64, 'y');
  const std::string path = write_temp("exact.txt", record);
  std::vector<char> scratch(64);
  io::CopyChunkSource source(io::open_buffered_reader(path),
                             io::text_record_break, 64);
  const io::WindowData w = source.next(scratch.data(), 64);
  EXPECT_EQ(w.size, 64u);
  EXPECT_EQ(std::string(w.data, w.size), record);
  EXPECT_EQ(source.next(scratch.data(), 64).size, 0u);
}

TEST(ChunkSource, BinaryStreamCutsAnywhere) {
  const std::string blob(1000, 'z');  // no record breaks at all
  const std::string path = write_temp("binary.bin", blob);
  std::vector<char> scratch(256);
  io::CopyChunkSource source(io::open_buffered_reader(path), nullptr, 256);
  std::size_t total = 0;
  for (;;) {
    const io::WindowData w = source.next(scratch.data(), 256);
    if (w.size == 0) break;
    total += w.size;
  }
  EXPECT_EQ(total, blob.size());
}

// ---------- streaming vs slurped parity -------------------------------------

TEST(StreamingParity, WordCountMatchesSlurpedUnderBothSources) {
  const std::string text = apps::make_text(200000, 300, 7);
  const std::string path = write_temp("wc_parity.txt", text);
  const apps::TextInput slurped = apps::load_text_file(path, 1024);
  const auto ref = apps::wordcount_reference(slurped);

  for (const io::IoMode mode : {io::IoMode::kMmap, io::IoMode::kDirect}) {
    const auto result =
        apps::run_wordcount_stream(path, stream_options(mode));
    EXPECT_EQ(as_map(result.pairs), as_map(ref))
        << "mode " << io::to_string(mode);
    EXPECT_TRUE(result.io.enabled());
    EXPECT_EQ(result.io.mode, io::to_string(mode));
    EXPECT_EQ(result.io.bytes_read, text.size());
    EXPECT_GE(result.io.windows,
              text.size() / stream_options(mode).io.window_bytes);
    EXPECT_EQ(result.io.window_bytes, 4096u);
    EXPECT_EQ(result.io.depth, 3u);
    EXPECT_GT(result.peak_rss_bytes, 0u);
  }
}

TEST(StreamingParity, FoldedWordCountMatchesNormalizedSlurp) {
  const std::string prose =
      "The quick brown Fox, the QUICK fox; jumps!\nOver the lazy dog. "
      "fox Fox FOX?";
  const std::string path = write_temp("wc_fold.txt", prose);
  const apps::TextInput slurped = apps::load_text_file(path, 16, true);
  const auto ref = apps::wordcount_reference(slurped);

  StreamOptions opts = stream_options(io::IoMode::kMmap, 4096, 16);
  opts.fold_words = true;
  const auto result = apps::run_wordcount_stream(path, opts);
  EXPECT_EQ(as_map(result.pairs), as_map(ref));
  EXPECT_EQ(as_map(result.pairs).at("fox"), 5u);
}

TEST(StreamingParity, StringMatchMatchesReference) {
  const std::string text = apps::make_text(120000, 200, 8);
  const std::string path = write_temp("sm_parity.txt", text);
  const std::vector<std::string> patterns = {"w0", "w1", "w42",
                                             "not-in-text"};
  const apps::SmInput slurped{apps::load_text_file(path, 1024), patterns};
  const auto ref = apps::string_match_reference(slurped);

  const auto result = apps::run_string_match_stream(
      path, patterns, stream_options(io::IoMode::kDirect));
  std::map<std::uint64_t, std::uint64_t> got(result.pairs.begin(),
                                             result.pairs.end());
  EXPECT_EQ(got, ref);
}

TEST(StreamingParity, HistogramRotationSurvivesWindowCuts) {
  // Windows of a binary stream cut anywhere; the channel of a byte is its
  // absolute offset mod 3, so any base_offset bug shifts whole windows
  // into the wrong channel.
  const std::vector<std::uint8_t> pixels = apps::make_pixels(100000, 9);
  const std::string path = write_temp(
      "hg_parity.bin",
      std::string_view(reinterpret_cast<const char*>(pixels.data()),
                       pixels.size()));
  const auto ref = apps::histogram_reference({pixels, 1024});

  // 1000-byte window: not a multiple of 3, so the rotation is exercised.
  const auto result = apps::run_histogram_stream(
      path, stream_options(io::IoMode::kMmap, 1000, 300));
  std::map<std::uint64_t, std::uint64_t> got;
  for (const auto& [k, v] : result.pairs) {
    if (v != 0) got[k] += v;
  }
  EXPECT_EQ(got, ref);
}

TEST(StreamingParity, EmptyInputProducesEmptyResult) {
  const std::string path = write_temp("empty_run.txt", "");
  const auto result =
      apps::run_wordcount_stream(path, stream_options(io::IoMode::kMmap));
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.io.windows, 0u);
  EXPECT_EQ(result.io.bytes_read, 0u);
}

TEST(StreamingParity, GzipRoundTripMatchesPlainText) {
  if (!io::gzip_supported()) {
    GTEST_SKIP() << "built without zlib";
  }
  const std::string text = apps::make_text(80000, 150, 10);
  const std::string plain = write_temp("gz_ref.txt", text);
  const std::string gz = temp_path("gz_input.txt.gz");
  io::write_gzip_file(gz, text);

  const apps::TextInput slurped = apps::load_text_file(plain, 1024);
  const auto ref = apps::wordcount_reference(slurped);
  const auto result =
      apps::run_wordcount_stream(gz, stream_options(io::IoMode::kMmap));
  EXPECT_EQ(as_map(result.pairs), as_map(ref));
  EXPECT_EQ(result.io.source, "gzip");  // .gz routes through inflate
  EXPECT_EQ(result.io.bytes_read, text.size());  // decompressed bytes
}

TEST(Streaming, MissingFileCarriesErrnoDetail) {
  try {
    apps::run_wordcount_stream(temp_path("does_not_exist.txt"),
                               stream_options(io::IoMode::kMmap));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("errno"), std::string::npos);
  }
}

// ---------- IO-lane fault injection ----------------------------------------

TEST(StreamingFaults, PermanentReadFaultAbortsNamingTheIoLane) {
  const std::string text = apps::make_text(60000, 100, 11);
  const std::string path = write_temp("fault_perm.txt", text);
  StreamOptions opts = stream_options(io::IoMode::kMmap);
  opts.config.fault_spec = "io_read=1,io_fires=1";
  try {
    apps::run_wordcount_stream(path, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("io-lane"), std::string::npos);
  }
}

TEST(StreamingFaults, TransientReadFaultIsRetriedWithParity) {
  const std::string text = apps::make_text(60000, 100, 12);
  const std::string path = write_temp("fault_transient.txt", text);
  const apps::TextInput slurped = apps::load_text_file(path, 1024);
  const auto ref = apps::wordcount_reference(slurped);

  StreamOptions opts = stream_options(io::IoMode::kMmap);
  opts.config.fault_spec = "io_read=1,io_fires=1,io_transient=1";
  opts.config.max_task_retries = 2;
  const auto result = apps::run_wordcount_stream(path, opts);
  EXPECT_EQ(result.io.io_retries, 1u);
  EXPECT_EQ(as_map(result.pairs), as_map(ref));
}

// ---------- strategy and service coverage -----------------------------------

TEST(Streaming, FusedStrategyMatchesPipelined) {
  const std::string text = apps::make_text(100000, 200, 13);
  const std::string path = write_temp("fused.txt", text);
  const apps::TextInput slurped = apps::load_text_file(path, 1024);
  const auto ref = apps::wordcount_reference(slurped);

  const StreamOptions opts = stream_options(io::IoMode::kMmap);
  io::StreamInput input(opts.io, opts.split_bytes);
  io::StreamFeeder feeder(
      io::open_chunk_source(path, opts.io, io::text_record_break), input,
      opts.io);
  apps::StreamWordCountApp app;
  engine::PoolSet pools(topo::host(), 2, PinPolicy::kOsDefault);
  engine::PhaseDriver driver(pools);
  engine::FusedCombine<apps::StreamWordCountApp> strategy;
  const auto result = driver.run_stream(strategy, app, input, feeder);
  EXPECT_EQ(as_map(result.pairs), as_map(ref));
  EXPECT_EQ(result.io.source, "mmap");
}

TEST(Streaming, ServiceJobRunsStreamThroughScheduler) {
  const std::string text = apps::make_text(100000, 200, 14);
  const std::string path = write_temp("service.txt", text);
  const apps::TextInput slurped = apps::load_text_file(path, 1024);
  const auto ref = apps::wordcount_reference(slurped);

  service::Scheduler sched(topo::make_server("io-test", 1, 4, 2));
  service::JobSpec spec;
  spec.cores = 4;
  spec.config = stream_config();
  spec.name = "wc-stream";
  std::map<std::string, std::uint64_t> got;
  const service::JobId id =
      sched.submit(spec, [&](service::JobContext& ctx) {
        const StreamOptions opts = stream_options(io::IoMode::kMmap);
        io::StreamInput input(opts.io, opts.split_bytes);
        io::StreamFeeder feeder(
            io::open_chunk_source(path, opts.io, io::text_record_break),
            input, opts.io);
        apps::StreamWordCountApp app;
        got = as_map(ctx.run_stream(app, input, feeder).pairs);
      });
  const service::JobReport report = sched.wait(id);
  EXPECT_EQ(report.status, service::JobStatus::kDone) << report.error;
  EXPECT_EQ(got, as_map(ref));
}

}  // namespace
}  // namespace ramr
