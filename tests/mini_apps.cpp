#include "mini_apps.hpp"

#include "common/rng.hpp"

namespace ramr::testing {

std::vector<std::uint64_t> make_numbers(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next();
  return out;
}

std::vector<std::string> make_lines(std::size_t n, std::uint64_t seed) {
  static const char* kWords[] = {"the",  "map",   "reduce", "phi",
                                 "core", "queue", "cache",  "ramr"};
  Xoshiro256 rng(seed);
  std::vector<std::string> out(n);
  for (auto& line : out) {
    const std::size_t words = 3 + rng.below(8);
    for (std::size_t w = 0; w < words; ++w) {
      if (w != 0) line += ' ';
      line += kWords[rng.below(8)];
    }
  }
  return out;
}

}  // namespace ramr::testing
