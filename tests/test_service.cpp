// Tests for service mode: core-lease disjointness and exhaustion, scheduler
// admission control, per-job cancellation isolation, warm-pool reuse parity
// against the one-shot runtime, and the PoolDepot recycling rules the
// scheduler (and service-mode core::Runtime) relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/env.hpp"
#include "core/runtime.hpp"
#include "engine/pool_depot.hpp"
#include "mini_apps.hpp"
#include "service/scheduler.hpp"
#include "topology/topology.hpp"

namespace ramr::service {
namespace {

using testing::make_numbers;
using testing::ModCountApp;
using testing::pairs_match;

// Small worker counts and OS-default pinning: the leased sub-topologies are
// modelled shapes whose OS ids need not exist on the machine running the
// tests, so pins must be advisory.
RuntimeConfig job_config(std::size_t mappers, std::size_t combiners) {
  RuntimeConfig cfg;
  cfg.num_mappers = mappers;
  cfg.num_combiners = combiners;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 256;
  cfg.batch_size = 16;
  return cfg;
}

topo::Topology small_server() {
  return topo::make_server("svc-test", 1, 4, 2);  // 8 logical CPUs
}

TEST(CoreLeaseRegistry, GrantsAreDisjointAndExhaustible) {
  const topo::Topology topo = small_server();
  CoreLeaseRegistry reg(topo);
  EXPECT_EQ(reg.total(), 8u);
  EXPECT_EQ(reg.available(), 8u);

  auto a = reg.try_acquire(3);
  auto b = reg.try_acquire(3);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(b->size(), 3u);
  std::set<std::size_t> seen(a->cpu_os_ids.begin(), a->cpu_os_ids.end());
  for (std::size_t id : b->cpu_os_ids) {
    EXPECT_TRUE(seen.insert(id).second) << "core " << id << " double-leased";
  }
  EXPECT_EQ(reg.available(), 2u);

  // All-or-nothing: 3 cores wanted, only 2 free.
  EXPECT_FALSE(reg.try_acquire(3).has_value());
  EXPECT_EQ(reg.available(), 2u);

  reg.release(*a);
  EXPECT_EQ(reg.available(), 5u);
  reg.release(*a);  // idempotent
  EXPECT_EQ(reg.available(), 5u);
  EXPECT_TRUE(reg.try_acquire(5).has_value());

  // Impossible and empty requests.
  EXPECT_FALSE(reg.try_acquire(0).has_value());
  EXPECT_FALSE(CoreLeaseRegistry(topo).try_acquire(9).has_value());
}

TEST(CoreLeaseRegistry, GrantsFollowProximityOrder) {
  const topo::Topology topo = small_server();
  CoreLeaseRegistry reg(topo);
  const std::vector<std::size_t> order = topo.proximity_order();
  auto lease = reg.try_acquire(4);
  ASSERT_TRUE(lease.has_value());
  // First free cores in proximity order: the lease occupies physically
  // adjacent resources (SMT siblings first).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lease->cpu_os_ids[i], order[i]);
  }
}

TEST(Scheduler, ConcurrentJobsGetDisjointCoreSets) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 2;
  Scheduler sched(small_server(), opts);

  // Both jobs hold a latch open until each has observed the other running,
  // proving they were truly concurrent on their disjoint sets.
  std::latch both_running(2);
  auto body = [&](JobContext& ctx) {
    both_running.arrive_and_wait();
    EXPECT_FALSE(ctx.lease().empty());
  };
  JobSpec spec;
  spec.cores = 4;
  spec.config = job_config(2, 1);
  spec.name = "a";
  const JobId a = sched.submit(spec, body);
  spec.name = "b";
  const JobId b = sched.submit(spec, body);

  const JobReport ra = sched.wait(a);
  const JobReport rb = sched.wait(b);
  EXPECT_EQ(ra.status, JobStatus::kDone) << ra.error;
  EXPECT_EQ(rb.status, JobStatus::kDone) << rb.error;
  ASSERT_EQ(ra.cores.size(), 4u);
  ASSERT_EQ(rb.cores.size(), 4u);
  std::set<std::size_t> seen(ra.cores.begin(), ra.cores.end());
  for (std::size_t id : rb.cores) {
    EXPECT_TRUE(seen.insert(id).second) << "core " << id << " shared";
  }
}

TEST(Scheduler, AdmissionRejectsWhenQueueFull) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 1;
  opts.queue_depth = 1;
  Scheduler sched(small_server(), opts);

  std::latch release(1);
  std::atomic<bool> running{false};
  JobSpec spec;
  spec.config = job_config(1, 1);
  spec.name = "holder";
  const JobId a = sched.submit(spec, [&](JobContext&) {
    running.store(true);
    release.wait();
  });
  // Wait until A occupies the single slot, so B is definitely *queued*
  // (not dispatched) when C arrives.
  while (!running.load()) std::this_thread::yield();

  spec.name = "waiter";
  const JobId b = sched.submit(spec, [](JobContext&) {});
  spec.name = "overflow";
  const JobId c = sched.submit(spec, [](JobContext&) {});

  const JobReport rc = sched.report(c);
  EXPECT_EQ(rc.status, JobStatus::kRejected);
  EXPECT_NE(rc.error.find("queue full"), std::string::npos) << rc.error;

  release.count_down();
  EXPECT_EQ(sched.wait(a).status, JobStatus::kDone);
  EXPECT_EQ(sched.wait(b).status, JobStatus::kDone);
}

TEST(Scheduler, RejectsImpossibleCoreRequest) {
  Scheduler sched(small_server());
  JobSpec spec;
  spec.name = "too-big";
  spec.cores = 9;  // topology has 8
  const JobId id = sched.submit(spec, [](JobContext&) {});
  const JobReport r = sched.wait(id);
  EXPECT_EQ(r.status, JobStatus::kRejected);
  EXPECT_NE(r.error.find("topology has 8"), std::string::npos) << r.error;
}

TEST(Scheduler, CancelDoesNotTearDownNeighbors) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 2;
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(20000, 7);

  // Victim: spins until its token trips (a cooperative long-running body).
  std::atomic<bool> victim_running{false};
  JobSpec vspec;
  vspec.name = "victim";
  vspec.cores = 4;
  vspec.config = job_config(2, 1);
  const JobId victim = sched.submit(vspec, [&](JobContext& ctx) {
    victim_running.store(true);
    while (!ctx.cancel_token().cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!victim_running.load()) std::this_thread::yield();

  // Neighbor: real MapReduce work on the other core set, repeatedly.
  JobSpec nspec;
  nspec.name = "neighbor";
  nspec.cores = 4;
  nspec.config = job_config(2, 1);
  const JobId neighbor = sched.submit(nspec, [&](JobContext& ctx) {
    for (int i = 0; i < 3; ++i) {
      auto result = ctx.run(app, input);
      ASSERT_TRUE(pairs_match(result.pairs, app.reference(input)));
    }
  });

  EXPECT_TRUE(sched.cancel(victim));
  const JobReport rv = sched.wait(victim);
  const JobReport rn = sched.wait(neighbor);
  EXPECT_EQ(rv.status, JobStatus::kCancelled);
  EXPECT_EQ(rn.status, JobStatus::kDone) << rn.error;

  // Cancel of a terminal job is a no-op.
  EXPECT_FALSE(sched.cancel(victim));
  EXPECT_FALSE(sched.cancel(JobId{9999}));
}

TEST(Scheduler, CancelAbortsMidRunWithoutNeighborDamage) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 2;
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(50000, 11);

  // Victim loops real runs forever; cancel lands mid-run and the watchdog
  // forwards it into the engine as an AbortError.
  std::atomic<bool> victim_running{false};
  JobSpec vspec;
  vspec.name = "victim";
  vspec.cores = 4;
  vspec.config = job_config(2, 1);
  const JobId victim = sched.submit(vspec, [&](JobContext& ctx) {
    victim_running.store(true);
    for (;;) ctx.run(app, input);
  });
  while (!victim_running.load()) std::this_thread::yield();
  EXPECT_TRUE(sched.cancel(victim));
  const JobReport rv = sched.wait(victim);
  EXPECT_EQ(rv.status, JobStatus::kCancelled);

  // The machine still serves fresh jobs correctly afterwards.
  JobSpec nspec;
  nspec.name = "after";
  nspec.cores = 4;
  nspec.config = job_config(2, 1);
  auto [id, future] = sched.submit(nspec, app, input);
  const JobReport rn = sched.wait(id);
  ASSERT_EQ(rn.status, JobStatus::kDone) << rn.error;
  EXPECT_TRUE(pairs_match(future.get().pairs, app.reference(input)));
}

TEST(Scheduler, WarmPoolParityWithRunOnce) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 1;
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(30000, 3);
  const auto reference = app.reference(input);

  JobSpec spec;
  spec.cores = 4;
  spec.config = job_config(2, 1);

  // A stream of identical jobs: the first builds pools cold, the rest are
  // served warm from the depot — with identical results throughout.
  for (int i = 0; i < 3; ++i) {
    spec.name = "stream-" + std::to_string(i);
    auto [id, future] = sched.submit(spec, app, input);
    const JobReport r = sched.wait(id);
    ASSERT_EQ(r.status, JobStatus::kDone) << r.error;
    EXPECT_EQ(r.warm_pools, i > 0) << "iteration " << i;
    EXPECT_TRUE(pairs_match(future.get().pairs, reference));
  }
  const engine::PoolDepot::Stats stats = sched.depot().stats();
  EXPECT_EQ(stats.built, 1u);
  EXPECT_EQ(stats.reused, 2u);

  // Parity with the one-shot path on the same app and input.
  const auto oneshot = core::run_once(app, input, job_config(2, 1));
  EXPECT_TRUE(pairs_match(oneshot.pairs, reference));
}

TEST(Scheduler, ShutdownCancelsQueuedJobs) {
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 1;
  Scheduler sched(small_server(), opts);

  std::latch release(1);
  std::atomic<bool> running{false};
  JobSpec spec;
  spec.config = job_config(1, 1);
  spec.name = "holder";
  const JobId a = sched.submit(spec, [&](JobContext& ctx) {
    running.store(true);
    release.count_down();  // let shutdown proceed...
    while (!ctx.cancel_token().cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  spec.name = "queued";
  const JobId b = sched.submit(spec, [](JobContext&) {});

  release.wait();
  sched.shutdown();
  EXPECT_EQ(sched.wait(a).status, JobStatus::kCancelled);
  const JobReport rb = sched.wait(b);
  EXPECT_EQ(rb.status, JobStatus::kCancelled);
  EXPECT_NE(rb.error.find("shutdown"), std::string::npos) << rb.error;

  // Submissions after shutdown are rejected, not queued forever.
  spec.name = "late";
  EXPECT_EQ(sched.wait(sched.submit(spec, [](JobContext&) {})).status,
            JobStatus::kRejected);
}

TEST(Scheduler, NoLeaseLeaksAfterShutdown) {
  // Invariant check for every lifecycle path at once: after the scheduler
  // winds down, every core must be back in the registry and the depot must
  // hold zero leased pool sets with a bounded warm shelf.
  Scheduler::Options opts;
  opts.max_concurrent_jobs = 2;
  Scheduler sched(small_server(), opts);

  const ModCountApp app;
  const auto input = make_numbers(10000, 17);

  JobSpec spec;
  spec.cores = 4;
  spec.config = job_config(2, 1);
  spec.name = "clean";
  sched.wait(sched.submit(spec, app, input).first);

  // A mid-run cancellation (the lease must come back through the abort
  // path, not just the happy path).
  std::atomic<bool> running{false};
  spec.name = "victim";
  const JobId victim = sched.submit(spec, [&](JobContext& ctx) {
    running.store(true);
    for (;;) ctx.run(app, input);
  });
  while (!running.load()) std::this_thread::yield();
  EXPECT_TRUE(sched.cancel(victim));
  EXPECT_EQ(sched.wait(victim).status, JobStatus::kCancelled);

  // An admission rejection (never held a lease at all).
  spec.name = "too-big";
  spec.cores = 9;
  EXPECT_EQ(sched.wait(sched.submit(spec, [](JobContext&) {})).status,
            JobStatus::kRejected);

  sched.shutdown();
  EXPECT_EQ(sched.cores().available(), sched.cores().total());
  const engine::PoolDepot::Stats stats = sched.depot().stats();
  EXPECT_EQ(stats.leased, 0u);
  EXPECT_LE(stats.idle, stats.built);  // the warm shelf stays bounded
}

TEST(PoolDepot, RecyclesCompatibleSetsAndRebindsKnobs) {
  const topo::Topology topo = small_server();
  engine::PoolDepot depot;
  RuntimeConfig cfg = job_config(2, 1);

  const engine::PoolSet* first = nullptr;
  {
    auto lease = depot.acquire(topo, cfg);
    EXPECT_FALSE(lease.warm());
    first = &lease.pools();
  }
  {
    // Same shape: served warm, same underlying set.
    auto lease = depot.acquire(topo, cfg);
    EXPECT_TRUE(lease.warm());
    EXPECT_EQ(&lease.pools(), first);
  }
  {
    // Same shape, different per-run knob: warm, rebound to the new knobs.
    RuntimeConfig tweaked = cfg;
    tweaked.batch_size = 64;
    auto lease = depot.acquire(topo, tweaked);
    EXPECT_TRUE(lease.warm());
    EXPECT_EQ(&lease.pools(), first);
    EXPECT_EQ(lease.pools().config().batch_size, 64u);
  }
  {
    // Different worker counts: a different shape, built cold.
    auto lease = depot.acquire(topo, job_config(3, 2));
    EXPECT_FALSE(lease.warm());
    EXPECT_NE(&lease.pools(), first);
  }
  const engine::PoolDepot::Stats stats = depot.stats();
  EXPECT_EQ(stats.built, 2u);
  EXPECT_EQ(stats.reused, 2u);
  EXPECT_EQ(stats.leased, 0u);
  EXPECT_EQ(stats.idle, 2u);
  depot.clear();
  EXPECT_EQ(depot.stats().idle, 0u);
}

TEST(ServiceMode, RuntimeReusesProcessPools) {
  engine::PoolDepot::process().clear();
  env::ScopedOverride service(kEnvService, "1");

  const ModCountApp app;
  const auto input = make_numbers(10000, 5);
  const auto reference = app.reference(input);
  // from_env picks up RAMR_SERVICE=1 the way a real client would.
  const RuntimeConfig cfg = RuntimeConfig::from_env(job_config(2, 1));
  ASSERT_TRUE(cfg.service_mode);

  {
    core::Runtime<ModCountApp> rt(topo::host(), cfg);
    EXPECT_FALSE(rt.pools_warm());
    EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, reference));
  }
  {
    // A second Runtime instance inherits the warm process-wide pool set.
    core::Runtime<ModCountApp> rt(topo::host(), cfg);
    EXPECT_TRUE(rt.pools_warm());
    EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, reference));
  }
  EXPECT_GE(engine::PoolDepot::process().stats().reused, 1u);
  engine::PoolDepot::process().clear();
}

TEST(ServiceMode, AdaptiveRuntimeConstructsPoolsLazily) {
  // Satellite regression: with the adaptive controller on, the Runtime
  // ctor must not build (and pin) a full pool set that run() never uses.
  env::ScopedOverride adapt(kEnvAdapt, "probe");
  const RuntimeConfig cfg = RuntimeConfig::from_env(job_config(2, 1));
  ASSERT_NE(cfg.adapt_mode, AdaptMode::kOff);
  core::Runtime<ModCountApp> rt(topo::host(), cfg);
  EXPECT_FALSE(rt.pools_ready());

  const ModCountApp app;
  const auto input = make_numbers(10000, 9);
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
  // The adaptive path leases its own pools; the eager member stays unused.
  EXPECT_FALSE(rt.pools_ready());
}

}  // namespace
}  // namespace ramr::service
