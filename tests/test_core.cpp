// Tests for the RAMR decoupled runtime: correctness against serial
// references and the baseline runtime, knob sweeps (ratio, batch, queue
// capacity, backoff, pinning), stress configurations, and pipeline
// diagnostics.
#include <gtest/gtest.h>

#include <map>

#include "common/config.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/precombine.hpp"
#include "core/runtime.hpp"
#include "mini_apps.hpp"
#include "phoenix/runtime.hpp"
#include "topology/topology.hpp"

namespace ramr::core {
namespace {

using testing::make_lines;
using testing::make_numbers;
using testing::ModCountApp;
using testing::pairs_match;
using testing::WordCountMiniApp;

RuntimeConfig small_config(std::size_t mappers, std::size_t combiners) {
  RuntimeConfig cfg;
  cfg.num_mappers = mappers;
  cfg.num_combiners = combiners;
  cfg.pin_policy = PinPolicy::kOsDefault;  // host may be tiny
  cfg.queue_capacity = 512;
  cfg.batch_size = 32;
  return cfg;
}

TEST(RamrRuntime, ModCountMatchesReference) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 1);
  Runtime<ModCountApp> rt(topo::host(), small_config(3, 2));
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
  EXPECT_GT(result.queue_pushes, 0u);
  EXPECT_EQ(result.queue_pushes, input.size());  // one record per element
}

TEST(RamrRuntime, WordCountStringsThroughPipeline) {
  const WordCountMiniApp app;
  const auto input = make_lines(400, 2);
  Runtime<WordCountMiniApp> rt(topo::host(), small_config(2, 2));
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

TEST(RamrRuntime, AgreesWithPhoenixBaseline) {
  const ModCountApp app;
  const auto input = make_numbers(8000, 3);
  phoenix::Options po;
  po.num_workers = 3;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<ModCountApp> baseline(topo::host(), po);
  Runtime<ModCountApp> ramr(topo::host(), small_config(3, 1));
  EXPECT_EQ(baseline.run(app, input).pairs, ramr.run(app, input).pairs);
}

TEST(RamrRuntime, EmptyInput) {
  const ModCountApp app;
  Runtime<ModCountApp> rt(topo::host(), small_config(2, 1));
  const auto result = rt.run(app, {});
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.queue_pushes, 0u);
}

TEST(RamrRuntime, ManyMappersOneCombiner) {
  const ModCountApp app;
  const auto input = make_numbers(20000, 4);
  Runtime<ModCountApp> rt(topo::host(), small_config(6, 1));
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

TEST(RamrRuntime, EqualMappersAndCombiners) {
  const ModCountApp app;
  const auto input = make_numbers(20000, 5);
  Runtime<ModCountApp> rt(topo::host(), small_config(4, 4));
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

TEST(RamrRuntime, TinyQueueForcesBlockingButStaysCorrect) {
  const ModCountApp app;
  const auto input = make_numbers(30000, 6);
  RuntimeConfig cfg = small_config(3, 1);
  cfg.queue_capacity = 4;  // heavy backpressure
  cfg.batch_size = 2;
  Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto result = rt.run(app, input);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
  EXPECT_GT(result.queue_failed_pushes, 0u);  // backpressure really happened
}

TEST(RamrRuntime, BusyWaitBackoffStaysCorrect) {
  const ModCountApp app;
  const auto input = make_numbers(20000, 7);
  RuntimeConfig cfg = small_config(2, 1);
  cfg.sleep_on_full = false;
  cfg.queue_capacity = 16;
  cfg.batch_size = 8;
  Runtime<ModCountApp> rt(topo::host(), cfg);
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

class RamrKnobSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

TEST_P(RamrKnobSweep, AllConfigurationsProduceIdenticalOutput) {
  const auto [mappers, combiners, capacity, batch] = GetParam();
  if (combiners > mappers) {
    GTEST_SKIP() << "combiner pool may not exceed mapper pool (Sec. III)";
  }
  const ModCountApp app;
  const auto input = make_numbers(6000, 42);
  RuntimeConfig cfg = small_config(mappers, combiners);
  cfg.queue_capacity = capacity;
  cfg.batch_size = std::min(batch, capacity);
  Runtime<ModCountApp> rt(topo::host(), cfg);
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RamrKnobSweep,
    ::testing::Combine(::testing::Values(1, 2, 5),   // mappers
                       ::testing::Values(1, 2),      // combiners (<= mappers)
                       ::testing::Values(8, 5000),   // queue capacity
                       ::testing::Values(1, 64)));   // batch size

TEST(RamrRuntime, CombinersNeverExceedMappers) {
  EXPECT_THROW(Runtime<ModCountApp>(topo::host(), small_config(1, 2)),
               ConfigError);
}

TEST(RamrRuntime, TaskSizeKnobRespected) {
  ModCountApp app;
  app.chunk = 50;
  const auto input = make_numbers(1000, 8);  // 20 splits
  RuntimeConfig cfg = small_config(2, 1);
  cfg.task_size = 6;  // ceil(20/6) = 4 tasks
  Runtime<ModCountApp> rt(topo::host(), cfg);
  const auto result = rt.run(app, input);
  EXPECT_EQ(result.tasks_executed, 4u);
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

TEST(RamrRuntime, OptionalReducerAppliedToEveryKey) {
  // The per-key reducer (Phoenix++ idiom) runs after containers merge, in
  // both runtimes, exactly once per key.
  const testing::BucketAverageApp app;
  const auto input = make_numbers(5000, 33);
  const auto ref = app.reference(input);

  Runtime<testing::BucketAverageApp> ramr(topo::host(), small_config(2, 2));
  phoenix::Options po;
  po.num_workers = 3;
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<testing::BucketAverageApp> baseline(topo::host(), po);

  for (const auto& result : {ramr.run(app, input), baseline.run(app, input)}) {
    ASSERT_EQ(result.pairs.size(), ref.size());
    for (const auto& [k, acc] : result.pairs) {
      // Relative tolerance: summation order differs across threads.
      EXPECT_NEAR(acc.sum, ref.at(k), 1e-9 * std::abs(ref.at(k)))
          << "bucket " << k;
      EXPECT_GT(acc.n, 0u);
    }
  }
  static_assert(mr::HasReducer<testing::BucketAverageApp>);
  static_assert(!mr::HasReducer<testing::ModCountApp>);
}

// ---------- mapper-side pre-combining (extension) --------------------------------

TEST(Precombine, BufferAbsorbsRepeatsAndEvictsOnWindowOverflow) {
  PrecombineBuffer<std::uint64_t, std::uint64_t, containers::CountCombiner>
      buf(16);
  // Same key over and over: one slot, everything absorbed.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(buf.absorb(7, 1), std::nullopt);
  }
  EXPECT_EQ(buf.absorbed(), 99u);
  EXPECT_EQ(buf.occupied(), 1u);
  std::vector<containers::KeyValue<std::uint64_t, std::uint64_t>> flushed;
  buf.flush([&](auto&& r) { flushed.push_back(r); });
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].key, 7u);
  EXPECT_EQ(flushed[0].value, 100u);  // all 100 ones combined
  EXPECT_EQ(buf.occupied(), 0u);
}

TEST(Precombine, MassIsConservedUnderEvictions) {
  // Far more distinct keys than slots: evictions must carry every count.
  PrecombineBuffer<std::uint64_t, std::uint64_t, containers::CountCombiner>
      buf(8);
  std::map<std::uint64_t, std::uint64_t> out;
  auto sink = [&](auto&& r) { out[r.key] += r.value; };
  Xoshiro256 rng(9);
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.below(300);
    ref[k] += 1;
    if (auto evicted = buf.absorb(k, 1)) sink(std::move(*evicted));
  }
  buf.flush(sink);
  EXPECT_EQ(out, ref);
  EXPECT_GT(buf.evictions(), 0u);
}

TEST(RamrRuntime, PrecombineReducesQueueTrafficAndStaysCorrect) {
  // ModCount over 16 buckets: with pre-combining, pushes collapse from one
  // per element to roughly one per (task, bucket).
  const ModCountApp app;
  const auto input = make_numbers(20000, 31);
  const auto ref = app.reference(input);

  RuntimeConfig off = small_config(2, 1);
  Runtime<ModCountApp> rt_off(topo::host(), off);
  const auto r_off = rt_off.run(app, input);
  EXPECT_TRUE(pairs_match(r_off.pairs, ref));
  EXPECT_EQ(r_off.queue_pushes, input.size());

  RuntimeConfig on = off;
  on.precombine_slots = 64;
  Runtime<ModCountApp> rt_on(topo::host(), on);
  const auto r_on = rt_on.run(app, input);
  EXPECT_TRUE(pairs_match(r_on.pairs, ref));
  EXPECT_LT(r_on.queue_pushes, input.size() / 10);  // > 10x less traffic
}

TEST(RamrRuntime, PrecombineWorksWithStringsAndTinyBuffers) {
  const WordCountMiniApp app;
  const auto input = make_lines(300, 32);
  const auto ref = app.reference(input);
  for (std::size_t slots : {2u, 8u, 1024u}) {
    RuntimeConfig cfg = small_config(2, 2);
    cfg.precombine_slots = slots;
    Runtime<WordCountMiniApp> rt(topo::host(), cfg);
    EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, ref))
        << slots << " slots";
  }
}

TEST(RamrRuntime, PrecombineEnvKnob) {
  env::ScopedOverride o(kEnvPrecombine, "128");
  EXPECT_EQ(RuntimeConfig::from_env().precombine_slots, 128u);
}

TEST(RamrRuntime, BlockedSplitDistributionStaysCorrect) {
  const ModCountApp app;
  const auto input = make_numbers(9000, 21);
  RuntimeConfig cfg = small_config(3, 1);
  cfg.split_distribution = SplitDistribution::kBlocked;
  Runtime<ModCountApp> rt(topo::host(), cfg);
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

TEST(RamrRuntime, ReusableAcrossRuns) {
  const ModCountApp app;
  Runtime<ModCountApp> rt(topo::host(), small_config(2, 2));
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto input = make_numbers(2000 + 500 * seed, seed);
    EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
  }
}

TEST(RamrRuntime, PinnedPlanOnModelledTopologyStaysCorrect) {
  // Haswell model on a small host: pins fail gracefully; output unaffected.
  const ModCountApp app;
  const auto input = make_numbers(5000, 9);
  RuntimeConfig cfg;
  cfg.num_mappers = 4;
  cfg.num_combiners = 2;
  cfg.pin_policy = PinPolicy::kRamrPaired;
  Runtime<ModCountApp> rt(topo::haswell_server(), cfg);
  EXPECT_EQ(rt.plan().policy, PinPolicy::kRamrPaired);
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

TEST(RamrRuntime, DerivedWorkerCountsFromTopologyAndRatio) {
  RuntimeConfig cfg;
  cfg.mapper_combiner_ratio = 3;
  cfg.pin_policy = PinPolicy::kOsDefault;
  Runtime<ModCountApp> rt(topo::fig3_example(), cfg);  // 16 logical CPUs
  EXPECT_EQ(rt.config().num_mappers, 12u);
  EXPECT_EQ(rt.config().num_combiners, 4u);
}

TEST(RamrRuntime, EnvKnobsDriveRunOnce) {
  env::ScopedOverride m(kEnvMappers, "2");
  env::ScopedOverride c(kEnvCombiners, "1");
  env::ScopedOverride q(kEnvQueueCapacity, "256");
  env::ScopedOverride b(kEnvBatchSize, "16");
  env::ScopedOverride p(kEnvPinPolicy, "os");
  const ModCountApp app;
  const auto input = make_numbers(3000, 10);
  const auto result = run_once(app, input, RuntimeConfig::from_env());
  EXPECT_TRUE(pairs_match(result.pairs, app.reference(input)));
}

TEST(RamrRuntime, BatchStatisticsReported) {
  const ModCountApp app;
  const auto input = make_numbers(10000, 11);
  Runtime<ModCountApp> rt(topo::host(), small_config(2, 1));
  const auto result = rt.run(app, input);
  EXPECT_GT(result.queue_batches, 0u);
  // Batched consume must move multiple elements per batch on average.
  EXPECT_GT(result.queue_pushes / result.queue_batches, 1u);
}

TEST(RamrRuntime, MapperThroughputSkewStaysCorrect) {
  // Mapper 0 gets nearly all the work (single split covering most input):
  // combiners must drain the skewed queue and exit cleanly.
  ModCountApp app;
  app.chunk = 10000;
  const auto input = make_numbers(10100, 12);  // 2 splits: 10000 + 100
  Runtime<ModCountApp> rt(topo::host(), small_config(2, 2));
  EXPECT_TRUE(pairs_match(rt.run(app, input).pairs, app.reference(input)));
}

}  // namespace
}  // namespace ramr::core
