// Unit tests for the common substrate: env knobs, runtime config,
// cache-line padding, timing, RNG determinism, affinity wrapper.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <thread>

#include "common/affinity.hpp"
#include "common/cacheline.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace ramr {
namespace {

// ---------- env ------------------------------------------------------------

TEST(Env, UnsetReturnsFallback) {
  ::unsetenv("RAMR_TEST_UNSET");
  EXPECT_EQ(env::get("RAMR_TEST_UNSET"), std::nullopt);
  EXPECT_EQ(env::get_int("RAMR_TEST_UNSET", -7), -7);
  EXPECT_EQ(env::get_uint("RAMR_TEST_UNSET", 7u), 7u);
  EXPECT_DOUBLE_EQ(env::get_double("RAMR_TEST_UNSET", 1.5), 1.5);
  EXPECT_TRUE(env::get_bool("RAMR_TEST_UNSET", true));
  EXPECT_EQ(env::get_string("RAMR_TEST_UNSET", "x"), "x");
}

TEST(Env, ParsesInteger) {
  env::ScopedOverride o("RAMR_TEST_INT", "-42");
  EXPECT_EQ(env::get_int("RAMR_TEST_INT", 0), -42);
}

TEST(Env, ParsesUnsigned) {
  env::ScopedOverride o("RAMR_TEST_UINT", "5000");
  EXPECT_EQ(env::get_uint("RAMR_TEST_UINT", 0), 5000u);
}

TEST(Env, RejectsNegativeUnsigned) {
  env::ScopedOverride o("RAMR_TEST_UINT", "-1");
  EXPECT_THROW(env::get_uint("RAMR_TEST_UINT", 0), ConfigError);
}

TEST(Env, RejectsGarbageInteger) {
  env::ScopedOverride o("RAMR_TEST_INT", "12abc");
  EXPECT_THROW(env::get_int("RAMR_TEST_INT", 0), ConfigError);
}

TEST(Env, ParsesDouble) {
  env::ScopedOverride o("RAMR_TEST_DBL", "2.75");
  EXPECT_DOUBLE_EQ(env::get_double("RAMR_TEST_DBL", 0.0), 2.75);
}

TEST(Env, ParsesBooleans) {
  for (const char* yes : {"1", "true", "TRUE", "yes", "on"}) {
    env::ScopedOverride o("RAMR_TEST_BOOL", yes);
    EXPECT_TRUE(env::get_bool("RAMR_TEST_BOOL", false)) << yes;
  }
  for (const char* no : {"0", "false", "False", "no", "off"}) {
    env::ScopedOverride o("RAMR_TEST_BOOL", no);
    EXPECT_FALSE(env::get_bool("RAMR_TEST_BOOL", true)) << no;
  }
}

TEST(Env, RejectsGarbageBoolean) {
  env::ScopedOverride o("RAMR_TEST_BOOL", "maybe");
  EXPECT_THROW(env::get_bool("RAMR_TEST_BOOL", false), ConfigError);
}

TEST(Env, ScopedOverrideRestoresPreviousValue) {
  env::ScopedOverride outer("RAMR_TEST_NEST", "outer");
  {
    env::ScopedOverride inner("RAMR_TEST_NEST", "inner");
    EXPECT_EQ(env::get("RAMR_TEST_NEST"), "inner");
  }
  EXPECT_EQ(env::get("RAMR_TEST_NEST"), "outer");
}

// ---------- config ----------------------------------------------------------

TEST(Config, DefaultsMatchPaper) {
  RuntimeConfig cfg;
  EXPECT_EQ(cfg.queue_capacity, 5000u);  // Sec. III-A
  EXPECT_TRUE(cfg.sleep_on_full);        // Sec. III-A
  EXPECT_EQ(cfg.pin_policy, PinPolicy::kRamrPaired);
}

TEST(Config, FromEnvReadsEveryKnob) {
  env::ScopedOverride a(kEnvMappers, "6");
  env::ScopedOverride b(kEnvCombiners, "3");
  env::ScopedOverride c(kEnvTaskSize, "8");
  env::ScopedOverride d(kEnvQueueCapacity, "1024");
  env::ScopedOverride e(kEnvBatchSize, "100");
  env::ScopedOverride f(kEnvPinPolicy, "rr");
  env::ScopedOverride g(kEnvSleepOnFull, "0");
  env::ScopedOverride h(kEnvSleepMicros, "75");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.num_mappers, 6u);
  EXPECT_EQ(cfg.num_combiners, 3u);
  EXPECT_EQ(cfg.task_size, 8u);
  EXPECT_EQ(cfg.queue_capacity, 1024u);
  EXPECT_EQ(cfg.batch_size, 100u);
  EXPECT_EQ(cfg.pin_policy, PinPolicy::kRoundRobin);
  EXPECT_FALSE(cfg.sleep_on_full);
  EXPECT_EQ(cfg.sleep_micros, 75u);
}

TEST(Config, RatioEnvKnobDrivesDerivedWorkerCounts) {
  env::ScopedOverride r(kEnvRatio, "3");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.mapper_combiner_ratio, 3u);
  // The ratio feeds the machine fill: groups of (3+1)=4 threads -> 3 groups
  // on 12 CPUs.
  const RuntimeConfig resolved = cfg.resolved(12);
  EXPECT_EQ(resolved.num_mappers, 9u);
  EXPECT_EQ(resolved.num_combiners, 3u);
}

TEST(Config, ResolveDerivesWorkersFromMachine) {
  RuntimeConfig cfg;
  cfg.mapper_combiner_ratio = 2;
  const RuntimeConfig r = cfg.resolved(12);
  // groups of (2+1)=3 threads -> 4 groups on 12 CPUs.
  EXPECT_EQ(r.num_mappers, 8u);
  EXPECT_EQ(r.num_combiners, 4u);
}

TEST(Config, ResolveDerivesCombinersFromRatio) {
  RuntimeConfig cfg;
  cfg.num_mappers = 9;
  cfg.mapper_combiner_ratio = 3;
  const RuntimeConfig r = cfg.resolved(56);
  EXPECT_EQ(r.num_mappers, 9u);
  EXPECT_EQ(r.num_combiners, 3u);
}

TEST(Config, ResolveDerivesMappersFromCombiners) {
  RuntimeConfig cfg;
  cfg.num_combiners = 4;
  cfg.mapper_combiner_ratio = 2;
  const RuntimeConfig r = cfg.resolved(56);
  EXPECT_EQ(r.num_mappers, 8u);
}

TEST(Config, ResolveRejectsMoreCombinersThanMappers) {
  // Paper Sec. III: the combiner pool "contains a less or equal number of
  // workers compared to the general-purpose pool".
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 3;
  EXPECT_THROW(cfg.resolved(8), ConfigError);
}

TEST(Config, ResolveRejectsBatchLargerThanQueue) {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.queue_capacity = 64;
  cfg.batch_size = 128;
  EXPECT_THROW(cfg.resolved(8), ConfigError);
}

TEST(Config, ResolveRejectsZeroTaskSize) {
  RuntimeConfig cfg;
  cfg.num_mappers = 2;
  cfg.num_combiners = 1;
  cfg.task_size = 0;
  EXPECT_THROW(cfg.resolved(8), ConfigError);
}

TEST(Config, SplitDistributionRoundTripAndEnv) {
  for (SplitDistribution d :
       {SplitDistribution::kRoundRobin, SplitDistribution::kBlocked}) {
    EXPECT_EQ(parse_split_distribution(to_string(d)), d);
  }
  EXPECT_THROW(parse_split_distribution("zigzag"), ConfigError);
  env::ScopedOverride o(kEnvSplitDistribution, "block");
  EXPECT_EQ(RuntimeConfig::from_env().split_distribution,
            SplitDistribution::kBlocked);
}

TEST(Config, PinPolicyRoundTrip) {
  for (PinPolicy p : {PinPolicy::kRamrPaired, PinPolicy::kRoundRobin,
                      PinPolicy::kOsDefault}) {
    EXPECT_EQ(parse_pin_policy(to_string(p)), p);
  }
  EXPECT_THROW(parse_pin_policy("bogus"), ConfigError);
}

// ---------- cacheline -------------------------------------------------------

TEST(CacheLine, PaddedValuesOccupyDistinctLines) {
  CacheAligned<int> a[2];
  const auto* p0 = reinterpret_cast<const char*>(&a[0].value);
  const auto* p1 = reinterpret_cast<const char*>(&a[1].value);
  EXPECT_GE(static_cast<std::size_t>(p1 - p0), kCacheLineSize);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p0) % kCacheLineSize, 0u);
}

// ---------- timing ----------------------------------------------------------

TEST(Timing, PhaseTimersAccumulateAndFraction) {
  PhaseTimers t;
  t.add(Phase::kMapCombine, 8.0);
  t.add(Phase::kReduce, 1.0);
  t.add(Phase::kMerge, 1.0);
  EXPECT_DOUBLE_EQ(t.total(), 10.0);
  EXPECT_DOUBLE_EQ(t.fraction(Phase::kMapCombine), 0.8);
  EXPECT_DOUBLE_EQ(t.fraction(Phase::kSplit), 0.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(Timing, ScopedPhaseRecordsElapsedTime) {
  PhaseTimers t;
  {
    ScopedPhase p(t, Phase::kReduce);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(t.seconds(Phase::kReduce), 0.004);
}

TEST(Timing, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::kMapCombine), "map-combine");
  EXPECT_STREQ(phase_name(Phase::kMerge), "merge");
}

// ---------- rng -------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(123);
  std::array<int, 8> buckets{};
  const int n = 8000;
  for (int i = 0; i < n; ++i) buckets[rng.below(8)]++;
  for (int count : buckets) {
    EXPECT_GT(count, n / 8 - 200);
    EXPECT_LT(count, n / 8 + 200);
  }
}

// ---------- affinity --------------------------------------------------------

TEST(Affinity, UsableCpuCountPositive) {
  EXPECT_GE(affinity::usable_cpu_count(), 1u);
}

TEST(Affinity, PinToImpossibleCpuFailsGracefully) {
  // CPU ids far beyond the machine must not throw — the runtime treats this
  // as "run unpinned" (the modelled machine can be larger than the host).
  EXPECT_FALSE(affinity::pin_current_thread(std::size_t{1} << 40));
}

TEST(Affinity, PinToCpuZeroWorksOnLinux) {
  if (!affinity::supported()) GTEST_SKIP() << "no affinity support";
  EXPECT_TRUE(affinity::pin_current_thread(std::vector<std::size_t>{0}));
  auto cpu = affinity::current_cpu();
  ASSERT_TRUE(cpu.has_value());
  EXPECT_EQ(*cpu, 0u);
}

}  // namespace
}  // namespace ramr
