// Miniature AppSpec implementations shared by the runtime tests. These are
// deliberately tiny and deterministic; the real suite apps live in src/apps.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "phoenix/app_model.hpp"

namespace ramr::testing {

// Counts values modulo `buckets` from a vector of ints. Fixed-array
// container; one split per `chunk` elements.
struct ModCountApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type =
      containers::FixedArrayContainer<std::uint64_t, containers::CountCombiner>;

  std::size_t buckets = 16;
  std::size_t chunk = 64;

  std::size_t num_splits(const input_type& in) const {
    return (in.size() + chunk - 1) / chunk;
  }
  container_type make_container() const { return container_type(buckets); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * chunk;
    const std::size_t end = std::min(begin + chunk, in.size());
    for (std::size_t i = begin; i < end; ++i) {
      emit(in[i] % buckets, std::uint64_t{1});
    }
  }

  // Serial reference for equivalence checks.
  std::map<std::uint64_t, std::uint64_t> reference(
      const input_type& in) const {
    std::map<std::uint64_t, std::uint64_t> out;
    for (std::uint64_t v : in) out[v % buckets]++;
    return out;
  }
};

// Counts words from a vector of pre-tokenised lines. Regular hash container
// with string keys (exercises non-trivially-copyable records through the
// pipeline).
struct WordCountMiniApp {
  using input_type = std::vector<std::string>;  // one line per split
  using container_type =
      containers::HashContainer<std::string, std::uint64_t,
                                containers::CountCombiner>;

  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_container() const { return container_type(256); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::string& line = in[split];
    std::size_t start = 0;
    while (start < line.size()) {
      while (start < line.size() && line[start] == ' ') ++start;
      std::size_t end = start;
      while (end < line.size() && line[end] != ' ') ++end;
      if (end > start) emit(line.substr(start, end - start), std::uint64_t{1});
      start = end;
    }
  }

  std::map<std::string, std::uint64_t> reference(const input_type& in) const {
    std::map<std::string, std::uint64_t> out;
    for (const auto& line : in) {
      std::size_t start = 0;
      while (start < line.size()) {
        while (start < line.size() && line[start] == ' ') ++start;
        std::size_t end = start;
        while (end < line.size() && line[end] != ' ') ++end;
        if (end > start) out[line.substr(start, end - start)]++;
        start = end;
      }
    }
    return out;
  }
};

// Averages values per bucket using the optional per-key reducer: map emits
// (bucket, {sum, count}) accumulators; reduce() divides through — the
// Phoenix++ reducer idiom.
struct BucketAverageApp {
  struct Acc {
    double sum = 0.0;
    std::uint64_t n = 0;
    void merge(const Acc& o) {
      sum += o.sum;
      n += o.n;
    }
  };

  using input_type = std::vector<std::uint64_t>;
  using container_type =
      containers::FixedArrayContainer<Acc, containers::MergeCombiner<Acc>>;

  std::size_t buckets = 8;
  std::size_t chunk = 64;

  std::size_t num_splits(const input_type& in) const {
    return (in.size() + chunk - 1) / chunk;
  }
  container_type make_container() const { return container_type(buckets); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * chunk;
    const std::size_t end = std::min(begin + chunk, in.size());
    for (std::size_t i = begin; i < end; ++i) {
      emit(in[i] % buckets, Acc{static_cast<double>(in[i]), 1});
    }
  }

  // The optional reducer: finalize each bucket's accumulator to a mean.
  void reduce(const std::size_t& /*bucket*/, Acc& acc) const {
    if (acc.n > 0) acc.sum /= static_cast<double>(acc.n);
  }

  std::map<std::uint64_t, double> reference(const input_type& in) const {
    std::map<std::uint64_t, Acc> acc;
    for (std::uint64_t v : in) {
      acc[v % buckets].sum += static_cast<double>(v);
      acc[v % buckets].n += 1;
    }
    std::map<std::uint64_t, double> out;
    for (auto& [k, a] : acc) out[k] = a.sum / static_cast<double>(a.n);
    return out;
  }
};

// Deterministic inputs.
std::vector<std::uint64_t> make_numbers(std::size_t n, std::uint64_t seed);
std::vector<std::string> make_lines(std::size_t n, std::uint64_t seed);

// Compares runtime output pairs against a std::map reference.
template <typename K, typename V>
::testing::AssertionResult pairs_match(
    const std::vector<std::pair<K, V>>& pairs, const std::map<K, V>& ref) {
  if (pairs.size() != ref.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: got " << pairs.size() << " keys, expected "
           << ref.size();
  }
  auto it = ref.begin();
  for (std::size_t i = 0; i < pairs.size(); ++i, ++it) {
    if (pairs[i].first != it->first) {
      return ::testing::AssertionFailure()
             << "key mismatch at index " << i;
    }
    if (pairs[i].second != it->second) {
      return ::testing::AssertionFailure()
             << "value mismatch at index " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace ramr::testing
