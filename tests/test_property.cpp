// Property and torture tests: randomized interleavings on the SPSC ring,
// container fuzzing against std::map, pinning-plan properties over a grid
// of machine shapes, randomized runtime-knob fuzzing, and the full 24-cell
// figure grid of the simulator.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "core/runtime.hpp"
#include "mini_apps.hpp"
#include "sim/model.hpp"
#include "spsc/ring.hpp"
#include "topology/pinning.hpp"

namespace ramr {
namespace {

// ---------- SPSC ring: randomized interleavings --------------------------------

class RingTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingTorture, RandomizedBurstsPreserveSequence) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  spsc::Ring<std::uint64_t> ring(2 + rng.below(200));
  const std::uint64_t total = 30000;

  std::uint64_t consumer_seed = rng.next();
  std::thread consumer([&ring, consumer_seed, total] {
    Xoshiro256 crng(consumer_seed);
    std::uint64_t expected = 0;
    spsc::SleepBackoff idle(std::chrono::microseconds(10));
    while (expected < total) {
      const std::size_t batch = 1 + crng.below(64);
      const bool use_batch = crng.below(2) == 0;
      std::size_t got = 0;
      if (use_batch) {
        got = ring.consume_batch(
            [&](std::span<std::uint64_t> block) {
              for (std::uint64_t v : block) {
                ASSERT_EQ(v, expected) << "seed " << consumer_seed;
                ++expected;
              }
            },
            batch);
      } else {
        std::uint64_t out;
        if (ring.try_pop(out)) {
          ASSERT_EQ(out, expected);
          ++expected;
          got = 1;
        }
      }
      if (got == 0) idle.wait();
    }
  });

  spsc::SleepBackoff backoff(std::chrono::microseconds(10));
  std::uint64_t next = 0;
  while (next < total) {
    const std::uint64_t burst = 1 + rng.below(128);
    for (std::uint64_t i = 0; i < burst && next < total; ++i) {
      ring.push(std::uint64_t{next}, backoff);
      ++next;
    }
    if (rng.below(4) == 0) std::this_thread::yield();
  }
  ring.close();
  consumer.join();
  EXPECT_EQ(ring.producer_stats().pushes, total);
  EXPECT_EQ(ring.consumer_stats().pops, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingTorture,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- containers: operation fuzz vs std::map --------------------------------

class ContainerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContainerFuzz, RegularHashMatchesStdMapUnderMixedOps) {
  Xoshiro256 rng(GetParam());
  containers::HashContainer<std::uint64_t, std::uint64_t,
                            containers::CountCombiner>
      c(8);
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 90) {
      const std::uint64_t k = rng.below(1 + rng.below(5000));
      const std::uint64_t v = rng.below(7);
      c.emit(k, v);
      ref[k] += v;
    } else if (roll < 95) {
      // Merge a small second container built from the same stream.
      containers::HashContainer<std::uint64_t, std::uint64_t,
                                containers::CountCombiner>
          other(8);
      for (int i = 0; i < 50; ++i) {
        const std::uint64_t k = rng.below(5000);
        other.emit(k, 1);
        ref[k] += 1;
      }
      c.merge_from(other);
    } else if (roll < 97) {
      c.clear();
      ref.clear();
    } else {
      const std::uint64_t k = rng.below(5000);
      EXPECT_EQ(c.contains(k), ref.count(k) == 1);
    }
  }
  EXPECT_EQ(c.size(), ref.size());
  const auto pairs = containers::to_sorted_pairs(c);
  auto it = ref.begin();
  for (const auto& [k, v] : pairs) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_P(ContainerFuzz, FixedArrayMatchesStdMap) {
  Xoshiro256 rng(GetParam() ^ 0xabcdef);
  constexpr std::size_t kKeys = 257;
  containers::FixedArrayContainer<std::int64_t,
                                  containers::SumCombiner<std::int64_t>>
      c(kKeys);
  std::map<std::size_t, std::int64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const std::size_t k = rng.below(kKeys);
    const auto v = static_cast<std::int64_t>(rng.below(100)) - 50;
    c.emit(k, v);
    ref[k] += v;
  }
  EXPECT_EQ(c.size(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_EQ(c.at(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainerFuzz, ::testing::Values(11, 22, 33));

// ---------- topology/pinning over a grid of machine shapes -------------------------

struct Shape {
  std::size_t sockets;
  std::size_t cores;
  std::size_t smt;
};

class TopologyGrid : public ::testing::TestWithParam<Shape> {
 protected:
  static topo::Topology make(const Shape& s) {
    std::vector<topo::LogicalCpu> cpus;
    std::size_t id = 0;
    for (std::size_t t = 0; t < s.smt; ++t) {
      for (std::size_t so = 0; so < s.sockets; ++so) {
        for (std::size_t c = 0; c < s.cores; ++c) {
          cpus.push_back({.os_id = id++,
                          .socket = so,
                          .core = so * s.cores + c,
                          .smt = t});
        }
      }
    }
    return topo::Topology("grid", std::move(cpus));
  }
};

TEST_P(TopologyGrid, ProximityOrderIsPermutationWithAdjacentSiblings) {
  const Shape s = GetParam();
  const topo::Topology t = make(s);
  const auto order = t.proximity_order();
  std::set<std::size_t> unique(order.begin(), order.end());
  ASSERT_EQ(unique.size(), t.num_logical());
  // Within the order, every run of `smt` consecutive entries shares a core.
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (i % s.smt != s.smt - 1) {
      EXPECT_EQ(t.distance(order[i], order[i + 1]),
                topo::Distance::kSameCore);
    }
  }
}

TEST_P(TopologyGrid, PairedPlanNeverWorseThanRoundRobin) {
  const Shape s = GetParam();
  const topo::Topology t = make(s);
  Xoshiro256 rng(s.sockets * 100 + s.cores * 10 + s.smt);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t combiners = 1 + rng.below(t.num_logical() / 4 + 1);
    const std::size_t max_mappers = t.num_logical() - combiners;
    if (max_mappers < combiners) continue;
    const std::size_t mappers =
        combiners + rng.below(max_mappers - combiners + 1);
    const auto paired =
        topo::make_plan(t, PinPolicy::kRamrPaired, mappers, combiners);
    const auto rr =
        topo::make_plan(t, PinPolicy::kRoundRobin, mappers, combiners);
    EXPECT_LE(paired.mean_pair_distance(t), rr.mean_pair_distance(t) + 1e-9)
        << "m=" << mappers << " c=" << combiners;
    // Both plans use disjoint CPU sets of the right size.
    for (const auto& plan : {paired, rr}) {
      std::set<std::size_t> used(plan.mapper_cpu.begin(),
                                 plan.mapper_cpu.end());
      used.insert(plan.combiner_cpu.begin(), plan.combiner_cpu.end());
      EXPECT_EQ(used.size(), mappers + combiners);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologyGrid,
                         ::testing::Values(Shape{1, 4, 1}, Shape{1, 4, 2},
                                           Shape{2, 4, 2}, Shape{2, 14, 2},
                                           Shape{1, 57, 4}, Shape{4, 8, 2}));

// ---------- runtime knob fuzz --------------------------------------------------------

class KnobFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnobFuzz, RandomConfigsAlwaysProduceTheReferenceResult) {
  Xoshiro256 rng(GetParam());
  const testing::ModCountApp app;
  const auto input = testing::make_numbers(4000 + rng.below(4000), rng.next());
  const auto ref = app.reference(input);
  for (int trial = 0; trial < 5; ++trial) {
    RuntimeConfig cfg;
    cfg.num_mappers = 1 + rng.below(5);
    cfg.num_combiners = 1 + rng.below(cfg.num_mappers);
    cfg.queue_capacity = 2 + rng.below(2000);
    cfg.batch_size = 1 + rng.below(cfg.queue_capacity);
    cfg.task_size = 1 + rng.below(16);
    cfg.sleep_on_full = rng.below(2) == 0;
    cfg.sleep_micros = rng.below(100);
    cfg.pin_policy = PinPolicy::kOsDefault;
    core::Runtime<testing::ModCountApp> rt(topo::host(), cfg);
    EXPECT_TRUE(testing::pairs_match(rt.run(app, input).pairs, ref))
        << "seed " << GetParam() << " trial " << trial << " cfg "
        << cfg.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnobFuzz, ::testing::Values(101, 202, 303));

// ---------- the full 24-cell figure grid ----------------------------------------------

struct GridCell {
  apps::AppId app;
  apps::ContainerFlavor flavor;
  apps::PlatformId platform;
  bool ramr_wins;  // paper's verdict for this cell
};

class FigureGrid : public ::testing::TestWithParam<GridCell> {};

TEST_P(FigureGrid, WinnerMatchesPaper) {
  const GridCell cell = GetParam();
  const sim::SimMachine machine = cell.platform == apps::PlatformId::kHaswell
                                      ? sim::haswell()
                                      : sim::xeon_phi();
  const auto w = sim::suite_workload(cell.app, cell.flavor, cell.platform,
                                     apps::SizeClass::kLarge);
  sim::RamrConfig base;
  base.batch = cell.platform == apps::PlatformId::kHaswell ? 1000 : 200;
  const double s =
      sim::ramr_speedup(machine, w, sim::tuned_config(machine, w, base));
  if (cell.ramr_wins) {
    EXPECT_GT(s, 1.0);
  } else {
    // "loses or par": the paper's losing cells are at best break-even.
    EXPECT_LT(s, 1.1);
  }
}

using apps::AppId;
using apps::ContainerFlavor;
using apps::PlatformId;
constexpr auto kD = ContainerFlavor::kDefault;
constexpr auto kH = ContainerFlavor::kHash;
constexpr auto kHWL = PlatformId::kHaswell;
constexpr auto kPHI = PlatformId::kXeonPhi;

INSTANTIATE_TEST_SUITE_P(
    AllCells, FigureGrid,
    ::testing::Values(
        // Fig. 8a (paper: KM/MM win, PCA par, WC/HG/LR lose).
        GridCell{AppId::kKMeans, kD, kHWL, true},
        GridCell{AppId::kMatrixMultiply, kD, kHWL, true},
        GridCell{AppId::kWordCount, kD, kHWL, false},
        GridCell{AppId::kHistogram, kD, kHWL, false},
        GridCell{AppId::kLinearRegression, kD, kHWL, false},
        // Fig. 8b (paper: 5/6 win; MM the max).
        GridCell{AppId::kKMeans, kH, kHWL, true},
        GridCell{AppId::kMatrixMultiply, kH, kHWL, true},
        GridCell{AppId::kHistogram, kH, kHWL, true},
        // Fig. 9a (paper: WC/KM/MM win, HG/LR lose).
        GridCell{AppId::kWordCount, kD, kPHI, true},
        GridCell{AppId::kKMeans, kD, kPHI, true},
        GridCell{AppId::kMatrixMultiply, kD, kPHI, true},
        GridCell{AppId::kHistogram, kD, kPHI, false},
        GridCell{AppId::kLinearRegression, kD, kPHI, false},
        // Fig. 9b (paper: 5/6 win, large average).
        GridCell{AppId::kWordCount, kH, kPHI, true},
        GridCell{AppId::kKMeans, kH, kPHI, true},
        GridCell{AppId::kHistogram, kH, kPHI, true},
        GridCell{AppId::kMatrixMultiply, kH, kPHI, true},
        GridCell{AppId::kLinearRegression, kH, kPHI, true}));

}  // namespace
}  // namespace ramr
