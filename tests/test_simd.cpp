// Tests for the SIMD kernel layer (src/simd/, RAMR_SIMD), the whitespace-
// class tokenizer fix, and the radix-sharded atomic-global container
// (RAMR_ATOMIC_SHARDS).
//
// The load-bearing properties:
//   * every kernel table (scalar / sse2 / avx2, as built) returns
//     bit-identical results over adversarial inputs — unaligned heads and
//     tails, runs shorter than one vector, matches straddling split
//     boundaries;
//   * the apps produce reference-identical output under every RAMR_SIMD
//     mode, including words/matches split across task boundaries (the
//     streaming split-ownership rule);
//   * the sharded container is output-identical to the single global
//     container under concurrent skewed emission, and the mrphi runtime
//     under RAMR_ATOMIC_SHARDS matches its unsharded run pair-for-pair.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/global_apps.hpp"
#include "apps/inputs.hpp"
#include "apps/pca.hpp"
#include "apps/string_match.hpp"
#include "apps/wordcount.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "containers/atomic_array_container.hpp"
#include "containers/sharded_atomic_container.hpp"
#include "engine/strategy_atomic.hpp"
#include "mrphi/runtime.hpp"
#include "simd/kernels.hpp"
#include "topology/topology.hpp"

namespace ramr {
namespace {

using simd::Kernels;

// Every table this build produced, named for failure messages.
std::vector<std::pair<std::string, const Kernels*>> built_tables() {
  std::vector<std::pair<std::string, const Kernels*>> tables;
  tables.emplace_back("scalar", &simd::scalar_kernels());
  if (const Kernels* k = simd::sse2_kernels()) tables.emplace_back("sse2", k);
  if (const Kernels* k = simd::avx2_kernels()) tables.emplace_back("avx2", k);
  return tables;
}

// Sets RAMR_SIMD and refreshes the cached dispatch decision; restores and
// refreshes again on destruction.
class SimdModeGuard {
 public:
  explicit SimdModeGuard(const std::string& mode)
      : override_(std::in_place, kEnvSimd, mode) {
    simd::refresh_from_env();
  }
  ~SimdModeGuard() {
    override_.reset();
    simd::refresh_from_env();
  }

 private:
  std::optional<env::ScopedOverride> override_;
};

// Adversarial text: words and separator runs of varied lengths (many
// shorter than one 16/32-byte vector), the full separator class, and high
// bytes (>= 0x80, negative under signed compare) inside words.
std::string adversarial_text(std::uint64_t seed, std::size_t approx) {
  std::mt19937_64 rng(seed);
  const char seps[] = {' ', '\t', '\n', '\v', '\f', '\r'};
  std::string text;
  while (text.size() < approx) {
    const std::size_t wlen = 1 + rng() % 40;
    for (std::size_t i = 0; i < wlen; ++i) {
      // Word bytes: letters plus occasional high bytes.
      text.push_back(rng() % 8 == 0 ? static_cast<char>(0x80 + rng() % 0x7F)
                                    : static_cast<char>('a' + rng() % 26));
    }
    const std::size_t slen = 1 + rng() % 5;
    for (std::size_t i = 0; i < slen; ++i) {
      text.push_back(seps[rng() % sizeof(seps)]);
    }
  }
  return text;
}

// ---------- kernel-level parity ---------------------------------------------------

TEST(SimdKernels, SeparatorScansMatchScalar) {
  const std::string text = adversarial_text(7, 4096);
  const Kernels& ref = simd::scalar_kernels();
  for (const auto& [name, k] : built_tables()) {
    // Unaligned heads: start the scan at every small offset; short tails:
    // end it a few bytes early.
    for (std::size_t head = 0; head < 5; ++head) {
      const std::size_t end = text.size() - head;
      std::size_t pos = head;
      while (pos < end) {
        const std::size_t sep = k->find_separator(text.data(), pos, end);
        ASSERT_EQ(sep, ref.find_separator(text.data(), pos, end)) << name;
        const std::size_t word = k->skip_separators(text.data(), sep, end);
        ASSERT_EQ(word, ref.skip_separators(text.data(), sep, end)) << name;
        pos = word > sep ? word : sep + 1;
      }
    }
    // Runs shorter than one vector, including empty.
    for (std::size_t n = 0; n < 40; ++n) {
      ASSERT_EQ(k->find_separator(text.data(), 0, n),
                ref.find_separator(text.data(), 0, n))
          << name << " n=" << n;
    }
  }
}

TEST(SimdKernels, FindByteAndRangeEqualMatchScalar) {
  const std::string text = adversarial_text(11, 2048);
  const Kernels& ref = simd::scalar_kernels();
  for (const auto& [name, k] : built_tables()) {
    for (const char needle : {'a', 'q', ' ', '\t', static_cast<char>(0x91)}) {
      std::size_t pos = 0;
      while (pos <= text.size()) {
        const std::size_t got = k->find_byte(text.data(), pos, text.size(),
                                             needle);
        ASSERT_EQ(got, ref.find_byte(text.data(), pos, text.size(), needle))
            << name;
        pos = got + 1;
      }
    }
    std::string other = text;
    for (const std::size_t flip : {std::size_t{0}, std::size_t{15},
                                   std::size_t{16}, std::size_t{31},
                                   std::size_t{33}, text.size() - 1}) {
      other[flip] = static_cast<char>(other[flip] ^ 1);
      for (std::size_t n : {std::size_t{0}, std::size_t{1}, flip, flip + 1,
                            text.size()}) {
        ASSERT_EQ(k->range_equal(text.data(), other.data(), n),
                  ref.range_equal(text.data(), other.data(), n))
            << name << " flip=" << flip << " n=" << n;
      }
      other[flip] = text[flip];
    }
  }
}

TEST(SimdKernels, HistogramChannelsMatchScalar) {
  std::mt19937_64 rng(13);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{11},
        std::size_t{12}, std::size_t{13}, std::size_t{64 * 1024 + 7}}) {
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    for (std::size_t channel0 = 0; channel0 < 3; ++channel0) {
      std::vector<std::uint64_t> want(768, 0);
      simd::scalar_kernels().histogram_channels(data.data(), n, channel0,
                                                want.data());
      for (const auto& [name, k] : built_tables()) {
        std::vector<std::uint64_t> got(768, 0);
        k->histogram_channels(data.data(), n, channel0, got.data());
        ASSERT_EQ(got, want) << name << " n=" << n << " ch0=" << channel0;
      }
    }
  }
}

TEST(SimdKernels, LrMomentsMatchScalarExactly) {
  std::mt19937_64 rng(17);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{1000}}) {
    std::vector<std::int16_t> xy(2 * n);
    for (auto& v : xy) v = static_cast<std::int16_t>(rng());
    if (n >= 2) {  // pin the extremes into the data
      xy[0] = 32767;
      xy[1] = -32768;
      xy[2] = -32768;
      xy[3] = 32767;
    }
    std::int64_t want[5] = {1, 2, 3, 4, 5};  // must accumulate, not assign
    simd::scalar_kernels().lr_moments(xy.data(), n, want);
    for (const auto& [name, k] : built_tables()) {
      std::int64_t got[5] = {1, 2, 3, 4, 5};
      k->lr_moments(xy.data(), n, got);
      for (int m = 0; m < 5; ++m) {
        ASSERT_EQ(got[m], want[m]) << name << " n=" << n << " moment=" << m;
      }
    }
  }
}

TEST(SimdKernels, F64ReductionsBitIdenticalAcrossTables) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(-1e3, 1e3);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{1023}}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = dist(rng);
      b[i] = dist(rng);
    }
    const double want_sum = simd::scalar_kernels().sum_f64(a.data(), n);
    const double want_dot = simd::scalar_kernels().dot_centered_f64(
        a.data(), b.data(), 0.25, -0.75, n);
    for (const auto& [name, k] : built_tables()) {
      // EXPECT_EQ, not NEAR: the contract is bit-identical rounding.
      EXPECT_EQ(k->sum_f64(a.data(), n), want_sum) << name << " n=" << n;
      EXPECT_EQ(k->dot_centered_f64(a.data(), b.data(), 0.25, -0.75, n),
                want_dot)
          << name << " n=" << n;
    }
  }
}

// ---------- dispatch --------------------------------------------------------------

TEST(SimdDispatch, ParsesModesAndRejectsJunk) {
  EXPECT_EQ(simd::parse_simd_mode("off"), simd::Mode::kOff);
  EXPECT_EQ(simd::parse_simd_mode("scalar"), simd::Mode::kScalar);
  EXPECT_EQ(simd::parse_simd_mode("native"), simd::Mode::kNative);
  EXPECT_THROW(simd::parse_simd_mode("wide"), ConfigError);
  EXPECT_THROW(simd::parse_simd_mode(""), ConfigError);
}

TEST(SimdDispatch, ForcedScalarFallbackPinsTheScalarTable) {
  SimdModeGuard guard("scalar");
  const simd::Active& a = simd::active();
  EXPECT_EQ(a.mode, simd::Mode::kScalar);
  EXPECT_STREQ(a.path, "scalar");
  EXPECT_EQ(a.kernels, &simd::scalar_kernels());
}

TEST(SimdDispatch, NativePicksAWidestBuiltTable) {
  SimdModeGuard guard("native");
  const simd::Active& a = simd::active();
  EXPECT_EQ(a.mode, simd::Mode::kNative);
  ASSERT_NE(a.kernels, nullptr);
  const std::string path = a.path;
  EXPECT_TRUE(path == "scalar" || path == "sse2" || path == "avx2") << path;
#if defined(__x86_64__)
  // x86-64 guarantees SSE2, so native never degrades all the way down.
  EXPECT_NE(path, "scalar");
#endif
}

TEST(SimdDispatch, OffModeDisablesTheKernelTable) {
  // Explicit "off" (not ambient-default: CI also runs this binary under
  // RAMR_SIMD=scalar) — the dormant state apps read as "run the seed loop".
  SimdModeGuard guard("off");
  const simd::Active& a = simd::active();
  EXPECT_EQ(a.mode, simd::Mode::kOff);
  EXPECT_STREQ(a.path, "off");
  EXPECT_EQ(a.kernels, nullptr);
  // When the environment really is unset, the default must be off.
  if (!env::get(kEnvSimd).has_value()) {
    EXPECT_EQ(simd::resolve(simd::parse_simd_mode(
                                env::get_string(kEnvSimd, "off")))
                  .mode,
              simd::Mode::kOff);
  }
}

// ---------- app-level parity across modes ----------------------------------------

// Runs app.map over every split and folds the emissions into a key->sum
// map (string keys for WC, integral keys otherwise).
template <typename App, typename K>
std::map<K, std::int64_t> fold_maps(const App& app,
                                    const typename App::input_type& in) {
  std::map<K, std::int64_t> out;
  for (std::size_t s = 0; s < app.num_splits(in); ++s) {
    app.map(in, s, [&](const auto& k, auto v) {
      out[K(k)] += static_cast<std::int64_t>(v);
    });
  }
  return out;
}

TEST(SimdApps, WordCountWhitespaceClassAndSplitBoundaries) {
  // Raw tabs/newlines now separate words (the historical space-only scan
  // glued "a\tb" into one word), and words straddle the tiny split size so
  // the ownership rule is exercised under every mode.
  apps::TextInput in;
  in.text = "alpha\tbeta\ngamma\rdelta\valpha\fbeta  alpha\t\n gamma";
  in.split_bytes = 7;  // words cross split boundaries
  const apps::WordCountApp<apps::ContainerFlavor::kDefault> app;
  const auto ref = apps::wordcount_reference(in);
  EXPECT_EQ(ref.at("alpha"), 3u);
  EXPECT_EQ(ref.at("beta"), 2u);
  for (const char* mode : {"off", "scalar", "native"}) {
    SimdModeGuard guard(mode);
    const auto got = fold_maps<decltype(app), std::string>(app, in);
    ASSERT_EQ(got.size(), ref.size()) << mode;
    for (const auto& [k, v] : ref) {
      EXPECT_EQ(static_cast<std::uint64_t>(got.at(std::string(k))), v)
          << mode << " key=" << k;
    }
  }
}

TEST(SimdApps, WordCountParityOnAdversarialText) {
  apps::TextInput in;
  in.text = adversarial_text(31, 20000);
  in.split_bytes = 97;  // prime: heads/tails land at every alignment
  const apps::WordCountApp<apps::ContainerFlavor::kDefault> app;
  std::optional<std::map<std::string, std::int64_t>> first;
  for (const char* mode : {"off", "scalar", "native"}) {
    SimdModeGuard guard(mode);
    const auto got = fold_maps<decltype(app), std::string>(app, in);
    if (!first) {
      first = got;
    } else {
      EXPECT_EQ(got, *first) << mode;
    }
  }
}

TEST(SimdApps, StringMatchParityIncludingFastPath) {
  apps::SmInput in;
  in.text.text =
      "needle hay needle\tneedleneedle hay\nneedle haystack needle";
  in.text.split_bytes = 6;  // matches straddle split boundaries
  in.patterns = {"needle"};
  apps::StringMatchApp<apps::ContainerFlavor::kDefault> app;
  app.num_patterns = in.patterns.size();
  const auto ref = apps::string_match_reference(in);
  ASSERT_EQ(ref.at(0), 4u);  // "needleneedle"/"haystack" must not count
  for (const char* mode : {"off", "scalar", "native"}) {
    SimdModeGuard guard(mode);
    const auto got = fold_maps<decltype(app), std::uint64_t>(app, in);
    EXPECT_EQ(static_cast<std::uint64_t>(got.at(0)), ref.at(0)) << mode;
  }
}

TEST(SimdApps, StringMatchParityMultiPatternAdversarial) {
  apps::SmInput in;
  in.text.text = adversarial_text(37, 15000);
  in.text.split_bytes = 113;
  // Patterns drawn from the text itself (guaranteed hits), one longer than
  // a 16-byte vector, plus a duplicate (first-match-wins semantics) and a
  // miss.
  in.patterns = {"zz-not-present", "a", "a",
                 std::string(in.text.text.substr(
                     in.text.text.find_first_not_of(" \t\n\v\f\r"), 3))};
  apps::StringMatchApp<apps::ContainerFlavor::kDefault> app;
  app.num_patterns = in.patterns.size();
  const auto ref = apps::string_match_reference(in);
  for (const char* mode : {"off", "scalar", "native"}) {
    SimdModeGuard guard(mode);
    const auto got = fold_maps<decltype(app), std::uint64_t>(app, in);
    ASSERT_EQ(got.size(), ref.size()) << mode;
    for (const auto& [k, v] : ref) {
      EXPECT_EQ(static_cast<std::uint64_t>(got.at(k)), v) << mode;
    }
  }
}

TEST(SimdApps, HistogramAndLrParityAcrossModes) {
  apps::PixelInput pix{apps::make_pixels(50021, 5), 1024};
  const apps::HistogramApp<apps::ContainerFlavor::kDefault> hg;
  const auto hg_ref = apps::histogram_reference(pix);
  apps::LrInput lr{apps::make_lr_points(30011, 6), 1000};
  const apps::LinearRegressionApp<apps::ContainerFlavor::kDefault> lrapp;
  const auto lr_ref = apps::lr_reference(lr);
  for (const char* mode : {"off", "scalar", "native"}) {
    SimdModeGuard guard(mode);
    const auto hist = fold_maps<decltype(hg), std::uint64_t>(hg, pix);
    for (const auto& [k, v] : hg_ref) {
      EXPECT_EQ(static_cast<std::uint64_t>(hist.at(k)), v) << mode;
    }
    const auto moments = fold_maps<decltype(lrapp), std::uint64_t>(lrapp, lr);
    for (const auto& [k, v] : lr_ref) {
      EXPECT_EQ(moments.at(k), v) << mode;
    }
  }
}

TEST(SimdApps, PcaScalarAndNativeBitIdentical) {
  apps::PcaInput in;
  in.matrix = apps::make_matrix(12, 301, 9);
  in.row_means = apps::pca_row_means(in.matrix);
  in.split_cols = 37;
  apps::PcaCovApp<apps::ContainerFlavor::kDefault> cov;
  cov.rows = in.matrix.rows;
  SimdModeGuard scalar_guard("scalar");
  std::map<std::uint64_t, double> want;
  for (std::size_t s = 0; s < cov.num_splits(in); ++s) {
    cov.map(in, s, [&](std::uint64_t k, double v) { want[k] += v; });
  }
  {
    SimdModeGuard native_guard("native");
    std::map<std::uint64_t, double> got;
    for (std::size_t s = 0; s < cov.num_splits(in); ++s) {
      cov.map(in, s, [&](std::uint64_t k, double v) { got[k] += v; });
    }
    ASSERT_EQ(got.size(), want.size());
    for (const auto& [k, v] : want) {
      // Bit-identical: both modes run the same accumulation schedule.
      EXPECT_EQ(got.at(k), v) << "pair " << k;
    }
  }
  // And both stay within float tolerance of the off-mode (seed) loop.
  const auto ref = apps::pca_cov_reference(in);
  for (const auto& [k, v] : want) {
    EXPECT_NEAR(v, ref.at(k), 1e-6 * (1.0 + std::abs(ref.at(k))));
  }
}

// ---------- sharded atomic container ---------------------------------------------

TEST(ShardedAtomic, RejectsNonPowerOfTwoShards) {
  using C = containers::ShardedAtomicContainer<std::uint64_t>;
  EXPECT_THROW(C(8, 0), ConfigError);
  EXPECT_THROW(C(8, 3), ConfigError);
  EXPECT_NO_THROW(C(8, 4));
}

TEST(ShardedAtomic, MatchesSingleContainerUnderSkewedConcurrentEmits) {
  constexpr std::size_t kKeys = 768;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 40000;
  containers::AtomicArrayContainer<std::uint64_t> single(kKeys);
  containers::ShardedAtomicContainer<std::uint64_t> sharded(kKeys, kThreads);
  auto worker = [&](std::size_t t, auto&& emit) {
    // Deterministic per-thread sequence, heavily skewed (Zipf-flavoured:
    // key = 2^k spread) so a few keys take most of the traffic.
    std::mt19937_64 rng(1000 + t);
    for (std::size_t i = 0; i < kPerThread; ++i) {
      const std::size_t bucket = static_cast<std::size_t>(rng() % 10);
      const std::size_t key =
          bucket < 7 ? bucket : rng() % kKeys;  // 70% on 7 hot keys
      emit(key, std::uint64_t{1});
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      worker(t, [&](std::size_t k, std::uint64_t v) { single.emit(k, v); });
    });
  }
  for (auto& th : threads) th.join();
  threads.clear();
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      worker(t, [&](std::size_t k, std::uint64_t v) {
        sharded.emit(t & (sharded.shard_count() - 1), k, v);
      });
    });
  }
  for (auto& th : threads) th.join();

  std::vector<std::pair<std::size_t, std::uint64_t>> want, got;
  single.for_each([&](std::size_t k, std::uint64_t v) {
    want.emplace_back(k, v);
  });
  sharded.for_each([&](std::size_t k, std::uint64_t v) {
    got.emplace_back(k, v);
  });
  EXPECT_EQ(got, want);
  EXPECT_EQ(sharded.size(), single.size());
  EXPECT_EQ(sharded.at(0), single.at(0));
  sharded.clear();
  EXPECT_EQ(sharded.size(), 0u);
}

TEST(ShardedAtomic, MinMaxFoldAcrossShards) {
  containers::ShardedAtomicContainer<std::int64_t, containers::AtomicOp::kMin>
      lo(2, 4);
  containers::ShardedAtomicContainer<std::int64_t, containers::AtomicOp::kMax>
      hi(2, 4);
  std::size_t shard = 0;
  for (std::int64_t v : {5, -3, 9, 0}) {
    lo.emit(shard, 0, v);
    hi.emit(shard, 0, v);
    shard = (shard + 1) % 4;  // spread across shards; fold must merge
  }
  EXPECT_EQ(lo.at(0), -3);
  EXPECT_EQ(hi.at(0), 9);
  EXPECT_EQ(lo.size(), 1u);
}

TEST(ShardedAtomic, ResolveShardCountValidatesAndRounds) {
  EXPECT_EQ(engine::resolve_atomic_shards(8), 1u);  // unset = historical
  {
    env::ScopedOverride o(kEnvAtomicShards, "4");
    EXPECT_EQ(engine::resolve_atomic_shards(8), 4u);
  }
  {
    env::ScopedOverride o(kEnvAtomicShards, "3");  // round up to pow2
    EXPECT_EQ(engine::resolve_atomic_shards(8), 4u);
  }
  {
    env::ScopedOverride o(kEnvAtomicShards, "0");  // auto: per worker
    EXPECT_EQ(engine::resolve_atomic_shards(6), 8u);
    EXPECT_EQ(engine::resolve_atomic_shards(200), 64u);  // capped
  }
  {
    env::ScopedOverride o(kEnvAtomicShards, "2000");
    EXPECT_THROW(engine::resolve_atomic_shards(8), ConfigError);
  }
  {
    env::ScopedOverride o(kEnvAtomicShards, "many");
    EXPECT_THROW(engine::resolve_atomic_shards(8), ConfigError);
  }
}

// ---------- sharded runs through the mrphi runtime --------------------------------

mrphi::Options mrphi_options(std::size_t workers) {
  mrphi::Options o;
  o.num_workers = workers;
  o.pin_policy = PinPolicy::kOsDefault;
  return o;
}

TEST(ShardedRuntime, HistogramParityUnderZipfInput) {
  // Zipf-distributed text bytes: a handful of hot intensity bins, the
  // worst case for the single global container's coherence traffic.
  const std::string text = apps::make_text(120000, 512, 42);
  apps::PixelInput input;
  input.bytes.assign(text.begin(), text.end());
  input.split_bytes = 4096;
  const apps::HistogramGlobalApp app;

  // Pin SIMD off so the dispatch block exercises ONLY the shard knob (this
  // binary also runs under an ambient RAMR_SIMD=scalar in CI).
  SimdModeGuard simd_off("off");
  mrphi::Runtime<apps::HistogramGlobalApp> rt(topo::host(),
                                              mrphi_options(4));
  const auto baseline = rt.run(app, input);
  EXPECT_EQ(baseline.dispatch.atomic_shards, 0u);
  EXPECT_FALSE(baseline.dispatch.enabled());
  {
    env::ScopedOverride o(kEnvAtomicShards, "4");
    const auto sharded = rt.run(app, input);
    EXPECT_EQ(sharded.pairs, baseline.pairs);
    EXPECT_EQ(sharded.dispatch.atomic_shards, 4u);
    EXPECT_NE(sharded.summary().find("shards=4"), std::string::npos);
  }
}

TEST(ShardedRuntime, LinearRegressionParityAndSimdProvenance) {
  apps::LrInput input{apps::make_lr_points(30000, 4), 1024};
  const apps::LinearRegressionGlobalApp app;
  mrphi::Runtime<apps::LinearRegressionGlobalApp> rt(topo::host(),
                                                     mrphi_options(3));
  std::optional<SimdModeGuard> simd_off(std::in_place, "off");
  const auto baseline = rt.run(app, input);
  simd_off.reset();
  const auto ref = apps::lr_reference(input);
  {
    SimdModeGuard simd_guard("native");
    env::ScopedOverride o(kEnvAtomicShards, "0");  // auto
    const auto sharded = rt.run(app, input);
    EXPECT_EQ(sharded.pairs, baseline.pairs);
    ASSERT_EQ(sharded.pairs.size(), ref.size());
    for (const auto& [k, v] : sharded.pairs) EXPECT_EQ(v, ref.at(k));
    EXPECT_EQ(sharded.dispatch.atomic_shards, 4u);  // next pow2 of 3 workers
    EXPECT_FALSE(sharded.dispatch.simd_path.empty());
    EXPECT_NE(sharded.summary().find("dispatch: simd="),
              std::string::npos);
  }
  // Default run: provenance absent, summary byte-stable.
  EXPECT_EQ(baseline.summary().find("dispatch:"), std::string::npos);
}

}  // namespace
}  // namespace ramr
