// File-driven word count: point the runtime at a real text file and write
// the counts to CSV — the I/O path a downstream user takes first.
//
//   $ ./file_wordcount INPUT.txt [OUTPUT.csv]
//   $ RAMR_IO=mmap ./file_wordcount INPUT.txt       # out-of-core streaming
//   $ ./file_wordcount --make-corpus=BYTES PATH     # write a corpus, exit
//
// With RAMR_IO unset the whole file is slurped into memory (the original
// path). RAMR_IO=mmap|direct switches to the streaming subsystem
// (src/io/): bounded windows fed to the mappers by an IO lane, so inputs
// far larger than RAM — or than a ulimit -v cap — still run with a flat
// memory high-water (the run report's peak_rss_bytes shows it).
// --make-corpus generates a deterministic text corpus of the given size in
// bounded slices; CI's streaming smoke uses it to build multi-hundred-MB
// inputs without a multi-hundred-MB process.
//
// Without arguments it generates a sample file in the system temp
// directory first, so the example is runnable out of the box.
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/inputs.hpp"
#include "apps/io.hpp"
#include "apps/streaming.hpp"
#include "core/runtime.hpp"
#include "io/io_config.hpp"

using namespace ramr;

namespace {

int make_corpus(const std::string& arg, const std::string& path) {
  const std::uint64_t bytes = std::stoull(arg);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot open '" << path << "' for writing\n";
    return 1;
  }
  // 1 MiB deterministic slices: corpus size is unbounded, process RSS not.
  constexpr std::uint64_t kSlice = 1 << 20;
  std::uint64_t written = 0;
  for (std::uint32_t i = 0; written < bytes; ++i) {
    const std::string slice = apps::make_text(
        static_cast<std::size_t>(std::min(kSlice, bytes - written)), 5000,
        i + 1);
    out.write(slice.data(), static_cast<std::streamsize>(slice.size()));
    written += slice.size();
  }
  std::cout << "wrote " << written << " bytes to " << path << '\n';
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kCorpus = "--make-corpus=";
  if (argc >= 2 && std::string(argv[1]).rfind(kCorpus, 0) == 0) {
    if (argc < 3) {
      std::cerr << "usage: file_wordcount --make-corpus=BYTES PATH\n";
      return 1;
    }
    return make_corpus(std::string(argv[1]).substr(kCorpus.size()),
                       argv[2]);
  }

  std::string in_path;
  std::string out_path = "wordcount.csv";
  if (argc >= 2) {
    in_path = argv[1];
    if (argc >= 3) out_path = argv[2];
  } else {
    // Self-contained mode: synthesise a sample input file.
    in_path =
        (std::filesystem::temp_directory_path() / "ramr_sample.txt").string();
    std::ofstream sample(in_path);
    sample << apps::make_text(256 * 1024, 300, 123);
    std::cout << "(no input given; wrote sample text to " << in_path << ")\n";
  }

  try {
    const io::IoConfig io_cfg = io::IoConfig::from_env();
    RuntimeConfig config;
    config.mapper_combiner_ratio = 2;
    config.pin_policy = PinPolicy::kOsDefault;

    if (io_cfg.enabled()) {
      // Streaming path: the file is never fully resident.
      std::cout << "streaming words from " << in_path << " ("
                << io_cfg.summary() << ")\n";
      apps::StreamOptions opts;
      opts.config = config;
      opts.io = io_cfg;
      opts.fold_words = true;
      const auto result = apps::run_wordcount_stream(in_path, opts);
      apps::save_pairs_csv(out_path, result.pairs);
      std::cout << result.pairs.size() << " distinct words -> " << out_path
                << '\n'
                << "phases: " << result.timers.summary() << '\n'
                << result.io.summary() << '\n'
                << "peak_rss_bytes: " << result.peak_rss_bytes << '\n';
      return 0;
    }

    const apps::TextInput input =
        apps::load_text_file(in_path, 32 * 1024, /*fold_words=*/true);
    std::cout << "counting words in " << in_path << " ("
              << input.text.size() << " bytes)\n";

    const apps::WordCountApp<apps::ContainerFlavor::kDefault> app;
    const auto result = core::run_once(app, input, config);

    apps::save_pairs_csv(out_path, result.pairs);
    std::cout << result.pairs.size() << " distinct words -> " << out_path
              << '\n'
              << "phases: " << result.timers.summary() << '\n'
              << "peak_rss_bytes: " << result.peak_rss_bytes << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
