// File-driven word count: point the runtime at a real text file and write
// the counts to CSV — the I/O path a downstream user takes first.
//
//   $ ./file_wordcount INPUT.txt [OUTPUT.csv]
//
// Without arguments it generates a sample file in the system temp
// directory first, so the example is runnable out of the box.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "apps/inputs.hpp"
#include "apps/io.hpp"
#include "core/runtime.hpp"

using namespace ramr;

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path = "wordcount.csv";
  if (argc >= 2) {
    in_path = argv[1];
    if (argc >= 3) out_path = argv[2];
  } else {
    // Self-contained mode: synthesise a sample input file.
    in_path =
        (std::filesystem::temp_directory_path() / "ramr_sample.txt").string();
    std::ofstream sample(in_path);
    sample << apps::make_text(256 * 1024, 300, 123);
    std::cout << "(no input given; wrote sample text to " << in_path << ")\n";
  }

  try {
    const apps::TextInput input =
        apps::load_text_file(in_path, 32 * 1024, /*fold_words=*/true);
    std::cout << "counting words in " << in_path << " ("
              << input.text.size() << " bytes)\n";

    const apps::WordCountApp<apps::ContainerFlavor::kDefault> app;
    RuntimeConfig config;
    config.mapper_combiner_ratio = 2;
    config.pin_policy = PinPolicy::kOsDefault;
    const auto result = core::run_once(app, input, config);

    apps::save_pairs_csv(out_path, result.pairs);
    std::cout << result.pairs.size() << " distinct words -> " << out_path
              << '\n'
              << "phases: " << result.timers.summary() << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
