// Quickstart: count words with the RAMR runtime in ~40 lines.
//
//   $ ./quickstart            # uses generated sample text
//
// Shows the minimal AppSpec surface: input type, container choice, a
// splitter and a map function — the runtime handles decoupled combining,
// queueing and pinning (tunable via RAMR_* environment variables).
#include <iostream>

#include "apps/inputs.hpp"
#include "apps/wordcount.hpp"
#include "core/runtime.hpp"

using namespace ramr;

int main() {
  // 1. Make an input: ~1MB of zipf-distributed text.
  apps::TextInput input{apps::make_text(1 << 20, /*vocabulary=*/500,
                                        /*seed=*/42),
                        /*split_bytes=*/16 * 1024};

  // 2. Pick an application. WordCountApp is one of the six suite apps; its
  //    default container is a thread-local hash table.
  const apps::WordCountApp<apps::ContainerFlavor::kDefault> app;

  // 3. Configure the runtime. Everything here can also come from env knobs
  //    via RuntimeConfig::from_env().
  RuntimeConfig config;
  config.mapper_combiner_ratio = 2;           // 2 mappers feed 1 combiner
  config.batch_size = 256;                    // batched consume (Sec. IV-C)
  config.pin_policy = PinPolicy::kOsDefault;  // portable default

  // 4. Run map -> (pipelined) combine -> reduce -> merge.
  auto result = core::run_once(app, input, config);

  // 5. Use the key-sorted output.
  std::cout << "distinct words: " << result.pairs.size() << '\n';
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "top five:\n";
  for (std::size_t i = 0; i < 5 && i < result.pairs.size(); ++i) {
    std::cout << "  " << result.pairs[i].first << " x "
              << result.pairs[i].second << '\n';
  }
  std::cout << "phase times: " << result.timers.summary() << '\n';
  std::cout << "pipeline: " << result.queue_pushes << " records through "
            << result.queue_batches << " batches\n";
  return 0;
}
