// Tuning walkthrough: given a synthetic workload (CPU-intensive map,
// memory-intensive combine), use the platform simulator to pick the
// mapper:combiner ratio, then run the *real* runtime at that ratio and
// verify the result invariant — the workflow of the paper's Sec. III-C.
#include <iostream>

#include "core/runtime.hpp"
#include "sim/model.hpp"
#include "stats/table.hpp"
#include "synth/synth_app.hpp"
#include "topology/topology.hpp"

using namespace ramr;

int main() {
  synth::SynthParams params;
  params.map_kind = synth::WorkKind::kCpu;
  params.map_intensity = 32;
  params.combine_kind = synth::WorkKind::kMemory;
  params.combine_intensity = 4;
  params.elements = 50000;
  params.keys = 64;
  // 200 splits: enough for the adaptive controller's calibration budget
  // when the CI smoke step re-runs this example under RAMR_ADAPT=full.
  params.split_elements = 250;
  params.arena_bytes = 1 << 20;

  // --- 1. explore ratios on the modelled Haswell server -------------------
  const auto machine = sim::haswell();
  const auto workload = sim::synth_workload(params);
  std::cout << "workload: " << workload.name << "\n\n";
  stats::Table table({"ratio", "modelled time (ms)", "bottleneck"});
  std::size_t best_ratio = 1;
  double best_time = 1e300;
  for (std::size_t ratio : {1u,2u,3u,4u}) {
    sim::RamrConfig cfg;
    cfg.ratio = ratio;
    cfg.batch = 1000;
    const auto r = sim::simulate_ramr(machine, workload, cfg);
    table.add_row({std::to_string(ratio),
                   stats::Table::fmt(r.phases.total() * 1e3, 3),
                   r.mapper_limited ? "mappers" : "combiner"});
    if (r.phases.total() < best_time) {
      best_time = r.phases.total();
      best_ratio = ratio;
    }
  }
  table.print(std::cout);
  std::cout << "chosen ratio: " << best_ratio << ":1\n\n";

  // --- 2. run the real runtime with the chosen ratio ----------------------
  // Env knobs (RAMR_ADAPT, RAMR_RATIO, ...) layer on top of the modelled
  // choice, so `RAMR_ADAPT=full ./synthetic_tuning` hands the decision to
  // the online controller instead (the CI adaptive-smoke step does this and
  // validates the RAMR_ADAPT_REPORT JSON it emits).
  synth::SynthApp app;
  app.container_keys = params.keys;
  RuntimeConfig config;
  config.mapper_combiner_ratio = best_ratio;
  config.pin_policy = PinPolicy::kOsDefault;
  config.batch_size = 256;
  config = RuntimeConfig::from_env(config);
  core::Runtime<synth::SynthApp> runtime(topo::host(), config);
  const auto result = runtime.run(app, params);

  std::uint64_t payload = 0;
  for (const auto& [k, v] : result.pairs) payload += v.payload;
  const bool ok =
      payload == synth::synth_expected_payload_sum(params.elements);
  std::cout << "real run: " << result.timers.summary() << '\n'
            << "mappers=" << runtime.config().num_mappers
            << " combiners=" << runtime.config().num_combiners << '\n'
            << result.plan.summary() << '\n'
            << "payload invariant: " << (ok ? "OK" : "VIOLATED") << '\n';
  return ok ? 0 : 1;
}
