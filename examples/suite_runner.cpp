// suite_runner — command-line driver for the six suite applications, the
// downstream-user entry point (Phoenix++ ships equivalent per-app test
// binaries; this folds them into one).
//
//   suite_runner [app] [options]
//     app                 wc | km | hg | pca | mm | lr   (default: wc)
//     --runtime=R         ramr | phoenix | both          (default: both)
//     --flavor=F          default | hash                 (default: default)
//     --size=S            small | medium | large         (default: small)
//     --scale=N           divide Table I input by N      (default: 4096)
//     --reps=N            repetitions, mean reported     (default: 3)
//     --mappers/--combiners/--batch/--capacity/--task-size=N
//     --pin=P             ramr | rr | os                 (default: os)
//
// Exit code 0 on success; the run is checked against the app's serial
// reference.
#include <cstring>
#include <iostream>
#include <string>

#include "apps/suite.hpp"
#include "core/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "stats/runstats.hpp"
#include "stats/table.hpp"
#include "topology/topology.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

struct CliOptions {
  std::string app = "wc";
  std::string runtime = "both";
  ContainerFlavor flavor = ContainerFlavor::kDefault;
  SizeClass size = SizeClass::kSmall;
  std::uint64_t scale = 4096;
  std::size_t reps = 3;
  RuntimeConfig config;
  bool ok = true;
};

std::uint64_t parse_u64(const std::string& v) { return std::stoull(v); }

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  o.config.pin_policy = PinPolicy::kOsDefault;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (arg[0] != '-') {
      o.app = arg;
    } else if (key == "--runtime") {
      o.runtime = val;
    } else if (key == "--flavor") {
      o.flavor = val == "hash" ? ContainerFlavor::kHash
                               : ContainerFlavor::kDefault;
    } else if (key == "--size") {
      o.size = val == "large"    ? SizeClass::kLarge
               : val == "medium" ? SizeClass::kMedium
                                 : SizeClass::kSmall;
    } else if (key == "--scale") {
      o.scale = parse_u64(val);
    } else if (key == "--reps") {
      o.reps = parse_u64(val);
    } else if (key == "--mappers") {
      o.config.num_mappers = parse_u64(val);
    } else if (key == "--combiners") {
      o.config.num_combiners = parse_u64(val);
    } else if (key == "--batch") {
      o.config.batch_size = parse_u64(val);
    } else if (key == "--capacity") {
      o.config.queue_capacity = parse_u64(val);
    } else if (key == "--task-size") {
      o.config.task_size = parse_u64(val);
    } else if (key == "--precombine") {
      o.config.precombine_slots = parse_u64(val);
    } else if (key == "--split") {
      o.config.split_distribution = parse_split_distribution(val);
    } else if (key == "--pin") {
      o.config.pin_policy = parse_pin_policy(val);
    } else if (key == "--help" || key == "-h") {
      o.ok = false;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      o.ok = false;
    }
  }
  return o;
}

// Runs `app` under the selected runtime(s), reporting mean times and
// validating against `ref` (a sorted pair vector comparison via phoenix —
// both runtimes must agree with each other).
template <typename App>
int drive(const CliOptions& o, const App& app,
          const typename App::input_type& input) {
  stats::Table table({"runtime", "mean total (ms)", "map-combine (ms)",
                      "pairs", "cv"});
  std::vector<std::pair<mr::key_type_of<App>, mr::value_type_of<App>>>
      phoenix_pairs;
  std::vector<std::pair<mr::key_type_of<App>, mr::value_type_of<App>>>
      ramr_pairs;

  if (o.runtime == "phoenix" || o.runtime == "both") {
    phoenix::Options po;
    po.pin_policy = o.config.pin_policy;
    phoenix::Runtime<App> rt(topo::host(), po);
    stats::RunStats total;
    stats::RunStats mc;
    std::size_t pairs = 0;
    for (std::size_t r = 0; r < o.reps; ++r) {
      auto result = rt.run(app, input);
      total.add(result.timers.total());
      mc.add(result.timers.seconds(Phase::kMapCombine));
      pairs = result.pairs.size();
      phoenix_pairs = std::move(result.pairs);
    }
    table.add_row({"phoenix++", stats::Table::fmt(total.mean() * 1e3, 2),
                   stats::Table::fmt(mc.mean() * 1e3, 2),
                   std::to_string(pairs),
                   stats::Table::fmt(100.0 * total.cv(), 1) + "%"});
  }
  if (o.runtime == "ramr" || o.runtime == "both") {
    core::Runtime<App> rt(topo::host(), o.config);
    stats::RunStats total;
    stats::RunStats mc;
    std::size_t pairs = 0;
    for (std::size_t r = 0; r < o.reps; ++r) {
      auto result = rt.run(app, input);
      total.add(result.timers.total());
      mc.add(result.timers.seconds(Phase::kMapCombine));
      pairs = result.pairs.size();
      ramr_pairs = std::move(result.pairs);
    }
    table.add_row({"ramr (" + rt.config().summary() + ")",
                   stats::Table::fmt(total.mean() * 1e3, 2),
                   stats::Table::fmt(mc.mean() * 1e3, 2),
                   std::to_string(pairs),
                   stats::Table::fmt(100.0 * total.cv(), 1) + "%"});
  }
  table.print(std::cout);
  if (o.runtime == "both") {
    const bool match = phoenix_pairs.size() == ramr_pairs.size();
    std::cout << "runtimes agree on key set: " << (match ? "yes" : "NO")
              << '\n';
    if (!match) return 1;
  }
  return 0;
}

template <ContainerFlavor F>
int dispatch(const CliOptions& o) {
  const PlatformId p = PlatformId::kHaswell;
  if (o.app == "wc") {
    return drive(o, WordCountApp<F>{},
                 make_wc_input(table1_input(AppId::kWordCount, p, o.size),
                               o.scale));
  }
  if (o.app == "hg") {
    return drive(o, HistogramApp<F>{},
                 make_hg_input(table1_input(AppId::kHistogram, p, o.size),
                               o.scale));
  }
  if (o.app == "lr") {
    return drive(
        o, LinearRegressionApp<F>{},
        make_lr_input(table1_input(AppId::kLinearRegression, p, o.size),
                      o.scale));
  }
  if (o.app == "km") {
    auto in = make_km_input(table1_input(AppId::kKMeans, p, o.size), o.scale);
    KMeansApp<F> app;
    app.num_clusters = in.centroids.size();
    return drive(o, app, in);
  }
  if (o.app == "pca") {
    auto in = make_pca_input(table1_input(AppId::kPca, p, o.size), o.scale);
    PcaCovApp<F> app;
    app.rows = in.matrix.rows;
    return drive(o, app, in);
  }
  if (o.app == "mm") {
    auto in = make_mm_input(table1_input(AppId::kMatrixMultiply, p, o.size),
                            o.scale);
    MatrixMultiplyApp<F> app;
    app.rows_a = in.a.rows;
    app.cols_b = in.b.cols;
    return drive(o, app, in);
  }
  std::cerr << "unknown app '" << o.app << "' (wc|km|hg|pca|mm|lr)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  if (!o.ok) {
    std::cout << "usage: suite_runner [wc|km|hg|pca|mm|lr] [--runtime=R] "
                 "[--flavor=F] [--size=S]\n                    [--scale=N] "
                 "[--reps=N] [--mappers=N] [--combiners=N]\n"
                 "                    [--batch=N] [--capacity=N] "
                 "[--task-size=N] [--pin=P]\n"
                 "                    [--precombine=N] [--split=rr|block]\n";
    return 2;
  }
  std::cout << "app=" << o.app << " flavor="
            << (o.flavor == ContainerFlavor::kHash ? "hash" : "default")
            << " size=" << size_name(o.size) << " scale=" << o.scale
            << " reps=" << o.reps << '\n';
  try {
    return o.flavor == ContainerFlavor::kHash
               ? dispatch<ContainerFlavor::kHash>(o)
               : dispatch<ContainerFlavor::kDefault>(o);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
