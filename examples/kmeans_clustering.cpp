// KMeans clustering end-to-end: one RAMR MapReduce job per Lloyd iteration,
// reusing the same runtime (and its pinned thread pools) across iterations,
// until the centroids stop moving.
#include <cmath>
#include <iostream>

#include "apps/kmeans.hpp"
#include "core/runtime.hpp"
#include "stats/table.hpp"
#include "topology/topology.hpp"

using namespace ramr;
using namespace ramr::apps;

int main() {
  constexpr std::size_t kClusters = 8;
  KmInput input;
  input.points = make_points(200000, kClusters, /*seed=*/7);
  input.centroids = initial_centroids(input.points, kClusters);
  input.split_points = 8192;

  KMeansApp<ContainerFlavor::kDefault> app;
  app.num_clusters = kClusters;

  RuntimeConfig config;
  config.mapper_combiner_ratio = 2;
  config.pin_policy = PinPolicy::kOsDefault;
  core::Runtime<KMeansApp<ContainerFlavor::kDefault>> runtime(topo::host(),
                                                              config);

  std::cout << "clustering " << input.points.size() << " points into "
            << kClusters << " clusters\n";
  double shift = 1e30;
  int iteration = 0;
  while (shift > 1e-3 && iteration < 50) {
    const auto result = runtime.run(app, input);
    const auto next = km_next_centroids(result.pairs, input.centroids);
    shift = 0.0;
    for (std::size_t k = 0; k < next.size(); ++k) {
      for (std::size_t d = 0; d < kKmDim; ++d) {
        shift += std::abs(next[k].coord[d] - input.centroids[k].coord[d]);
      }
    }
    input.centroids = next;
    ++iteration;
    std::cout << "  iteration " << iteration << ": total centroid shift "
              << stats::Table::fmt(shift, 4) << '\n';
  }

  std::cout << "\nconverged after " << iteration << " iterations:\n";
  stats::Table table({"cluster", "x", "y", "z"});
  for (std::size_t k = 0; k < kClusters; ++k) {
    table.add_row({std::to_string(k),
                   stats::Table::fmt(input.centroids[k].coord[0], 2),
                   stats::Table::fmt(input.centroids[k].coord[1], 2),
                   stats::Table::fmt(input.centroids[k].coord[2], 2)});
  }
  table.print(std::cout);
  return 0;
}
