// Platform explorer: prints the host topology, the thridtocpu() proximity
// remap, and the pinning plans the three policies would produce — then
// contrasts the two modelled evaluation platforms (Haswell server and Xeon
// Phi) on a reference workload.
#include <iostream>

#include "apps/suite.hpp"
#include "sim/model.hpp"
#include "stats/table.hpp"
#include "topology/pinning.hpp"

using namespace ramr;

namespace {

void show_plan(const topo::Topology& topology, PinPolicy policy,
               std::size_t mappers, std::size_t combiners) {
  try {
    const auto plan = topo::make_plan(topology, policy, mappers, combiners);
    std::cout << "  " << plan.summary(topology) << '\n';
  } catch (const Error& e) {
    std::cout << "  policy " << to_string(policy) << ": " << e.what() << '\n';
  }
}

}  // namespace

int main() {
  // --- host ---------------------------------------------------------------
  const topo::Topology host = topo::host();
  std::cout << "host: " << host.summary() << '\n';
  const auto order = host.proximity_order();
  std::cout << "thridtocpu() proximity order:";
  for (std::size_t i = 0; i < order.size() && i < 16; ++i) {
    std::cout << ' ' << order[i];
  }
  if (order.size() > 16) std::cout << " ...";
  std::cout << "\n\npinning plans on the host (ratio 2, machine-filling):\n";
  const std::size_t groups = std::max<std::size_t>(1, host.num_logical() / 3);
  for (PinPolicy p : {PinPolicy::kRamrPaired, PinPolicy::kRoundRobin,
                      PinPolicy::kOsDefault}) {
    show_plan(host, p, groups * 2, groups);
  }

  // --- the two modelled evaluation platforms -------------------------------
  std::cout << "\nmodelled platforms (paper Sec. IV-A):\n";
  for (const auto& machine : {sim::haswell(), sim::xeon_phi()}) {
    std::cout << "  " << machine.topology.summary() << '\n';
  }

  std::cout << "\nKMeans (large) on both platforms, RAMR vs Phoenix++:\n";
  stats::Table table({"platform", "phoenix (ms)", "ramr (ms)", "speedup",
                      "tuned ratio"});
  for (auto [machine, platform] :
       {std::pair{sim::haswell(), apps::PlatformId::kHaswell},
        {sim::xeon_phi(), apps::PlatformId::kXeonPhi}}) {
    const auto w =
        sim::suite_workload(apps::AppId::kKMeans, apps::ContainerFlavor::kDefault,
                            platform, apps::SizeClass::kLarge);
    const auto cfg = sim::tuned_config(machine, w, sim::RamrConfig{});
    const double base = sim::simulate_phoenix(machine, w).phases.total();
    const double ours = sim::simulate_ramr(machine, w, cfg).phases.total();
    table.add_row({machine.name, stats::Table::fmt(base * 1e3, 1),
                   stats::Table::fmt(ours * 1e3, 1),
                   stats::Table::fmt(base / ours, 2),
                   std::to_string(cfg.ratio)});
  }
  table.print(std::cout);
  return 0;
}
