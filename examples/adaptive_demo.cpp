// Adaptive controller walkthrough: the same workload run twice through the
// online autotuner (RAMR_ADAPT=full).
//
// Cold run: the plan cache is empty, so the controller spends a bounded
// calibration slice of the real input probing fused vs. pipelined
// candidates, commits the winner (plan source "probe"), and persists it.
// Warm run: the cached plan is reused without probing (plan source
// "cache"). Both runs print their plan provenance, and the cold run dumps
// the ramr-adapt-plan-v1 report with the per-candidate scores.
//
// See docs/TUNING.md for the full precedence story
// (explicit env > cache > probe > defaults).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "adapt/controller.hpp"
#include "core/runtime.hpp"
#include "synth/synth_app.hpp"
#include "topology/topology.hpp"

using namespace ramr;

namespace {

// One combine-heavy synthetic workload: cheap map, expensive combine — the
// shape the paper's Fig. 10 marks as pipeline-friendly.
synth::SynthParams demo_params() {
  synth::SynthParams params;
  params.map_kind = synth::WorkKind::kCpu;
  params.map_intensity = 40;
  params.combine_kind = synth::WorkKind::kCpu;
  params.combine_intensity = 1200;
  params.elements = 6000;
  params.keys = 32;
  params.split_elements = 24;  // 250 splits: plenty of probe budget
  return params;
}

bool run_once(const char* label, const RuntimeConfig& config,
              const std::string& report_path) {
  const synth::SynthParams params = demo_params();
  synth::SynthApp app;
  app.container_keys = params.keys;

  adapt::ControllerOptions options;
  options.report_path = report_path;
  const auto result = adapt::run_adaptive(topo::host(), config, app, params,
                                          /*recorder=*/nullptr,
                                          /*policy=*/nullptr, options);

  std::uint64_t payload = 0;
  for (const auto& [k, v] : result.pairs) payload += v.payload;
  const bool ok =
      payload == synth::synth_expected_payload_sum(params.elements);

  std::cout << label << ": " << result.plan.summary() << '\n'
            << "  " << result.timers.summary()
            << " governor_actions=" << result.governor_actions.size() << '\n'
            << "  payload invariant: " << (ok ? "OK" : "VIOLATED") << '\n';
  return ok;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path();
  const std::string cache_path = (dir / "ramr_adaptive_demo_cache.json").string();
  const std::string report_path = (dir / "ramr_adaptive_demo_plan.json").string();
  fs::remove(cache_path);  // guarantee the first run really is cold

  RuntimeConfig config;
  config.adapt_mode = AdaptMode::kFull;
  config.plan_cache_path = cache_path;
  config.pin_policy = PinPolicy::kOsDefault;
  config.num_mappers = 2;
  config.num_combiners = 1;

  std::cout << "plan cache: " << cache_path << "\n\n";
  const bool cold_ok = run_once("cold run (expect src=probe)", config,
                                report_path);

  std::cout << "\nplan report (" << report_path << "):\n";
  std::ifstream report(report_path);
  std::cout << report.rdbuf() << "\n\n";

  const bool warm_ok = run_once("warm run (expect src=cache)", config,
                                /*report_path=*/"");
  return cold_ok && warm_ok ? 0 : 1;
}
