// Visualising the map/combine overlap: run Word Count under RAMR with the
// trace recorder attached and render the per-thread timeline — mapper lanes
// ('#' = executing a task) and combiner lanes ('#' = consuming batches)
// should be active *simultaneously*, which is the whole point of the
// decoupled architecture.
//
// With RAMR_TELEMETRY=1 the run additionally writes two artifacts to the
// working directory (see docs/OBSERVABILITY.md):
//   ramr_trace.json       Chrome trace-event JSON — open in Perfetto or
//                         chrome://tracing for an interactive timeline
//   ramr_run_report.json  structured run report with per-phase IPB/MSPI/
//                         RSPI (hardware PMU counters where the kernel
//                         grants them, the analytic stall model otherwise)
#include <iostream>

#include "apps/inputs.hpp"
#include "apps/suite.hpp"
#include "apps/wordcount.hpp"
#include "core/runtime.hpp"
#include "perf/profiles.hpp"
#include "perf/stall_model.hpp"
#include "telemetry/export.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

using namespace ramr;

int main() {
  apps::TextInput input{apps::make_text(2 << 20, 400, 5), 32 * 1024};
  constexpr auto kFlavor = apps::ContainerFlavor::kDefault;
  const apps::WordCountApp<kFlavor> app;

  RuntimeConfig config;
  config.num_mappers = 2;
  config.num_combiners = 2;
  config.pin_policy = PinPolicy::kOsDefault;
  config.batch_size = 128;
  // Honour the RAMR_* env knobs (notably RAMR_TELEMETRY / RAMR_PMU /
  // RAMR_SAMPLE_US) on top of the defaults above.
  config = RuntimeConfig::from_env(config);
  core::Runtime<apps::WordCountApp<kFlavor>> runtime(topo::host(), config);

  trace::Recorder recorder;
  runtime.set_recorder(&recorder);
  const auto result = runtime.run(app, input);

  std::cout << "word count finished: " << result.pairs.size()
            << " distinct words, " << result.queue_pushes
            << " records pipelined (max ring occupancy "
            << result.queue_max_occupancy << ")\n\n";
  std::cout << "per-thread timeline ('#' active, '.' idle, '|' close/done):\n"
            << trace::render_timeline(recorder, 72) << '\n'
            << "event summary:\n"
            << trace::summarize(recorder);

  if (telemetry::Session* session = runtime.telemetry()) {
    const double bytes = static_cast<double>(input.text.size());
    session->set_input_bytes(bytes);

    // Analytic fallback for the map/combine cells; phase_counters() prefers
    // the hardware measurement and only falls back to these when the PMU is
    // unavailable (or RAMR_PMU=off).
    const perf::AppProfile profile =
        perf::app_profile(apps::AppId::kWordCount, kFlavor);
    const perf::MemSystemView mem;  // generic out-of-order host view
    session->set_modeled(Phase::kMapCombine, telemetry::PoolKind::kMapper,
                         perf::estimate_phase(profile.map, bytes, mem));
    session->set_modeled(Phase::kMapCombine, telemetry::PoolKind::kCombiner,
                         perf::estimate_phase(profile.combine, bytes, mem));

    telemetry::write_json_file("ramr_trace.json", [&](std::ostream& out) {
      telemetry::chrome_trace_json(out, telemetry::lane_views(recorder),
                                   session->series());
    });

    telemetry::RunReport report;
    report.app = "wordcount";
    report.runtime = "ramr";
    report.config_summary = config.summary();
    report.result = telemetry::make_run_info(result);
    telemetry::fill_from_session(report, *session);
    telemetry::write_json_file("ramr_run_report.json", [&](std::ostream& out) {
      telemetry::run_report_json(out, report);
    });

    std::cout << "\ntelemetry: wrote ramr_trace.json and ramr_run_report.json"
              << " (counters: " << (session->pmu_active() ? "pmu" : "model")
              << ")\n";
  }
  return 0;
}
