// Visualising the map/combine overlap: run Word Count under RAMR with the
// trace recorder attached and render the per-thread timeline — mapper lanes
// ('#' = executing a task) and combiner lanes ('#' = consuming batches)
// should be active *simultaneously*, which is the whole point of the
// decoupled architecture.
#include <iostream>

#include "apps/inputs.hpp"
#include "apps/wordcount.hpp"
#include "core/runtime.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

using namespace ramr;

int main() {
  apps::TextInput input{apps::make_text(2 << 20, 400, 5), 32 * 1024};
  const apps::WordCountApp<apps::ContainerFlavor::kDefault> app;

  RuntimeConfig config;
  config.num_mappers = 2;
  config.num_combiners = 2;
  config.pin_policy = PinPolicy::kOsDefault;
  config.batch_size = 128;
  core::Runtime<apps::WordCountApp<apps::ContainerFlavor::kDefault>> runtime(
      topo::host(), config);

  trace::Recorder recorder;
  runtime.set_recorder(&recorder);
  const auto result = runtime.run(app, input);

  std::cout << "word count finished: " << result.pairs.size()
            << " distinct words, " << result.queue_pushes
            << " records pipelined (max ring occupancy "
            << result.queue_max_occupancy << ")\n\n";
  std::cout << "per-thread timeline ('#' active, '.' idle, '|' close/done):\n"
            << trace::render_timeline(recorder, 72) << '\n'
            << "event summary:\n"
            << trace::summarize(recorder);
  return 0;
}
