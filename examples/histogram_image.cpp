// Histogram of a synthetic RGB image under both runtimes, with an ASCII
// rendering of the red-channel distribution and a cross-check that the
// decoupled pipeline produced byte-identical counts.
#include <iostream>
#include <string>

#include "apps/histogram.hpp"
#include "apps/inputs.hpp"
#include "core/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "topology/topology.hpp"

using namespace ramr;
using namespace ramr::apps;

int main() {
  PixelInput input;
  input.bytes = make_pixels(3 * 1024 * 1024, /*seed=*/99);  // a "1MP image"
  input.split_bytes = 64 * 1024;

  const HistogramApp<ContainerFlavor::kDefault> app;

  phoenix::Options po;
  po.pin_policy = PinPolicy::kOsDefault;
  po.num_workers = 4;
  phoenix::Runtime<HistogramApp<ContainerFlavor::kDefault>> baseline(
      topo::host(), po);

  RuntimeConfig rc;
  rc.num_mappers = 2;
  rc.num_combiners = 2;
  rc.pin_policy = PinPolicy::kOsDefault;
  core::Runtime<HistogramApp<ContainerFlavor::kDefault>> ramr(topo::host(),
                                                              rc);

  const auto a = baseline.run(app, input);
  const auto b = ramr.run(app, input);
  std::cout << "phoenix++: " << a.timers.summary() << '\n'
            << "ramr:      " << b.timers.summary() << '\n'
            << "outputs identical: " << (a.pairs == b.pairs ? "yes" : "NO")
            << "\n\nred-channel histogram (16 buckets of 16 intensities):\n";

  // Red channel = keys [0, 256); aggregate into 16 display buckets.
  std::uint64_t buckets[16] = {};
  std::uint64_t max_bucket = 1;
  for (const auto& [key, count] : b.pairs) {
    if (key < 256) {
      buckets[key / 16] += count;
      max_bucket = std::max(max_bucket, buckets[key / 16]);
    }
  }
  for (int i = 0; i < 16; ++i) {
    const auto width =
        static_cast<std::size_t>(50.0 * static_cast<double>(buckets[i]) /
                                 static_cast<double>(max_bucket));
    std::cout << (i * 16 < 100 ? " " : "") << i * 16 << "-" << i * 16 + 15
              << " | " << std::string(width, '#') << '\n';
  }
  return a.pairs == b.pairs ? 0 : 1;
}
