// Service mode end-to-end: a persistent service::Scheduler serving a stream
// of kmeans jobs (one Lloyd iteration per job) over warm pool sets, versus
// the cold-start baseline that builds a fresh Runtime per iteration.
//
// Also demonstrates multi-tenancy: two jobs admitted together run
// concurrently on disjoint leased core sets, and each gets its own report.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/kmeans.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "core/runtime.hpp"
#include "service/scheduler.hpp"
#include "stats/table.hpp"
#include "telemetry/metrics_export.hpp"
#include "topology/topology.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

constexpr std::size_t kClusters = 8;
constexpr int kIterations = 6;
using App = KMeansApp<ContainerFlavor::kDefault>;

KmInput make_input() {
  KmInput input;
  input.points = make_points(120000, kClusters, /*seed=*/7);
  input.centroids = initial_centroids(input.points, kClusters);
  input.split_points = 8192;
  return input;
}

RuntimeConfig job_runtime_config() {
  RuntimeConfig config;
  config.mapper_combiner_ratio = 2;
  config.pin_policy = PinPolicy::kOsDefault;
  return config;
}

// ---- --report=<path> -------------------------------------------------------
// Writes the scheduler's live metrics snapshot to `path` (ramr-metrics-v1
// JSON, or Prometheus text when the path ends in ".prom") and, when the
// observability plane is on, the stitched service trace next to it.
void write_report(service::Scheduler& sched, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "report: cannot open " << path << '\n';
    return;
  }
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  out << (prom ? sched.metrics_text() : sched.metrics_json());
  std::cout << "report: wrote " << path << '\n';
}

// With RAMR_OBS=1, dump the stitched service trace for Perfetto.
void write_obs_trace(service::Scheduler& sched) {
  if (!sched.observability()) return;
  const std::string path = "ramr_service_trace.json";
  std::ofstream out(path);
  if (!out) return;
  sched.write_trace(out);
  std::cout << "obs: wrote " << path << '\n';
}

// Per-app EWMA/breaker breakdown from the same frame the exporters use.
void print_app_breakdown(service::Scheduler& sched) {
  const telemetry::ServiceMetricsFrame frame = sched.metrics_frame();
  if (frame.apps.empty()) return;
  constexpr std::size_t kMaxRows = 10;  // soak names every job uniquely
  std::cout << "per-app:\n";
  for (std::size_t i = 0; i < frame.apps.size() && i < kMaxRows; ++i) {
    const auto& app = frame.apps[i];
    std::cout << "  " << app.name << ": ewma="
              << stats::Table::fmt(app.ewma_seconds * 1e3, 2) << "ms samples="
              << app.samples << " breaker=" << app.breaker;
    if (app.consecutive_failures > 0) {
      std::cout << " consecutive_failures=" << app.consecutive_failures;
    }
    std::cout << '\n';
  }
  if (frame.apps.size() > kMaxRows) {
    std::cout << "  ... (" << frame.apps.size() - kMaxRows
              << " more apps)\n";
  }
}

double centroid_shift(const std::vector<KmPoint>& next,
                      const std::vector<KmPoint>& prev) {
  double shift = 0.0;
  for (std::size_t k = 0; k < next.size(); ++k) {
    for (std::size_t d = 0; d < kKmDim; ++d) {
      shift += std::abs(next[k].coord[d] - prev[k].coord[d]);
    }
  }
  return shift;
}

// ---- soak mode (--soak[=seconds]) ------------------------------------------
// A seeded, randomized fault-injected job stream for CI: kmeans jobs with a
// mix of per-job fault plans (transient map-task faults, emit stalls) and
// random client cancellations, on top of whatever scheduler-level
// job-boundary faults RAMR_FAULTS specifies, for the given wall-clock
// budget. At drain, every job must have reached a terminal status and the
// scheduler must hold zero cores and zero depot leases.
int run_soak(double budget_seconds, const std::string& report_path) {
  const std::size_t seed = env::get_uint("RAMR_SOAK_SEED", 1);
  const topo::Topology topo = topo::host();

  // Env-driven resilience knobs (RAMR_SERVICE_RETRIES, RAMR_FAULTS, ...),
  // with soak-friendly floors where the env left a feature off.
  service::Scheduler::Options opts = service::Scheduler::Options::from_env();
  opts.max_concurrent_jobs =
      std::max<std::size_t>(opts.max_concurrent_jobs, 2);
  opts.queue_depth = std::max<std::size_t>(opts.queue_depth, 16);
  if (opts.max_retries == 0) opts.max_retries = 3;
  if (opts.hedge_factor == 0.0) opts.hedge_factor = 3.0;
  service::Scheduler sched(topo, opts);

  App app;
  app.num_clusters = kClusters;
  KmInput input;
  input.points = make_points(20000, kClusters, /*seed=*/7);
  input.centroids = initial_centroids(input.points, kClusters);
  input.split_points = 2048;

  std::cout << "soak on " << topo.name() << ": budget=" << budget_seconds
            << "s seed=" << seed << " retries=" << opts.max_retries
            << " faults='" << opts.fault_spec << "'\n";

  Xoshiro256 rng(seed);
  std::deque<service::JobId> inflight;
  std::size_t submitted = 0;
  const auto t0 = now();
  while (seconds_between(t0, now()) < budget_seconds) {
    service::JobSpec spec;
    spec.name = "soak-" + std::to_string(submitted);
    spec.config = job_runtime_config();
    const double roll = rng.uniform();
    if (roll < 0.2) {
      // Transient map-task faults, absorbed by task-level retry.
      spec.config.fault_spec = "map_task=3,map_transient=1,map_fires=2";
      spec.config.max_task_retries = 3;
    } else if (roll < 0.3) {
      spec.config.fault_spec = "stall_emit=100,stall_ms=50";  // emit stall
    } else if (roll < 0.33) {
      // Impossible budget over a stalled emit: a deterministic deadline
      // abort (and, with RAMR_OBS=1, a post-mortem) even on fast hosts.
      spec.config.fault_spec = "stall_emit=100,stall_ms=50";
      spec.deadline_ms = 1;
    }
    auto [id, future] = sched.submit(spec, app, input);
    (void)future;
    ++submitted;
    if (roll >= 0.33 && roll < 0.38) sched.cancel(id);  // client gives up
    inflight.push_back(id);
    while (inflight.size() >= 8) {
      sched.wait(inflight.front());
      inflight.pop_front();
    }
  }

  std::size_t done = 0, failed = 0, cancelled = 0, rejected = 0, shed = 0;
  std::size_t hedge_twins = 0, non_terminal = 0;
  for (const service::JobReport& r : sched.drain()) {
    if (r.hedge_of != 0) ++hedge_twins;
    switch (r.status) {
      case service::JobStatus::kDone: ++done; break;
      case service::JobStatus::kFailed: ++failed; break;
      case service::JobStatus::kCancelled: ++cancelled; break;
      case service::JobStatus::kRejected: ++rejected; break;
      case service::JobStatus::kShed: ++shed; break;
      default: ++non_terminal; break;
    }
  }
  const std::size_t leaked = sched.cores().total() - sched.cores().available();
  const auto depot_stats = sched.depot().stats();
  std::cout << sched.stats().summary() << '\n'
            << "soak: submitted=" << submitted << " done=" << done
            << " failed=" << failed << " cancelled=" << cancelled
            << " rejected=" << rejected << " shed=" << shed
            << " hedge_twins=" << hedge_twins
            << " non_terminal=" << non_terminal << '\n'
            << "soak: leaked_cores=" << leaked
            << " depot_leased=" << depot_stats.leased << '\n';
  if (!report_path.empty()) {
    print_app_breakdown(sched);
    write_report(sched, report_path);
  }
  write_obs_trace(sched);
  if (non_terminal != 0 || leaked != 0 || depot_stats.leased != 0) {
    std::cerr << "soak failed: non-terminal jobs or leaked leases\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool soak = false;
  double soak_seconds = 30.0;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--soak") {
      soak = true;
    } else if (arg.rfind("--soak=", 0) == 0) {
      soak = true;
      soak_seconds = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else {
      std::cerr << "usage: service_demo [--soak[=seconds]] [--report=path]\n";
      return 2;
    }
  }
  if (soak) return run_soak(soak_seconds, report_path);
  App app;
  app.num_clusters = kClusters;
  const topo::Topology topo = topo::host();
  std::cout << "service demo on " << topo.name() << " ("
            << topo.num_logical() << " logical CPUs)\n\n";

  // --- Cold baseline: a fresh Runtime (thread spawn + pin + arenas) per
  // iteration, the way a batch client would issue independent invocations.
  KmInput input = make_input();
  std::vector<double> cold_seconds;
  for (int i = 0; i < kIterations; ++i) {
    const auto t0 = now();
    core::Runtime<App> runtime(topo, job_runtime_config());
    const auto result = runtime.run(app, input);
    cold_seconds.push_back(seconds_between(t0, now()));
    input.centroids = km_next_centroids(result.pairs, input.centroids);
  }

  // --- Service mode: one persistent scheduler; each iteration is a job.
  // Identical pool shape per job, so every job after the first leases a
  // warm pool set from the depot instead of spinning up threads.
  input = make_input();
  // from_env() so the observability knobs (RAMR_OBS, RAMR_METRICS_PATH)
  // apply to the demo scheduler too; with no env set this is the default.
  service::Scheduler::Options opts = service::Scheduler::Options::from_env();
  opts.max_concurrent_jobs = 2;
  service::Scheduler sched(topo, opts);

  std::vector<double> warm_seconds;
  std::vector<KmPoint> prev = input.centroids;
  stats::Table table({"iteration", "mode", "seconds", "warm", "shift"});
  for (int i = 0; i < kIterations; ++i) {
    service::JobSpec spec;
    spec.name = "kmeans-iter-" + std::to_string(i);
    spec.config = job_runtime_config();
    const auto t0 = now();
    auto [id, future] = sched.submit(spec, app, input);
    const service::JobReport report = sched.wait(id);
    const double secs = seconds_between(t0, now());
    if (report.status != service::JobStatus::kDone) {
      std::cerr << "job failed: " << report.describe() << '\n';
      return 1;
    }
    warm_seconds.push_back(secs);
    input.centroids = km_next_centroids(future.get().pairs, input.centroids);
    table.add_row({std::to_string(i), "service",
                   stats::Table::fmt(secs * 1e3, 2) + "ms",
                   report.warm_pools ? "yes" : "no",
                   stats::Table::fmt(centroid_shift(input.centroids, prev),
                                     3)});
    prev = input.centroids;
  }
  table.print(std::cout);

  const auto avg = [](const std::vector<double>& v, std::size_t skip) {
    double sum = 0.0;
    for (std::size_t i = skip; i < v.size(); ++i) sum += v[i];
    return sum / static_cast<double>(v.size() - skip);
  };
  // Skip the first iteration on both sides: it pays the cold build in
  // either mode; the steady-state gap is what the depot amortizes.
  const double cold = avg(cold_seconds, 1);
  const double warm = avg(warm_seconds, 1);
  std::cout << "\nper-iteration average (steady state):\n"
            << "  cold-start runtime : " << stats::Table::fmt(cold * 1e3, 2)
            << " ms\n"
            << "  service (warm pool): " << stats::Table::fmt(warm * 1e3, 2)
            << " ms  (" << stats::Table::fmt(cold / warm, 2) << "x)\n";
  const auto depot_stats = sched.depot().stats();
  std::cout << "  pool sets built=" << depot_stats.built
            << " reused=" << depot_stats.reused << "\n\n";

  // --- Multi-tenancy: two jobs admitted back-to-back run on disjoint
  // leased core sets (concurrently when the machine has cores for both).
  const KmInput shared_input = make_input();
  service::JobSpec spec;
  spec.config = job_runtime_config();
  spec.cores = std::max<std::size_t>(1, topo.num_logical() / 2);
  spec.name = "tenant-a";
  auto [id_a, future_a] = sched.submit(spec, app, shared_input);
  spec.name = "tenant-b";
  auto [id_b, future_b] = sched.submit(spec, app, shared_input);
  const service::JobReport ra = sched.wait(id_a);
  const service::JobReport rb = sched.wait(id_b);
  std::cout << "concurrent tenants:\n  " << ra.describe() << "\n  "
            << rb.describe() << '\n';
  if (ra.status != service::JobStatus::kDone ||
      rb.status != service::JobStatus::kDone) {
    return 1;
  }
  // Disjointness check: no OS CPU id in both leases. Only meaningful when
  // the machine can host both leases at once — on smaller machines the
  // registry serializes the tenants and the *same* cores serve each in
  // turn (disjoint in time, not in space).
  if (2 * spec.cores <= topo.num_logical()) {
    for (std::size_t id : ra.cores) {
      if (std::find(rb.cores.begin(), rb.cores.end(), id) != rb.cores.end()) {
        std::cerr << "core " << id << " leased to both tenants\n";
        return 1;
      }
    }
    std::cout << "  leases disjoint: yes\n";
  } else {
    std::cout << "  leases serialized (machine smaller than 2x"
              << spec.cores << " cores)\n";
  }
  if (!report_path.empty()) write_report(sched, report_path);
  write_obs_trace(sched);
  return 0;
}
