// Fig. 8: RAMR execution-time speedup over Phoenix++ on the Haswell server
// model for Small/Medium/Large inputs — (a) default containers, (b) the
// memory-stressing hash containers.
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

void run_flavor(PlatformId platform, ContainerFlavor flavor,
                const char* figure, const char* paper_note) {
  std::cout << "\n--- " << figure << ": " << to_string(flavor)
            << " containers ---\n";
  stats::Table table({"app", "small", "medium", "large", "mean"});
  double grand = 0.0;
  int faster = 0;
  for (AppId app : kAllApps) {
    std::vector<std::string> row{app_full_name(app)};
    double sum = 0.0;
    for (SizeClass size : kAllSizes) {
      const double s = bench::tuned_speedup(
          platform, sim::suite_workload(app, flavor, platform, size));
      row.push_back(stats::Table::fmt(s, 2));
      sum += s;
    }
    const double mean = sum / 3.0;
    row.push_back(stats::Table::fmt(mean, 2));
    table.add_row(std::move(row));
    grand += mean;
    faster += mean > 1.0;
  }
  bench::print(table);
  std::cout << "suite average " << stats::Table::fmt(grand / 6.0, 2) << "x, "
            << faster << "/6 apps faster   (paper: " << paper_note << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig08_haswell");
  bench::banner("RAMR vs Phoenix++ on the Haswell server model "
                "(speedup > 1 means RAMR is faster)",
                "Fig. 8a / Fig. 8b");
  run_flavor(PlatformId::kHaswell, ContainerFlavor::kDefault, "Fig. 8a",
             "KM 1.95x, MM 1.77x, PCA ~1x, WC 0.78x, HG ~1/3x, LR ~1/3.8x");
  run_flavor(PlatformId::kHaswell, ContainerFlavor::kHash, "Fig. 8b",
             "5/6 faster, 1.57x average, MM max 2.46x, PCA 0.80x");
  return 0;
}
