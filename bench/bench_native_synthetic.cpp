// Native analog of Fig. 4: the synthetic suite on the REAL runtime — actual
// trig/exp map kernels, actual pointer-chase combine kernels, actual SPSC
// pipelines — sweeping the combine intensity for mapper:combiner ratios
// 3:1 / 2:1 / 1:1 plus the Phoenix++ baseline. On a multicore host the
// ratio crossover of Fig. 4 appears in wall-clock; on a single-core CI
// machine the run still validates the full path end-to-end (the simulator
// bench bench_fig04_synthetic_ratio carries the figure reproduction).
#include <iostream>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "core/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "synth/synth_app.hpp"
#include "topology/topology.hpp"

using namespace ramr;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "native_synthetic");
  const std::uint64_t elements =
      env::get_uint("RAMR_SYNTH_ELEMENTS", 20000);
  bench::banner("Native synthetic sweep: CPU map x memory combine on this "
                "host (" + std::to_string(elements) + " elements; ms)",
                "Fig. 4's methodology, run natively");
  std::cout << "host: " << topo::host().summary() << "\n\n";

  synth::SynthApp app;
  app.container_keys = 64;

  stats::Table table({"combine intensity", "ratio 1:1", "ratio 2:1",
                      "ratio 3:1", "phoenix++"});
  for (std::uint64_t intensity : {1u, 4u, 16u, 64u}) {
    synth::SynthParams params;
    params.map_kind = synth::WorkKind::kCpu;
    params.map_intensity = 24;
    params.combine_kind = synth::WorkKind::kMemory;
    params.combine_intensity = intensity;
    params.elements = elements;
    params.keys = 64;
    params.split_elements = 1000;
    params.arena_bytes = 1 << 20;

    std::vector<std::string> row{std::to_string(intensity)};
    for (std::size_t ratio : {1u, 2u, 3u}) {
      RuntimeConfig cfg;
      cfg.num_combiners = 1;
      cfg.num_mappers = ratio;
      cfg.pin_policy = PinPolicy::kOsDefault;
      cfg.batch_size = 256;
      core::Runtime<synth::SynthApp> rt(topo::host(), cfg);
      row.push_back(
          stats::Table::fmt(rt.run(app, params).timers.total() * 1e3, 2));
    }
    phoenix::Options po;
    po.num_workers = 4;
    po.pin_policy = PinPolicy::kOsDefault;
    phoenix::Runtime<synth::SynthApp> baseline(topo::host(), po);
    row.push_back(
        stats::Table::fmt(baseline.run(app, params).timers.total() * 1e3, 2));
    table.add_row(std::move(row));
  }
  bench::print(table);
  std::cout << "\n(each RAMR column uses one combiner and `ratio` mappers; "
               "per-thread efficiency is what\n the ratio trades — compare "
               "columns per row on a machine with >= 4 cores)\n";
  return 0;
}
