// Streaming-input bench (src/io/): wordcount over one on-disk corpus,
// slurped (load_text_file + materialized run) vs streamed through the two
// window sources (RAMR_IO=mmap / direct). Reports wall-clock, throughput,
// peak RSS, and the IO-lane balance counters (io_stalls = feeder waited on
// map compute; map_waits = mappers waited on the feeder) — the overlap
// diagnostic TUNING.md describes.
//
// Corpus size defaults to 32 MiB (RAMR_BENCH_IO_MB overrides); each cell
// is the min over RAMR_BENCH_REPEATS runs (default 2). Wall-clock numbers
// are host-dependent; CI consumes the JSON (`--json`) for shape only.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "apps/io.hpp"
#include "apps/streaming.hpp"
#include "apps/suite.hpp"
#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timing.hpp"
#include "core/runtime.hpp"
#include "stats/table.hpp"
#include "topology/topology.hpp"

using namespace ramr;

namespace {

struct Cell {
  double seconds = 0.0;
  std::size_t peak_rss = 0;
  std::uint64_t windows = 0;
  std::uint64_t io_stalls = 0;
  std::uint64_t map_waits = 0;
};

Cell best_of(const std::function<Cell()>& run, std::size_t repeats) {
  Cell best = run();
  for (std::size_t i = 1; i < repeats; ++i) {
    const Cell c = run();
    if (c.seconds < best.seconds) best = c;
  }
  return best;
}

RuntimeConfig engine_config() {
  RuntimeConfig cfg;
  cfg.mapper_combiner_ratio = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;
  return cfg;
}

Cell run_slurped(const std::string& path) {
  const auto t0 = now();
  const apps::TextInput input = apps::load_text_file(path, 256 * 1024);
  apps::WordCountApp<apps::ContainerFlavor::kDefault> app;
  app.max_distinct_words = 64 * 1024;
  core::Runtime<apps::WordCountApp<apps::ContainerFlavor::kDefault>> rt(
      topo::host(), engine_config());
  const auto result = rt.run(app, input);
  Cell cell;
  cell.seconds = seconds_between(t0, now());
  cell.peak_rss = result.peak_rss_bytes;
  return cell;
}

Cell run_streamed(const std::string& path, io::IoMode mode) {
  apps::StreamOptions opts;
  opts.config = engine_config();
  opts.io.mode = mode;
  opts.max_distinct_words = 64 * 1024;
  const auto t0 = now();
  const auto result = apps::run_wordcount_stream(path, opts);
  Cell cell;
  cell.seconds = seconds_between(t0, now());
  cell.peak_rss = result.peak_rss_bytes;
  cell.windows = result.io.windows;
  cell.io_stalls = result.io.io_stalls;
  cell.map_waits = result.io.map_waits;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "streaming_io");

  const std::size_t mb =
      static_cast<std::size_t>(env::get_uint("RAMR_BENCH_IO_MB", 32));
  const std::size_t repeats =
      static_cast<std::size_t>(env::get_uint("RAMR_BENCH_REPEATS", 2));
  const std::string path = "bench_streaming_io_corpus.txt";
  {
    // Deterministic corpus, written in 1 MiB slices so the generator does
    // not itself hold a multi-GB string.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i < mb; ++i) {
      const std::string slice =
          apps::make_text(1 << 20, 5000, static_cast<std::uint32_t>(i + 1));
      out.write(slice.data(), static_cast<std::streamsize>(slice.size()));
    }
  }

  bench::banner("Streaming input: slurp vs windowed IO lane (wordcount, " +
                    std::to_string(mb) + " MiB corpus)",
                "the out-of-core streaming subsystem, docs/ARCHITECTURE.md "
                "S15");

  stats::Table table({"input path", "seconds", "MB/s", "peak RSS (MiB)",
                      "windows", "io_stalls", "map_waits"});
  const double total_mb = static_cast<double>(mb);
  const auto add = [&](const std::string& name, const Cell& cell) {
    table.add_row({name, stats::Table::fmt(cell.seconds, 3),
                   stats::Table::fmt(total_mb / cell.seconds, 1),
                   stats::Table::fmt(
                       static_cast<double>(cell.peak_rss) / (1 << 20), 1),
                   std::to_string(cell.windows),
                   std::to_string(cell.io_stalls),
                   std::to_string(cell.map_waits)});
  };

  add("slurp", best_of([&] { return run_slurped(path); }, repeats));
  add("stream-mmap",
      best_of([&] { return run_streamed(path, io::IoMode::kMmap); },
              repeats));
  add("stream-direct",
      best_of([&] { return run_streamed(path, io::IoMode::kDirect); },
              repeats));
  bench::print(table);

  std::remove(path.c_str());
  return 0;
}
