#!/usr/bin/env python3
"""Compare two sets of ramr-bench-v1 JSON reports and flag regressions.

Usage:
    compare_bench.py BASELINE CANDIDATE [--tolerance 0.10]

BASELINE and CANDIDATE are either two BENCH_*.json files or two
directories containing them (files are matched by name). The tool walks
every table cell and series point present in both sides, computes the
relative change of each numeric value, and decides the "worse" direction
from the column/series label:

  * time-like labels (time, ms, sec, latency, stall) regress when the
    candidate is LARGER than baseline;
  * rate-like labels (speedup, throughput, ops, ipc) regress when the
    candidate is SMALLER;
  * anything else is reported as informational only and never fails.

Exit status is 1 when any regression exceeds the tolerance (default 10%),
0 otherwise. CI runs this as an advisory job: it annotates the PR but the
tier-1 gate stays the repo's own test suite.
"""

import argparse
import json
import os
import sys

TIME_HINTS = ("time", "ms", "sec", "latency", "stall", "sleep")
RATE_HINTS = ("speedup", "throughput", "ops", "ipc", "rate")


def direction_of(label):
    """Return 'up-is-worse', 'down-is-worse', or None (informational)."""
    low = label.lower()
    if any(h in low for h in RATE_HINTS):
        return "down-is-worse"
    if any(h in low for h in TIME_HINTS):
        return "up-is-worse"
    return None


def as_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "ramr-bench-v1":
        raise ValueError(f"{path}: not a ramr-bench-v1 report")
    return doc


def collect_values(doc):
    """Flatten a report into {metric_id: (label, value)}.

    Table cells are keyed by (section, table header column, first-cell row
    key); series points by (section, series name, x value). Only numeric
    values are kept.
    """
    out = {}
    for section in doc.get("sections", []):
        sec = section.get("title", "")
        for t_idx, table in enumerate(section.get("tables", [])):
            header = table.get("header", [])
            for row in table.get("rows", []):
                if not row:
                    continue
                row_key = row[0]
                for col, cell in enumerate(row[1:], start=1):
                    value = as_number(cell)
                    if value is None:
                        continue
                    label = header[col] if col < len(header) else f"col{col}"
                    out[(sec, t_idx, label, row_key)] = (label, value)
        for g_idx, group in enumerate(section.get("series", [])):
            for series in group.get("series", []):
                name = series.get("name", "")
                for point in series.get("points", []):
                    if len(point) != 2:
                        continue
                    value = as_number(point[1])
                    if value is None:
                        continue
                    key = (sec, f"s{g_idx}", name, str(point[0]))
                    out[key] = (name, value)
    return out


def pair_files(base, cand):
    if os.path.isfile(base) and os.path.isfile(cand):
        return [(base, cand)]
    if os.path.isdir(base) and os.path.isdir(cand):
        names = sorted(
            set(n for n in os.listdir(base) if n.endswith(".json"))
            & set(n for n in os.listdir(cand) if n.endswith(".json")))
        if not names:
            sys.exit("compare_bench: no common BENCH_*.json files")
        return [(os.path.join(base, n), os.path.join(cand, n)) for n in names]
    sys.exit("compare_bench: arguments must be two files or two directories")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="relative regression threshold (default 0.10)")
    args = ap.parse_args()

    regressions = []
    improvements = 0
    compared = 0
    for base_path, cand_path in pair_files(args.baseline, args.candidate):
        base = collect_values(load(base_path))
        cand = collect_values(load(cand_path))
        bench = os.path.basename(cand_path)
        for key, (label, new) in sorted(cand.items()):
            if key not in base:
                continue
            _, old = base[key]
            compared += 1
            if old == 0:
                continue
            change = (new - old) / abs(old)
            sense = direction_of(label)
            worse = (sense == "up-is-worse" and change > args.tolerance) or \
                    (sense == "down-is-worse" and change < -args.tolerance)
            if worse:
                regressions.append(
                    f"{bench}: {key[0] or '(untitled)'} / {label} / {key[3]}: "
                    f"{old:g} -> {new:g} ({change:+.1%})")
            elif sense is not None and abs(change) > args.tolerance:
                improvements += 1

    print(f"compare_bench: {compared} metrics compared, "
          f"{len(regressions)} regression(s), "
          f"{improvements} improvement(s) beyond {args.tolerance:.0%}")
    for line in regressions:
        print("  REGRESSION " + line)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
