// Observability overhead: the whole plane must cost < 2% (docs/
// OBSERVABILITY.md budget), measured at its two hot surfaces:
//
//   engine row   — one runtime, identical input, RAMR_OBS off vs on: the
//                  skew profiler's per-emission tick + per-task clock
//                  reads are the only delta;
//   service row  — a serial job stream through one scheduler, plane off
//                  vs on: adds lifecycle events, per-attempt recorders,
//                  and the sampler thread.
//
// Each cell is the min over repeats (min is robust against load spikes on
// shared CI hosts); the overhead column is (on - off) / off. Wall-clock
// numbers are host-dependent. The 2% budget is only *enforced* (non-zero
// exit) with RAMR_BENCH_ENFORCE=1, so loaded machines can still run the
// bench for the report without flaking; CI inspects the JSON instead.
#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timing.hpp"
#include "core/runtime.hpp"
#include "service/scheduler.hpp"
#include "stats/table.hpp"
#include "synth/synth_app.hpp"
#include "topology/topology.hpp"

using namespace ramr;

namespace {

double min_seconds(const std::function<double()>& run, std::size_t repeats) {
  double best = run();  // first call doubles as warmup for the caller
  for (std::size_t i = 1; i < repeats; ++i) best = std::min(best, run());
  return best;
}

RuntimeConfig base_config(bool obs) {
  RuntimeConfig cfg;
  cfg.mapper_combiner_ratio = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.observability = obs;
  return cfg;
}

// One engine run, timed around run() only (pool build excluded).
double engine_run_seconds(bool obs, const synth::SynthApp& app,
                          const synth::SynthParams& input) {
  core::Runtime<synth::SynthApp> runtime(topo::host(), base_config(obs));
  runtime.run(app, input);  // warm the pools and the allocator
  const auto t0 = now();
  runtime.run(app, input);
  return seconds_between(t0, now());
}

// A serial stream of `jobs` identical jobs through one scheduler.
double service_stream_seconds(bool obs, std::size_t jobs,
                              const synth::SynthApp& app,
                              const synth::SynthParams& input) {
  service::Scheduler::Options opts;
  opts.observability = obs;
  opts.metrics_interval_ms = 50;
  opts.postmortem_path = "";  // measure the plane, not the disk
  service::Scheduler sched(topo::host(), opts);

  service::JobSpec warm;
  warm.name = "obs-bench";
  warm.config = base_config(obs);
  {
    auto [id, future] = sched.submit(warm, app, input);
    (void)future;
    sched.wait(id);  // pay the cold pool build outside the timed window
  }
  const auto t0 = now();
  for (std::size_t i = 0; i < jobs; ++i) {
    service::JobSpec spec = warm;
    auto [id, future] = sched.submit(spec, app, input);
    (void)future;
    sched.wait(id);
  }
  return seconds_between(t0, now());
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "obs_overhead");

  const std::size_t scale = env::get_uint("RAMR_BENCH_SCALE", 4096);
  const std::size_t repeats = env::get_uint("RAMR_BENCH_REPEATS", 5);
  const std::size_t jobs = env::get_uint("RAMR_BENCH_JOBS", 8);
  const bool enforce = env::get_bool("RAMR_BENCH_ENFORCE", false);
  const double budget_pct = 2.0;

  synth::SynthParams input;
  input.elements = std::max<std::size_t>(50'000, 80'000'000 / scale);
  input.keys = 256;
  synth::SynthApp app;
  app.container_keys = input.keys;

  bench::banner("Observability overhead (off vs RAMR_OBS=1)",
                "docs/OBSERVABILITY.md: < 2% budget");

  const double engine_off = min_seconds(
      [&] { return engine_run_seconds(false, app, input); }, repeats);
  const double engine_on = min_seconds(
      [&] { return engine_run_seconds(true, app, input); }, repeats);
  const double service_off = min_seconds(
      [&] { return service_stream_seconds(false, jobs, app, input); },
      repeats);
  const double service_on = min_seconds(
      [&] { return service_stream_seconds(true, jobs, app, input); },
      repeats);

  const auto pct = [](double off, double on) {
    return off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  };
  const double engine_pct = pct(engine_off, engine_on);
  const double service_pct = pct(service_off, service_on);

  stats::Table table(
      {"surface", "off_ms", "on_ms", "overhead_pct", "budget_pct"});
  table.add_row({"engine", stats::Table::fmt(engine_off * 1e3, 2),
                 stats::Table::fmt(engine_on * 1e3, 2),
                 stats::Table::fmt(engine_pct, 2),
                 stats::Table::fmt(budget_pct, 1)});
  table.add_row({"service", stats::Table::fmt(service_off * 1e3, 2),
                 stats::Table::fmt(service_on * 1e3, 2),
                 stats::Table::fmt(service_pct, 2),
                 stats::Table::fmt(budget_pct, 1)});
  bench::print(table);

  if (enforce &&
      (engine_pct > budget_pct || service_pct > budget_pct)) {
    std::cerr << "observability overhead above the " << budget_pct
              << "% budget\n";
    return 1;
  }
  return 0;
}
