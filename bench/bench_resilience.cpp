// Goodput under injected job-boundary faults: a stream of identical jobs
// through the service scheduler at fault rates 0%, 1%, and 5%, with
// job-level retries off vs on. With retries off, every faulted attempt is
// a lost job (goodput drops roughly with the fault rate); with retries on,
// faulted attempts re-enter the queue after backoff and the stream's
// goodput — *correct* jobs finished per second — recovers at the cost of
// the retried attempts' latency.
//
// Wall-clock numbers are host-dependent (like bench_native_runtime); the
// accounting columns (done/failed/retried) are deterministic for the 0%
// row and bounded for the probabilistic rows by the seeded fault coin.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timing.hpp"
#include "service/scheduler.hpp"
#include "stats/runstats.hpp"
#include "synth/synth_app.hpp"
#include "topology/topology.hpp"

using namespace ramr;

namespace {

RuntimeConfig stream_config() {
  RuntimeConfig cfg;
  cfg.mapper_combiner_ratio = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;  // host may be tiny
  return cfg;
}

struct Cell {
  double fault_p = 0.0;
  std::size_t retries = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t retried = 0;
  std::size_t faults = 0;
  double seconds = 0.0;

  double goodput() const { return static_cast<double>(done) / seconds; }
};

Cell run_stream(double fault_p, std::size_t retries, std::size_t jobs,
                const synth::SynthApp& app, const synth::SynthParams& input) {
  service::Scheduler::Options opts;
  opts.max_retries = retries;
  if (fault_p > 0.0) {
    // A seeded coin at the job boundary; job_fires is set far beyond the
    // stream length so the probability alone bounds the injections.
    opts.fault_spec = "job_p=" + std::to_string(fault_p) +
                      ",job_fires=1000000,seed=42";
  }
  service::Scheduler sched(topo::host(), opts);

  Cell cell;
  cell.fault_p = fault_p;
  cell.retries = retries;
  const auto t0 = now();
  std::vector<service::JobId> ids;
  ids.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    service::JobSpec spec;
    spec.name = "stream";
    spec.config = stream_config();
    auto [id, future] = sched.submit(spec, app, input);
    (void)future;
    ids.push_back(id);
    // Serial stream: wait each job so queue depth never rejects and the
    // cold pool build is paid exactly once per scheduler.
    const service::JobReport report = sched.wait(id);
    if (report.status == service::JobStatus::kDone) ++cell.done;
  }
  cell.seconds = seconds_between(t0, now());
  const service::ServiceStats stats = sched.stats();
  cell.failed = stats.failed;
  cell.retried = stats.retries;
  cell.faults = stats.job_faults;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "resilience");

  const std::size_t jobs = env::get_uint("RAMR_BENCH_JOBS", 24);
  const std::size_t scale = env::get_uint("RAMR_BENCH_SCALE", 4096);
  const std::size_t retry_budget = env::get_uint("RAMR_BENCH_RETRIES", 3);

  synth::SynthApp app;
  synth::SynthParams input;
  input.elements = std::max<std::size_t>(20'000, 40'000'000 / scale);
  input.keys = 64;
  app.container_keys = input.keys;

  bench::banner("Goodput under injected job-boundary faults",
                "resilience extension; N=" + std::to_string(jobs) +
                    " jobs per cell on " + topo::host().name());

  stats::Table table({"fault_p", "retries", "done", "failed", "job_retries",
                      "injected", "goodput_jobs_s", "relative"});
  double baseline = 0.0;
  for (const double fault_p : {0.0, 0.01, 0.05}) {
    for (const std::size_t retries : {std::size_t{0}, retry_budget}) {
      const Cell cell = run_stream(fault_p, retries, jobs, app, input);
      if (baseline == 0.0) baseline = cell.goodput();
      table.add_row({stats::Table::fmt(fault_p, 2),
                     std::to_string(cell.retries),
                     std::to_string(cell.done), std::to_string(cell.failed),
                     std::to_string(cell.retried),
                     std::to_string(cell.faults),
                     stats::Table::fmt(cell.goodput(), 2),
                     stats::Table::fmt(cell.goodput() / baseline, 2)});
      // Sanity: nothing but done/failed may happen to a serial stream, and
      // with retries on, a failure implies an exhausted budget.
      if (cell.done + cell.failed != jobs) {
        std::cerr << "lost jobs: done=" << cell.done
                  << " failed=" << cell.failed << " of " << jobs << '\n';
        return 1;
      }
      if (fault_p == 0.0 && cell.done != jobs) {
        std::cerr << "fault-free stream must complete every job\n";
        return 1;
      }
    }
  }
  bench::print(table);
  return 0;
}
