// Ablation (paper Sec. III-A): "a maximum capacity of five thousand
// elements achieves near-optimal (within 2%) performance across all
// test-cases" — queue-capacity sweep per app.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "ablation_capacity");
  bench::banner("SPSC queue capacity sweep (Haswell model, default "
                "containers, large inputs; times in ms)",
                "Sec. III-A design claim");

  const std::size_t capacities[] = {512, 1000, 2000, 5000, 10000, 20000, 50000};
  stats::Table table({"app", "512", "1000", "2000", "5000", "10000", "20000",
                      "50000", "5000 vs best"});
  for (AppId app : kAllApps) {
    const auto& machine = bench::machine_of(PlatformId::kHaswell);
    const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                       PlatformId::kHaswell, SizeClass::kLarge);
    sim::RamrConfig cfg = sim::tuned_config(machine, w, sim::RamrConfig{.batch = 500});
    std::vector<std::string> row{app_full_name(app)};
    double at5000 = 0.0;
    double best = 1e300;
    for (std::size_t cap : capacities) {
      cfg.queue_capacity = cap;
      const double t = sim::simulate_ramr(machine, w, cfg).phases.total();
      row.push_back(stats::Table::fmt(t * 1e3, 2));
      if (cap == 5000) at5000 = t;
      best = std::min(best, t);
    }
    row.push_back("+" + stats::Table::fmt(100.0 * (at5000 - best) / best, 2) +
                  "%");
    table.add_row(std::move(row));
  }
  bench::print(table);
  std::cout << "\n(paper: 5000 elements within 2% of optimal across all "
               "test-cases)\n";
  return 0;
}
