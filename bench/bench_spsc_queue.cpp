// Microbenchmarks of the SPSC ring (google-benchmark): single-threaded
// push/pop cost, batched vs element-wise consumption, capacity effects, and
// the fixed ring vs the mutex-based dynamic queue (the paper's Sec. III-A
// rationale for static allocation).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "spsc/dynamic_queue.hpp"
#include "spsc/lamport.hpp"
#include "spsc/ring.hpp"

namespace {

using ramr::spsc::DynamicQueue;
using ramr::spsc::LamportQueue;
using ramr::spsc::Ring;

void BM_RingPushPop(benchmark::State& state) {
  Ring<std::uint64_t> ring(static_cast<std::size_t>(state.range(0)));
  std::uint64_t v = 0;
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(v++));
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingPushPop)->Arg(64)->Arg(5000)->Arg(65536);

void BM_RingBatchedConsume(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  Ring<std::uint64_t> ring(8192);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::uint64_t v = 0;
    while (ring.try_push(v)) ++v;
    state.ResumeTiming();
    while (ring.consume_batch(
               [&](std::span<std::uint64_t> block) {
                 for (std::uint64_t x : block) sink += x;
               },
               batch) > 0) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_RingBatchedConsume)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_RingElementwisePop(benchmark::State& state) {
  Ring<std::uint64_t> ring(8192);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::uint64_t v = 0;
    while (ring.try_push(v)) ++v;
    state.ResumeTiming();
    std::uint64_t out;
    while (ring.try_pop(out)) sink += out;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_RingElementwisePop);

// The plain Lamport queue (no cached indices): every operation reads the
// opposite side's control variable — the baseline of the paper's "several
// SPSC buffers" comparison.
void BM_LamportPushPop(benchmark::State& state) {
  LamportQueue<std::uint64_t> q(static_cast<std::size_t>(state.range(0)));
  std::uint64_t v = 0;
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push(std::uint64_t{v++}));
    benchmark::DoNotOptimize(q.try_pop(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LamportPushPop)->Arg(5000);

// Concurrent producer/consumer throughput: the measurement the paper used
// to choose its SPSC implementation (Sec. III-A). One producer thread, the
// benchmark thread consumes.
template <typename Queue>
void concurrent_transfer(benchmark::State& state, Queue& q,
                         std::size_t elements) {
  for (auto _ : state) {
    std::atomic<bool> done{false};
    std::thread producer([&] {
      for (std::uint64_t i = 0; i < elements; ++i) {
        while (!q.try_push(std::uint64_t{i})) {
          std::this_thread::yield();
        }
      }
      done.store(true);
    });
    std::uint64_t sink = 0;
    std::uint64_t out;
    std::uint64_t received = 0;
    while (received < elements) {
      if (q.try_pop(out)) {
        sink += out;
        ++received;
      } else if (!done.load()) {
        std::this_thread::yield();
      }
    }
    producer.join();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elements));
}

void BM_RingConcurrent(benchmark::State& state) {
  Ring<std::uint64_t> q(5000);
  concurrent_transfer(state, q, 100000);
}
BENCHMARK(BM_RingConcurrent)->Unit(benchmark::kMillisecond);

void BM_LamportConcurrent(benchmark::State& state) {
  LamportQueue<std::uint64_t> q(5000);
  concurrent_transfer(state, q, 100000);
}
BENCHMARK(BM_LamportConcurrent)->Unit(benchmark::kMillisecond);

void BM_DynamicQueuePushPop(benchmark::State& state) {
  DynamicQueue<std::uint64_t> q(static_cast<std::size_t>(state.range(0)));
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push(v++));
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DynamicQueuePushPop)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
