// Microbenchmarks of the SPSC ring: a deterministic producer-batching
// counter study (control-variable traffic of try_push_batch vs element-wise
// try_push, the Sec. III-A batching argument applied to the producer side),
// a placed-vs-heap slot-storage section (RAMR_MEM page backing), and the
// google-benchmark micro harness (push/pop cost, batched consume, dynamic
// queue baseline) from the paper's SPSC selection study.
//
// `--json[=path]` mirrors the deterministic sections into
// BENCH_spsc_queue.json (ramr-bench-v1) via bench_util.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "mem/layer.hpp"
#include "mem/pages.hpp"
#include "spsc/dynamic_queue.hpp"
#include "spsc/lamport.hpp"
#include "spsc/ring.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"

namespace {

using ramr::spsc::DynamicQueue;
using ramr::spsc::LamportQueue;
using ramr::spsc::Ring;

// ---------- deterministic sections (mirrored into the JSON report) -----------

// Moves `total` elements through a capacity-1024 ring in produce-then-drain
// cycles and returns the producer-side counters. `block` == 0 is the
// element-wise baseline; otherwise the producer stages `block` elements and
// publishes them with try_push_batch. Single-threaded on purpose: the
// counters (tail stores, cached-head refreshes, failed pushes) are exact
// and host-independent, unlike wall-clock on a loaded CI box.
ramr::spsc::ProducerStats batching_counters(std::size_t block,
                                            std::uint64_t total) {
  Ring<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> staging;
  std::uint64_t next = 0;
  std::uint64_t out;
  std::uint64_t sink = 0;
  while (next < total) {
    if (block == 0) {
      while (next < total && ring.try_push(std::uint64_t{next})) ++next;
    } else {
      while (next < total) {
        staging.clear();
        for (std::size_t i = 0; i < block && next < total; ++i) {
          staging.push_back(next++);
        }
        std::span<std::uint64_t> rest(staging);
        while (!rest.empty()) {
          const std::size_t n = ring.try_push_batch(rest);
          if (n == 0) break;
          rest = rest.subspan(n);
        }
        if (!rest.empty()) {  // ring full: un-consume the leftovers
          next -= rest.size();
          break;
        }
      }
    }
    while (ring.try_pop(out)) sink += out;
  }
  benchmark::DoNotOptimize(sink);
  return ring.producer_stats();
}

// Steady-state backpressure: the consumer frees only 16 slots between
// producer bursts (a busy combiner), so the producer keeps running into the
// full boundary. An element-wise producer must *fail* a push (refresh +
// failed-push) to discover each boundary; try_push_batch discovers it via
// partial acceptance — one refresh, zero failed pushes.
ramr::spsc::ProducerStats backpressure_counters(std::size_t block,
                                                std::uint64_t total) {
  Ring<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> staging;
  std::uint64_t next = 0;
  std::uint64_t sink = 0;
  while (next < total) {
    ring.consume_batch(
        [&](std::span<std::uint64_t> b) {
          for (std::uint64_t x : b) sink += x;
        },
        16);
    if (block == 0) {
      while (next < total && ring.try_push(std::uint64_t{next})) ++next;
    } else {
      staging.clear();
      for (std::size_t i = 0; i < block && next < total; ++i) {
        staging.push_back(next++);
      }
      const std::size_t n =
          ring.try_push_batch(std::span<std::uint64_t>(staging));
      next -= staging.size() - n;  // un-consume the unaccepted suffix
    }
  }
  benchmark::DoNotOptimize(sink);
  return ring.producer_stats();
}

void add_counter_rows(ramr::stats::Table& table, std::uint64_t total,
                      ramr::spsc::ProducerStats (*run)(std::size_t,
                                                       std::uint64_t)) {
  for (std::size_t block : {std::size_t{0}, std::size_t{8}, std::size_t{32},
                            std::size_t{128}, std::size_t{512}}) {
    const auto stats = run(block, total);
    // Element-wise publishes one release store per element; a batch
    // publishes one per try_push_batch call.
    const std::size_t tail_stores =
        block == 0 ? stats.pushes : stats.push_batches;
    table.add_row({block == 0 ? "1 (element-wise)" : std::to_string(block),
                   std::to_string(tail_stores),
                   std::to_string(stats.head_refreshes),
                   std::to_string(stats.failed_pushes),
                   ramr::stats::Table::fmt(static_cast<double>(tail_stores) /
                                               static_cast<double>(total),
                                           4)});
  }
}

void producer_batching_study() {
  constexpr std::uint64_t kTotal = 1 << 20;
  ramr::bench::banner(
      "Producer-side batching: control-variable traffic per element "
      "(fill-then-drain)",
      "Sec. III-A, applied to the producer");
  ramr::stats::Table fill({"emit batch", "tail stores", "head refreshes",
                           "failed pushes", "stores/elem"});
  add_counter_rows(fill, kTotal, batching_counters);
  ramr::bench::print(fill);

  ramr::bench::banner(
      "Producer-side batching under backpressure (16 slots drained per "
      "burst)",
      "Sec. III-A, applied to the producer");
  ramr::stats::Table bp({"emit batch", "tail stores", "head refreshes",
                         "failed pushes", "stores/elem"});
  add_counter_rows(bp, kTotal, backpressure_counters);
  ramr::bench::print(bp);
}

void placed_storage_study() {
  ramr::bench::banner(
      "Ring slot storage: heap vs RAMR_MEM page-backed placement",
      "Sec. III-A static allocation rationale");
  const auto topo = ramr::topo::host();
  const auto plan =
      ramr::topo::make_plan(topo, ramr::PinPolicy::kOsDefault, 2, 1);
  ramr::stats::Table table(
      {"storage", "slot bytes", "mapped", "hugepage", "node-bound"});

  {
    Ring<std::uint64_t> heap_ring(65536);
    table.add_row({"heap (default)",
                   std::to_string(heap_ring.capacity() * sizeof(std::uint64_t)),
                   "-", "-", "-"});
  }
  for (const ramr::MemMode mode :
       {ramr::MemMode::kArena, ramr::MemMode::kNuma}) {
    ramr::mem::MemoryLayer layer(mode, topo, plan);
    {
      Ring<std::uint64_t> placed(65536, layer.ring_storage(
                                            layer.node_of_combiner(0)));
      placed.prefault();
    }
    const ramr::mem::LayerStats stats = layer.end_run();
    const auto& caps = ramr::mem::page_caps();
    table.add_row({"placed mode=" + stats.mode,
                   std::to_string(std::size_t{65536} * sizeof(std::uint64_t)),
                   caps.mmap_ok ? "yes" : "no",
                   stats.hugepages ? "yes" : "no",
                   stats.mbind ? "yes" : "no"});
  }
  ramr::bench::print(table);
}

// ---------- google-benchmark micro harness -----------------------------------

void BM_RingPushPop(benchmark::State& state) {
  Ring<std::uint64_t> ring(static_cast<std::size_t>(state.range(0)));
  std::uint64_t v = 0;
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(v++));
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingPushPop)->Arg(64)->Arg(5000)->Arg(65536);

// Same round-trip on a RAMR_MEM-placed slot array (huge pages when the host
// grants them) — the placed-vs-heap wall-clock companion of the table above.
void BM_RingPushPopPlaced(benchmark::State& state) {
  const auto topo = ramr::topo::host();
  const auto plan =
      ramr::topo::make_plan(topo, ramr::PinPolicy::kOsDefault, 2, 1);
  ramr::mem::MemoryLayer layer(ramr::MemMode::kArena, topo, plan);
  {
    Ring<std::uint64_t> ring(static_cast<std::size_t>(state.range(0)),
                             layer.ring_storage(-1));
    ring.prefault();
    std::uint64_t v = 0;
    std::uint64_t out = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(ring.try_push(v++));
      benchmark::DoNotOptimize(ring.try_pop(out));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  }
  layer.end_run();
}
BENCHMARK(BM_RingPushPopPlaced)->Arg(5000)->Arg(65536);

void BM_RingBatchedConsume(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  Ring<std::uint64_t> ring(8192);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::uint64_t v = 0;
    while (ring.try_push(v)) ++v;
    state.ResumeTiming();
    while (ring.consume_batch(
               [&](std::span<std::uint64_t> block) {
                 for (std::uint64_t x : block) sink += x;
               },
               batch) > 0) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_RingBatchedConsume)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

// Producer-side mirror of BM_RingBatchedConsume: publish a full ring in
// blocks of `batch` (1 = element-wise try_push), then drain.
void BM_RingBatchedPush(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  Ring<std::uint64_t> ring(8192);
  std::vector<std::uint64_t> staging(batch == 1 ? 0 : batch);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    if (batch == 1) {
      std::uint64_t v = 0;
      while (ring.try_push(std::uint64_t{v})) ++v;
    } else {
      for (;;) {
        for (std::size_t i = 0; i < batch; ++i) {
          staging[i] = static_cast<std::uint64_t>(i);
        }
        std::span<std::uint64_t> rest(staging);
        while (!rest.empty()) {
          const std::size_t n = ring.try_push_batch(rest);
          if (n == 0) break;
          rest = rest.subspan(n);
        }
        if (!rest.empty()) break;  // full
      }
    }
    state.PauseTiming();
    std::uint64_t out;
    while (ring.try_pop(out)) sink += out;
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_RingBatchedPush)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(1024);

void BM_RingElementwisePop(benchmark::State& state) {
  Ring<std::uint64_t> ring(8192);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::uint64_t v = 0;
    while (ring.try_push(v)) ++v;
    state.ResumeTiming();
    std::uint64_t out;
    while (ring.try_pop(out)) sink += out;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_RingElementwisePop);

// The plain Lamport queue (no cached indices): every operation reads the
// opposite side's control variable — the baseline of the paper's "several
// SPSC buffers" comparison.
void BM_LamportPushPop(benchmark::State& state) {
  LamportQueue<std::uint64_t> q(static_cast<std::size_t>(state.range(0)));
  std::uint64_t v = 0;
  std::uint64_t out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push(std::uint64_t{v++}));
    benchmark::DoNotOptimize(q.try_pop(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LamportPushPop)->Arg(5000);

// Concurrent producer/consumer throughput: the measurement the paper used
// to choose its SPSC implementation (Sec. III-A). One producer thread, the
// benchmark thread consumes.
template <typename Queue>
void concurrent_transfer(benchmark::State& state, Queue& q,
                         std::size_t elements) {
  for (auto _ : state) {
    std::atomic<bool> done{false};
    std::thread producer([&] {
      for (std::uint64_t i = 0; i < elements; ++i) {
        while (!q.try_push(std::uint64_t{i})) {
          std::this_thread::yield();
        }
      }
      done.store(true);
    });
    std::uint64_t sink = 0;
    std::uint64_t out;
    std::uint64_t received = 0;
    while (received < elements) {
      if (q.try_pop(out)) {
        sink += out;
        ++received;
      } else if (!done.load()) {
        std::this_thread::yield();
      }
    }
    producer.join();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elements));
}

void BM_RingConcurrent(benchmark::State& state) {
  Ring<std::uint64_t> q(5000);
  concurrent_transfer(state, q, 100000);
}
BENCHMARK(BM_RingConcurrent)->Unit(benchmark::kMillisecond);

void BM_LamportConcurrent(benchmark::State& state) {
  LamportQueue<std::uint64_t> q(5000);
  concurrent_transfer(state, q, 100000);
}
BENCHMARK(BM_LamportConcurrent)->Unit(benchmark::kMillisecond);

void BM_DynamicQueuePushPop(benchmark::State& state) {
  DynamicQueue<std::uint64_t> q(static_cast<std::size_t>(state.range(0)));
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push(v++));
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DynamicQueuePushPop)->Arg(5000);

}  // namespace

// Custom main: the deterministic sections run first (and land in the JSON
// report when --json is given); the google-benchmark harness then consumes
// the remaining flags, with --json stripped so it doesn't reject it.
int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "spsc_queue");
  producer_batching_study();
  placed_storage_study();

  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) continue;
    bench_args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
