// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same rows/series the paper's table or figure
// reports. Figure benches are driven by the platform simulator (the paper's
// machines are modelled, not assumed — see DESIGN.md); bench_native_runtime
// measures real wall-clock on the host.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/env.hpp"
#include "sim/machine.hpp"
#include "sim/model.hpp"
#include "sim/workload.hpp"
#include "stats/table.hpp"

namespace ramr::bench {

// RAMR_BENCH_CSV=1 switches every bench table to CSV (for plotting).
inline bool csv_mode() {
  static const bool on = env::get_bool("RAMR_BENCH_CSV", false);
  return on;
}

inline void print(const stats::Table& table) {
  if (csv_mode()) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void print_series(const std::string& x_label,
                         const std::vector<stats::Series>& series,
                         int precision = 3) {
  if (csv_mode()) {
    stats::Table t([&] {
      std::vector<std::string> header{x_label};
      for (const auto& s : series) header.push_back(s.name);
      return header;
    }());
    if (!series.empty()) {
      for (std::size_t i = 0; i < series.front().x.size(); ++i) {
        std::vector<std::string> row{
            stats::Table::fmt(series.front().x[i], precision)};
        for (const auto& s : series) {
          row.push_back(stats::Table::fmt(s.y[i], precision));
        }
        t.add_row(std::move(row));
      }
    }
    t.print_csv(std::cout);
  } else {
    stats::print_series(std::cout, x_label, series, precision);
  }
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "================================================================\n";
}

// Default batch sizes the paper found best per platform (Sec. IV-C).
inline std::size_t default_batch(apps::PlatformId platform) {
  return platform == apps::PlatformId::kHaswell ? 1000 : 200;
}

inline const sim::SimMachine& machine_of(apps::PlatformId platform) {
  static const sim::SimMachine hwl = sim::haswell();
  static const sim::SimMachine phi = sim::xeon_phi();
  return platform == apps::PlatformId::kHaswell ? hwl : phi;
}

// RAMR-vs-Phoenix++ speedup with the per-workload tuned ratio.
inline double tuned_speedup(apps::PlatformId platform,
                            const sim::SimWorkload& workload) {
  const sim::SimMachine& m = machine_of(platform);
  sim::RamrConfig base;
  base.batch = default_batch(platform);
  return sim::ramr_speedup(m, workload, sim::tuned_config(m, workload, base));
}

}  // namespace ramr::bench
