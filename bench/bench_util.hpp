// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same rows/series the paper's table or figure
// reports. Figure benches are driven by the platform simulator (the paper's
// machines are modelled, not assumed — see DESIGN.md); bench_native_runtime
// measures real wall-clock on the host.
//
// Structured output: a bench that calls init(argc, argv, "<name>") first
// thing in main() accepts `--json[=path]` — the banner/print/print_series
// calls are then mirrored into a machine-readable report written to
// BENCH_<name>.json (or the given path) at exit, so CI and plotting scripts
// consume the same numbers the terminal shows without scraping tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "sim/machine.hpp"
#include "sim/model.hpp"
#include "sim/workload.hpp"
#include "stats/table.hpp"
#include "telemetry/json.hpp"

namespace ramr::bench {

// RAMR_BENCH_CSV=1 switches every bench table to CSV (for plotting).
inline bool csv_mode() {
  static const bool on = env::get_bool("RAMR_BENCH_CSV", false);
  return on;
}

// Mirror of the bench's printed output, grouped by banner() section and
// serialised as `{"schema": "ramr-bench-v1", "sections": [...]}` with one
// JSON table/series entry per print()/print_series() call.
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  // Enables capture and registers the atexit writer (once). `path` is where
  // write() puts the report.
  void enable(std::string bench, std::string path) {
    bench_ = std::move(bench);
    path_ = std::move(path);
    if (!enabled_) {
      enabled_ = true;
      std::atexit([] { JsonReport::instance().write(); });
    }
  }

  bool enabled() const { return enabled_; }

  void add_banner(const std::string& title, const std::string& paper_ref) {
    if (!enabled_) return;
    sections_.push_back(Section{title, paper_ref, {}, {}});
  }

  void add_table(const stats::Table& table) {
    if (!enabled_) return;
    TableDump dump;
    dump.header = table.header();
    dump.rows.reserve(table.rows());
    for (std::size_t i = 0; i < table.rows(); ++i) {
      dump.rows.push_back(table.row(i));
    }
    current().tables.push_back(std::move(dump));
  }

  void add_series(const std::string& x_label,
                  const std::vector<stats::Series>& series) {
    if (!enabled_) return;
    current().series.push_back(SeriesDump{x_label, series});
  }

  // Idempotent; normally invoked by the atexit hook enable() registered.
  void write() {
    if (!enabled_ || written_) return;
    written_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path_.c_str());
      return;
    }
    telemetry::JsonWriter w(out);
    w.begin_object();
    w.field("schema", "ramr-bench-v1");
    w.field("bench", bench_);
    w.begin_array("sections");
    for (const Section& section : sections_) {
      write_section(w, section);
    }
    w.end_array();
    w.end_object();
    out << '\n';
  }

 private:
  struct TableDump {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };
  struct SeriesDump {
    std::string x_label;
    std::vector<stats::Series> series;
  };
  struct Section {
    std::string title;
    std::string paper_ref;
    std::vector<TableDump> tables;
    std::vector<SeriesDump> series;
  };

  JsonReport() = default;

  // Output printed before the first banner() lands in an untitled section.
  Section& current() {
    if (sections_.empty()) sections_.push_back(Section{});
    return sections_.back();
  }

  static void write_section(telemetry::JsonWriter& w, const Section& section) {
    w.begin_object();
    w.field("title", section.title);
    w.field("paper_ref", section.paper_ref);
    w.begin_array("tables");
    for (const TableDump& table : section.tables) {
      w.begin_object();
      w.begin_array("header");
      for (const std::string& cell : table.header) w.element(cell);
      w.end_array();
      w.begin_array("rows");
      for (const std::vector<std::string>& row : table.rows) {
        w.begin_array();
        for (const std::string& cell : row) w.element(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.begin_array("series");
    for (const SeriesDump& group : section.series) {
      w.begin_object();
      w.field("x_label", group.x_label);
      w.begin_array("series");
      for (const stats::Series& s : group.series) {
        w.begin_object();
        w.field("name", s.name);
        w.begin_array("points");
        const std::size_t n = s.x.size() < s.y.size() ? s.x.size()
                                                      : s.y.size();
        for (std::size_t i = 0; i < n; ++i) {
          w.begin_array();
          w.element(s.x[i]);
          w.element(s.y[i]);
          w.end_array();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  bool enabled_ = false;
  bool written_ = false;
  std::string bench_;
  std::string path_;
  std::vector<Section> sections_;
};

// Parses `--json[=path]`; call first thing in main(). Other arguments are
// left alone so benches stay usable under wrappers that pass extra flags.
inline void init(int argc, char** argv, const std::string& name) {
  const std::string kFlag = "--json";
  const std::string kPrefix = "--json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == kFlag) {
      JsonReport::instance().enable(name, "BENCH_" + name + ".json");
    } else if (arg.rfind(kPrefix, 0) == 0) {
      JsonReport::instance().enable(name, arg.substr(kPrefix.size()));
    }
  }
}

inline void print(const stats::Table& table) {
  JsonReport::instance().add_table(table);
  if (csv_mode()) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void print_series(const std::string& x_label,
                         const std::vector<stats::Series>& series,
                         int precision = 3) {
  JsonReport::instance().add_series(x_label, series);
  if (csv_mode()) {
    stats::Table t([&] {
      std::vector<std::string> header{x_label};
      for (const auto& s : series) header.push_back(s.name);
      return header;
    }());
    if (!series.empty()) {
      for (std::size_t i = 0; i < series.front().x.size(); ++i) {
        std::vector<std::string> row{
            stats::Table::fmt(series.front().x[i], precision)};
        for (const auto& s : series) {
          row.push_back(stats::Table::fmt(s.y[i], precision));
        }
        t.add_row(std::move(row));
      }
    }
    t.print_csv(std::cout);
  } else {
    stats::print_series(std::cout, x_label, series, precision);
  }
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  JsonReport::instance().add_banner(title, paper_ref);
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "================================================================\n";
}

// Default batch sizes the paper found best per platform (Sec. IV-C).
inline std::size_t default_batch(apps::PlatformId platform) {
  return platform == apps::PlatformId::kHaswell ? 1000 : 200;
}

inline const sim::SimMachine& machine_of(apps::PlatformId platform) {
  static const sim::SimMachine hwl = sim::haswell();
  static const sim::SimMachine phi = sim::xeon_phi();
  return platform == apps::PlatformId::kHaswell ? hwl : phi;
}

// RAMR-vs-Phoenix++ speedup with the per-workload tuned ratio.
inline double tuned_speedup(apps::PlatformId platform,
                            const sim::SimWorkload& workload) {
  const sim::SimMachine& m = machine_of(platform);
  sim::RamrConfig base;
  base.batch = default_batch(platform);
  return sim::ramr_speedup(m, workload, sim::tuned_config(m, workload, base));
}

}  // namespace ramr::bench
