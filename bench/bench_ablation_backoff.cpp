// Ablation (paper Sec. III-A, "Sleep on failed push"): sleeping mappers vs
// busy-waiting mappers when the pipeline is combiner-limited. A spinning
// blocked mapper burns issue slots of the (SMT-shared) core its combiner
// needs; a sleeping one frees them.
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

int main() {
  bench::banner("Sleep-on-failed-push vs busy-wait (combiner-limited "
                "workloads, Haswell model)",
                "Sec. III-A design claim");

  stats::Table table({"workload", "busy-wait (ms)", "sleep (ms)",
                      "sleep speedup", "bottleneck"});
  for (AppId app : kAllApps) {
    for (ContainerFlavor flavor :
         {ContainerFlavor::kDefault, ContainerFlavor::kHash}) {
      const auto w = sim::suite_workload(app, flavor, PlatformId::kHaswell,
                                         SizeClass::kLarge);
      const auto& machine = bench::machine_of(PlatformId::kHaswell);
      sim::RamrConfig cfg = sim::tuned_config(machine, w, sim::RamrConfig{.batch = 1000});
      cfg.sleep_on_full = false;
      const auto spin = sim::simulate_ramr(machine, w, cfg);
      cfg.sleep_on_full = true;
      const auto sleep = sim::simulate_ramr(machine, w, cfg);
      table.add_row(
          {std::string(app_name(app)) + "/" + to_string(flavor),
           stats::Table::fmt(spin.phases.total() * 1e3, 2),
           stats::Table::fmt(sleep.phases.total() * 1e3, 2),
           stats::Table::fmt(spin.phases.total() / sleep.phases.total(), 3),
           spin.mapper_limited ? "mappers" : "combiner"});
    }
  }
  bench::print(table);
  std::cout << "\nSleeping only matters when producers block (combiner-"
               "limited rows); it never hurts.\n";
  return 0;
}
