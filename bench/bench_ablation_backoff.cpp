// Ablation (paper Sec. III-A, "Sleep on failed push"): sleeping mappers vs
// busy-waiting mappers when the pipeline is combiner-limited. A spinning
// blocked mapper burns issue slots of the (SMT-shared) core its combiner
// needs; a sleeping one frees them.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "core/runtime.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

// Tiny native workload for the policy comparison below: modulo-count over a
// vector, one record per element, so a small ring genuinely backpressures.
struct ModCountBenchApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type =
      containers::FixedArrayContainer<std::uint64_t,
                                      containers::CountCombiner>;
  std::size_t buckets = 64;
  std::size_t chunk = 256;

  std::size_t num_splits(const input_type& in) const {
    return (in.size() + chunk - 1) / chunk;
  }
  container_type make_container() const { return container_type(buckets); }
  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * chunk;
    const std::size_t end = std::min(begin + chunk, in.size());
    for (std::size_t i = begin; i < end; ++i) {
      emit(in[i] % buckets, std::uint64_t{1});
    }
  }
};

// One native pipelined run under the given backoff policy; reports the
// RunResult sleep/failed-push instrumentation.
void native_policy_row(stats::Table& table, const char* label,
                       BackoffKind kind,
                       const ModCountBenchApp::input_type& input) {
  RuntimeConfig cfg;
  cfg.num_mappers = 3;
  cfg.num_combiners = 1;  // combiner-limited on purpose
  cfg.pin_policy = PinPolicy::kOsDefault;
  cfg.queue_capacity = 16;  // heavy backpressure
  cfg.batch_size = 8;
  cfg.backoff = kind;
  cfg.sleep_micros = 5;
  cfg.sleep_cap_micros = 500;
  core::Runtime<ModCountBenchApp> rt(topo::host(), cfg);
  const auto result = rt.run(ModCountBenchApp{}, input);
  table.add_row({label,
                 stats::Table::fmt(result.timers.total() * 1e3, 2),
                 std::to_string(result.queue_failed_pushes),
                 std::to_string(result.backoff_sleeps)});
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "ablation_backoff");
  bench::banner("Sleep-on-failed-push vs busy-wait (combiner-limited "
                "workloads, Haswell model)",
                "Sec. III-A design claim");

  stats::Table table({"workload", "busy-wait (ms)", "sleep (ms)",
                      "sleep speedup", "bottleneck"});
  for (AppId app : kAllApps) {
    for (ContainerFlavor flavor :
         {ContainerFlavor::kDefault, ContainerFlavor::kHash}) {
      const auto w = sim::suite_workload(app, flavor, PlatformId::kHaswell,
                                         SizeClass::kLarge);
      const auto& machine = bench::machine_of(PlatformId::kHaswell);
      sim::RamrConfig cfg = sim::tuned_config(machine, w, sim::RamrConfig{.batch = 1000});
      cfg.sleep_on_full = false;
      const auto spin = sim::simulate_ramr(machine, w, cfg);
      cfg.sleep_on_full = true;
      const auto sleep = sim::simulate_ramr(machine, w, cfg);
      table.add_row(
          {std::string(app_name(app)) + "/" + to_string(flavor),
           stats::Table::fmt(spin.phases.total() * 1e3, 2),
           stats::Table::fmt(sleep.phases.total() * 1e3, 2),
           stats::Table::fmt(spin.phases.total() / sleep.phases.total(), 3),
           spin.mapper_limited ? "mappers" : "combiner"});
    }
  }
  bench::print(table);
  std::cout << "\nSleeping only matters when producers block (combiner-"
               "limited rows); it never hurts.\n";

  // Native policy comparison on the real pipeline: a combiner-limited run
  // with a deliberately tiny ring, instrumented with the RunResult sleep
  // counter. The exponential ladder should resolve the same backpressure
  // with far fewer wakeups than the fixed-period policy.
  bench::banner("Native backoff policies (tiny ring, 3 mappers : 1 combiner)",
                "busy vs fixed-sleep vs exponential ladder");
  std::vector<std::uint64_t> input(100000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = i * 2654435761u;
  }
  stats::Table native({"policy", "total (ms)", "failed pushes", "sleeps"});
  native_policy_row(native, "busy-wait", BackoffKind::kBusyWait, input);
  native_policy_row(native, "fixed sleep", BackoffKind::kSleep, input);
  native_policy_row(native, "exponential", BackoffKind::kExponential, input);
  bench::print(native);
  std::cout << "\n'sleeps' is RunResult::backoff_sleeps — actual sleep()"
               " calls performed by producer+consumer backoffs.\n";
  return 0;
}
