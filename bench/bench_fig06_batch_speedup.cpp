// Fig. 6: speedup of the batched consume method over element-wise
// consumption (batch = 1), per application and platform. The paper reports
// up to 3.1x on Haswell and up to 11.4x on Xeon Phi.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig06_batch_speedup");
  bench::banner("Batched consume vs element-wise consume (default "
                "containers, large inputs)",
                "Fig. 6");

  stats::Table table({"app", "HWL speedup", "HWL best batch", "PHI speedup",
                      "PHI best batch"});
  double max_hwl = 0.0;
  double max_phi = 0.0;
  for (AppId app : kAllApps) {
    std::vector<std::string> row{app_full_name(app)};
    for (PlatformId platform : {PlatformId::kHaswell, PlatformId::kXeonPhi}) {
      const auto& machine = bench::machine_of(platform);
      const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                         platform, SizeClass::kLarge);
      sim::RamrConfig cfg = sim::tuned_config(machine, w, sim::RamrConfig{});
      cfg.batch = 1;
      const double t1 = sim::simulate_ramr(machine, w, cfg).phases.total();
      double best_t = t1;
      std::size_t best_b = 1;
      for (std::size_t b : {5u,10u,20u,50u,100u,200u,500u,1000u,2000u}) {
        cfg.batch = b;
        const double t = sim::simulate_ramr(machine, w, cfg).phases.total();
        if (t < best_t) {
          best_t = t;
          best_b = b;
        }
      }
      const double gain = t1 / best_t;
      row.push_back(stats::Table::fmt(gain, 2));
      row.push_back(std::to_string(best_b));
      (platform == PlatformId::kHaswell ? max_hwl : max_phi) =
          std::max(platform == PlatformId::kHaswell ? max_hwl : max_phi, gain);
    }
    table.add_row(std::move(row));
  }
  bench::print(table);
  std::cout << "\nmax speedup: HWL " << stats::Table::fmt(max_hwl, 1)
            << "x, PHI " << stats::Table::fmt(max_phi, 1)
            << "x   (paper: up to 3.1x and 11.4x)\n";
  return 0;
}
