// Fig. 7: batch-size sensitivity — execution time per app as a function of
// the batch size, normalised to the first data point of each curve. The
// paper: all Haswell apps profit up to ~1000 elements; Xeon Phi optima fall
// between 20 and 500 because of the much smaller cache capacity per thread.
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig07_batch_sensitivity");
  bench::banner("Batch-size sensitivity (execution time normalised to the "
                "first point of each curve; lower is better)",
                "Fig. 7");

  const std::size_t batches[] = {5, 10, 20, 50, 100, 200, 500, 1000, 2000, 4000};
  for (PlatformId platform : {PlatformId::kHaswell, PlatformId::kXeonPhi}) {
    const auto& machine = bench::machine_of(platform);
    std::vector<stats::Series> series;
    std::vector<std::string> best_notes;
    for (AppId app : kAllApps) {
      const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                         platform, SizeClass::kLarge);
      sim::RamrConfig cfg = sim::tuned_config(machine, w, sim::RamrConfig{});
      stats::Series s{app_name(app), {}, {}};
      double first = 0.0;
      double best_t = 1e300;
      std::size_t best_b = 0;
      for (std::size_t b : batches) {
        cfg.batch = b;
        const double t = sim::simulate_ramr(machine, w, cfg).phases.total();
        if (first == 0.0) first = t;
        if (t < best_t) {
          best_t = t;
          best_b = b;
        }
        s.add(static_cast<double>(b), t / first);
      }
      series.push_back(std::move(s));
      best_notes.push_back(std::string(app_name(app)) + "=" +
                           std::to_string(best_b));
    }
    std::cout << "\n--- " << platform_name(platform) << " ---\n";
    bench::print_series("batch", series);
    std::cout << "optimal batch per app: ";
    for (std::size_t i = 0; i < best_notes.size(); ++i) {
      std::cout << (i == 0 ? "" : ", ") << best_notes[i];
    }
    std::cout << (platform == PlatformId::kHaswell
                      ? "   (paper: ~1000 across apps)"
                      : "   (paper: 20-500)")
              << '\n';
  }
  return 0;
}
