// Microbenchmarks of the intermediate containers (google-benchmark): emit
// throughput of the fixed array vs the fixed-size hash vs the regular hash
// container — the per-record cost difference behind the default/hash
// flavors of Figs. 8-10.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/rng.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "containers/metis_container.hpp"

namespace {

using namespace ramr::containers;

constexpr std::size_t kKeys = 768;  // histogram-like key space

void BM_FixedArrayEmit(benchmark::State& state) {
  FixedArrayContainer<std::uint64_t, CountCombiner> c(kKeys);
  ramr::Xoshiro256 rng(1);
  for (auto _ : state) {
    c.emit(rng.below(kKeys), 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FixedArrayEmit);

void BM_FixedHashEmit(benchmark::State& state) {
  FixedHashContainer<std::uint64_t, std::uint64_t, CountCombiner> c(kKeys);
  ramr::Xoshiro256 rng(1);
  for (auto _ : state) {
    c.emit(rng.below(kKeys), 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FixedHashEmit);

void BM_RegularHashEmit(benchmark::State& state) {
  HashContainer<std::uint64_t, std::uint64_t, CountCombiner> c(16);
  ramr::Xoshiro256 rng(1);
  const std::uint64_t key_space =
      static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    c.emit(rng.below(key_space), 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegularHashEmit)->Arg(768)->Arg(100000);

// Metis-style bucketed sorted-vector container (paper Sec. II related work).
void BM_MetisEmit(benchmark::State& state) {
  MetisContainer<std::uint64_t, std::uint64_t, CountCombiner> c(kKeys);
  ramr::Xoshiro256 rng(1);
  for (auto _ : state) {
    c.emit(rng.below(kKeys), 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetisEmit);

void BM_StringKeyHashEmit(benchmark::State& state) {
  HashContainer<std::string, std::uint64_t, CountCombiner> c(4096);
  ramr::Xoshiro256 rng(1);
  std::vector<std::string> words;
  for (int i = 0; i < 512; ++i) words.push_back("w" + std::to_string(i));
  for (auto _ : state) {
    c.emit(words[rng.below(512)], 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StringKeyHashEmit);

void BM_MergeContainers(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  FixedArrayContainer<std::uint64_t, CountCombiner> a(n), b(n);
  for (std::size_t k = 0; k < n; ++k) {
    a.emit(k, 1);
    b.emit(k, 2);
  }
  for (auto _ : state) {
    a.merge_from(b);
    benchmark::DoNotOptimize(a.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MergeContainers)->Arg(768)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
