// Fig. 4: the workload-aware synthetic test-suite — CPU-intensive map of
// fixed intensity, memory-intensive combine of variable intensity; run time
// for mapper:combiner ratios 3:1, 2:1 and 1:1 plus the Phoenix++ baseline.
// The paper's observation: light combine -> ratio 3 is best; moderate ->
// ratio 2; heavy -> ratio 1; and RAMR beats Phoenix++ across the sweep.
#include <iostream>

#include "bench_util.hpp"
#include "synth/synth_app.hpp"

using namespace ramr;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig04_synthetic_ratio");
  bench::banner(
      "Synthetic suite: combine-intensity sweep, CPU map x memory combine "
      "(Haswell model; run time in ms, lower is better)",
      "Fig. 4");

  const auto& machine = bench::machine_of(apps::PlatformId::kHaswell);
  stats::Series r1{"ratio 1:1", {}, {}};
  stats::Series r2{"ratio 2:1", {}, {}};
  stats::Series r3{"ratio 3:1", {}, {}};
  stats::Series phoenix{"phoenix++", {}, {}};
  stats::Series best{"best ratio", {}, {}};

  for (std::uint64_t intensity : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    synth::SynthParams params;
    params.map_kind = synth::WorkKind::kCpu;
    params.map_intensity = 24;
    params.combine_kind = synth::WorkKind::kMemory;
    params.combine_intensity = intensity;
    const auto w = sim::synth_workload(params);
    const double x = static_cast<double>(intensity);

    double best_t = 1e300;
    double best_ratio = 0.0;
    for (auto [series, ratio] :
         {std::pair{&r1, std::size_t{1}}, {&r2, std::size_t{2}},
          {&r3, std::size_t{3}}}) {
      sim::RamrConfig cfg;
      cfg.ratio = ratio;
      cfg.batch = 1000;
      const double t = sim::simulate_ramr(machine, w, cfg).phases.total();
      series->add(x, t * 1e3);
      if (t < best_t) {
        best_t = t;
        best_ratio = static_cast<double>(ratio);
      }
    }
    phoenix.add(x, sim::simulate_phoenix(machine, w).phases.total() * 1e3);
    best.add(x, best_ratio);
  }

  bench::print_series("combine intensity", {r1, r2, r3, phoenix});
  std::cout << "\nbest ratio per intensity (paper: 3 -> 2 -> 1 as the "
               "combine workload grows):\n";
  bench::print_series("combine intensity", {best}, 0);
  return 0;
}
