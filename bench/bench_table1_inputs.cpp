// Table I: input sizes used in the experimental evaluation — prints the
// registry and validates that the generator bridges produce inputs of the
// advertised (scaled) sizes.
#include <iostream>

#include "apps/suite.hpp"
#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "table1_inputs");
  bench::banner("Input sizes per application, platform and size class",
                "Table I");

  stats::Table table({"test-case", "small HWL", "small PHI", "medium HWL",
                      "medium PHI", "large HWL", "large PHI"});
  for (AppId app : kAllApps) {
    std::vector<std::string> row{app_full_name(app)};
    for (SizeClass size : kAllSizes) {
      for (PlatformId platform :
           {PlatformId::kHaswell, PlatformId::kXeonPhi}) {
        row.push_back(table1_input(app, platform, size).describe(app));
      }
    }
    table.add_row(std::move(row));
  }
  bench::print(table);

  // Validate the generator bridges on heavily scaled-down inputs (full
  // Table I sizes are for the modelled machines, not a CI laptop).
  const std::uint64_t divisor = 8192;
  std::cout << "\nGenerator validation (sizes divided by " << divisor
            << "):\n";
  const auto wc = make_wc_input(
      table1_input(AppId::kWordCount, PlatformId::kHaswell, SizeClass::kSmall),
      divisor);
  std::cout << "  wc:  " << wc.text.size() << " bytes of text\n";
  const auto hg = make_hg_input(
      table1_input(AppId::kHistogram, PlatformId::kHaswell, SizeClass::kSmall),
      divisor);
  std::cout << "  hg:  " << hg.bytes.size() << " pixel bytes\n";
  const auto lr = make_lr_input(table1_input(AppId::kLinearRegression,
                                             PlatformId::kHaswell,
                                             SizeClass::kSmall),
                                divisor);
  std::cout << "  lr:  " << lr.points.size() << " points\n";
  const auto km = make_km_input(
      table1_input(AppId::kKMeans, PlatformId::kHaswell, SizeClass::kSmall),
      divisor);
  std::cout << "  km:  " << km.points.size() << " points, "
            << km.centroids.size() << " clusters\n";
  const auto pca = make_pca_input(
      table1_input(AppId::kPca, PlatformId::kHaswell, SizeClass::kSmall),
      divisor);
  std::cout << "  pca: " << pca.matrix.rows << "x" << pca.matrix.cols
            << " matrix\n";
  const auto mm = make_mm_input(table1_input(AppId::kMatrixMultiply,
                                             PlatformId::kHaswell,
                                             SizeClass::kSmall),
                                divisor);
  std::cout << "  mm:  " << mm.a.rows << "x" << mm.a.cols << " * " << mm.b.rows
            << "x" << mm.b.cols << " matrices\n";
  return 0;
}
