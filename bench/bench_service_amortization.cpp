// Service-mode amortization: a stream of identical MapReduce jobs executed
// (a) cold — a fresh core::Runtime per job, paying thread spawn + pinning +
// arena setup every time — and (b) through a persistent service::Scheduler
// whose PoolDepot serves every job after the first from a warm pool set.
//
// Wall-clock numbers are host-dependent (this is a native bench, like
// bench_native_runtime); the pool-construction accounting at the end is
// deterministic: a stream of N same-shape jobs must build exactly 1 pool
// set and reuse it N-1 times.
#include <iostream>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timing.hpp"
#include "core/runtime.hpp"
#include "service/scheduler.hpp"
#include "stats/runstats.hpp"
#include "synth/synth_app.hpp"
#include "topology/topology.hpp"

using namespace ramr;

namespace {

RuntimeConfig stream_config() {
  RuntimeConfig cfg;
  cfg.mapper_combiner_ratio = 2;
  cfg.pin_policy = PinPolicy::kOsDefault;  // host may be tiny
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "service_amortization");

  const std::size_t jobs = env::get_uint("RAMR_BENCH_JOBS", 8);
  const std::size_t scale = env::get_uint("RAMR_BENCH_SCALE", 4096);
  const topo::Topology topo = topo::host();

  synth::SynthApp app;
  synth::SynthParams input;
  input.elements = std::max<std::size_t>(20'000, 80'000'000 / scale);
  input.keys = 64;
  app.container_keys = input.keys;

  bench::banner("Cold-start vs service-mode job stream",
                "service extension; N=" + std::to_string(jobs) +
                    " identical jobs on " + topo.name());

  // Cold: every job constructs its own Runtime (and pool set) from scratch.
  stats::RunStats cold_tail;
  double cold_first = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    const auto t0 = now();
    core::Runtime<synth::SynthApp> rt(topo, stream_config());
    (void)rt.run(app, input);
    const double s = seconds_between(t0, now());
    if (i == 0) {
      cold_first = s;
    } else {
      cold_tail.add(s);
    }
  }

  // Service: one scheduler; jobs lease warm pool sets from its depot.
  service::Scheduler sched(topo);
  stats::RunStats warm_tail;  // iterations 1.. (steady state)
  double warm_first = 0.0;
  std::size_t warm_hits = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    service::JobSpec job;
    job.name = "stream-" + std::to_string(i);
    job.config = stream_config();
    const auto t0 = now();
    auto [id, future] = sched.submit(job, app, input);
    const service::JobReport report = sched.wait(id);
    const double s = seconds_between(t0, now());
    if (report.status != service::JobStatus::kDone) {
      std::cerr << "job failed: " << report.describe() << '\n';
      return 1;
    }
    (void)future.get();
    if (report.warm_pools) ++warm_hits;
    if (i == 0) {
      warm_first = s;
    } else {
      warm_tail.add(s);
    }
  }

  stats::Table table({"mode", "first_ms", "steady_ms", "speedup"});
  const double cold_steady = jobs > 1 ? cold_tail.mean() : cold_first;
  const double warm_steady = jobs > 1 ? warm_tail.mean() : warm_first;
  table.add_row({"cold-runtime", stats::Table::fmt(cold_first * 1e3, 2),
                 stats::Table::fmt(cold_steady * 1e3, 2), "1.00"});
  table.add_row({"service-warm", stats::Table::fmt(warm_first * 1e3, 2),
                 stats::Table::fmt(warm_steady * 1e3, 2),
                 stats::Table::fmt(cold_steady / warm_steady, 2)});
  bench::print(table);

  bench::banner("Pool-construction accounting (deterministic)",
                "service extension; depot reuse across the job stream");
  const auto depot_stats = sched.depot().stats();
  stats::Table counts({"jobs", "pool_sets_built", "warm_reuses",
                       "warm_hit_jobs"});
  counts.add_row({std::to_string(jobs), std::to_string(depot_stats.built),
                  std::to_string(depot_stats.reused),
                  std::to_string(warm_hits)});
  bench::print(counts);
  if (depot_stats.built != 1 || depot_stats.reused != jobs - 1) {
    std::cerr << "unexpected depot accounting: built=" << depot_stats.built
              << " reused=" << depot_stats.reused << '\n';
    return 1;
  }
  return 0;
}
