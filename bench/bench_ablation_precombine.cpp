// Extension ablation: mapper-side pre-combining. The paper's losing apps
// (HG, LR) lose to queue traffic — one record per input byte. A small
// mapper-local coalescing buffer (RAMR_PRECOMBINE) collapses that traffic;
// this bench quantifies the records actually pipelined and the native run
// time with the buffer off and at several sizes, on the real runtime.
#include <iostream>

#include "apps/suite.hpp"
#include "bench_util.hpp"
#include "core/runtime.hpp"
#include "topology/topology.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

template <typename App>
void run_row(stats::Table& table, const char* name, const App& app,
             const typename App::input_type& input) {
  std::vector<std::string> row{name};
  double base_pushes = 0.0;
  for (std::size_t slots : {std::size_t{0}, std::size_t{64},
                            std::size_t{1024}}) {
    RuntimeConfig cfg;
    cfg.num_mappers = 2;
    cfg.num_combiners = 1;
    cfg.pin_policy = PinPolicy::kOsDefault;
    cfg.batch_size = 256;
    cfg.precombine_slots = slots;
    core::Runtime<App> rt(topo::host(), cfg);
    const auto result = rt.run(app, input);
    if (slots == 0) base_pushes = static_cast<double>(result.queue_pushes);
    row.push_back(std::to_string(result.queue_pushes));
    row.push_back(stats::Table::fmt(
        base_pushes > 0.0
            ? base_pushes / static_cast<double>(result.queue_pushes)
            : 1.0,
        1) + "x");
  }
  table.add_row(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "ablation_precombine");
  const std::uint64_t scale = apps::bench_scale_from_env() * 256;
  bench::banner("Mapper-side pre-combining: records pipelined vs buffer "
                "size (native runtime, Table I small / " +
                    std::to_string(scale) + ")",
                "extension targeting the paper's queue-traffic losses");

  stats::Table table({"app", "pushes (off)", "baseline", "pushes (64 slots)",
                      "reduction", "pushes (1024 slots)", "reduction"});
  const PlatformId p = PlatformId::kHaswell;
  run_row(table, "Histogram", HistogramApp<ContainerFlavor::kDefault>{},
          make_hg_input(table1_input(AppId::kHistogram, p, SizeClass::kSmall),
                        scale));
  run_row(table, "Linear Regression",
          LinearRegressionApp<ContainerFlavor::kDefault>{},
          make_lr_input(
              table1_input(AppId::kLinearRegression, p, SizeClass::kSmall),
              scale));
  run_row(table, "Word Count", WordCountApp<ContainerFlavor::kDefault>{},
          make_wc_input(table1_input(AppId::kWordCount, p, SizeClass::kSmall),
                        scale));
  {
    auto in = make_km_input(table1_input(AppId::kKMeans, p, SizeClass::kSmall),
                            scale);
    KMeansApp<ContainerFlavor::kDefault> app;
    app.num_clusters = in.centroids.size();
    run_row(table, "KMeans", app, in);
  }
  bench::print(table);
  std::cout
      << "\nHG/LR/KM collapse to ~one record per (task, key): the queue "
         "overhead that made them lose\nin Figs. 8/9 disappears. WC "
         "shrinks by its word-repetition factor. Pre-combining is off\n"
         "by default (the paper's published design); enable with "
         "RAMR_PRECOMBINE=<slots>.\n";

  // Predicted figure-level impact: re-run the Fig. 8a comparison on the
  // Haswell model with the measured traffic reductions applied.
  std::cout << "\nPredicted Fig. 8a with pre-combining (Haswell model, "
               "large inputs):\n";
  stats::Table fig({"app", "speedup (paper design)",
                    "speedup (with pre-combining)"});
  const struct {
    AppId app;
    double factor;  // record-stream reduction measured above (conservative)
  } cells[] = {{AppId::kHistogram, 24.0},
               {AppId::kLinearRegression, 1000.0},
               {AppId::kWordCount, 5.7},
               {AppId::kKMeans, 100.0}};
  const auto& machine = bench::machine_of(PlatformId::kHaswell);
  for (const auto& cell : cells) {
    const auto w = sim::suite_workload(cell.app, ContainerFlavor::kDefault,
                                       PlatformId::kHaswell, SizeClass::kLarge);
    sim::RamrConfig base;
    base.batch = 1000;
    const double off =
        sim::ramr_speedup(machine, w, sim::tuned_config(machine, w, base));
    base.precombine_factor = cell.factor;
    const double on =
        sim::ramr_speedup(machine, w, sim::tuned_config(machine, w, base));
    fig.add_row({app_full_name(cell.app), stats::Table::fmt(off, 2),
                 stats::Table::fmt(on, 2)});
  }
  bench::print(fig);
  std::cout << "(WC flips to a win and KM widens; HG/LR improve ~30% but "
               "stay behind — with one\n emission per input byte even the "
               "buffer probe itself is comparable to their map work)\n";
  return 0;
}
