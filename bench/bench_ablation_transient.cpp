// Extension study: pipeline dynamics. The steady-state model prices rates;
// this bench plays the pipeline out in time (sim/pipeline_sim) and reports
// what only dynamics can show — queue occupancy, producer blocking and the
// end-of-stream drain tail — for every suite app, plus an occupancy
// trajectory for the most queue-bound one.
#include <iostream>

#include "bench_util.hpp"
#include "sim/pipeline_sim.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "ablation_transient");
  bench::banner("Transient pipeline dynamics (Haswell model, default "
                "containers, small inputs, tuned ratio)",
                "Sec. III architecture, played out in time");

  const auto& machine = bench::machine_of(PlatformId::kHaswell);
  stats::Table table({"app", "makespan (ms)", "steady-state (ms)",
                      "mean depth", "max depth", "mapper util",
                      "combiner util", "drain tail (us)"});
  for (AppId app : kAllApps) {
    const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                       PlatformId::kHaswell, SizeClass::kSmall);
    sim::RamrConfig cfg = sim::tuned_config(machine, w, sim::RamrConfig{.batch = 1000});
    const auto t = sim::simulate_ramr_transient(machine, w, cfg);
    const double steady = sim::simulate_ramr(machine, w, cfg).phases.map_combine;
    table.add_row({app_full_name(app), stats::Table::fmt(t.seconds * 1e3, 2),
                   stats::Table::fmt(steady * 1e3, 2),
                   stats::Table::fmt(t.mean_depth, 0),
                   stats::Table::fmt(t.max_depth, 0),
                   stats::Table::fmt(t.mapper_busy_fraction, 2),
                   stats::Table::fmt(t.combiner_busy_fraction, 2),
                   stats::Table::fmt(t.drain_tail_seconds * 1e6, 1)});
  }
  bench::print(table);

  // Occupancy trajectory of ring 0 for Word Count (the combiner-limited
  // app above): fills to capacity, rides backpressure, drains at the end.
  const auto w = sim::suite_workload(AppId::kWordCount,
                                     ContainerFlavor::kDefault,
                                     PlatformId::kHaswell, SizeClass::kSmall);
  sim::RamrConfig cfg = sim::tuned_config(machine, w, sim::RamrConfig{.batch = 1000});
  const auto t = sim::simulate_ramr_transient(machine, w, cfg);
  std::cout << "\nWord Count ring-0 occupancy over time (capacity "
            << cfg.queue_capacity << "):\n";
  const std::size_t cols = 64;
  const std::size_t stride = std::max<std::size_t>(1, t.depth_series.size() / cols);
  std::cout << "  ";
  for (std::size_t i = 0; i < t.depth_series.size(); i += stride) {
    const double frac =
        t.depth_series[i] / static_cast<double>(cfg.queue_capacity);
    const char* glyph = frac > 0.85 ? "#" : frac > 0.5 ? "+" : frac > 0.1 ? "-" : ".";
    std::cout << glyph;
  }
  std::cout << "\n  (start " << 0 << "ms -> end "
            << stats::Table::fmt(t.seconds * 1e3, 2)
            << "ms; '#' near-full, '.' near-empty)\n";
  return 0;
}
