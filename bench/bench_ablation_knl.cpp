// What-if study: Knights Landing. The paper evaluates on a first-generation
// Xeon Phi (KNC); its successor replaced the in-order pipeline with an
// out-of-order-lite core and the GDDR memory with MCDRAM. This bench asks
// how the paper's conclusions carry over: the decoupling gains should
// shrink relative to KNC (an OoO core hides part of the stalls RAMR
// overlaps) but keep the same winners/losers.
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "ablation_knl");
  bench::banner("Generation study: KNC (paper) vs KNL (what-if) — RAMR vs "
                "Phoenix++ speedup, default containers, large inputs",
                "extension beyond the paper's platforms");

  const auto knc = sim::xeon_phi();
  const auto knl = sim::knights_landing();
  stats::Table table({"app", "KNC speedup", "KNL speedup"});
  double knc_wins = 0.0;
  double knl_wins = 0.0;
  for (AppId app : kAllApps) {
    const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                       PlatformId::kXeonPhi, SizeClass::kLarge);
    sim::RamrConfig base;
    base.batch = 200;
    const double s_knc =
        sim::ramr_speedup(knc, w, sim::tuned_config(knc, w, base));
    const double s_knl =
        sim::ramr_speedup(knl, w, sim::tuned_config(knl, w, base));
    table.add_row({app_full_name(app), stats::Table::fmt(s_knc, 2),
                   stats::Table::fmt(s_knl, 2)});
    knc_wins += s_knc > 1.0;
    knl_wins += s_knl > 1.0;
  }
  bench::print(table);
  std::cout << "\napps faster under RAMR: KNC " << knc_wins << "/6, KNL "
            << knl_wins << "/6\n"
            << "(expected: same winners; shallower factors on KNL — its OoO "
               "core already hides part\n of the stalls that decoupling "
               "overlaps on KNC)\n";
  return 0;
}
