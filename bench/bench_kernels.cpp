// Hot-path microbench: the SIMD map kernels (RAMR_SIMD) and the radix-
// sharded atomic global container (RAMR_ATOMIC_SHARDS), measured as real
// wall-clock on THIS host.
//
// Section 1 times each map-side kernel primitive through the scalar table
// and through the widest table the CPU supports (what RAMR_SIMD=native
// dispatches to) over suite-shaped inputs, and reports the speedup. Section
// 2 times concurrent histogram-shaped emission into the single
// AtomicArrayContainer versus the sharded variant across thread counts —
// the contention cliff the sharding exists to flatten.
//
// Inputs scale with RAMR_BENCH_SCALE (default 4; larger = smaller inputs)
// and each cell is the best of RAMR_BENCH_REPS timed repetitions (default
// 5) to suppress scheduler noise. NOTE: the atomic section needs real cores
// to show contention; on a single-core host the ratio mostly validates
// functionality.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "apps/histogram.hpp"
#include "apps/inputs.hpp"
#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timing.hpp"
#include "containers/atomic_array_container.hpp"
#include "containers/sharded_atomic_container.hpp"
#include "simd/kernels.hpp"
#include "stats/table.hpp"
#include "topology/topology.hpp"

using namespace ramr;

namespace {

// Defeats dead-code elimination of the measured loops.
volatile std::uint64_t g_sink = 0;
void sink(std::uint64_t v) { g_sink = g_sink + v; }

template <typename F>
double best_seconds(std::size_t reps, F&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = now();
    body();
    best = std::min(best, seconds_between(t0, now()));
  }
  return best;
}

void report_kernel(stats::Table& table, const char* name, std::size_t bytes,
                   double scalar_s, double native_s, const char* path) {
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  table.add_row({name, stats::Table::fmt(mb, 1),
                 stats::Table::fmt(scalar_s * 1e3, 3),
                 stats::Table::fmt(native_s * 1e3, 3), path,
                 stats::Table::fmt(scalar_s / native_s, 2)});
}

// One full tokenize pass (the WC/SM inner loop shape); returns word count.
std::uint64_t tokenize_pass(const simd::Kernels& k, const std::string& text) {
  std::uint64_t words = 0;
  const char* d = text.data();
  const std::size_t n = text.size();
  std::size_t pos = 0;
  for (;;) {
    pos = k.skip_separators(d, pos, n);
    if (pos >= n) break;
    pos = k.find_separator(d, pos, n);
    ++words;
  }
  return words;
}

// The SM single-pattern scan: first-byte probe + boundary + tail compare.
std::uint64_t match_pass(const simd::Kernels& k, const std::string& text,
                         const std::string& pat) {
  std::uint64_t hits = 0;
  const char* d = text.data();
  const std::size_t n = text.size();
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t c = k.find_byte(d, pos, n, pat[0]);
    if (c >= n) break;
    if (c == 0 || simd::is_word_separator(text[c - 1])) {
      const std::size_t we = c + pat.size();
      if (we <= n && (we == n || simd::is_word_separator(text[we])) &&
          k.range_equal(d + c + 1, pat.data() + 1, pat.size() - 1)) {
        ++hits;
        pos = we;
        continue;
      }
    }
    pos = c + 1;
  }
  return hits;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "kernels");
  const std::uint64_t scale = env::get_uint("RAMR_BENCH_SCALE", 4);
  const std::size_t reps =
      static_cast<std::size_t>(env::get_uint("RAMR_BENCH_REPS", 5));

  const simd::Active scalar = simd::resolve(simd::Mode::kScalar);
  const simd::Active native = simd::resolve(simd::Mode::kNative);
  const simd::Kernels& ks = *scalar.kernels;
  const simd::Kernels& kn = *native.kernels;

  bench::banner(
      "Map kernel throughput: scalar table vs native (" +
          std::string(native.path) + ") on this host",
      "the RAMR_SIMD fast path; methodology of the native benches");
  std::cout << "host: " << topo::host().summary()
            << "  probed isa: " << common::to_string(native.isa) << "\n\n";

  stats::Table table({"kernel", "input (MiB)", "scalar (ms)", "native (ms)",
                      "path", "speedup"});

  {
    const std::string text =
        apps::make_text(16 * 1024 * 1024 / scale, 4096, 7);
    const double ts =
        best_seconds(reps, [&] { sink(tokenize_pass(ks, text)); });
    const double tn =
        best_seconds(reps, [&] { sink(tokenize_pass(kn, text)); });
    report_kernel(table, "wc tokenize", text.size(), ts, tn, native.path);

    // Pattern: a mid-frequency vocabulary word pulled from the text.
    const std::size_t w0 = text.find_first_not_of(' ');
    const std::string pat =
        text.substr(w0, text.find(' ', w0) - w0);
    const double ss =
        best_seconds(reps, [&] { sink(match_pass(ks, text, pat)); });
    const double sn =
        best_seconds(reps, [&] { sink(match_pass(kn, text, pat)); });
    report_kernel(table, "sm scan", text.size(), ss, sn, native.path);
  }
  {
    const std::vector<std::uint8_t> pixels =
        apps::make_pixels(24 * 1024 * 1024 / scale, 11);
    std::vector<std::uint64_t> bins(apps::kHistogramBins);
    const auto run = [&](const simd::Kernels& k) {
      std::memset(bins.data(), 0, bins.size() * sizeof(bins[0]));
      k.histogram_channels(pixels.data(), pixels.size(), 0, bins.data());
      sink(bins[0]);
    };
    const double hs = best_seconds(reps, [&] { run(ks); });
    const double hn = best_seconds(reps, [&] { run(kn); });
    report_kernel(table, "hg bin", pixels.size(), hs, hn, native.path);
  }
  {
    const std::vector<apps::LrPoint> pts =
        apps::make_lr_points(8 * 1024 * 1024 / scale, 13);
    const auto run = [&](const simd::Kernels& k) {
      std::int64_t m[5] = {};
      k.lr_moments(reinterpret_cast<const std::int16_t*>(pts.data()),
                   pts.size(), m);
      sink(static_cast<std::uint64_t>(m[4]));
    };
    const double ls = best_seconds(reps, [&] { run(ks); });
    const double ln = best_seconds(reps, [&] { run(kn); });
    report_kernel(table, "lr moments", pts.size() * sizeof(apps::LrPoint),
                  ls, ln, native.path);
  }
  {
    const apps::Matrix m = apps::make_matrix(2, 1024 * 1024 / scale, 17);
    const double* a = m.data.data();
    const double* b = a + m.cols;
    const auto run = [&](const simd::Kernels& k) {
      sink(static_cast<std::uint64_t>(
          k.dot_centered_f64(a, b, 0.01, -0.02, m.cols)));
      sink(static_cast<std::uint64_t>(k.sum_f64(a, m.cols)));
    };
    const double ps = best_seconds(reps, [&] { run(ks); });
    const double pn = best_seconds(reps, [&] { run(kn); });
    report_kernel(table, "pca reduce", 2 * m.cols * sizeof(double), ps, pn,
                  native.path);
  }
  bench::print(table);
  std::cout << "\n(speedup > 1: the native table is faster; RAMR_SIMD=native"
               " enables it in the apps)\n";

  bench::banner(
      "AtomicGlobal emission: single container vs radix-sharded "
      "(RAMR_ATOMIC_SHARDS)",
      "the MRPhi global-container contention cliff, Sec. II");

  // Histogram-shaped key stream: 768 keys, skewed like real pixel data.
  const std::size_t emits_per_thread =
      static_cast<std::size_t>(4 * 1024 * 1024 / scale);
  const std::vector<std::uint8_t> stream =
      apps::make_pixels(emits_per_thread, 23);
  std::vector<std::uint16_t> keys(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    keys[i] = static_cast<std::uint16_t>((i % 3) * 256 + stream[i]);
  }

  stats::Series single_s{"single (Mops/s)", {}, {}};
  stats::Series sharded_s{"sharded (Mops/s)", {}, {}};
  stats::Table atable({"threads", "shards", "single (ms)", "sharded (ms)",
                       "sharded speedup"});
  const std::size_t atomic_reps = std::min<std::size_t>(reps, 3);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto drive = [&](auto&& emit_fn) {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (const std::uint16_t k : keys) emit_fn(t, k);
        });
      }
      for (auto& th : pool) th.join();
    };
    containers::AtomicArrayContainer<std::uint64_t> single(
        apps::kHistogramBins);
    const double ds = best_seconds(atomic_reps, [&] {
      single.clear();
      drive([&](std::size_t, std::uint16_t k) {
        single.emit(k, 1);
      });
    });
    containers::ShardedAtomicContainer<std::uint64_t> sharded(
        apps::kHistogramBins, threads);
    const double dh = best_seconds(atomic_reps, [&] {
      sharded.clear();
      drive([&](std::size_t t, std::uint16_t k) {
        sharded.emit(t, k, 1);
      });
    });
    sink(single.at(0) + sharded.at(0));
    const double total_ops =
        static_cast<double>(threads) * static_cast<double>(keys.size());
    single_s.add(static_cast<double>(threads), total_ops / ds / 1e6);
    sharded_s.add(static_cast<double>(threads), total_ops / dh / 1e6);
    atable.add_row({std::to_string(threads), std::to_string(threads),
                    stats::Table::fmt(ds * 1e3, 2),
                    stats::Table::fmt(dh * 1e3, 2),
                    stats::Table::fmt(ds / dh, 2)});
  }
  bench::print(atable);
  std::cout << '\n';
  bench::print_series("threads", {single_s, sharded_s});
  std::cout << "\n(sharded speedup > 1: per-worker shards relieve the "
               "fetch-add contention; needs real cores to show)\n";
  return 0;
}
