// Native measurement: real wall-clock of the functional RAMR runtime vs the
// Phoenix++ baseline on THIS host, for all six suite apps. Inputs are the
// Table I small sizes divided by RAMR_BENCH_SCALE (default 4096 so the
// whole suite finishes in seconds on a laptop; set RAMR_BENCH_SCALE=1 on a
// real server to run paper-sized inputs). Each cell is the mean of
// RAMR_BENCH_REPS runs (default 3; the paper used 20).
//
// NOTE: parallel speedups are only meaningful on a multicore host; on a
// single-core CI machine this bench validates functionality and overhead
// accounting, while the figure benches (simulator-driven) reproduce the
// paper's numbers.
#include <iostream>

#include "apps/suite.hpp"
#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timing.hpp"
#include "core/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "stats/runstats.hpp"
#include "topology/topology.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

struct Measurement {
  stats::RunStats phoenix;
  stats::RunStats ramr;
  stats::RunStats phoenix_mc_fraction;  // native Fig. 1 analog
};

template <typename App>
Measurement measure(const App& app, const typename App::input_type& input,
                    std::size_t reps) {
  const auto topo = topo::host();
  const std::size_t cpus = topo.num_logical();

  phoenix::Options po;
  po.num_workers = std::max<std::size_t>(2, cpus);
  po.pin_policy = PinPolicy::kOsDefault;
  phoenix::Runtime<App> baseline(topo, po);

  RuntimeConfig rc;
  rc.num_mappers = std::max<std::size_t>(1, cpus / 2);
  rc.num_combiners = std::max<std::size_t>(1, cpus / 2);
  rc.pin_policy = cpus >= 4 ? PinPolicy::kRamrPaired : PinPolicy::kOsDefault;
  rc.batch_size = 256;
  core::Runtime<App> ours(topo, rc);

  Measurement m;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto base_result = baseline.run(app, input);
    m.phoenix.add(base_result.timers.total());
    m.phoenix_mc_fraction.add(
        base_result.timers.fraction(Phase::kMapCombine));
    m.ramr.add(ours.run(app, input).timers.total());
  }
  return m;
}

void report(stats::Table& table, const char* name, const Measurement& m) {
  table.add_row({name, stats::Table::fmt(m.phoenix.mean() * 1e3, 2),
                 stats::Table::fmt(m.ramr.mean() * 1e3, 2),
                 stats::Table::fmt(m.phoenix.mean() / m.ramr.mean(), 2),
                 stats::Table::fmt(100.0 * m.phoenix_mc_fraction.mean(), 1) +
                     "%",
                 stats::Table::fmt(100.0 * m.phoenix.cv(), 1) + "% / " +
                     stats::Table::fmt(100.0 * m.ramr.cv(), 1) + "%"});
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "native_runtime");
  const std::uint64_t scale = env::get_uint("RAMR_BENCH_SCALE", 4096);
  const std::size_t reps =
      static_cast<std::size_t>(env::get_uint("RAMR_BENCH_REPS", 3));
  bench::banner("Native wall-clock on this host: RAMR vs Phoenix++ "
                "(Table I small inputs / " +
                    std::to_string(scale) + ", " + std::to_string(reps) +
                    " reps)",
                "methodology of Figs. 8/9, run natively");
  std::cout << "host: " << topo::host().summary() << "\n\n";

  stats::Table table({"app", "phoenix++ (ms)", "ramr (ms)", "speedup",
                      "map-combine share", "cv phoenix/ramr"});
  const PlatformId p = PlatformId::kHaswell;

  {
    const auto in = make_wc_input(
        table1_input(AppId::kWordCount, p, SizeClass::kSmall), scale);
    report(table, "Word Count",
           measure(WordCountApp<ContainerFlavor::kDefault>{}, in, reps));
  }
  {
    auto in = make_km_input(table1_input(AppId::kKMeans, p, SizeClass::kSmall),
                            scale);
    KMeansApp<ContainerFlavor::kDefault> app;
    app.num_clusters = in.centroids.size();
    report(table, "KMeans", measure(app, in, reps));
  }
  {
    const auto in = make_hg_input(
        table1_input(AppId::kHistogram, p, SizeClass::kSmall), scale);
    report(table, "Histogram",
           measure(HistogramApp<ContainerFlavor::kDefault>{}, in, reps));
  }
  {
    const auto in = make_pca_input(
        table1_input(AppId::kPca, p, SizeClass::kSmall), scale);
    PcaCovApp<ContainerFlavor::kDefault> app;
    app.rows = in.matrix.rows;
    report(table, "PCA", measure(app, in, reps));
  }
  {
    const auto in = make_mm_input(
        table1_input(AppId::kMatrixMultiply, p, SizeClass::kSmall), scale);
    MatrixMultiplyApp<ContainerFlavor::kDefault> app;
    app.rows_a = in.a.rows;
    app.cols_b = in.b.cols;
    report(table, "Matrix Multiply", measure(app, in, reps));
  }
  {
    const auto in = make_lr_input(
        table1_input(AppId::kLinearRegression, p, SizeClass::kSmall), scale);
    report(table, "Linear Regression",
           measure(LinearRegressionApp<ContainerFlavor::kDefault>{}, in,
                   reps));
  }
  bench::print(table);
  std::cout << "\n(speedup > 1: RAMR faster than the baseline on this host)\n";
  return 0;
}
