// Extension study: core-density scaling. The paper's introduction motivates
// RAMR with rising integration densities ("processors integrating tens of
// cores have been commercialized and it is foreseeable that systems with
// higher densities will appear"); this bench sweeps a Haswell-class machine
// from 8 to 112 hardware threads and reports the RAMR-vs-Phoenix++ speedup
// per density — contention on shared resources grows with density, and with
// it the value of the decoupled, resource-aware schedule.
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "ablation_scaling");
  bench::banner("Core-density scaling study (Haswell-class machine, large "
                "inputs, default containers)",
                "extension of the paper's Sec. I motivation");

  const std::size_t cores_options[] = {4, 8, 14, 20, 28};
  std::vector<stats::Series> series;
  for (AppId app : {AppId::kKMeans, AppId::kMatrixMultiply,
                    AppId::kWordCount, AppId::kHistogram}) {
    stats::Series s{app_name(app), {}, {}};
    for (std::size_t cores : cores_options) {
      const auto machine = sim::haswell_scaled(2, cores, 2);
      const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                         PlatformId::kHaswell,
                                         SizeClass::kLarge);
      sim::RamrConfig base;
      base.batch = 1000;
      const double speedup =
          sim::ramr_speedup(machine, w, sim::tuned_config(machine, w, base));
      s.add(static_cast<double>(4 * cores), speedup);
    }
    series.push_back(std::move(s));
  }
  bench::print_series("hw threads", series);
  std::cout << "\n(speedup of RAMR over Phoenix++ as the same machine gains "
               "cores; suitable apps should\n gain or hold their advantage "
               "with density, unsuitable ones stay below 1)\n";
  return 0;
}
