// Fig. 1: average run-time breakdown of the Phoenix++ suite — the
// map-combine phase dominates (the paper reports 82.4% on average), which
// is the motivation for optimising exactly that phase.
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig01_breakdown");
  bench::banner("Run-time breakdown of the Phoenix++ baseline (large inputs, "
                "Haswell model)",
                "Fig. 1");

  stats::Table table(
      {"app", "split %", "map-combine %", "reduce %", "merge %"});
  double sum_mc = 0.0;
  for (AppId app : kAllApps) {
    const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                       PlatformId::kHaswell, SizeClass::kLarge);
    const auto r = sim::simulate_phoenix(bench::machine_of(PlatformId::kHaswell), w);
    const double total = r.phases.total();
    table.add_row({app_full_name(app),
                   stats::Table::fmt(100.0 * r.phases.split / total, 1),
                   stats::Table::fmt(100.0 * r.phases.map_combine / total, 1),
                   stats::Table::fmt(100.0 * r.phases.reduce / total, 1),
                   stats::Table::fmt(100.0 * r.phases.merge / total, 1)});
    sum_mc += r.phases.map_combine_fraction();
  }
  bench::print(table);
  std::cout << "\naverage map-combine share: "
            << stats::Table::fmt(100.0 * sum_mc / 6.0, 1)
            << "%   (paper: 82.4%)\n";
  return 0;
}
