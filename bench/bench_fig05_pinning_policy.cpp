// Fig. 5 (and Fig. 3): the contention-aware pinning policy — per-app
// speedup of the RAMR policy over role-oblivious round-robin pinning and
// over the (unpinned) OS scheduler on the Haswell model, plus the Xeon Phi
// comparison where the ring-shared L2 collapses the gains to a few percent.
// Also prints the Fig. 3 thridtocpu() remap for the worked 2x4x2 example.
#include <iostream>

#include "bench_util.hpp"
#include "topology/pinning.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

void print_fig3_example() {
  std::cout << "\nthridtocpu() remap of the Fig. 3 example machine (2 NUMA "
               "nodes x 4 cores x 2-way HT):\n  position -> cpu: ";
  const auto topo = topo::fig3_example();
  const auto order = topo.proximity_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::cout << (i == 0 ? "" : ",") << order[i];
  }
  std::cout << "\n  (consecutive positions are SMT siblings: a ratio-1 "
               "mapper/combiner pair shares L1/L2)\n";
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig05_pinning_policy");
  bench::banner("Thread-pinning policies: RAMR vs round-robin vs OS "
                "scheduler (default containers, large inputs)",
                "Fig. 5 (+ Fig. 3)");

  for (PlatformId platform : {PlatformId::kHaswell, PlatformId::kXeonPhi}) {
    const auto& machine = bench::machine_of(platform);
    stats::Table table({"app", "speedup vs RR", "speedup vs Linux/OS"});
    double sum_rr = 0.0;
    double sum_os = 0.0;
    for (AppId app : kAllApps) {
      const auto w = sim::suite_workload(app, ContainerFlavor::kDefault,
                                         platform, SizeClass::kLarge);
      sim::RamrConfig cfg;
      cfg.batch = bench::default_batch(platform);
      cfg = sim::tuned_config(machine, w, cfg);
      cfg.pin = PinPolicy::kRamrPaired;
      const double t_ramr = sim::simulate_ramr(machine, w, cfg).phases.total();
      cfg.pin = PinPolicy::kRoundRobin;
      const double vs_rr =
          sim::simulate_ramr(machine, w, cfg).phases.total() / t_ramr;
      cfg.pin = PinPolicy::kOsDefault;
      const double vs_os =
          sim::simulate_ramr(machine, w, cfg).phases.total() / t_ramr;
      table.add_row({app_full_name(app), stats::Table::fmt(vs_rr, 2),
                     stats::Table::fmt(vs_os, 2)});
      sum_rr += vs_rr;
      sum_os += vs_os;
    }
    std::cout << "\n--- " << platform_name(platform) << " ---\n";
    bench::print(table);
    std::cout << "average: vs RR " << stats::Table::fmt(sum_rr / 6.0, 2)
              << "x, vs OS " << stats::Table::fmt(sum_os / 6.0, 2) << "x";
    if (platform == PlatformId::kHaswell) {
      std::cout << "   (paper: 2.28x and 2.04x; HG and LR exceptionally "
                   "faster)";
    } else {
      std::cout << "   (paper: gains limited to 1-3% on Xeon Phi)";
    }
    std::cout << '\n';
  }
  print_fig3_example();
  return 0;
}
