// Architecture comparison: the three shared-memory MapReduce designs of the
// paper's design space, run natively on identical inputs with identical map
// code —
//   * Phoenix++ (fused): thread-local containers, combine inline;
//   * RAMR (decoupled): SPSC pipelines to combiner threads;
//   * MRPhi-style (global): one atomically-accessed shared container.
// Restricted to HG and LR — the a-priori-key-range apps the MRPhi design
// admits (Sec. II).
#include <iostream>

#include "apps/global_apps.hpp"
#include "apps/suite.hpp"
#include "bench_util.hpp"
#include "core/runtime.hpp"
#include "mrphi/runtime.hpp"
#include "phoenix/runtime.hpp"
#include "stats/runstats.hpp"
#include "topology/topology.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

template <typename App, typename GlobalApp>
void compare(stats::Table& table, const char* name, const App& app,
             const GlobalApp& global_app,
             const typename App::input_type& input, std::size_t reps) {
  const auto topo = topo::host();

  phoenix::Options po;
  po.pin_policy = PinPolicy::kOsDefault;
  po.num_workers = std::max<std::size_t>(2, topo.num_logical());
  phoenix::Runtime<App> fused(topo, po);

  RuntimeConfig rc;
  rc.num_mappers = std::max<std::size_t>(1, topo.num_logical() / 2);
  rc.num_combiners = rc.num_mappers;
  rc.pin_policy = PinPolicy::kOsDefault;
  rc.batch_size = 256;
  core::Runtime<App> decoupled(topo, rc);

  mrphi::Options mo;
  mo.pin_policy = PinPolicy::kOsDefault;
  mo.num_workers = po.num_workers;
  mrphi::Runtime<GlobalApp> global(topo, mo);

  stats::RunStats t_fused;
  stats::RunStats t_decoupled;
  stats::RunStats t_global;
  for (std::size_t r = 0; r < reps; ++r) {
    t_fused.add(fused.run(app, input).timers.total());
    t_decoupled.add(decoupled.run(app, input).timers.total());
    t_global.add(global.run(global_app, input).timers.total());
  }
  table.add_row({name, stats::Table::fmt(t_fused.mean() * 1e3, 2),
                 stats::Table::fmt(t_decoupled.mean() * 1e3, 2),
                 stats::Table::fmt(t_global.mean() * 1e3, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "ablation_runtimes");
  const std::uint64_t scale = bench_scale_from_env() * 1024;
  const std::size_t reps = 3;
  bench::banner("Three architectures on identical inputs (native, Table I "
                "small / " + std::to_string(scale) + ", mean of " +
                    std::to_string(reps) + ")",
                "the paper's Sec. II design space");
  std::cout << "host: " << topo::host().summary() << "\n\n";

  stats::Table table({"app", "phoenix++ fused (ms)", "ramr decoupled (ms)",
                      "mrphi global (ms)"});
  const PlatformId p = PlatformId::kHaswell;
  compare(table, "Histogram", HistogramApp<ContainerFlavor::kDefault>{},
          HistogramGlobalApp{},
          make_hg_input(table1_input(AppId::kHistogram, p, SizeClass::kSmall),
                        scale),
          reps);
  compare(table, "Linear Regression",
          LinearRegressionApp<ContainerFlavor::kDefault>{},
          LinearRegressionGlobalApp{},
          make_lr_input(
              table1_input(AppId::kLinearRegression, p, SizeClass::kSmall),
              scale),
          reps);
  bench::print(table);
  std::cout << "\nEach design pays differently: fused pays reduce-phase "
               "merging; decoupled pays queue\ntraffic (these apps are its "
               "worst case — Figs. 8/9); global pays coherence contention\n"
               "on hot slots (with only 5 keys, LR is its worst case on "
               "many cores).\n";
  return 0;
}
