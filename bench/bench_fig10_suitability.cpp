// Fig. 10: applications' suitability to RAMR — the IPB, MSPI and RSPI
// metrics over the map/combine phase, (a) with default containers and
// (b) with hash containers, plus the paper's suitability verdicts.
#include <iostream>

#include "bench_util.hpp"
#include "perf/counters.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

void run_flavor(ContainerFlavor flavor, const char* figure) {
  std::cout << "\n--- " << figure << ": " << to_string(flavor)
            << " containers (Haswell model, map/combine phase only) ---\n";
  stats::Table table({"app", "IPB", "MSPI", "RSPI"});
  for (AppId app : kAllApps) {
    const auto w = sim::suite_workload(app, flavor, PlatformId::kHaswell,
                                       SizeClass::kLarge);
    const auto counters =
        sim::simulate_phoenix(bench::machine_of(PlatformId::kHaswell), w)
            .counters;
    table.add_row({app_full_name(app), stats::Table::fmt(counters.ipb(), 1),
                   stats::Table::fmt(counters.mspi(), 3),
                   stats::Table::fmt(counters.rspi(), 3)});
  }
  bench::print(table);
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig10_suitability");
  bench::banner("Suitability metrics: instructions per input byte, memory "
                "stalls and resource stalls per instruction",
                "Fig. 10a / Fig. 10b");
  run_flavor(ContainerFlavor::kDefault, "Fig. 10a");
  std::cout << "paper reading of 10a: HG, LR light with few stalls (bad "
               "candidates);\n  KM, MM complex and stall-prone (good); PCA "
               "high IPB but stall-free; WC inconclusive\n";
  run_flavor(ContainerFlavor::kHash, "Fig. 10b");
  std::cout << "paper reading of 10b: KM, MM, WC suitable; HG, LR stall "
               "often but stay too light;\n  PCA unchanged (stalls remain "
               "very low); WC is the IPB exception (already hashed in 10a)\n";
  return 0;
}
