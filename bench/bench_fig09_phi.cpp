// Fig. 9: RAMR execution-time speedup over Phoenix++ on the Xeon Phi model
// for Small/Medium/Large inputs — (a) default containers, (b) hash
// containers.
#include <iostream>

#include "bench_util.hpp"

using namespace ramr;
using namespace ramr::apps;

namespace {

void run_flavor(ContainerFlavor flavor, const char* figure,
                const char* paper_note) {
  std::cout << "\n--- " << figure << ": " << to_string(flavor)
            << " containers ---\n";
  stats::Table table({"app", "small", "medium", "large", "mean"});
  double grand = 0.0;
  int faster = 0;
  for (AppId app : kAllApps) {
    std::vector<std::string> row{app_full_name(app)};
    double sum = 0.0;
    for (SizeClass size : kAllSizes) {
      const double s = bench::tuned_speedup(
          PlatformId::kXeonPhi,
          sim::suite_workload(app, flavor, PlatformId::kXeonPhi, size));
      row.push_back(stats::Table::fmt(s, 2));
      sum += s;
    }
    const double mean = sum / 3.0;
    row.push_back(stats::Table::fmt(mean, 2));
    table.add_row(std::move(row));
    grand += mean;
    faster += mean > 1.0;
  }
  bench::print(table);
  std::cout << "suite average " << stats::Table::fmt(grand / 6.0, 2) << "x, "
            << faster << "/6 apps faster   (paper: " << paper_note << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  ramr::bench::init(argc, argv, "fig09_phi");
  bench::banner("RAMR vs Phoenix++ on the Xeon Phi co-processor model "
                "(speedup > 1 means RAMR is faster)",
                "Fig. 9a / Fig. 9b");
  run_flavor(ContainerFlavor::kDefault, "Fig. 9a",
             "WC 1.59x, KM 2.8x, MM 1.52x, PCA ~1x, HG 1/2.84x, LR 1/2.87x");
  run_flavor(ContainerFlavor::kHash, "Fig. 9b",
             "5/6 faster, 2.6x average, 5.34x maximum");
  return 0;
}
