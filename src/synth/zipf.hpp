// Zipf-distributed key generator for skew experiments.
//
// The paper's synthetic inputs are uniform; real-world key streams (text,
// logs, graph degrees) are zipfian — a handful of hot keys dominate, one
// combiner becomes the straggler, and its ring backs up. This generator
// feeds the skew-profiler tests (PR 8) and the ROADMAP's skew-proof
// execution item (operation-level rebalancing needs a workload that
// actually skews).
//
// Sampling is inverse-CDF over a precomputed table: rank r in [0, n) is
// drawn with probability (1/(r+1)^s) / H(n,s). Construction is O(n),
// next() is O(log n), and the stream is fully deterministic in
// (num_keys, exponent, seed) — goldens and TSan runs reproduce exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ramr::synth {

class ZipfGenerator {
 public:
  // exponent s >= 0: s = 0 degenerates to uniform, s ~ 1 is classic zipf
  // (text-like), larger s concentrates harder. Throws ramr::Error on
  // num_keys == 0 or a negative exponent.
  ZipfGenerator(std::size_t num_keys, double exponent, std::uint64_t seed);

  // The next key rank, hot keys first: rank 0 is the most frequent key.
  std::uint64_t next();

  std::size_t num_keys() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  // Exact probability of rank r under the distribution (tests assert the
  // empirical frequencies converge to this).
  double probability(std::uint64_t rank) const;

  // Convenience: a whole stream in one call.
  static std::vector<std::uint64_t> sample(std::size_t count,
                                           std::size_t num_keys,
                                           double exponent,
                                           std::uint64_t seed);

 private:
  double exponent_ = 1.0;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r); cdf_.back() == 1
  Xoshiro256 rng_;
};

}  // namespace ramr::synth
