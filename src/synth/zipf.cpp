#include "synth/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ramr::synth {

ZipfGenerator::ZipfGenerator(std::size_t num_keys, double exponent,
                             std::uint64_t seed)
    : exponent_(exponent), rng_(seed) {
  if (num_keys == 0) {
    throw Error("zipf: num_keys must be >= 1");
  }
  if (!(exponent >= 0.0)) {  // also rejects NaN
    throw Error("zipf: exponent must be >= 0");
  }
  cdf_.resize(num_keys);
  double total = 0.0;
  for (std::size_t r = 0; r < num_keys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint64_t ZipfGenerator::next() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::probability(std::uint64_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

std::vector<std::uint64_t> ZipfGenerator::sample(std::size_t count,
                                                 std::size_t num_keys,
                                                 double exponent,
                                                 std::uint64_t seed) {
  ZipfGenerator gen(num_keys, exponent, seed);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(gen.next());
  return out;
}

}  // namespace ramr::synth
