// The workload-aware synthetic application (paper Sec. III-C / Fig. 4).
//
// An AppSpec whose map and combine costs are dialled independently: kind
// (CPU- or memory-intensive) and intensity (kernel iterations per element)
// for each side. The combine work is carried *inside the value* flowing
// through the pipeline, so it executes wherever the runtime applies the
// combine function — inline on the worker under Phoenix++, on the combiner
// thread under RAMR. That is exactly the decoupling the paper studies.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "containers/fixed_array_container.hpp"
#include "synth/kernels.hpp"

namespace ramr::synth {

struct SynthParams {
  // Map side.
  WorkKind map_kind = WorkKind::kCpu;
  std::uint64_t map_intensity = 64;  // kernel iterations per element

  // Combine side (executed by whoever applies the combiner).
  WorkKind combine_kind = WorkKind::kMemory;
  std::uint64_t combine_intensity = 16;

  // Shape.
  std::size_t elements = 100000;
  std::size_t keys = 64;
  std::size_t split_elements = 1024;

  // Arena width for memory-intensive kernels (per-thread working set; wide
  // enough to defeat the private caches).
  std::size_t arena_bytes = 8u << 20;
};

// The value type: carries its own combine recipe plus a payload sink.
struct SynthValue {
  std::uint8_t combine_kind = 0;
  std::uint32_t combine_intensity = 0;
  std::uint32_t arena_mb = 8;
  std::uint64_t payload = 0;
  double sink = 0.0;
};

// Combiner that performs the configured work per combined value.
struct SynthCombiner {
  using value_type = SynthValue;
  static SynthValue identity() { return SynthValue{}; }
  static void combine(SynthValue& acc, const SynthValue& v) {
    acc.sink += run_kernel(static_cast<WorkKind>(v.combine_kind),
                           v.combine_intensity, v.payload,
                           static_cast<std::size_t>(v.arena_mb) << 20);
    acc.payload += v.payload;
    acc.combine_kind = v.combine_kind;
    acc.combine_intensity = v.combine_intensity;
    acc.arena_mb = v.arena_mb;
  }
};

struct SynthApp {
  static constexpr const char* kName = "synth";

  using input_type = SynthParams;
  using container_type =
      containers::FixedArrayContainer<SynthValue, SynthCombiner>;

  std::size_t num_splits(const input_type& in) const {
    if (in.elements == 0) return 0;
    return (in.elements + in.split_elements - 1) / in.split_elements;
  }

  container_type make_container() const {
    return container_type(container_keys);
  }

  // Must match input.keys (container sizing happens before run()).
  std::size_t container_keys = 64;

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * in.split_elements;
    const std::size_t end =
        std::min(begin + in.split_elements, in.elements);
    for (std::size_t i = begin; i < end; ++i) {
      const double r =
          run_kernel(in.map_kind, in.map_intensity, i, in.arena_bytes);
      SynthValue v;
      v.combine_kind = static_cast<std::uint8_t>(in.combine_kind);
      v.combine_intensity = static_cast<std::uint32_t>(in.combine_intensity);
      v.arena_mb =
          static_cast<std::uint32_t>(std::max<std::size_t>(1, in.arena_bytes >> 20));
      v.payload = i;
      v.sink = r;
      emit(i % in.keys, v);
    }
  }
};

// Expected sum of payloads (each element's index emitted once) — the
// correctness invariant tests assert after any knob combination.
constexpr std::uint64_t synth_expected_payload_sum(std::size_t elements) {
  return elements == 0
             ? 0
             : static_cast<std::uint64_t>(elements) * (elements - 1) / 2;
}

}  // namespace ramr::synth
