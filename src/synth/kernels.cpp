#include "synth/kernels.hpp"

#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ramr::synth {

const char* to_string(WorkKind kind) {
  return kind == WorkKind::kCpu ? "cpu" : "memory";
}

double cpu_kernel(std::uint64_t iterations, double seed_value) {
  // Spread seeds across (0.25, 1.25) and accumulate the trajectory so the
  // result is seed-dependent even if the iteration converges.
  double x = 0.25 + std::fmod(std::abs(seed_value), 997.0) / 997.0;
  double acc = x;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    x = std::sin(x) + std::exp(-x) + std::sqrt(x + 1.5);
    x = x - std::floor(x) + 0.25;  // keep in a stable range
    acc += x * 1e-3;
  }
  return acc;
}

std::vector<std::uint64_t> make_chase_arena(std::size_t bytes,
                                            std::uint64_t seed) {
  const std::size_t slots = bytes / sizeof(std::uint64_t);
  if (slots < 2) throw Error("make_chase_arena: arena too small");
  // Sattolo's algorithm: a uniform random single-cycle permutation.
  std::vector<std::uint64_t> next(slots);
  for (std::size_t i = 0; i < slots; ++i) next[i] = i;
  Xoshiro256 rng(seed);
  for (std::size_t i = slots - 1; i > 0; --i) {
    const std::size_t j = rng.below(i);  // j in [0, i)
    std::swap(next[i], next[j]);
  }
  return next;
}

std::uint64_t memory_kernel(const std::vector<std::uint64_t>& arena,
                            std::uint64_t steps, std::uint64_t start) {
  std::uint64_t idx = start % arena.size();
  for (std::uint64_t i = 0; i < steps; ++i) idx = arena[idx];
  return idx;
}

double run_kernel(WorkKind kind, std::uint64_t intensity,
                  std::uint64_t seed_value, std::size_t arena_bytes) {
  if (kind == WorkKind::kCpu) {
    return cpu_kernel(intensity, static_cast<double>(seed_value & 0xffff));
  }
  // One arena per (thread, size): combiner threads chase through their own
  // wide dataset, as the paper's synthetic memory workload prescribes.
  thread_local std::unordered_map<std::size_t, std::vector<std::uint64_t>>
      arenas;
  auto& arena = arenas[arena_bytes];
  if (arena.empty()) arena = make_chase_arena(arena_bytes, 0xa2e4a);
  return static_cast<double>(memory_kernel(arena, intensity, seed_value));
}

}  // namespace ramr::synth
