// Compatibility shim: the pre-combining buffer moved into the engine layer
// (engine/precombine.hpp) when the runtimes were unified; existing includes
// and the ramr::core spelling keep working.
#pragma once

#include "engine/precombine.hpp"

namespace ramr::core {

template <typename K, typename V, containers::Combiner C,
          typename Hash = std::hash<K>, typename KeyEq = std::equal_to<K>>
using PrecombineBuffer = engine::PrecombineBuffer<K, V, C, Hash, KeyEq>;

}  // namespace ramr::core
