// RAMR — the Resource-Aware MapReduce runtime (paper Sec. III, Fig. 2).
//
// The decoupled architecture, expressed as a thin configuration of the
// shared execution engine: a dual-pool engine::PoolSet (general-purpose
// mapper pool + combiner pool, placed by the pinning plan) plus the
// engine::PipelinedSpsc emit strategy (per-mapper SPSC rings drained
// concurrently by the combiner pool, with batched reads, sleep-on-full
// backoff, and optional mapper-side pre-combining) driven through
// engine::PhaseDriver. See engine/strategy_pipelined.hpp for the pipeline
// and failure protocols.
#pragma once

#include <memory>
#include <utility>

#include "adapt/controller.hpp"
#include "common/config.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_depot.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_pipelined.hpp"
#include "telemetry/session.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace ramr::core {

template <mr::AppSpec S>
class Runtime {
 public:
  using Container = typename S::container_type;
  using K = mr::key_type_of<S>;
  using V = mr::value_type_of<S>;
  using Record = containers::KeyValue<K, V>;

  // The config is resolved against the topology (worker counts derived from
  // the machine when left at 0) at construction, so impossible configs
  // still fail eagerly. The pools themselves are leased from a PoolDepot:
  // per-Runtime by default (same lifetime as before — threads pinned at
  // start-up "throughout the MR invocation", paper Sec. III-B), or the
  // process-wide depot when service_mode (RAMR_SERVICE=1) is on, so warm
  // pool sets survive individual Runtime instances. The static path leases
  // eagerly; the adaptive path defers, because run() routes through
  // adapt::run_adaptive, which leases its own (possibly differently
  // shaped) pools — constructing a full pool set here would spin up and
  // pin threads that never execute a task.
  Runtime(topo::Topology topology, RuntimeConfig config)
      : topo_(std::move(topology)),
        cfg_(config.resolved(topo_.num_logical())),
        depot_(cfg_.service_mode ? &engine::PoolDepot::process()
                                 : &own_depot_),
        telemetry_(telemetry::Session::from_config(cfg_)) {
    if (cfg_.adapt_mode == AdaptMode::kOff) ensure_pools();
  }

  const RuntimeConfig& config() const { return cfg_; }
  const topo::PinningPlan& plan() { return ensure_pools().plan(); }

  // Whether this Runtime currently holds a leased pool set, and whether
  // that lease was served warm from the depot (no thread spawn). Exposed
  // for tests and the service-amortization bench.
  bool pools_ready() const { return static_cast<bool>(lease_); }
  bool pools_warm() const { return lease_ && lease_.warm(); }

  // Optional execution tracing (see src/trace/): one lane per mapper and
  // combiner, task/drain events, phase marks. The recorder must outlive
  // every run(); pass nullptr to disable (the default).
  void set_recorder(trace::Recorder* recorder) {
    recorder_ = recorder;
    if (driver_) driver_->set_recorder(recorder);
  }

  // Optional custom steady-state tuning policy for the adaptive controller
  // (RAMR_ADAPT=full; see adapt/governor.hpp). Null = the built-in
  // DefaultTuningPolicy. Must outlive every run().
  void set_tuning_policy(engine::TuningPolicy* policy) {
    tuning_policy_ = policy;
  }

  // The telemetry session created from the config's observability knobs
  // (RAMR_TELEMETRY et al.); nullptr when telemetry is off. Exporters read
  // phase counters / metrics / series from it after run() (see
  // telemetry/export.hpp).
  telemetry::Session* telemetry() { return telemetry_.get(); }

  mr::result_of<S> run(const S& app, const typename S::input_type& input) {
    // RAMR_ADAPT=probe|full routes through the adaptive controller, which
    // leases its own pools (the probed plan may change the pool shape) and
    // builds its own telemetry session sized to them. Handing it this
    // Runtime's depot lets probe and main-run pool sets recycle across a
    // stream of run() calls — the plan cache already amortizes the probe,
    // the depot now amortizes the spin-up.
    if (cfg_.adapt_mode != AdaptMode::kOff) {
      return adapt::run_adaptive(topo_, cfg_, app, input, recorder_,
                                 tuning_policy_, {}, depot_);
    }
    engine::PipelinedSpsc<S> strategy;
    ensure_pools();
    return driver_->run(strategy, app, input);
  }

  // Streaming variant (src/io/): the run is fed live by an IO-lane task
  // pump (io::StreamFeeder over a ChunkSource) instead of a materialized
  // split count. Always the static pipelined plan — the adaptive probe
  // path replays the input, which a stream cannot do. The pump must be
  // freshly constructed per call.
  template <engine::TaskPump Pump>
  mr::result_of<S> run_stream(const S& app,
                              const typename S::input_type& input,
                              Pump& pump) {
    engine::PipelinedSpsc<S> strategy;
    ensure_pools();
    return driver_->run_stream(strategy, app, input, pump);
  }

 private:
  engine::PoolSet& ensure_pools() {
    if (!lease_) {
      lease_ = depot_->acquire(topo_, cfg_);
      driver_ = std::make_unique<engine::PhaseDriver>(
          lease_.pools(), engine::driver_options_from(cfg_));
      driver_->set_recorder(recorder_);
      driver_->set_telemetry(telemetry_.get());
    }
    return lease_.pools();
  }

  topo::Topology topo_;
  RuntimeConfig cfg_;
  engine::PoolDepot own_depot_;
  engine::PoolDepot* depot_;
  std::unique_ptr<telemetry::Session> telemetry_;
  engine::PoolDepot::Lease lease_;
  std::unique_ptr<engine::PhaseDriver> driver_;
  trace::Recorder* recorder_ = nullptr;
  engine::TuningPolicy* tuning_policy_ = nullptr;
};

// Convenience: run an app once on the host topology. Worker counts default
// to a ratio-2 fill of the host; the OS-default policy is used so the call
// works on machines smaller than the configured thread counts.
template <mr::AppSpec S>
mr::result_of<S> run_once(const S& app, const typename S::input_type& input,
                          RuntimeConfig config = {}) {
  Runtime<S> rt(topo::host(), config);
  return rt.run(app, input);
}

}  // namespace ramr::core
