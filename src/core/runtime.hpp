// RAMR — the Resource-Aware MapReduce runtime (paper Sec. III, Fig. 2).
//
// The decoupled architecture: two thread pools are instantiated up front —
// a general-purpose pool that executes map (and, between phases, reduce and
// merge) and a combiner pool with at most as many workers. Map tasks are
// dequeued from per-locality-group task queues; each mapper emits its
// intermediate key/value pairs into its own fixed-capacity SPSC ring
// instead of combining them inline. Combiners run *concurrently* with
// mappers: each one drains its assigned set of rings in batches, applies
// the combine function, and stores results in a private container. When all
// map tasks are done each mapper closes its ring; a combiner exits once all
// of its rings are closed and drained. Reduce and merge then proceed as in
// the baseline.
//
// The three resource-aware mechanisms:
//   * batched reads       — Ring::consume_batch (Sec. III-A, Figs. 6/7);
//   * sleep on failed push — spsc::SleepBackoff (Sec. III-A);
//   * contention-aware pinning — topo::make_plan(kRamrPaired) places each
//     combiner on a logical CPU adjacent to its mappers (Sec. III-B, Fig. 3).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/timing.hpp"
#include "containers/container_traits.hpp"
#include "core/precombine.hpp"
#include "phoenix/app_model.hpp"
#include "sched/parallel_sort.hpp"
#include "sched/task_queue.hpp"
#include "sched/thread_pool.hpp"
#include "spsc/backoff.hpp"
#include "spsc/ring.hpp"
#include "spsc/ring_set.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace ramr::core {

template <mr::AppSpec S>
class Runtime {
 public:
  using Container = typename S::container_type;
  using K = mr::key_type_of<S>;
  using V = mr::value_type_of<S>;
  using Record = containers::KeyValue<K, V>;

  // The config is resolved against the topology (worker counts derived from
  // the machine when left at 0) and the pinning plan is computed once; both
  // pools live for the lifetime of the Runtime, and threads are pinned at
  // start-up "throughout the MR invocation" (paper Sec. III-B).
  Runtime(topo::Topology topology, RuntimeConfig config)
      : topo_(std::move(topology)),
        cfg_(config.resolved(topo_.num_logical())),
        plan_(topo::make_plan(topo_, cfg_.pin_policy, cfg_.num_mappers,
                              cfg_.num_combiners)) {
    std::vector<std::optional<std::size_t>> mapper_pins(cfg_.num_mappers);
    std::vector<std::optional<std::size_t>> combiner_pins(cfg_.num_combiners);
    if (cfg_.pin_policy != PinPolicy::kOsDefault) {
      for (std::size_t m = 0; m < cfg_.num_mappers; ++m) {
        mapper_pins[m] = plan_.mapper_cpu.at(m);
      }
      for (std::size_t j = 0; j < cfg_.num_combiners; ++j) {
        combiner_pins[j] = plan_.combiner_cpu.at(j);
      }
    }
    mapper_pool_ = std::make_unique<sched::ThreadPool>(
        cfg_.num_mappers, std::move(mapper_pins));
    combiner_pool_ = std::make_unique<sched::ThreadPool>(
        cfg_.num_combiners, std::move(combiner_pins));
    num_groups_ = topo_.num_sockets();
  }

  const RuntimeConfig& config() const { return cfg_; }
  const topo::PinningPlan& plan() const { return plan_; }

  // Optional execution tracing (see src/trace/): one lane per mapper and
  // combiner, task/drain events, phase marks. The recorder must outlive
  // every run(); pass nullptr to disable (the default).
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

  mr::result_of<S> run(const S& app, const typename S::input_type& input) {
    mr::result_of<S> result;

    // ---- split ----------------------------------------------------------
    sched::TaskQueues queues(num_groups_);
    {
      ScopedPhase t(result.timers, Phase::kSplit);
      if (cfg_.split_distribution == SplitDistribution::kBlocked) {
        queues.distribute_blocked(app.num_splits(input), cfg_.task_size);
      } else {
        queues.distribute(app.num_splits(input), cfg_.task_size);
      }
    }

    // ---- map-combine (overlapped) ----------------------------------------
    // One ring per mapper (single producer); each combiner drains a
    // disjoint ring set (single consumer) — SPSC suffices (Sec. III-A).
    std::vector<std::unique_ptr<spsc::Ring<Record>>> rings;
    rings.reserve(cfg_.num_mappers);
    for (std::size_t m = 0; m < cfg_.num_mappers; ++m) {
      rings.push_back(
          std::make_unique<spsc::Ring<Record>>(cfg_.queue_capacity));
    }
    std::vector<Container> combiner_containers;
    combiner_containers.reserve(cfg_.num_combiners);
    for (std::size_t j = 0; j < cfg_.num_combiners; ++j) {
      combiner_containers.push_back(app.make_container());
    }

    // Trace lanes must exist before the pools start (Recorder setup is not
    // thread-safe); each lane is then written by exactly one thread.
    std::vector<trace::Lane*> mapper_lanes(cfg_.num_mappers, nullptr);
    std::vector<trace::Lane*> combiner_lanes(cfg_.num_combiners, nullptr);
    if (recorder_ != nullptr) {
      for (std::size_t m = 0; m < cfg_.num_mappers; ++m) {
        mapper_lanes[m] = &recorder_->lane("mapper-" + std::to_string(m));
      }
      for (std::size_t j = 0; j < cfg_.num_combiners; ++j) {
        combiner_lanes[j] = &recorder_->lane("combiner-" + std::to_string(j));
      }
    }
    const Clock::time_point epoch =
        recorder_ != nullptr ? recorder_->epoch() : Clock::time_point{};

    std::atomic<std::size_t> tasks_executed{0};
    // Failure protocol: a mapper that dies still closes its ring (so
    // combiners terminate); a combiner that dies raises this flag (so
    // mappers blocked on its full rings abort instead of waiting forever).
    std::atomic<bool> combiner_failed{false};

    const auto combiner_job = [&](std::size_t j) {
      std::vector<spsc::Ring<Record>*> mine;
      for (std::size_t m : plan_.mappers_of_combiner[j]) {
        mine.push_back(rings[m].get());
      }
      spsc::RingSet<Record> set(std::move(mine));
      Container& container = combiner_containers[j];
      trace::Lane* lane = combiner_lanes[j];
      spsc::SleepBackoff idle(std::chrono::microseconds(cfg_.sleep_micros));
      const auto consume = [&container](std::span<Record> block) {
        for (Record& r : block) {
          container.emit(r.key, r.value);
        }
      };
      try {
        for (;;) {
          const std::size_t got = set.sweep(consume, cfg_.batch_size);
          if (lane != nullptr) {
            lane->record(epoch,
                         got > 0 ? trace::EventKind::kDrainActive
                                 : trace::EventKind::kDrainIdle,
                         got);
          }
          if (got == 0) {
            if (set.finished()) break;
            idle.wait();
          } else {
            idle.reset();
          }
        }
      } catch (...) {
        combiner_failed.store(true, std::memory_order_release);
        throw;
      }
      if (lane != nullptr) {
        lane->record(epoch, trace::EventKind::kDrainDone, j);
      }
    };

    const auto mapper_job = [&](std::size_t m) {
      spsc::Ring<Record>& ring = *rings[m];
      const std::size_t group = mapper_group(m);
      trace::Lane* lane = mapper_lanes[m];
      std::size_t executed = 0;
      // `emit` feeds records toward the ring; `on_task_end` runs between
      // tasks (the pre-combining variant flushes its buffer there so the
      // combiners keep receiving data at task granularity).
      auto drain_tasks = [&](auto&& emit, auto&& on_task_end) {
        while (auto task = queues.pop(group)) {
          if (lane != nullptr) {
            lane->record(epoch, trace::EventKind::kTaskStart, task->begin);
          }
          for (std::size_t split = task->begin; split < task->end; ++split) {
            app.map(input, split, emit);
          }
          on_task_end();
          if (lane != nullptr) {
            lane->record(epoch, trace::EventKind::kTaskEnd, task->begin);
          }
          ++executed;
        }
      };
      auto run_with = [&](auto backoff) {
        auto push_record = [&](Record&& r) {
          while (!ring.try_push(std::move(r))) {
            if (combiner_failed.load(std::memory_order_acquire)) {
              throw Error("RAMR: combiner thread failed; aborting map");
            }
            backoff.wait();
          }
          backoff.reset();
        };
        if (cfg_.precombine_slots > 0) {
          PrecombineBuffer<K, V, typename Container::combiner> buffer(
              cfg_.precombine_slots);
          drain_tasks(
              [&](const K& k, const V& v) {
                if (auto evicted = buffer.absorb(k, v)) {
                  push_record(std::move(*evicted));
                }
              },
              [&] { buffer.flush(push_record); });
        } else {
          drain_tasks(
              [&](const K& k, const V& v) { push_record(Record{k, v}); },
              [] {});
        }
      };
      try {
        if (cfg_.sleep_on_full) {
          run_with(spsc::SleepBackoff(
              std::chrono::microseconds(cfg_.sleep_micros)));
        } else {
          run_with(spsc::BusyWaitBackoff{});
        }
      } catch (...) {
        // Close even on failure: combiners must be able to terminate.
        ring.close();
        throw;
      }
      // Map phase over for this mapper: notify the combiner side.
      ring.close();
      if (lane != nullptr) {
        lane->record(epoch, trace::EventKind::kStreamClose, m);
      }
      tasks_executed.fetch_add(executed, std::memory_order_relaxed);
    };

    {
      ScopedPhase t(result.timers, Phase::kMapCombine);
      combiner_pool_->start(combiner_job);
      mapper_pool_->start(mapper_job);
      // Always wait for BOTH pools, then rethrow the first failure: leaving
      // a region in flight would poison the next run().
      std::exception_ptr error;
      try {
        mapper_pool_->wait();
      } catch (...) {
        error = std::current_exception();
      }
      try {
        combiner_pool_->wait();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      if (error) std::rethrow_exception(error);
    }
    result.tasks_executed = tasks_executed.load();
    result.local_pops = queues.local_pops();
    result.steals = queues.steals();
    for (const auto& ring : rings) {
      result.queue_pushes += ring->producer_stats().pushes;
      result.queue_failed_pushes += ring->producer_stats().failed_pushes;
      result.queue_batches += ring->consumer_stats().batches;
      result.queue_max_occupancy = std::max(
          result.queue_max_occupancy, ring->consumer_stats().max_occupancy);
    }

    // ---- reduce: parallel tree-merge of combiner containers ---------------
    // Reduce and merge run on the general-purpose pool ("the top pool ...
    // will be used to execute the tasks of map, reduce and merge").
    {
      ScopedPhase t(result.timers, Phase::kReduce);
      sched::parallel_tree_merge(*mapper_pool_, combiner_containers);
    }

    // ---- merge: parallel key sort ------------------------------------------
    {
      ScopedPhase t(result.timers, Phase::kMerge);
      result.pairs = containers::to_pairs(combiner_containers[0]);
      mr::apply_reducer(app, result.pairs);
      sched::parallel_sort(
          *mapper_pool_, result.pairs,
          [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return result;
  }

 private:
  std::size_t mapper_group(std::size_t m) const {
    if (cfg_.pin_policy != PinPolicy::kOsDefault && !plan_.mapper_cpu.empty()) {
      return topo_.by_os_id(plan_.mapper_cpu[m]).socket % num_groups_;
    }
    return m % num_groups_;
  }

  topo::Topology topo_;
  RuntimeConfig cfg_;
  topo::PinningPlan plan_;
  std::unique_ptr<sched::ThreadPool> mapper_pool_;
  std::unique_ptr<sched::ThreadPool> combiner_pool_;
  std::size_t num_groups_ = 1;
  trace::Recorder* recorder_ = nullptr;
};

// Convenience: run an app once on the host topology. Worker counts default
// to a ratio-2 fill of the host; the OS-default policy is used so the call
// works on machines smaller than the configured thread counts.
template <mr::AppSpec S>
mr::result_of<S> run_once(const S& app, const typename S::input_type& input,
                          RuntimeConfig config = {}) {
  Runtime<S> rt(topo::host(), config);
  return rt.run(app, input);
}

}  // namespace ramr::core
