// RAMR — the Resource-Aware MapReduce runtime (paper Sec. III, Fig. 2).
//
// The decoupled architecture, expressed as a thin configuration of the
// shared execution engine: a dual-pool engine::PoolSet (general-purpose
// mapper pool + combiner pool, placed by the pinning plan) plus the
// engine::PipelinedSpsc emit strategy (per-mapper SPSC rings drained
// concurrently by the combiner pool, with batched reads, sleep-on-full
// backoff, and optional mapper-side pre-combining) driven through
// engine::PhaseDriver. See engine/strategy_pipelined.hpp for the pipeline
// and failure protocols.
#pragma once

#include <memory>
#include <utility>

#include "adapt/controller.hpp"
#include "common/config.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_pipelined.hpp"
#include "telemetry/session.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace ramr::core {

template <mr::AppSpec S>
class Runtime {
 public:
  using Container = typename S::container_type;
  using K = mr::key_type_of<S>;
  using V = mr::value_type_of<S>;
  using Record = containers::KeyValue<K, V>;

  // The config is resolved against the topology (worker counts derived from
  // the machine when left at 0) and the pinning plan is computed once; both
  // pools live for the lifetime of the Runtime, and threads are pinned at
  // start-up "throughout the MR invocation" (paper Sec. III-B).
  Runtime(topo::Topology topology, RuntimeConfig config)
      : pools_(std::move(topology), config),
        telemetry_(telemetry::Session::from_config(pools_.config())),
        driver_(pools_, engine::driver_options_from(pools_.config())) {
    driver_.set_telemetry(telemetry_.get());
  }

  const RuntimeConfig& config() const { return pools_.config(); }
  const topo::PinningPlan& plan() const { return pools_.plan(); }

  // Optional execution tracing (see src/trace/): one lane per mapper and
  // combiner, task/drain events, phase marks. The recorder must outlive
  // every run(); pass nullptr to disable (the default).
  void set_recorder(trace::Recorder* recorder) {
    recorder_ = recorder;
    driver_.set_recorder(recorder);
  }

  // Optional custom steady-state tuning policy for the adaptive controller
  // (RAMR_ADAPT=full; see adapt/governor.hpp). Null = the built-in
  // DefaultTuningPolicy. Must outlive every run().
  void set_tuning_policy(engine::TuningPolicy* policy) {
    tuning_policy_ = policy;
  }

  // The telemetry session created from the config's observability knobs
  // (RAMR_TELEMETRY et al.); nullptr when telemetry is off. Exporters read
  // phase counters / metrics / series from it after run() (see
  // telemetry/export.hpp).
  telemetry::Session* telemetry() { return telemetry_.get(); }

  mr::result_of<S> run(const S& app, const typename S::input_type& input) {
    // RAMR_ADAPT=probe|full routes through the adaptive controller, which
    // builds its own pools (the probed plan may change the pool shape) and
    // its own telemetry session sized to them.
    if (pools_.config().adapt_mode != AdaptMode::kOff) {
      return adapt::run_adaptive(pools_.topology(), pools_.config(), app,
                                 input, recorder_, tuning_policy_);
    }
    engine::PipelinedSpsc<S> strategy;
    return driver_.run(strategy, app, input);
  }

 private:
  engine::PoolSet pools_;
  std::unique_ptr<telemetry::Session> telemetry_;
  engine::PhaseDriver driver_;
  trace::Recorder* recorder_ = nullptr;
  engine::TuningPolicy* tuning_policy_ = nullptr;
};

// Convenience: run an app once on the host topology. Worker counts default
// to a ratio-2 fill of the host; the OS-default policy is used so the call
// works on machines smaller than the configured thread counts.
template <mr::AppSpec S>
mr::result_of<S> run_once(const S& app, const typename S::input_type& input,
                          RuntimeConfig config = {}) {
  Runtime<S> rt(topo::host(), config);
  return rt.run(app, input);
}

}  // namespace ramr::core
