// Anchor translation unit: instantiates the RAMR runtime against a minimal
// app so the templated headers are compiled with the library.
#include "core/runtime.hpp"

#include "containers/hash_container.hpp"

namespace ramr::core {
namespace {

struct AnchorApp {
  using input_type = std::vector<std::uint64_t>;
  using container_type =
      containers::HashContainer<std::uint64_t, std::uint64_t,
                                containers::CountCombiner>;

  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_container() const { return container_type(64); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    emit(in[split] & 63u, std::uint64_t{1});
  }
};

static_assert(mr::AppSpec<AnchorApp>);

}  // namespace

template class Runtime<AnchorApp>;

}  // namespace ramr::core
