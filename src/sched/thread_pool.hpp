// Persistent worker pool with optional per-worker CPU pinning.
//
// Both runtimes keep their pools alive across phases ("two separate thread
// pools are instantiated", paper Sec. III): worker threads are created once,
// pinned once (setaffinity is called at worker start-up and the pin holds
// "throughout the MR invocation"), and then execute one parallel region per
// phase via run_on_all().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace ramr::sched {

class ThreadPool {
 public:
  // One optional CPU per worker; std::nullopt (or a short vector) leaves
  // that worker unpinned. Pins that fail (CPU id not usable on this host)
  // degrade silently to unpinned — the plan may describe a larger modelled
  // machine than the host running the tests.
  explicit ThreadPool(
      std::size_t num_workers,
      std::vector<std::optional<std::size_t>> pin_cpu = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  // Executes fn(worker_index) on every worker concurrently and blocks until
  // all workers finished. Exceptions thrown by fn propagate to the caller
  // (the first one wins; the region still completes on all workers).
  void run_on_all(std::function<void(std::size_t)> fn);

  // Asynchronous variant: start() launches the region on all workers and
  // returns immediately; wait() blocks until it completes (and rethrows the
  // first worker exception). The RAMR runtime uses this to run the mapper
  // and combiner pools concurrently. The pool keeps its own copy of `fn`.
  // At most one region may be in flight per pool.
  void start(std::function<void(std::size_t)> fn);
  void wait();

  // How many workers ended up actually pinned (for tests/logging).
  std::size_t pinned_count() const { return pinned_count_; }

  // OS thread ids (gettid) of the workers, indexed by worker index — the
  // handles the telemetry PMU backend needs to open per-thread counters.
  // Blocks until every worker has recorded its id (workers do so before
  // their first region, so this returns promptly after construction).
  // Entries are 0 on platforms without gettid.
  std::vector<std::int64_t> os_tids() const;

  // Total CPU time (seconds) consumed by the pool's workers so far, via
  // each worker's per-thread CPU clock. Unlike wall-clock, this is a
  // workload-intrinsic cost measure — on an oversubscribed host (fewer
  // cores than workers) concurrent pools time-slice, but the CPU seconds
  // each pool burns still reflect its share of the work. The adaptive
  // probe scores map-vs-combine intensity with this when PMU counters are
  // unavailable. Returns 0.0 on platforms without pthread_getcpuclockid.
  double cpu_seconds() const;

 private:
  void worker_main(std::size_t index, std::optional<std::size_t> cpu);

  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;
  mutable std::condition_variable work_ready_;
  mutable std::condition_variable work_done_;
  std::function<void(std::size_t)> job_;
  std::size_t generation_ = 0;      // bumped per run_on_all call
  std::size_t remaining_ = 0;       // workers yet to finish current job
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
  std::size_t pinned_count_ = 0;
  std::vector<std::int64_t> os_tids_;  // pre-sized before workers launch
  std::size_t tids_recorded_ = 0;
};

}  // namespace ramr::sched
