#include "sched/task_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ramr::sched {

TaskQueues::TaskQueues(std::size_t num_groups) : queues_(num_groups) {
  if (num_groups == 0) {
    throw ConfigError("TaskQueues needs at least one locality group");
  }
}

void TaskQueues::push(std::size_t group, TaskRange task) {
  Queue& q = queues_.at(group);
  std::lock_guard lock(q.mutex);
  q.tasks.push_back(task);
}

void TaskQueues::distribute(std::size_t num_splits, std::size_t task_size) {
  if (task_size == 0) throw ConfigError("task size must be >= 1");
  std::size_t group = 0;
  for (std::size_t begin = 0; begin < num_splits; begin += task_size) {
    const std::size_t end = std::min(begin + task_size, num_splits);
    push(group, TaskRange{begin, end});
    group = (group + 1) % queues_.size();
  }
}

void TaskQueues::distribute_blocked(std::size_t num_splits,
                                    std::size_t task_size) {
  if (task_size == 0) throw ConfigError("task size must be >= 1");
  const std::size_t groups = queues_.size();
  // Contiguous block of splits per group, sizes differing by at most one.
  const std::size_t base = num_splits / groups;
  const std::size_t extra = num_splits % groups;
  std::size_t begin = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t block = base + (g < extra ? 1 : 0);
    const std::size_t end = begin + block;
    for (std::size_t b = begin; b < end; b += task_size) {
      push(g, TaskRange{b, std::min(b + task_size, end)});
    }
    begin = end;
  }
}

std::optional<TaskRange> TaskQueues::pop_local(Queue& q) {
  std::lock_guard lock(q.mutex);
  if (q.head >= q.tasks.size()) return std::nullopt;
  return q.tasks[q.head++];
}

std::optional<TaskRange> TaskQueues::pop_steal(Queue& q) {
  std::lock_guard lock(q.mutex);
  if (q.head >= q.tasks.size()) return std::nullopt;
  TaskRange task = q.tasks.back();
  q.tasks.pop_back();
  return task;
}

std::optional<TaskRange> TaskQueues::pop(std::size_t group) {
  if (group >= queues_.size()) {
    throw Error("TaskQueues::pop: group " + std::to_string(group) +
                " out of range");
  }
  if (auto task = pop_local(queues_[group])) {
    local_pops_.fetch_add(1, std::memory_order_relaxed);
    return task;
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    const std::size_t victim = (group + offset) % queues_.size();
    if (auto task = pop_steal(queues_[victim])) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return std::nullopt;
}

std::size_t TaskQueues::pending() const {
  std::size_t n = 0;
  for (const Queue& q : queues_) {
    std::lock_guard lock(q.mutex);
    n += q.tasks.size() - std::min(q.head, q.tasks.size());
  }
  return n;
}

}  // namespace ramr::sched
