#include "sched/thread_pool.hpp"

#include "common/affinity.hpp"
#include "common/error.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#include <time.h>
#endif

namespace ramr::sched {

namespace {

std::int64_t current_os_tid() {
#if defined(__linux__)
  return static_cast<std::int64_t>(syscall(SYS_gettid));
#else
  return 0;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers,
                       std::vector<std::optional<std::size_t>> pin_cpu) {
  if (num_workers == 0) {
    throw ConfigError("ThreadPool needs at least one worker");
  }
  os_tids_.resize(num_workers, 0);
  threads_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    std::optional<std::size_t> cpu;
    if (i < pin_cpu.size()) cpu = pin_cpu[i];
    threads_.emplace_back([this, i, cpu] { worker_main(i, cpu); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_on_all(std::function<void(std::size_t)> fn) {
  start(std::move(fn));
  wait();
}

void ThreadPool::start(std::function<void(std::size_t)> fn) {
  if (!fn) throw Error("ThreadPool::start: empty function");
  std::lock_guard lock(mutex_);
  if (remaining_ != 0) {
    throw Error("ThreadPool::start: a region is already in flight");
  }
  job_ = std::move(fn);
  remaining_ = threads_.size();
  first_error_ = nullptr;
  ++generation_;
  work_ready_.notify_all();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] { return remaining_ == 0; });
  if (first_error_) std::rethrow_exception(first_error_);
}

double ThreadPool::cpu_seconds() const {
#if defined(__unix__) && !defined(__APPLE__)
  // Per-thread CPU clocks need the native handles; the threads_ vector is
  // immutable after construction and the workers stay alive until the
  // destructor joins them, so reading the handles without the mutex is
  // safe from any caller that outlives the pool.
  double total = 0.0;
  for (const std::thread& t : threads_) {
    clockid_t clock_id;
    auto handle = const_cast<std::thread&>(t).native_handle();
    if (pthread_getcpuclockid(handle, &clock_id) != 0) continue;
    timespec ts{};
    if (clock_gettime(clock_id, &ts) != 0) continue;
    total += static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  return total;
#else
  return 0.0;
#endif
}

std::vector<std::int64_t> ThreadPool::os_tids() const {
  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] { return tids_recorded_ == os_tids_.size(); });
  return os_tids_;
}

void ThreadPool::worker_main(std::size_t index,
                             std::optional<std::size_t> cpu) {
  const bool pinned = cpu && affinity::pin_current_thread(*cpu);
  {
    std::lock_guard lock(mutex_);
    if (pinned) ++pinned_count_;
    os_tids_[index] = current_os_tid();
    if (++tids_recorded_ == os_tids_.size()) work_done_.notify_all();
  }
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_ && generation_ == seen_generation) return;
      seen_generation = generation_;
    }
    // job_ is stable while remaining_ > 0: start() cannot replace it until
    // every worker has decremented remaining_ for this generation.
    std::exception_ptr error;
    try {
      job_(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace ramr::sched
