// Per-locality-group task queues with work stealing.
//
// Paper Sec. III: "The map tasks are added in the task queues — one for each
// locality group. Map workers dequeue tasks from their local queue". A task
// is a contiguous range of input splits (task size = splits per task, a
// tuning knob). Workers prefer their own group's queue and steal from other
// groups only when local work runs out, preserving NUMA locality while
// keeping load balanced.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace ramr::sched {

// A task: the half-open split-index range [begin, end).
struct TaskRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool operator==(const TaskRange&) const = default;
};

// Streaming-mode completion callback (see src/io/stream_input.hpp): the
// worker that finished a task reports it so the window slot the task's
// splits live in can be retired once its last task completes. Must be
// cheap and must not throw.
class TaskCompletionListener {
 public:
  virtual ~TaskCompletionListener() = default;
  virtual void on_task_complete(const TaskRange& task) noexcept = 0;
};

class TaskQueues {
 public:
  explicit TaskQueues(std::size_t num_groups);

  std::size_t num_groups() const { return queues_.size(); }

  // Enqueue a task into a group's queue (normally done once, before the map
  // phase starts). Thread-safe.
  void push(std::size_t group, TaskRange task);

  // Splits [0, num_splits) into tasks of `task_size` splits (last task may
  // be short) and deals them round-robin across groups.
  void distribute(std::size_t num_splits, std::size_t task_size);

  // Same, but gives each group one contiguous block of the split range —
  // the NUMA-faithful policy when the input was first-touched node by node
  // (a group's workers then stream their own node's memory; stealing still
  // rebalances the tail).
  void distribute_blocked(std::size_t num_splits, std::size_t task_size);

  // Dequeue for a worker of `group`: local queue first (FIFO), then steal
  // from the other groups (from the tail, classic stealing order). Returns
  // std::nullopt when every queue is empty.
  std::optional<TaskRange> pop(std::size_t group);

  // Total tasks currently enqueued (diagnostics).
  std::size_t pending() const;

  // How many pops were satisfied locally vs. by stealing (diagnostics for
  // the locality tests).
  std::size_t local_pops() const { return local_pops_.load(); }
  std::size_t steals() const { return steals_.load(); }

  // ---- streaming mode (src/io/: an IO-lane feeder pushes tasks live) ----
  //
  // Between open_stream() and close_stream() an empty pop() means "wait,
  // more tasks may arrive", not "all work done" — the mapper task loop
  // polls stream_open() to tell the cases apart. close_stream() is a
  // release store ordered after the feeder's final push, so a worker that
  // observes the closed flag and then re-pops is guaranteed to see every
  // task (see drain_map_tasks in engine/emit_strategy.hpp).
  void open_stream() { stream_open_.store(true, std::memory_order_release); }
  void close_stream() {
    stream_open_.store(false, std::memory_order_release);
  }
  bool stream_open() const {
    return stream_open_.load(std::memory_order_acquire);
  }

  // Completion routing for streaming backpressure: workers call
  // notify_complete() after a task fully succeeded (map + strategy flush)
  // so the listener can release the task's window slot. Install before the
  // workers start; null (the default) keeps the call a single pointer
  // check.
  void set_completion_listener(TaskCompletionListener* listener) {
    listener_ = listener;
  }
  void notify_complete(const TaskRange& task) {
    if (listener_ != nullptr) listener_->on_task_complete(task);
  }

  // Times a worker found every queue empty while the stream was still open
  // (map compute outran the IO lane — the inverse of IoStats::io_stalls).
  std::size_t stream_waits() const { return stream_waits_.load(); }
  void note_stream_wait() {
    stream_waits_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct Queue {
    mutable std::mutex mutex;
    std::vector<TaskRange> tasks;  // FIFO from the front, steal from back
    std::size_t head = 0;          // index of next local pop
  };

  std::optional<TaskRange> pop_local(Queue& q);
  std::optional<TaskRange> pop_steal(Queue& q);

  std::vector<Queue> queues_;
  std::atomic<std::size_t> local_pops_{0};
  std::atomic<std::size_t> steals_{0};
  std::atomic<bool> stream_open_{false};
  std::atomic<std::size_t> stream_waits_{0};
  TaskCompletionListener* listener_ = nullptr;
};

}  // namespace ramr::sched
