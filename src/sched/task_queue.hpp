// Per-locality-group task queues with work stealing.
//
// Paper Sec. III: "The map tasks are added in the task queues — one for each
// locality group. Map workers dequeue tasks from their local queue". A task
// is a contiguous range of input splits (task size = splits per task, a
// tuning knob). Workers prefer their own group's queue and steal from other
// groups only when local work runs out, preserving NUMA locality while
// keeping load balanced.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace ramr::sched {

// A task: the half-open split-index range [begin, end).
struct TaskRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool operator==(const TaskRange&) const = default;
};

class TaskQueues {
 public:
  explicit TaskQueues(std::size_t num_groups);

  std::size_t num_groups() const { return queues_.size(); }

  // Enqueue a task into a group's queue (normally done once, before the map
  // phase starts). Thread-safe.
  void push(std::size_t group, TaskRange task);

  // Splits [0, num_splits) into tasks of `task_size` splits (last task may
  // be short) and deals them round-robin across groups.
  void distribute(std::size_t num_splits, std::size_t task_size);

  // Same, but gives each group one contiguous block of the split range —
  // the NUMA-faithful policy when the input was first-touched node by node
  // (a group's workers then stream their own node's memory; stealing still
  // rebalances the tail).
  void distribute_blocked(std::size_t num_splits, std::size_t task_size);

  // Dequeue for a worker of `group`: local queue first (FIFO), then steal
  // from the other groups (from the tail, classic stealing order). Returns
  // std::nullopt when every queue is empty.
  std::optional<TaskRange> pop(std::size_t group);

  // Total tasks currently enqueued (diagnostics).
  std::size_t pending() const;

  // How many pops were satisfied locally vs. by stealing (diagnostics for
  // the locality tests).
  std::size_t local_pops() const { return local_pops_.load(); }
  std::size_t steals() const { return steals_.load(); }

 private:
  struct Queue {
    mutable std::mutex mutex;
    std::vector<TaskRange> tasks;  // FIFO from the front, steal from back
    std::size_t head = 0;          // index of next local pop
  };

  std::optional<TaskRange> pop_local(Queue& q);
  std::optional<TaskRange> pop_steal(Queue& q);

  std::vector<Queue> queues_;
  std::atomic<std::size_t> local_pops_{0};
  std::atomic<std::size_t> steals_{0};
};

}  // namespace ramr::sched
