// Pool-driven parallel merge sort for the merge phase.
//
// Both runtimes sort the final container's (key, value) pairs on the
// general-purpose pool: the vector is cut into one chunk per worker, chunks
// are std::sort-ed concurrently, then pairwise in-place merges run in
// parallel rounds until one sorted range remains.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sched/thread_pool.hpp"

namespace ramr::sched {

template <typename T, typename Compare>
void parallel_sort(ThreadPool& pool, std::vector<T>& items, Compare comp) {
  const std::size_t n = items.size();
  const std::size_t workers = pool.size();
  if (n < 2) return;
  if (workers < 2 || n < 4096) {
    std::sort(items.begin(), items.end(), comp);
    return;
  }

  // Chunk boundaries: workers+1 fenceposts over [0, n].
  std::vector<std::size_t> bounds(workers + 1);
  for (std::size_t i = 0; i <= workers; ++i) {
    bounds[i] = n * i / workers;
  }

  pool.run_on_all([&](std::size_t w) {
    std::sort(items.begin() + static_cast<std::ptrdiff_t>(bounds[w]),
              items.begin() + static_cast<std::ptrdiff_t>(bounds[w + 1]),
              comp);
  });

  // Pairwise merge rounds: round r merges runs of 2^r chunks. Worker w owns
  // the merge whose left run starts at chunk index w * 2^(r+1).
  for (std::size_t width = 1; width < workers; width *= 2) {
    pool.run_on_all([&](std::size_t w) {
      const std::size_t left = w * 2 * width;
      const std::size_t mid = left + width;
      const std::size_t right = std::min(left + 2 * width, workers);
      if (mid >= workers || left >= workers) return;
      std::inplace_merge(
          items.begin() + static_cast<std::ptrdiff_t>(bounds[left]),
          items.begin() + static_cast<std::ptrdiff_t>(bounds[mid]),
          items.begin() + static_cast<std::ptrdiff_t>(bounds[right]), comp);
    });
  }
}

// Splits [0, total) into one contiguous range per worker (the same
// fencepost arithmetic as parallel_sort's chunking) and calls
// f(worker, lo, hi) concurrently on the pool. Ranges are identical across
// calls with the same (pool, total), so a count pass and a copy pass see
// the same partition. Empty ranges are skipped.
template <typename F>
void parallel_for_ranges(ThreadPool& pool, std::size_t total, F&& f) {
  if (total == 0) return;
  const std::size_t workers = pool.size();
  if (workers < 2) {
    f(std::size_t{0}, std::size_t{0}, total);
    return;
  }
  pool.run_on_all([&](std::size_t w) {
    const std::size_t lo = total * w / workers;
    const std::size_t hi = total * (w + 1) / workers;
    if (lo < hi) f(w, lo, hi);
  });
}

// Parallel tree reduction of per-thread containers: log2(count) rounds of
// pairwise merge_from, each round executed concurrently on the pool. After
// the call, containers[0] holds the combined result.
template <typename Container>
void parallel_tree_merge(ThreadPool& pool,
                         std::vector<Container>& containers) {
  const std::size_t count = containers.size();
  if (count < 2) return;
  const std::size_t workers = pool.size();
  for (std::size_t stride = 1; stride < count; stride *= 2) {
    pool.run_on_all([&](std::size_t w) {
      // A round may have more merge pairs than workers: stride over them.
      for (std::size_t dst = w * 2 * stride; dst + stride < count;
           dst += workers * 2 * stride) {
        containers[dst].merge_from(containers[dst + stride]);
      }
    });
  }
}

}  // namespace ramr::sched
