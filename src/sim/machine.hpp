// Machine models for the two evaluation platforms.
//
// The simulator reproduces the paper's *measured effects* from first-class
// architectural quantities: SMT issue sharing, cache capacities and their
// sharing domains, NUMA communication tiers, memory bandwidth, and the
// costs of the SPSC queue operations. The two presets encode the paper's
// Sec. IV-A systems:
//   * haswell(): dual-socket, 14 cores/socket, 2-way HT, 35MB L3/socket,
//     out-of-order, ~2.6GHz;
//   * xeon_phi(): 57 in-order cores @1.1GHz, 4-way SMT, 512KB L2 slices
//     forming one ring-shared L2, no L3 — uniform inter-core distance.
#pragma once

#include <cstddef>
#include <string>

#include "perf/stall_model.hpp"
#include "topology/topology.hpp"

namespace ramr::sim {

struct SimMachine {
  std::string name;
  topo::Topology topology;

  // Core model.
  double freq_ghz = 2.6;
  double thread_ipc = 2.2;   // peak IPC of one thread alone on a core
  double core_issue = 3.0;   // total issue the core sustains across SMT
  bool out_of_order = true;

  // Full (unshared) cache capacities + latencies; per-thread views are
  // derived by the execution model according to who shares what.
  double l1_bytes = 32e3;
  double l2_bytes = 256e3;
  double l3_bytes = 35e6;  // per socket; 0 = absent
  double l2_latency = 12.0;
  double l3_latency = 40.0;
  double mem_latency = 200.0;

  // Whether L2 is private per core (Haswell) or one shared ring (Phi).
  bool l2_shared_ring = false;

  double socket_mem_bw_gbps = 60.0;

  // Inter-thread communication: cycles to move one cache line, by distance
  // tier (consumer-side cost of pulling the producer's line).
  double comm_line_same_core = 14.0;
  double comm_line_same_socket = 60.0;
  double comm_line_cross_socket = 220.0;

  // SPSC queue operation costs (cycles).
  double queue_push_cycles = 14.0;       // per record, producer side
  double queue_pop_batch_cycles = 70.0;  // per batch: control-var handshake
  double queue_pop_elem_cycles = 4.0;    // per record within a batch

  double comm_line(topo::Distance d) const {
    switch (d) {
      case topo::Distance::kSameCpu:
      case topo::Distance::kSameCore:
        return comm_line_same_core;
      case topo::Distance::kSameSocket:
        return comm_line_same_socket;
      case topo::Distance::kCrossSocket:
        return comm_line_cross_socket;
    }
    return comm_line_cross_socket;
  }
};

// The paper's dual-socket Haswell server.
SimMachine haswell();

// The paper's Xeon Phi (KNC) co-processor.
SimMachine xeon_phi();

// A Haswell-class machine with a different shape — per-core resources and
// latencies stay Haswell-like while core count scales (the paper's Sec. I
// motivation: "it is foreseeable that systems with higher densities will
// appear"). L3 capacity scales with the core count.
SimMachine haswell_scaled(std::size_t sockets, std::size_t cores_per_socket,
                          std::size_t smt);

// What-if platform: Knights Landing (Xeon Phi x200), the successor of the
// paper's KNC co-processor — 64 out-of-order-lite cores @1.3GHz, 4-way SMT,
// 1MB L2 per core-pair tile, MCDRAM-class bandwidth. Not evaluated in the
// paper; included to ask how its conclusions carry to the next generation
// (bench_ablation_knl).
SimMachine knights_landing();

}  // namespace ramr::sim
