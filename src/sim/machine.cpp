#include "sim/machine.hpp"

namespace ramr::sim {

SimMachine haswell() {
  SimMachine m{.name = "haswell", .topology = topo::haswell_server()};
  m.freq_ghz = 2.6;
  m.thread_ipc = 2.2;
  m.core_issue = 3.0;
  m.out_of_order = true;
  m.l1_bytes = 32e3;
  m.l2_bytes = 256e3;
  m.l3_bytes = 35e6;
  m.l2_latency = 12.0;
  m.l3_latency = 40.0;
  m.mem_latency = 200.0;
  m.l2_shared_ring = false;
  m.socket_mem_bw_gbps = 60.0;
  m.comm_line_same_core = 14.0;
  m.comm_line_same_socket = 60.0;
  m.comm_line_cross_socket = 220.0;
  // Out-of-order core: the control-variable handshake and the push stores
  // overlap surrounding work almost entirely.
  m.queue_push_cycles = 6.0;
  m.queue_pop_batch_cycles = 20.0;
  m.queue_pop_elem_cycles = 3.0;
  return m;
}

SimMachine haswell_scaled(std::size_t sockets, std::size_t cores_per_socket,
                          std::size_t smt) {
  SimMachine m = haswell();
  m.name = "haswell-" + std::to_string(sockets) + "x" +
           std::to_string(cores_per_socket) + "x" + std::to_string(smt);
  m.topology = topo::make_server(m.name, sockets, cores_per_socket, smt);
  // 2.5MB of L3 slice per core, as on real Haswell-EP parts.
  m.l3_bytes = 2.5e6 * static_cast<double>(cores_per_socket);
  return m;
}

SimMachine xeon_phi() {
  SimMachine m{.name = "xeon-phi", .topology = topo::xeon_phi()};
  m.freq_ghz = 1.1;
  // In-order KNC core: one thread alone issues on alternate cycles only;
  // it takes 2+ hardware threads to approach the core's issue width.
  m.thread_ipc = 0.6;
  m.core_issue = 1.7;
  m.out_of_order = false;
  m.l1_bytes = 32e3;
  // 28.5MB of ring-connected L2 slices, universally shared.
  m.l2_bytes = 512e3;
  m.l2_shared_ring = true;
  m.l3_bytes = 0.0;
  m.l2_latency = 24.0;  // ring hop average
  m.l3_latency = 0.0;
  m.mem_latency = 300.0;
  m.socket_mem_bw_gbps = 140.0;  // GDDR5 aggregate
  // Ring-shared L2 makes every inter-core transfer cost about the same —
  // this is what collapses the pinning-policy gains to 1-3% (Sec. IV-B).
  m.comm_line_same_core = 24.0;
  m.comm_line_same_socket = 34.0;
  m.comm_line_cross_socket = 34.0;  // single package: tier unused
  // In-order core: the per-batch control handshake is a full unoverlapped
  // round-trip through the ring (loads of the producer-owned tail, store to
  // head) — this is why batched reads pay off up to ~11x on Phi (Fig. 6).
  m.queue_push_cycles = 14.0;
  m.queue_pop_batch_cycles = 200.0;
  m.queue_pop_elem_cycles = 6.0;
  return m;
}

SimMachine knights_landing() {
  // 64 cores x 4 SMT = 256 hardware threads; OS ids contiguous per core
  // like the KNC preset.
  std::vector<topo::LogicalCpu> cpus;
  cpus.reserve(64 * 4);
  for (std::size_t core = 0; core < 64; ++core) {
    for (std::size_t t = 0; t < 4; ++t) {
      cpus.push_back(topo::LogicalCpu{
          .os_id = core * 4 + t, .socket = 0, .core = core, .smt = t});
    }
  }
  SimMachine m{.name = "knights-landing",
               .topology = topo::Topology("knights-landing", std::move(cpus),
                                          /*uniform_l2=*/true)};
  m.freq_ghz = 1.3;
  // Silvermont-derived 2-wide out-of-order core: far better single-thread
  // issue than KNC's in-order pipeline, still SMT-hungry.
  m.thread_ipc = 1.3;
  m.core_issue = 2.0;
  m.out_of_order = true;
  m.l1_bytes = 32e3;
  m.l2_bytes = 512e3;  // 1MB per 2-core tile -> 512KB per core share
  m.l2_shared_ring = true;  // mesh: near-uniform inter-core distance
  m.l3_bytes = 0.0;
  m.l2_latency = 17.0;
  m.l3_latency = 0.0;
  m.mem_latency = 230.0;          // MCDRAM in cache/flat mode
  m.socket_mem_bw_gbps = 400.0;   // MCDRAM-class bandwidth
  m.comm_line_same_core = 20.0;
  m.comm_line_same_socket = 30.0;
  m.comm_line_cross_socket = 30.0;
  m.queue_push_cycles = 8.0;
  m.queue_pop_batch_cycles = 60.0;  // OoO hides part of the handshake
  m.queue_pop_elem_cycles = 4.0;
  return m;
}

}  // namespace ramr::sim
