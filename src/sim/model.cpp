#include "sim/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "perf/stall_model.hpp"
#include "topology/pinning.hpp"

namespace ramr::sim {

namespace {

using perf::Counters;
using perf::MemSystemView;
using perf::PhaseProfile;

// ---- tuning constants (documented rationale) --------------------------------

// Fusion penalty: the combine's irregular container traffic interleaved
// into the map stream thrashes the private caches and lengthens the miss
// chains the OoO window must absorb. Scaled by how irregular BOTH phases
// are — two streaming phases interleave for free.
constexpr double kFusionMemAmp = 8.0;
// Interference cannot amplify stalls without bound (a DRAM-bound miss is
// not made 8x slower by a busy sibling); both penalty terms saturate.
constexpr double kFusionMemCap = 2.2;
constexpr double kFusionResCap = 3.5;
// The Fig. 10 profiles are measured over the *fused* map-combine phase;
// the isolated phases RAMR runs stall somewhat less (private stream, no
// container interleave in the same window).
constexpr double kDecoupleRelief = 0.8;
// Fusion penalty: mixed map+combine dependency chains keep the ROB/RS/LSB
// full far more often than either phase alone (Sec. IV-E). Scaled by the
// *product* of the phases' resource pressures: the penalty exists only when
// both sides compete for back-end resources.
constexpr double kFusionResAmp = 9.0;
// Wider SMT (Phi's 4-way) packs more fused threads per core, worsening both
// interference terms.
double smt_amp_scale(double smt) { return 1.0 + 0.3 * std::max(0.0, smt - 2.0); }
// Per-emission cost of the inline combine call in the fused baseline
// (function call + container index math), cycles per record.
constexpr double kInlineEmitCycles = 3.0;
// Fraction of producer issue demand a busy-waiting (spinning) blocked
// mapper still burns on its core, starving a co-located combiner.
constexpr double kSpinIssueShare = 0.85;
// Residual wake-up overhead of sleep-on-failed-push.
constexpr double kSleepOverhead = 0.03;
// Consumer-side streaming: larger contiguous batches let the prefetcher
// hide part of the producer-to-consumer line transfers (floor at 35% —
// coherence transfers stream less perfectly than DRAM).
double batch_stream_factor(double batch) {
  return 0.35 + 0.65 / std::sqrt(std::max(1.0, batch));
}
// Producer-side share of the line ping-pong: once the ring is deeper than
// the producer's L1, every push re-acquires ownership of a line the
// consumer read on the previous lap (MESI RFO priced at the same distance
// tier).
constexpr double kProducerRfoShare = 0.3;
// Combiner idle while the queue fills to a deep batch threshold.
double batch_fill_idle(double batch, double capacity) {
  return 1.0 / (1.0 - 0.35 * std::min(0.95, batch / capacity));
}

// ---- capacity views -----------------------------------------------------------

// Per-thread view: cache capacities divided among sharers proportionally to
// footprint (a bigger working set claims more of a shared cache).
MemSystemView make_view(const SimMachine& m, double my_fp, double core_fp,
                        double socket_fp, std::size_t threads_per_socket) {
  MemSystemView v;
  const double core_w = core_fp > 0.0 ? my_fp / core_fp : 1.0;
  const double socket_w = socket_fp > 0.0 ? my_fp / socket_fp : 1.0;
  v.l1_bytes = m.l1_bytes * core_w;
  if (m.l2_shared_ring) {
    // Phi: all L2 slices form one shared cache for the whole package.
    const double total_l2 =
        m.l2_bytes * static_cast<double>(m.topology.num_cores());
    v.l2_bytes = total_l2 * socket_w;
  } else {
    v.l2_bytes = m.l2_bytes * core_w;
  }
  v.l3_bytes = m.l3_bytes > 0.0 ? m.l3_bytes * socket_w : 0.0;
  v.l2_latency = m.l2_latency;
  v.l3_latency = m.l3_latency;
  v.mem_latency = m.mem_latency;
  v.out_of_order = m.out_of_order;
  (void)threads_per_socket;
  return v;
}

struct PhaseCost {
  double cpu = 0.0;  // cycles/byte of compute issue
  double mem = 0.0;  // cycles/byte of memory stalls
  double res = 0.0;  // cycles/byte of resource stalls
  double total() const { return cpu + mem + res; }
};

PhaseCost phase_cost(const SimMachine& m, const PhaseProfile& p,
                     const MemSystemView& view) {
  const Counters c = perf::estimate_phase(p, 1.0, view);
  return {c.instructions / m.thread_ipc, c.mem_stall_cycles,
          c.resource_stall_cycles};
}

// SMT issue sharing: `demands` are the per-thread compute utilisations
// (cpu / total cycles) of the threads resident on one core. Returns the
// dilation factor applied to every resident thread's cpu component.
double issue_dilation(const SimMachine& m, double total_demand) {
  const double capacity = m.core_issue / m.thread_ipc;
  return std::max(1.0, total_demand / capacity);
}

// Memory-bandwidth dilation for stall components on one socket.
double bw_dilation(const SimMachine& m, double traffic_gbps) {
  return std::max(1.0, traffic_gbps / m.socket_mem_bw_gbps);
}

double hz(const SimMachine& m) { return m.freq_ghz * 1e9; }

// Shared tail phases (identical structure for both runtimes).
void fill_tail_phases(const SimMachine& m, const SimWorkload& w,
                      std::size_t containers, PhaseBreakdown& phases) {
  const double container_bytes = w.profile.container_bytes;
  const double workers = static_cast<double>(m.topology.num_logical());
  // Reduce: Phoenix++-style parallel key-range merge — every worker folds
  // its slice of the key space across all thread-local containers.
  phases.reduce = static_cast<double>(containers) * container_bytes * 1.5 /
                  workers / hz(m);
  // Merge: parallel sort of the final container's entries.
  const double entries = std::max(1.0, container_bytes / 16.0);
  const double sort_cycles = entries * std::log2(entries + 2.0) * 3.0;
  phases.merge = sort_cycles / std::max(1.0, workers / 2.0) / hz(m);
  // Split: one streaming pass to locate split boundaries.
  phases.split = w.input_bytes * 0.02 / hz(m);
}

}  // namespace

// ---- Phoenix++ ------------------------------------------------------------------

BaselineResult simulate_phoenix(const SimMachine& m, const SimWorkload& w) {
  BaselineResult r;
  const auto& prof = w.profile;
  const std::size_t workers = m.topology.num_logical();
  const std::size_t smt = m.topology.smt_per_core();
  const std::size_t per_socket = workers / m.topology.num_sockets();

  const double fp_fused =
      prof.map.footprint_bytes + prof.combine.footprint_bytes;
  const double core_fp = static_cast<double>(smt) * fp_fused;
  const double socket_fp = static_cast<double>(per_socket) * fp_fused;

  const MemSystemView view_m =
      make_view(m, prof.map.footprint_bytes, core_fp, socket_fp, per_socket);
  const MemSystemView view_c = make_view(m, prof.combine.footprint_bytes,
                                         core_fp, socket_fp, per_socket);
  const PhaseCost cm = phase_cost(m, prof.map, view_m);
  const PhaseCost cc = phase_cost(m, prof.combine, view_c);

  // Fusion penalties (see constants above).
  const double amp_scale = smt_amp_scale(static_cast<double>(smt));
  const double container_pressure =
      std::min(1.0, prof.combine.footprint_bytes /
                        std::max(1.0, view_c.l2_bytes));
  const double mem_amp =
      1.0 + std::min(kFusionMemCap,
                     kFusionMemAmp * amp_scale *
                         (1.0 - prof.map.regularity + 0.15) *
                         (1.0 - prof.combine.regularity) * container_pressure);
  const double res_amp =
      1.0 + std::min(kFusionResCap,
                     kFusionResAmp * amp_scale * prof.map.resource_pressure *
                         prof.combine.resource_pressure);
  const double cpu = cm.cpu + cc.cpu +
                     prof.kv_per_byte * kInlineEmitCycles;
  const double mem = (cm.mem + cc.mem) * mem_amp;
  const double res = (cm.res + cc.res) * res_amp;

  // SMT issue sharing among `smt` identical fused threads.
  const double solo = cpu + mem + res;
  const double demand = static_cast<double>(smt) * (cpu / solo);
  const double f_issue = issue_dilation(m, demand);
  double cycles = cpu * f_issue + mem + res;

  // Socket bandwidth.
  const double traffic_bytes =
      prof.map.bytes_per_byte + prof.combine.bytes_per_byte;
  const double traffic_gbps = traffic_bytes * m.freq_ghz *
                              static_cast<double>(per_socket) / cycles;
  const double f_bw = bw_dilation(m, traffic_gbps);
  cycles = cpu * f_issue + mem * f_bw + res;

  r.cycles_per_byte = cycles;
  r.phases.map_combine =
      w.input_bytes / static_cast<double>(workers) * cycles / hz(m);
  fill_tail_phases(m, w, workers, r.phases);

  // Fig. 10 counters: what PMUs would report over the map-combine phase.
  r.counters = perf::estimate_phase(prof.map, w.input_bytes, view_m);
  Counters comb = perf::estimate_phase(prof.combine, w.input_bytes, view_c);
  comb.input_bytes = 0.0;  // same input stream, do not double count
  r.counters += comb;
  r.counters.mem_stall_cycles *= mem_amp;
  r.counters.resource_stall_cycles *= res_amp;
  return r;
}

// ---- RAMR -----------------------------------------------------------------------

RamrResult simulate_ramr(const SimMachine& m, const SimWorkload& w,
                         const RamrConfig& cfg) {
  if (cfg.ratio == 0) throw ConfigError("simulate_ramr: ratio must be >= 1");
  if (cfg.batch == 0 || cfg.batch > cfg.queue_capacity) {
    throw ConfigError("simulate_ramr: need 1 <= batch <= queue capacity");
  }
  if (cfg.precombine_factor < 1.0) {
    throw ConfigError("simulate_ramr: precombine_factor must be >= 1");
  }
  RamrResult r;
  const auto& prof = w.profile;
  const std::size_t logical = m.topology.num_logical();
  const std::size_t group_threads = cfg.ratio + 1;
  const std::size_t groups =
      std::max<std::size_t>(1, logical / group_threads);
  const std::size_t mappers = groups * cfg.ratio;
  const std::size_t combiners = groups;
  r.num_mappers = mappers;
  r.num_combiners = combiners;

  // ---- communication distance from the actual pinning plan --------------
  double comm_cycles_per_line;
  double placement_penalty = 1.0;
  if (cfg.pin == PinPolicy::kOsDefault) {
    // Unpinned: the Linux scheduler keeps threads loosely spread; pairs
    // land in the same socket most of the time but rarely share a core,
    // and migrations add a small tax.
    const bool multi_socket = m.topology.num_sockets() > 1;
    comm_cycles_per_line =
        multi_socket ? 0.75 * m.comm_line_same_socket +
                           0.25 * m.comm_line_cross_socket
                     : m.comm_line_same_socket;
    placement_penalty = 1.03;
  } else {
    const topo::PinningPlan plan =
        topo::make_plan(m.topology, cfg.pin, mappers, combiners);
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t j = 0; j < plan.mappers_of_combiner.size(); ++j) {
      for (std::size_t mi : plan.mappers_of_combiner[j]) {
        sum += m.comm_line(
            m.topology.distance(plan.mapper_cpu[mi], plan.combiner_cpu[j]));
        ++pairs;
      }
    }
    comm_cycles_per_line = pairs > 0 ? sum / static_cast<double>(pairs)
                                     : m.comm_line_same_core;
  }
  r.mean_comm_cycles_per_line = comm_cycles_per_line;

  // ---- per-thread cache views --------------------------------------------
  // Under the paired policy a core hosts a slice of the group's mapper +
  // combiner mix; role-oblivious placements tend to co-locate same-role
  // threads (two mappers, or two combiners, per core).
  const bool paired = cfg.pin == PinPolicy::kRamrPaired;
  const std::size_t per_socket =
      (mappers + combiners) / m.topology.num_sockets();
  const double fp_m = prof.map.footprint_bytes;
  const double fp_c = prof.combine.footprint_bytes;
  const double smt = static_cast<double>(m.topology.smt_per_core());
  const double mix_fp = (static_cast<double>(cfg.ratio) * fp_m + fp_c) /
                        static_cast<double>(group_threads);
  const bool role_mixed_cores = paired || !m.out_of_order;
  const double core_fp_m = role_mixed_cores ? mix_fp * smt : smt * fp_m;
  const double core_fp_c = role_mixed_cores ? mix_fp * smt : smt * fp_c;
  const double socket_fp =
      static_cast<double>(per_socket) * mix_fp;

  const MemSystemView view_m =
      make_view(m, fp_m, core_fp_m, socket_fp, per_socket);
  const MemSystemView view_c =
      make_view(m, fp_c, core_fp_c, socket_fp, per_socket);
  PhaseCost cm = phase_cost(m, prof.map, view_m);
  PhaseCost cc = phase_cost(m, prof.combine, view_c);
  cm.mem *= kDecoupleRelief;
  cm.res *= kDecoupleRelief;
  cc.mem *= kDecoupleRelief;
  cc.res *= kDecoupleRelief;

  // ---- queue costs ---------------------------------------------------------
  // Pre-combining (extension): the record stream entering the ring shrinks
  // by the factor; the mapper pays a probe (~6 cycles) per original record.
  const double kv_per_byte = prof.kv_per_byte / cfg.precombine_factor;
  const double precombine_probe =
      cfg.precombine_factor > 1.0 ? prof.kv_per_byte * 6.0 : 0.0;
  const double batch = static_cast<double>(cfg.batch);
  const double lines_per_kv = prof.comm_lines_per_kv > 0.0
                                  ? prof.comm_lines_per_kv
                                  : prof.kv_bytes / 64.0;
  // Producer: per-record push stores, plus line-ownership RFOs once the
  // ring no longer fits its L1 (the consumer held those lines last lap).
  const double ring_bytes =
      static_cast<double>(cfg.queue_capacity) * prof.kv_bytes;
  const double rfo = ring_bytes > view_m.l1_bytes
                         ? kv_per_byte * lines_per_kv *
                               comm_cycles_per_line * kProducerRfoShare
                         : 0.0;
  const double push =
      kv_per_byte * m.queue_push_cycles + rfo + precombine_probe;
  const double pop_ctrl =
      kv_per_byte * (m.queue_pop_batch_cycles / batch +
                     m.queue_pop_elem_cycles);
  const double comm = kv_per_byte * lines_per_kv *
                      comm_cycles_per_line * batch_stream_factor(batch);
  // Over-deep batches spill the consumer's L1 share; in-order cores eat the
  // refetch latency in full, which is why Phi prefers batches of 20-500
  // while Haswell tolerates ~1000 (Fig. 7).
  const double batch_bytes = batch * prof.kv_bytes;
  const double spill_latency =
      m.out_of_order ? m.l2_latency : 2.0 * m.l2_latency;
  const double spill =
      batch_bytes > view_c.l1_bytes
          ? kv_per_byte * lines_per_kv * spill_latency *
                (1.0 - view_c.l1_bytes / batch_bytes)
          : 0.0;

  // ---- per-side cycles/byte -------------------------------------------------
  // Mapper: map work plus pushes (pushes are compute: stores to a hot line).
  double map_cpu = cm.cpu + push;
  double map_stall = cm.mem + cm.res;
  // Combiner, per byte of its group's input stream: combine work plus the
  // amortised pop handshake plus the transfer costs (stall-like).
  double comb_cpu = cc.cpu + pop_ctrl;
  double comb_stall = (cc.mem + comm + spill) + cc.res;

  // ---- SMT issue sharing within a group's cores ------------------------------
  // Paired placement: each core hosts the group's mapper:combiner mix —
  // complementary demands share the issue width gracefully. Role-oblivious
  // placements co-locate same-role threads: smt mappers (or combiners)
  // contend with identical demands.
  const double c_map_solo = map_cpu + map_stall;
  const double c_comb_solo = comb_cpu + comb_stall;
  const double u_map = map_cpu / c_map_solo;
  const double u_comb = comb_cpu / c_comb_solo;
  // In-order barrel schedulers (Phi) issue round-robin among hardware
  // threads whatever they are doing, so placement cannot change the issue
  // sharing there — one of the two reasons the pinning policy barely
  // matters on Phi (the other is the uniform ring-L2 distance).
  double f_issue_m;
  double f_issue_c;
  if (paired || !m.out_of_order) {
    const double mix_demand =
        smt * (static_cast<double>(cfg.ratio) * u_map + u_comb) /
        static_cast<double>(group_threads);
    f_issue_m = f_issue_c = issue_dilation(m, mix_demand);
  } else {
    f_issue_m = issue_dilation(m, smt * u_map);
    f_issue_c = issue_dilation(m, smt * u_comb);
  }

  double c_map = map_cpu * f_issue_m + map_stall;
  double c_comb = comb_cpu * f_issue_c + comb_stall;

  // ---- bandwidth -------------------------------------------------------------
  const double socket_groups =
      static_cast<double>(groups) / static_cast<double>(m.topology.num_sockets());
  const double group_rate_est =
      std::min(static_cast<double>(cfg.ratio) / c_map, 1.0 / c_comb);
  const double traffic_bytes = prof.map.bytes_per_byte +
                               prof.combine.bytes_per_byte +
                               2.0 * kv_per_byte * prof.kv_bytes / 64.0;
  const double traffic_gbps =
      traffic_bytes * m.freq_ghz * socket_groups * group_rate_est;
  const double f_bw = bw_dilation(m, traffic_gbps);
  c_map = map_cpu * f_issue_m + cm.mem * f_bw + cm.res;
  c_comb = comb_cpu * f_issue_c + (cc.mem + comm + spill) * f_bw + cc.res;

  // ---- pipeline balance -------------------------------------------------------
  // Group throughput (bytes/cycle): mappers produce at ratio/c_map, the
  // combiner consumes at 1/c_comb (idle factor for deep batches).
  const double idle = batch_fill_idle(batch, static_cast<double>(cfg.queue_capacity));
  double c_comb_eff = c_comb * idle;
  double produce = static_cast<double>(cfg.ratio) / c_map;
  double consume = 1.0 / c_comb_eff;
  r.mapper_limited = produce <= consume;

  if (!r.mapper_limited) {
    // Producers block on full queues. Busy-wait keeps spinning mappers on
    // the combiner's core burning issue slots; sleep frees them.
    const double blocked_share = 1.0 - consume / produce;
    const double extra =
        cfg.sleep_on_full
            ? kSleepOverhead
            : kSpinIssueShare * blocked_share *
                  (static_cast<double>(cfg.ratio) * u_map) /
                  std::max(1.0, smt - 1.0);
    c_comb_eff *= 1.0 + extra;
    consume = 1.0 / c_comb_eff;
  }
  const double group_rate = std::min(produce, consume);

  r.mapper_cycles_per_byte = c_map;
  r.combiner_cycles_per_byte = c_comb_eff;

  const double group_bytes =
      w.input_bytes / static_cast<double>(groups);
  r.phases.map_combine =
      group_bytes / group_rate / hz(m) * placement_penalty;
  fill_tail_phases(m, w, combiners, r.phases);
  return r;
}

double ramr_speedup(const SimMachine& m, const SimWorkload& w,
                    const RamrConfig& cfg) {
  const double base = simulate_phoenix(m, w).phases.total();
  const double ours = simulate_ramr(m, w, cfg).phases.total();
  return base / ours;
}

RamrConfig tuned_config(const SimMachine& m, const SimWorkload& w,
                        RamrConfig base) {
  // Descending sweep with a 3% tie band favouring *larger* ratios: when a
  // single combiner can keep up with more mappers, spending threads on
  // mappers is the better use of the machine (paper Fig. 4: light combine
  // -> ratio 3).
  RamrConfig best = base;
  double best_time = -1.0;
  for (std::size_t ratio : {4u, 3u, 2u, 1u}) {
    RamrConfig c = base;
    c.ratio = ratio;
    const double t = simulate_ramr(m, w, c).phases.total();
    if (best_time < 0.0 || t < best_time * 0.97) {
      best_time = t;
      best = c;
    }
  }
  return best;
}

}  // namespace ramr::sim
