#include "sim/workload.hpp"

#include "common/error.hpp"

namespace ramr::sim {

using apps::AppId;

double input_bytes_of(AppId app, const apps::InputSize& size) {
  switch (app) {
    case AppId::kWordCount:
    case AppId::kHistogram:
    case AppId::kLinearRegression:
      return static_cast<double>(size.primary);  // already bytes
    case AppId::kKMeans:
      // 3 floats per point.
      return static_cast<double>(size.primary) * sizeof(apps::KmPoint);
    case AppId::kPca:
      return static_cast<double>(size.primary) *
             static_cast<double>(size.secondary) * sizeof(double);
    case AppId::kMatrixMultiply:
      // A (r x c) and B (c x r).
      return 2.0 * static_cast<double>(size.primary) *
             static_cast<double>(size.secondary) * sizeof(double);
  }
  throw Error("input_bytes_of: unknown app");
}

SimWorkload suite_workload(AppId app, apps::ContainerFlavor flavor,
                           apps::PlatformId platform, apps::SizeClass size) {
  SimWorkload w;
  w.profile = perf::app_profile(app, flavor);
  const apps::InputSize in = apps::table1_input(app, platform, size);
  w.input_bytes = input_bytes_of(app, in);
  w.name = std::string(apps::app_name(app)) + "/" +
           apps::to_string(flavor) + "/" + in.describe(app);
  return w;
}

SimWorkload synth_workload(const synth::SynthParams& params) {
  using synth::WorkKind;
  SimWorkload w;
  w.name = std::string("synth(map=") + synth::to_string(params.map_kind) +
           ":" + std::to_string(params.map_intensity) +
           ",combine=" + synth::to_string(params.combine_kind) + ":" +
           std::to_string(params.combine_intensity) + ")";
  // One synthetic element is one 8-byte unit of input.
  constexpr double kElementBytes = 8.0;
  w.input_bytes = static_cast<double>(params.elements) * kElementBytes;

  auto phase = [&](WorkKind kind, std::uint64_t intensity,
                   std::size_t arena_bytes) {
    perf::PhaseProfile p;
    if (kind == WorkKind::kCpu) {
      // cpu_kernel: sin+exp+sqrt+fixups ~ 25 instructions per iteration on
      // a tiny contiguous buffer.
      p.instr_per_byte = 25.0 * static_cast<double>(intensity) / kElementBytes;
      p.bytes_per_byte = 0.5;
      p.footprint_bytes = 4e3;
      p.regularity = 0.98;
      p.resource_pressure = 0.45;  // long dependent FP chains
    } else {
      // memory_kernel: ~4 instructions but one dependent 64-byte line per
      // hop over a wide arena.
      p.instr_per_byte = 4.0 * static_cast<double>(intensity) / kElementBytes;
      p.bytes_per_byte =
          64.0 * static_cast<double>(intensity) / kElementBytes;
      p.footprint_bytes = static_cast<double>(arena_bytes);
      p.regularity = 0.02;
      p.resource_pressure = 0.35;  // LSB fills behind the chase
    }
    return p;
  };
  w.profile.name = "synth";
  w.profile.map = phase(params.map_kind, params.map_intensity,
                        params.arena_bytes);
  w.profile.combine = phase(params.combine_kind, params.combine_intensity,
                            params.arena_bytes);
  w.profile.kv_per_byte = 1.0 / kElementBytes;
  w.profile.kv_bytes = static_cast<double>(sizeof(synth::SynthValue));
  return w;
}

}  // namespace ramr::sim
