// Simulator workload descriptions: a workload = an app profile + the input
// volume it processes.
#pragma once

#include <string>

#include "apps/flavor.hpp"
#include "apps/suite.hpp"
#include "perf/profiles.hpp"
#include "synth/synth_app.hpp"

namespace ramr::sim {

struct SimWorkload {
  std::string name;
  perf::AppProfile profile;
  double input_bytes = 0.0;
};

// A suite app at a Table I input size.
SimWorkload suite_workload(apps::AppId app, apps::ContainerFlavor flavor,
                           apps::PlatformId platform, apps::SizeClass size);

// Actual processed bytes behind a Table I cell (points/matrices converted
// to their in-memory sizes).
double input_bytes_of(apps::AppId app, const apps::InputSize& size);

// The synthetic test-suite workload (Sec. III-C / Fig. 4): derives a
// profile from the kernel kinds/intensities.
SimWorkload synth_workload(const synth::SynthParams& params);

}  // namespace ramr::sim
