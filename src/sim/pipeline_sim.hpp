// Transient (discrete-time) simulation of the RAMR pipeline.
//
// The steady-state model in sim/model.hpp prices the pipeline's *rates*;
// this simulator plays out its *dynamics* for one representative group:
// queue fill at start-up, producer blocking against the capacity bound,
// batch-quantised consumption, and the end-of-stream drain ("Before
// exiting, combine workers consume any remaining data and empty their
// assigned queues"). It validates the steady-state makespan (tests assert
// agreement) and yields the quantities only dynamics can show — occupancy
// trajectories, blocked-time fractions, drain-tail length — mirroring the
// diagnostics the real runtime reports (queue_max_occupancy et al.).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/machine.hpp"
#include "sim/model.hpp"
#include "sim/workload.hpp"

namespace ramr::sim {

struct TransientResult {
  double seconds = 0.0;  // map-combine phase makespan
  // Queue dynamics (elements, per mapper ring).
  double max_depth = 0.0;
  double mean_depth = 0.0;                // time-averaged, while mapping
  std::vector<double> depth_series;       // sampled depth of ring 0
  double sample_period_seconds = 0.0;
  // Utilisation over the makespan: work done relative to the unblocked
  // service rate of each side.
  double mapper_busy_fraction = 0.0;
  double combiner_busy_fraction = 0.0;
  double drain_tail_seconds = 0.0;        // after the last mapper closed
  // Mass conservation check: records produced == records consumed.
  double records_produced = 0.0;
  double records_consumed = 0.0;
};

// Simulates one group (ratio mappers + 1 combiner) processing its share of
// the workload, using the per-side costs of the steady-state model. `steps`
// bounds the simulation (guards pathological configs); the default is ample
// for every suite workload.
TransientResult simulate_ramr_transient(const SimMachine& machine,
                                        const SimWorkload& workload,
                                        const RamrConfig& config,
                                        std::size_t max_steps = 2000000);

}  // namespace ramr::sim
