// The execution models: Phoenix++ (fused map-combine) and RAMR (decoupled,
// pipelined) on a SimMachine.
//
// Modelling summary (constants and rationale in model.cpp):
//   * Per-thread cycles/byte = cpu (instructions / thread IPC) + memory
//     stalls + resource stalls, from perf::estimate_phase under the cache
//     shares implied by thread placement.
//   * SMT issue sharing: threads on one core share `core_issue`; a core's
//     compute demand beyond that capacity dilates every resident thread's
//     cpu component. This is where complementary (CPU-map + memory-combine)
//     placements win and identical fused threads lose.
//   * Fusion penalties (Phoenix++ only): interleaving the combine's
//     irregular container accesses and long-latency misses into the map
//     stream amplifies memory and resource stalls — the paper's Sec. IV-E
//     explanation of why stall-prone apps profit from decoupling.
//   * RAMR adds explicit queue costs: per-record push, per-batch pop
//     handshake amortised by the batch size, per-line producer-to-consumer
//     transfer priced by the pinning distance, an L1-spill penalty for
//     over-large batches, and a fill-idle penalty as the batch approaches
//     the queue capacity. Blocked producers under busy-wait steal issue
//     slots from co-located combiners; sleeping producers do not.
#pragma once

#include <cstddef>
#include <string>

#include "common/config.hpp"
#include "perf/counters.hpp"
#include "sim/machine.hpp"
#include "sim/workload.hpp"

namespace ramr::sim {

struct PhaseBreakdown {
  double split = 0.0;
  double map_combine = 0.0;
  double reduce = 0.0;
  double merge = 0.0;

  double total() const { return split + map_combine + reduce + merge; }
  double map_combine_fraction() const {
    const double t = total();
    return t > 0.0 ? map_combine / t : 0.0;
  }
};

// ---- Phoenix++ baseline -----------------------------------------------------

struct BaselineResult {
  PhaseBreakdown phases;
  double cycles_per_byte = 0.0;  // fused map-combine, post-contention
  perf::Counters counters;       // map-combine phase only (Fig. 10 metrics)
};

BaselineResult simulate_phoenix(const SimMachine& machine,
                                const SimWorkload& workload);

// ---- RAMR ---------------------------------------------------------------------

struct RamrConfig {
  std::size_t ratio = 2;  // mappers per combiner; pools sized to fill the machine
  std::size_t batch = 256;
  std::size_t queue_capacity = 5000;
  PinPolicy pin = PinPolicy::kRamrPaired;
  bool sleep_on_full = true;
  // Mapper-side pre-combining (extension; see engine/precombine.hpp): the
  // factor by which coalescing shrinks the record stream (1 = off). The
  // mapper pays a small probe cost per ORIGINAL record; everything priced
  // per record downstream (push, pop, communication) divides by the factor.
  double precombine_factor = 1.0;
};

struct RamrResult {
  PhaseBreakdown phases;
  std::size_t num_mappers = 0;
  std::size_t num_combiners = 0;
  double mapper_cycles_per_byte = 0.0;    // per mapper-stream byte
  double combiner_cycles_per_byte = 0.0;  // per group byte
  bool mapper_limited = true;             // which side bottlenecks the pipe
  double mean_comm_cycles_per_line = 0.0; // priced pinning distance
};

RamrResult simulate_ramr(const SimMachine& machine, const SimWorkload& workload,
                         const RamrConfig& config);

// Convenience for the figures: end-to-end speedup of RAMR over Phoenix++ on
// the same machine/workload (>1 means RAMR is faster).
double ramr_speedup(const SimMachine& machine, const SimWorkload& workload,
                    const RamrConfig& config);

// Sweeps ratio in {1,2,3,4} and returns the best-performing config for the
// workload (batch/queue untouched) — the paper tunes the ratio per app.
RamrConfig tuned_config(const SimMachine& machine, const SimWorkload& workload,
                        RamrConfig base);

}  // namespace ramr::sim
