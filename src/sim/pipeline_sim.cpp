#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ramr::sim {

TransientResult simulate_ramr_transient(const SimMachine& machine,
                                        const SimWorkload& workload,
                                        const RamrConfig& config,
                                        std::size_t max_steps) {
  // Per-side rates from the steady-state cost model (cycles per byte of the
  // respective stream).
  const RamrResult rates = simulate_ramr(machine, workload, config);
  const double hz = machine.freq_ghz * 1e9;
  const double kv_per_byte = workload.profile.kv_per_byte;
  if (kv_per_byte <= 0.0) {
    throw Error("simulate_ramr_transient: workload emits no records");
  }

  // One group processes groups'th of the input; mappers split it evenly.
  const std::size_t groups =
      std::max<std::size_t>(1, rates.num_combiners);
  const double group_bytes = workload.input_bytes / static_cast<double>(groups);
  const double bytes_per_mapper =
      group_bytes / static_cast<double>(config.ratio);
  const double records_per_mapper = bytes_per_mapper * kv_per_byte;

  // Producer: records/second while unblocked. Consumer: records/second of
  // group-stream service capacity.
  const double produce_rate =
      hz / rates.mapper_cycles_per_byte * kv_per_byte;
  const double consume_rate =
      hz / rates.combiner_cycles_per_byte * kv_per_byte *
      static_cast<double>(config.ratio);

  // Time step: fine enough that one step moves ~1/8 of a batch.
  const double batch = static_cast<double>(config.batch);
  const double dt = std::max(1e-9, batch / std::max(produce_rate, consume_rate) / 8.0);
  const double capacity = static_cast<double>(config.queue_capacity);

  struct Mapper {
    double remaining = 0.0;  // records still to produce
    double depth = 0.0;      // ring occupancy (records)
    bool closed = false;
  };
  std::vector<Mapper> mappers(config.ratio);
  for (auto& m : mappers) m.remaining = records_per_mapper;

  TransientResult r;
  const std::size_t kSamples = 512;
  const double est_time =
      records_per_mapper / std::min(produce_rate, consume_rate /
                                    static_cast<double>(config.ratio)) * 1.5;
  r.sample_period_seconds = std::max(dt, est_time / kSamples);
  double next_sample = 0.0;

  double t = 0.0;
  double busy_map_time = 0.0;
  double busy_comb_time = 0.0;
  double depth_integral = 0.0;
  double mapping_time = 0.0;
  double close_time = -1.0;
  std::size_t rr_cursor = 0;

  for (std::size_t step = 0; step < max_steps; ++step) {
    // ---- producers -------------------------------------------------------
    // Busy = utilisation: records pushed relative to the unblocked rate.
    double pushed_total = 0.0;
    const double push_capacity =
        produce_rate * dt * static_cast<double>(mappers.size());
    for (auto& m : mappers) {
      if (m.closed) continue;
      if (m.remaining <= 0.0) {
        m.closed = true;
        continue;
      }
      const double want = std::min(produce_rate * dt, m.remaining);
      const double space = capacity - m.depth;
      const double pushed = std::min(want, space);
      if (pushed > 0.0) {
        m.depth += pushed;
        m.remaining -= pushed;
        r.records_produced += pushed;
        pushed_total += pushed;
      }
      // pushed < want and space exhausted -> blocked (not busy).
    }
    busy_map_time += push_capacity > 0.0 ? dt * pushed_total / push_capacity
                                         : 0.0;

    // ---- consumer (round-robin, batch-quantised) ---------------------------
    double budget = consume_rate * dt;
    double consumed_total = 0.0;
    const bool all_closed =
        std::all_of(mappers.begin(), mappers.end(),
                    [](const Mapper& m) { return m.closed; });
    for (std::size_t i = 0; i < mappers.size() && budget > 0.0; ++i) {
      Mapper& m = mappers[(rr_cursor + i) % mappers.size()];
      // Batched consume: a sweep takes up to `batch` contiguous records —
      // partial batches happen at the stream tail either way.
      const double available = m.depth;
      if (available <= 0.0) continue;
      const double take = std::min({available, batch, budget});
      m.depth -= take;
      budget -= take;
      consumed_total += take;
    }
    rr_cursor = (rr_cursor + 1) % mappers.size();
    r.records_consumed += consumed_total;
    busy_comb_time += dt * consumed_total / (consume_rate * dt);

    // ---- bookkeeping --------------------------------------------------------
    double total_depth = 0.0;
    double max_depth = 0.0;
    for (const auto& m : mappers) {
      total_depth += m.depth;
      max_depth = std::max(max_depth, m.depth);
    }
    r.max_depth = std::max(r.max_depth, max_depth);
    if (!all_closed) {
      depth_integral += dt * total_depth / static_cast<double>(mappers.size());
      mapping_time += dt;
    } else if (close_time < 0.0) {
      close_time = t;
    }
    if (t >= next_sample) {
      r.depth_series.push_back(mappers[0].depth);
      next_sample += r.sample_period_seconds;
    }

    t += dt;
    if (all_closed && total_depth <= 1e-9) break;  // drained: phase over
  }

  r.seconds = t;
  r.mean_depth = mapping_time > 0.0 ? depth_integral / mapping_time : 0.0;
  r.mapper_busy_fraction = t > 0.0 ? busy_map_time / t : 0.0;
  r.combiner_busy_fraction = t > 0.0 ? busy_comb_time / t : 0.0;
  r.drain_tail_seconds = close_time >= 0.0 ? t - close_time : 0.0;
  return r;
}

}  // namespace ramr::sim
