// AtomicGlobal — the MRPhi coupling strategy (paper Sec. II related work:
// Lu et al., "Optimizing the MapReduce framework on Intel Xeon Phi
// coprocessor").
//
// ONE worker pool, ONE globally shared atomically-accessed container (no
// thread-local containers, no combine phase, no reduce-phase merging — the
// paper: "an atomically-accessed global container was favored instead of
// thread-local containers"). Map emissions go straight to the global array
// with atomic fetch-ops; the merge phase reads it out sorted. Where
// Phoenix++ pays reduce-phase merging and RAMR pays queue traffic, this
// strategy pays coherence contention on hot keys.
//
// Restricted, like the original, to apps whose combiner is an atomic
// fetch-op over an a-priori key range (AtomicArrayContainer) — HG/LR-class
// workloads; WC-class arbitrary keys do not fit this design.
//
// Failure protocol: same cooperative-cancellation contract as the other
// strategies (poll at task boundaries, quiet exit on CancelledError,
// attribute real failures on the token).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>

#include "common/cancellation.hpp"
#include "engine/app_model.hpp"
#include "engine/collect.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/result.hpp"

namespace ramr::engine {

template <mr::GlobalAppSpec App>
class AtomicGlobal {
 public:
  using Container = typename App::container_type;
  using key_type = typename Container::key_type;
  using value_type = typename Container::value_type;
  static constexpr bool kHasReduce = false;  // the container is already global
  static constexpr const char* kName = "atomic-global";

  void map_combine(MapCombineContext& ctx, const App& app,
                   const typename App::input_type& input,
                   RunResult<key_type, value_type>& result) {
    // The whole map IS the combine: atomic fetch-ops on the shared array.
    ctx.injector.on_container_alloc();
    global_.emplace(app.make_global_container());
    Container& global = *global_;
    std::atomic<std::size_t> tasks_executed{0};
    ctx.pools.mapper_pool().run_on_all([&](std::size_t worker) {
      TaskLoopControl ctl = TaskLoopControl::create(ctx, worker);
      ActiveScope live(ctl.beat);
      const auto emit = [&](const key_type& k, const value_type& v) {
        ctx.injector.on_emit(worker);
        global.emit(k, v);
      };
      try {
        const std::size_t executed =
            drain_map_tasks(ctl, app, input, emit, [] {});
        tasks_executed.fetch_add(executed, std::memory_order_relaxed);
      } catch (const common::CancelledError&) {
        // A peer failed or the watchdog cancelled: exit quietly.
      } catch (const std::exception& e) {
        ctx.cancel.cancel(common::CancelCause::kWorkerFailed, "map-combine",
                          "worker-" + std::to_string(worker), e.what());
        throw;
      }
    });
    result.tasks_executed = tasks_executed.load();
  }

  void reduce(PoolSet&) {}  // never called: kHasReduce is false

  // Copy-out fanned over the worker pool: for_each_range on the atomic
  // array is safe here — the emitting phase quiesced at the map-combine
  // pool join.
  void collect(RunResult<key_type, value_type>& result, PoolSet& pools) {
    result.pairs = collect_pairs(pools.mapper_pool(), *global_);
  }

 private:
  std::optional<Container> global_;
};

}  // namespace ramr::engine
