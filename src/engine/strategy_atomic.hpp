// AtomicGlobal — the MRPhi coupling strategy (paper Sec. II related work:
// Lu et al., "Optimizing the MapReduce framework on Intel Xeon Phi
// coprocessor").
//
// ONE worker pool, ONE globally shared atomically-accessed container (no
// thread-local containers, no combine phase, no reduce-phase merging — the
// paper: "an atomically-accessed global container was favored instead of
// thread-local containers"). Map emissions go straight to the global array
// with atomic fetch-ops; the merge phase reads it out sorted. Where
// Phoenix++ pays reduce-phase merging and RAMR pays queue traffic, this
// strategy pays coherence contention on hot keys.
//
// RAMR_ATOMIC_SHARDS relieves exactly that contention: with 2^k > 1 shards
// the single array is replaced by radix-sharded sub-arrays (one flat
// allocation, shard bases cache-line aligned; see
// containers/sharded_atomic_container.hpp) and each worker emits into the
// shard picked by its worker index (worker & (shards-1)). The collect pass
// merges the shards per key through the same two-pass parallel collect, so
// the output is identical to the single-container baseline — only the
// coherence traffic changes. Unset (or =1) keeps the historical single
// container, byte-identical behaviour.
//
// Restricted, like the original, to apps whose combiner is an atomic
// fetch-op over an a-priori key range (AtomicArrayContainer) — HG/LR-class
// workloads; WC-class arbitrary keys do not fit this design.
//
// Failure protocol: same cooperative-cancellation contract as the other
// strategies (poll at task boundaries, quiet exit on CancelledError,
// attribute real failures on the token).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>

#include "common/cancellation.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "containers/sharded_atomic_container.hpp"
#include "engine/app_model.hpp"
#include "engine/collect.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/result.hpp"

namespace ramr::engine {

// Resolves RAMR_ATOMIC_SHARDS against the worker count. Unset or 1 = the
// historical single container; 0 = auto (one shard per worker, capped at
// 64); any other value is rounded UP to the next power of two (the emit
// path radix-masks, it never divides). Values above 1024 are rejected with
// a ConfigError naming the variable, matching every other RAMR_* knob.
inline std::size_t resolve_atomic_shards(std::size_t num_workers) {
  const std::uint64_t raw = env::get_uint(kEnvAtomicShards, 1);
  if (raw > 1024) {
    throw ConfigError(std::string(kEnvAtomicShards) + ": value " +
                      std::to_string(raw) + " out of range [0, 1024]");
  }
  std::size_t want = static_cast<std::size_t>(raw);
  if (want == 0) {  // auto: a shard per worker, bounded
    want = num_workers < 64 ? num_workers : 64;
    if (want == 0) want = 1;
  }
  std::size_t shards = 1;
  while (shards < want) shards <<= 1;
  return shards;
}

template <mr::GlobalAppSpec App>
class AtomicGlobal {
 public:
  using Container = typename App::container_type;
  using key_type = typename Container::key_type;
  using value_type = typename Container::value_type;
  using Sharded =
      containers::ShardedAtomicContainer<value_type, Container::kOp>;
  static constexpr bool kHasReduce = false;  // the container is already global
  static constexpr const char* kName = "atomic-global";

  void map_combine(MapCombineContext& ctx, const App& app,
                   const typename App::input_type& input,
                   RunResult<key_type, value_type>& result) {
    // The whole map IS the combine: atomic fetch-ops on the shared array.
    const std::size_t shards =
        resolve_atomic_shards(ctx.pools.num_mappers());
    ctx.injector.on_container_alloc();
    std::atomic<std::size_t> tasks_executed{0};
    if (shards <= 1) {
      // Historical single-container path, untouched.
      global_.emplace(app.make_global_container());
      Container& global = *global_;
      ctx.pools.mapper_pool().run_on_all([&](std::size_t worker) {
        run_worker(ctx, app, input, worker, tasks_executed,
                   [&](const key_type& k, const value_type& v) {
                     ctx.injector.on_emit(worker);
                     global.emit(k, v);
                   });
      });
    } else {
      sharded_.emplace(app.make_global_container().capacity(), shards);
      Sharded& global = *sharded_;
      const std::size_t mask = shards - 1;
      ctx.pools.mapper_pool().run_on_all([&](std::size_t worker) {
        const std::size_t shard = worker & mask;
        run_worker(ctx, app, input, worker, tasks_executed,
                   [&, shard](const key_type& k, const value_type& v) {
                     ctx.injector.on_emit(worker);
                     global.emit(shard, k, v);
                   });
      });
      result.dispatch.atomic_shards = shards;
    }
    result.tasks_executed = tasks_executed.load();
  }

  void reduce(PoolSet&) {}  // never called: kHasReduce is false

  // Copy-out fanned over the worker pool: ranged reads on the (possibly
  // sharded) atomic array are safe here — the emitting phase quiesced at
  // the map-combine pool join. The sharded view folds shards per key, so
  // both paths produce identical pairs.
  void collect(RunResult<key_type, value_type>& result, PoolSet& pools) {
    if (sharded_.has_value()) {
      result.pairs = collect_pairs(pools.mapper_pool(), *sharded_);
    } else {
      result.pairs = collect_pairs(pools.mapper_pool(), *global_);
    }
  }

 private:
  template <typename Emit>
  void run_worker(MapCombineContext& ctx, const App& app,
                  const typename App::input_type& input, std::size_t worker,
                  std::atomic<std::size_t>& tasks_executed,
                  Emit&& emit) {
    TaskLoopControl ctl = TaskLoopControl::create(ctx, worker);
    ActiveScope live(ctl.beat);
    try {
      const std::size_t executed =
          drain_map_tasks(ctl, app, input, emit, [] {});
      tasks_executed.fetch_add(executed, std::memory_order_relaxed);
    } catch (const common::CancelledError&) {
      // A peer failed or the watchdog cancelled: exit quietly.
    } catch (const std::exception& e) {
      ctx.cancel.cancel(common::CancelCause::kWorkerFailed, "map-combine",
                        "worker-" + std::to_string(worker), e.what());
      throw;
    }
  }

  std::optional<Container> global_;
  std::optional<Sharded> sharded_;
};

}  // namespace ramr::engine
