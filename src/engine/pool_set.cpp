#include "engine/pool_set.hpp"

#include <cstdio>
#include <exception>
#include <utility>

#include "common/error.hpp"

namespace ramr::engine {

namespace {
std::string what_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "<non-standard exception>";
  }
}
}  // namespace

JoinOutcome join_pools_collect(sched::ThreadPool& first,
                               sched::ThreadPool& second) {
  JoinOutcome outcome;
  try {
    first.wait();
  } catch (...) {
    outcome.first_error = std::current_exception();
  }
  try {
    second.wait();
  } catch (...) {
    if (!outcome.first_error) {
      outcome.first_error = std::current_exception();
    } else {
      ++outcome.suppressed;
      outcome.suppressed_message = what_of(std::current_exception());
    }
  }
  return outcome;
}

void join_pools_rethrow_first(sched::ThreadPool& first,
                              sched::ThreadPool& second) {
  JoinOutcome outcome = join_pools_collect(first, second);
  if (!outcome.first_error) return;
  if (outcome.suppressed > 0) {
    std::fprintf(stderr,
                 "[ramr] note: %zu additional worker error(s) suppressed by "
                 "the join protocol; first suppressed: %s\n",
                 outcome.suppressed, outcome.suppressed_message.c_str());
  }
  std::rethrow_exception(outcome.first_error);
}

std::string PoolSet::shape_key(const topo::Topology& topology,
                               const RuntimeConfig& resolved) {
  return topology.name() + "/" + std::to_string(topology.num_logical()) +
         "|dual|m=" + std::to_string(resolved.num_mappers) +
         "|c=" + std::to_string(resolved.num_combiners) +
         "|pin=" + to_string(resolved.pin_policy) +
         "|mem=" + to_string(resolved.mem_mode);
}

std::string PoolSet::shape_key_single(const topo::Topology& topology,
                                      std::size_t num_workers,
                                      PinPolicy policy) {
  const std::size_t workers =
      num_workers == 0 ? topology.num_logical() : num_workers;
  return topology.name() + "/" + std::to_string(topology.num_logical()) +
         "|single|w=" + std::to_string(workers) + "|pin=" + to_string(policy);
}

void PoolSet::rebind(const RuntimeConfig& resolved) {
  if (!dual()) {
    throw ConfigError("rebind is only defined for the dual pool shape");
  }
  const std::string key = shape_key(topo_, resolved);
  if (key != shape_) {
    throw ConfigError("pool-set rebind across shapes (" + shape_ + " -> " +
                      key + ")");
  }
  cfg_ = resolved;
}

PoolSet::PoolSet(topo::Topology topology, const RuntimeConfig& config)
    : topo_(std::move(topology)),
      cfg_(config.resolved(topo_.num_logical())),
      shape_(shape_key(topo_, cfg_)),
      plan_(topo::make_plan(topo_, cfg_.pin_policy, cfg_.num_mappers,
                            cfg_.num_combiners)),
      mapper_pins_(cfg_.num_mappers),
      combiner_pins_(cfg_.num_combiners) {
  if (cfg_.pin_policy != PinPolicy::kOsDefault) {
    for (std::size_t m = 0; m < cfg_.num_mappers; ++m) {
      mapper_pins_[m] = plan_.mapper_cpu.at(m);
    }
    for (std::size_t j = 0; j < cfg_.num_combiners; ++j) {
      combiner_pins_[j] = plan_.combiner_cpu.at(j);
    }
  }
  mapper_pool_ =
      std::make_unique<sched::ThreadPool>(cfg_.num_mappers, mapper_pins_);
  combiner_pool_ =
      std::make_unique<sched::ThreadPool>(cfg_.num_combiners, combiner_pins_);
  num_groups_ = topo_.num_sockets();
  // RAMR_MEM: the memory layer lives with the pools because placement is a
  // property of (plan, topology) — the strategies reach it via memory().
  if (cfg_.mem_mode != MemMode::kOff) {
    memory_ = std::make_unique<mem::MemoryLayer>(cfg_.mem_mode, topo_, plan_);
  }
}

PoolSet::PoolSet(topo::Topology topology, std::size_t num_workers,
                 PinPolicy policy)
    : topo_(std::move(topology)) {
  const std::size_t workers =
      num_workers == 0 ? topo_.num_logical() : num_workers;
  if (workers == 0) {
    throw ConfigError("PoolSet needs at least one worker");
  }
  cfg_.num_mappers = workers;
  cfg_.num_combiners = 0;
  cfg_.pin_policy = policy;
  shape_ = shape_key_single(topo_, workers, policy);
  plan_.policy = policy;
  mapper_pins_.resize(workers);
  if (policy != PinPolicy::kOsDefault) {
    const auto order = topo_.proximity_order();
    for (std::size_t i = 0; i < workers; ++i) {
      mapper_pins_[i] = policy == PinPolicy::kRoundRobin
                            ? topo_.cpus()[i % topo_.num_logical()].os_id
                            : order[i % order.size()];
    }
  }
  mapper_pool_ = std::make_unique<sched::ThreadPool>(workers, mapper_pins_);
  num_groups_ = topo_.num_sockets();
}

std::size_t PoolSet::group_of_mapper(std::size_t m) const {
  if (cfg_.pin_policy != PinPolicy::kOsDefault && dual() &&
      !plan_.mapper_cpu.empty()) {
    return topo_.by_os_id(plan_.mapper_cpu[m]).socket % num_groups_;
  }
  return m % num_groups_;
}

}  // namespace ramr::engine
