// The application model every runtime programs against: what an application
// must provide to run under any of the three coupling strategies.
//
// Mirrors Phoenix++'s design: an application supplies its input type, an
// intermediate container type (fixed array / fixed hash / regular hash), a
// splitter, and a map function that emits key/value pairs. Combining is the
// container's combiner; how combining couples to mapping is the *strategy's*
// business (see engine/emit_strategy.hpp), not the application's.
#pragma once

#include <concepts>
#include <cstddef>
#include <utility>
#include <vector>

#include "containers/container_traits.hpp"
#include "engine/result.hpp"

namespace ramr::mr {

// An application specification. `map` is templated on the emit callable so
// the exact same app code drives every runtime: the fused strategy passes an
// emitter that combines straight into the worker's container, the pipelined
// strategy one that pushes into the mapper's SPSC ring, the atomic-global
// strategy one that fetch-ops on the shared array.
//
//   struct MyApp {
//     using input_type = ...;
//     using container_type = ...;   // satisfies IntermediateContainer
//     std::size_t num_splits(const input_type&) const;
//     container_type make_container() const;
//     template <typename Emit>
//     void map(const input_type&, std::size_t split, Emit&& emit) const;
//     // Optional: a per-key reducer applied to every combined value during
//     // the reduce phase (e.g. divide a sum by a count). Detected via
//     // `requires`; apps without it get the identity.
//     void reduce(const key_type&, value_type&) const;
//   };
template <typename S>
concept AppSpec = requires(const S& app, const typename S::input_type& in) {
  typename S::input_type;
  typename S::container_type;
  requires containers::IntermediateContainer<typename S::container_type>;
  { app.num_splits(in) } -> std::convertible_to<std::size_t>;
  { app.make_container() } -> std::same_as<typename S::container_type>;
};

// The MRPhi app model: like AppSpec but with a *shared* container —
// make_global_container() is called once per run, and map's emit writes to
// it concurrently from every worker (an AtomicArrayContainer instantiation).
template <typename S>
concept GlobalAppSpec = requires(const S& app,
                                 const typename S::input_type& in) {
  typename S::input_type;
  typename S::container_type;
  { app.num_splits(in) } -> std::convertible_to<std::size_t>;
  { app.make_global_container() } -> std::same_as<typename S::container_type>;
};

template <typename S>
using key_type_of = typename S::container_type::key_type;

template <typename S>
using value_type_of = typename S::container_type::value_type;

// One unified result type for every runtime (see engine/result.hpp).
template <typename K, typename V>
using Result = engine::RunResult<K, V>;

template <typename S>
using result_of = Result<key_type_of<S>, value_type_of<S>>;

// Whether the app supplies the optional per-key reducer over (K, V&).
template <typename S, typename K, typename V>
concept HasReducerFor = requires(const S& app, const K& k, V& v) {
  { app.reduce(k, v) };
};

template <typename S>
concept HasReducer = HasReducerFor<S, key_type_of<S>, value_type_of<S>>;

// Applies the app's reducer to every pair (no-op when absent). Called by
// the phase driver at the end of the reduce phase, after containers merged.
template <typename S, typename K, typename V>
void apply_reducer(const S& app, std::vector<std::pair<K, V>>& pairs) {
  if constexpr (HasReducerFor<S, K, V>) {
    for (auto& [key, value] : pairs) {
      app.reduce(key, value);
    }
  } else {
    (void)app;
    (void)pairs;
  }
}

}  // namespace ramr::mr
