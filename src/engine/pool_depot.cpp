#include "engine/pool_depot.hpp"

namespace ramr::engine {

void PoolDepot::Lease::release() {
  if (depot_ == nullptr || set_ == nullptr) {
    set_.reset();
    depot_ = nullptr;
    return;
  }
  depot_->park(key_, std::move(set_));
  depot_ = nullptr;
}

std::unique_ptr<PoolSet> PoolDepot::take(const std::string& key) {
  std::lock_guard lock(mutex_);
  auto it = shelf_.find(key);
  if (it == shelf_.end() || it->second.empty()) return nullptr;
  std::unique_ptr<PoolSet> set = std::move(it->second.back());
  it->second.pop_back();
  --stats_.idle;
  ++stats_.reused;
  ++stats_.leased;
  return set;
}

void PoolDepot::park(const std::string& key, std::unique_ptr<PoolSet> set) {
  // A set over the idle cap is destroyed outside the lock (its pools join
  // their threads, which can take a while).
  std::unique_ptr<PoolSet> overflow;
  {
    std::lock_guard lock(mutex_);
    --stats_.leased;
    if (stats_.idle >= max_idle_) {
      overflow = std::move(set);
    } else {
      shelf_[key].push_back(std::move(set));
      ++stats_.idle;
    }
  }
}

PoolDepot::Lease PoolDepot::acquire(const topo::Topology& topology,
                                    const RuntimeConfig& config) {
  const RuntimeConfig resolved = config.resolved(topology.num_logical());
  const std::string key = PoolSet::shape_key(topology, resolved);
  if (std::unique_ptr<PoolSet> warm = take(key)) {
    warm->rebind(resolved);
    return Lease(this, key, std::move(warm), true);
  }
  auto cold = std::make_unique<PoolSet>(topology, resolved);
  {
    std::lock_guard lock(mutex_);
    ++stats_.built;
    ++stats_.leased;
  }
  return Lease(this, key, std::move(cold), false);
}

PoolDepot::Lease PoolDepot::acquire_single(const topo::Topology& topology,
                                           std::size_t num_workers,
                                           PinPolicy policy) {
  const std::string key =
      PoolSet::shape_key_single(topology, num_workers, policy);
  if (std::unique_ptr<PoolSet> warm = take(key)) {
    // The single shape synthesizes its config from (workers, policy), both
    // part of the key — nothing to rebind.
    return Lease(this, key, std::move(warm), true);
  }
  auto cold = std::make_unique<PoolSet>(topology, num_workers, policy);
  {
    std::lock_guard lock(mutex_);
    ++stats_.built;
    ++stats_.leased;
  }
  return Lease(this, key, std::move(cold), false);
}

PoolDepot::Stats PoolDepot::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void PoolDepot::clear() {
  std::unordered_map<std::string, std::vector<std::unique_ptr<PoolSet>>>
      doomed;
  {
    std::lock_guard lock(mutex_);
    doomed.swap(shelf_);
    stats_.idle = 0;
  }
  // Sets destroyed (threads joined) outside the lock.
}

PoolDepot& PoolDepot::process() {
  static PoolDepot depot;
  return depot;
}

}  // namespace ramr::engine
