// PhaseDriver — the runtime skeleton every architecture shares.
//
// One MapReduce invocation is the same four-phase sequence regardless of
// how map couples to combine (paper Fig. 1 categories):
//
//   split       : TaskQueues::distribute[_blocked] over locality groups
//   map-combine : delegated to the EmitStrategy (one timed phase; the
//                 pipelined strategy runs two pools concurrently in it)
//   reduce      : strategy merges intermediate state down to one container
//                 (skipped entirely — timer stays 0 — when the strategy
//                 has no reduce, e.g. the atomic-global design)
//   merge       : collect pairs, apply the app's optional per-key reducer,
//                 parallel key sort on the general-purpose pool
//
// The driver also owns the trace wiring: with a Recorder set, every
// strategy gets per-thread lanes (task and drain events), so Phoenix++ and
// MRPhi runs are traceable exactly like RAMR ones.
#pragma once

#include <cstddef>

#include "common/config.hpp"
#include "common/timing.hpp"
#include "engine/app_model.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/pool_set.hpp"
#include "engine/result.hpp"
#include "sched/parallel_sort.hpp"
#include "sched/task_queue.hpp"
#include "trace/trace.hpp"

namespace ramr::engine {

// The phase-sequencing knobs (the strategy-specific knobs stay in
// RuntimeConfig and are read by the strategies from PoolSet::config()).
struct DriverOptions {
  std::size_t task_size = 4;
  SplitDistribution split_distribution = SplitDistribution::kRoundRobin;
};

class PhaseDriver {
 public:
  explicit PhaseDriver(PoolSet& pools, DriverOptions options = {})
      : pools_(pools), options_(options) {}

  // Optional execution tracing: one lane per worker thread, task/drain
  // events, phase marks. The recorder must outlive every run(); pass
  // nullptr to disable (the default).
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

  template <EmitStrategy St, typename App>
  RunResult<typename St::key_type, typename St::value_type> run(
      St& strategy, const App& app, const typename App::input_type& input) {
    RunResult<typename St::key_type, typename St::value_type> result;

    // ---- split ----------------------------------------------------------
    sched::TaskQueues queues(pools_.num_groups());
    {
      ScopedPhase t(result.timers, Phase::kSplit);
      if (options_.split_distribution == SplitDistribution::kBlocked) {
        queues.distribute_blocked(app.num_splits(input), options_.task_size);
      } else {
        queues.distribute(app.num_splits(input), options_.task_size);
      }
    }

    // ---- map-combine (one timed phase, strategy-defined coupling) -------
    TraceLanes lanes = TraceLanes::create(recorder_, pools_);
    MapCombineContext ctx{pools_, queues, lanes};
    {
      ScopedPhase t(result.timers, Phase::kMapCombine);
      strategy.map_combine(ctx, app, input, result);
    }
    result.local_pops = queues.local_pops();
    result.steals = queues.steals();

    // ---- reduce ---------------------------------------------------------
    if constexpr (St::kHasReduce) {
      ScopedPhase t(result.timers, Phase::kReduce);
      strategy.reduce(pools_);
    }

    // ---- merge: collect + optional reducer + parallel key sort ----------
    {
      ScopedPhase t(result.timers, Phase::kMerge);
      strategy.collect(result);
      mr::apply_reducer(app, result.pairs);
      sched::parallel_sort(
          pools_.mapper_pool(), result.pairs,
          [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return result;
  }

 private:
  PoolSet& pools_;
  DriverOptions options_;
  trace::Recorder* recorder_ = nullptr;
};

}  // namespace ramr::engine
