// PhaseDriver — the runtime skeleton every architecture shares.
//
// One MapReduce invocation is the same four-phase sequence regardless of
// how map couples to combine (paper Fig. 1 categories):
//
//   split       : TaskQueues::distribute[_blocked] over locality groups
//   map-combine : delegated to the EmitStrategy (one timed phase; the
//                 pipelined strategy runs two pools concurrently in it)
//   reduce      : strategy merges intermediate state down to one container
//                 (skipped entirely — timer stays 0 — when the strategy
//                 has no reduce, e.g. the atomic-global design)
//   merge       : collect pairs, apply the app's optional per-key reducer,
//                 parallel key sort on the general-purpose pool
//
// The driver also owns the trace wiring: with a Recorder set, every
// strategy gets per-thread lanes (task and drain events), so Phoenix++ and
// MRPhi runs are traceable exactly like RAMR ones.
//
// Robustness: the driver owns one CancellationToken, fault Injector,
// Heartbeats block, and RetryState per run() and threads them to the
// strategy through MapCombineContext. With a deadline or stall bound
// configured it also runs a Watchdog thread that converts a hung or
// over-budget run into a cooperative cancel; the driver then throws a
// structured common::AbortError (phase- and worker-attributed) instead of
// joining forever. All of it is zero-cost when the knobs are off: no
// watchdog thread, a disabled injector, and one token poll per task.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/cancellation.hpp"
#include "common/config.hpp"
#include "common/rss.hpp"
#include "common/timing.hpp"
#include "engine/app_model.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/health.hpp"
#include "engine/pool_set.hpp"
#include "engine/result.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "mem/layer.hpp"
#include "sched/parallel_sort.hpp"
#include "sched/task_queue.hpp"
#include "simd/kernels.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/session.hpp"
#include "trace/trace.hpp"

namespace ramr::engine {

// The phase-sequencing knobs (the strategy-specific knobs stay in
// RuntimeConfig and are read by the strategies from PoolSet::config()).
struct DriverOptions {
  std::size_t task_size = 4;
  SplitDistribution split_distribution = SplitDistribution::kRoundRobin;

  // Robustness knobs, mirroring the RuntimeConfig fields of the same names
  // (driver_options_from copies them; the single-pool runtimes expose them
  // through their own Options structs).
  std::size_t max_task_retries = 0;
  std::size_t deadline_ms = 0;
  std::size_t stall_timeout_ms = 0;
  std::string fault_spec;

  // Provenance of the plan this driver executes, stamped into
  // RunResult::plan: "default" | "env" | "cache" | "probe". The adaptive
  // controller sets cache/probe on the drivers it builds for committed
  // plans; driver_options_from derives env/default from the config.
  std::string plan_source = "default";

  // External cancellation source (a service job's per-job token). When set,
  // the driver runs a watchdog even without deadline/stall bounds; the
  // watchdog forwards the external signal into the per-run token and run()
  // throws AbortError(kExternal). A token already tripped at run() entry
  // aborts before any work starts. Must outlive the run; nullptr = none.
  common::CancellationToken* external_cancel = nullptr;

  // Second external source with identical semantics (a client-owned token
  // chained alongside the scheduler's per-job token). First to trip wins.
  common::CancellationToken* external_cancel2 = nullptr;
};

inline DriverOptions driver_options_from(const RuntimeConfig& cfg) {
  return DriverOptions{cfg.task_size,        cfg.split_distribution,
                       cfg.max_task_retries, cfg.deadline_ms,
                       cfg.stall_timeout_ms, cfg.fault_spec,
                       cfg.env_overrides.any_plan_knob() ? "env" : "default"};
}

// Streaming-run plumbing (PhaseDriver::run_stream): everything an IO-lane
// task pump needs to publish map tasks into a live run. The driver fills
// one of these during the split phase and hands it to Pump::start; the
// pump's feeder thread then pushes TaskRanges through `queues` (whose
// stream was already opened), fires the io_read fault site through
// `injector`, traces window/stall events onto `lane`, and polls `cancel`
// in every wait loop so a failed or aborted run never strands it.
struct StreamHooks {
  sched::TaskQueues* queues = nullptr;
  common::CancellationToken* cancel = nullptr;
  faults::Injector* injector = nullptr;
  trace::Lane* lane = nullptr;  // the "io-lane"; null when tracing is off
  Clock::time_point epoch{};
  std::size_t task_size = 4;
  std::size_t num_groups = 1;
  std::size_t max_retries = 0;  // transient io_read retry budget
};

// A task pump produces map tasks from an external source on its own
// thread (the IO lane; io::StreamFeeder is the implementation).
//   start(hooks)     — spawn the feeder thread; returns immediately;
//   finish()         — join and rethrow the feeder's failure, if any;
//   cancel_and_join()— noexcept unwind path: stop + join, swallow errors;
//   stats()          — IoStats of the finished stream.
template <typename P>
concept TaskPump = requires(P pump, const StreamHooks& hooks) {
  pump.start(hooks);
  pump.finish();
  pump.cancel_and_join();
  { pump.stats() } -> std::convertible_to<IoStats>;
};

namespace detail {
// Sentinel pump for the materialized-input path; never started.
struct NullPump {
  void start(const StreamHooks&) {}
  void finish() {}
  void cancel_and_join() noexcept {}
  IoStats stats() const { return {}; }
};
}  // namespace detail

class PhaseDriver {
 public:
  explicit PhaseDriver(PoolSet& pools, DriverOptions options = {})
      : pools_(pools), options_(std::move(options)) {}

  // Optional execution tracing: one lane per worker thread, task/drain
  // events, phase marks. The recorder must outlive every run(); pass
  // nullptr to disable (the default).
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

  // Optional telemetry session (metric registry, PMU phase counters,
  // sampler); must outlive every run(); nullptr disables (the default, and
  // then every instrumentation site in the engine is one pointer check).
  void set_telemetry(telemetry::Session* session) { telemetry_ = session; }

  // Optional live tuning knobs written by an external governor thread (see
  // engine/tuning.hpp and src/adapt/governor.hpp); must outlive every
  // run(); nullptr disables (the default — strategies then read the static
  // config values).
  void set_tuning(TuningControl* tuning) { tuning_ = tuning; }

  template <EmitStrategy St, typename App>
  RunResult<typename St::key_type, typename St::value_type> run(
      St& strategy, const App& app, const typename App::input_type& input) {
    detail::NullPump pump;
    return run_impl(strategy, app, input, pump);
  }

  // Streaming variant (src/io/): instead of distributing a precomputed
  // split count, the split phase opens the queues' stream and starts the
  // pump's IO-lane thread; mappers wait on the open stream
  // (drain_map_tasks) while the feeder publishes tasks window by window.
  // pump.finish() runs right after the map-combine phase and rethrows the
  // feeder's failure, if any — a failed read cancels the run cooperatively
  // (cause kWorkerFailed, so workers unwind quietly) and the root cause
  // surfaces here, attributed to the io-lane. The pump must be freshly
  // constructed per run.
  template <EmitStrategy St, typename App, TaskPump Pump>
  RunResult<typename St::key_type, typename St::value_type> run_stream(
      St& strategy, const App& app, const typename App::input_type& input,
      Pump& pump) {
    return run_impl(strategy, app, input, pump);
  }

 private:
  template <EmitStrategy St, typename App, typename Pump>
  RunResult<typename St::key_type, typename St::value_type> run_impl(
      St& strategy, const App& app, const typename App::input_type& input,
      Pump& pump) {
    constexpr bool kStreaming = !std::is_same_v<Pump, detail::NullPump>;
    RunResult<typename St::key_type, typename St::value_type> result;

    // A job cancelled before its run started never touches the pools.
    for (common::CancellationToken* ext :
         {options_.external_cancel, options_.external_cancel2}) {
      if (ext != nullptr && ext->cancelled()) {
        common::CancelState state = ext->snapshot();
        if (state.cause == common::CancelCause::kNone) {
          state.cause = common::CancelCause::kExternal;
        }
        throw common::AbortError(std::move(state));
      }
    }

    // ---- per-run robustness state ---------------------------------------
    common::CancellationToken cancel;
    faults::Injector injector(faults::FaultPlan::parse(options_.fault_spec));
    injector.bind(&cancel);
    Heartbeats beats(pools_.num_mappers(), pools_.num_combiners(),
                     pools_.dual());
    RetryState retry;
    retry.max_retries = options_.max_task_retries;
    std::optional<Watchdog> watchdog;
    if (options_.deadline_ms > 0 || options_.stall_timeout_ms > 0 ||
        options_.external_cancel != nullptr ||
        options_.external_cancel2 != nullptr) {
      watchdog.emplace(
          Watchdog::Options{
              std::chrono::milliseconds(options_.deadline_ms),
              std::chrono::milliseconds(options_.stall_timeout_ms),
              options_.external_cancel, options_.external_cancel2},
          cancel, beats);
    }
    const auto mark_phase = [&](Phase phase) {
      if (watchdog) watchdog->set_phase(phase);
    };
    // A watchdog verdict cancels cooperatively; workers unwind quietly and
    // the driver converts the recorded snapshot into a structured error at
    // the next phase boundary. (A worker *failure* instead surfaces as the
    // worker's own exception through the pool join.)
    const auto throw_if_aborted = [&] {
      if (!cancel.cancelled()) return;
      common::CancelState state = cancel.snapshot();
      if (state.cause != common::CancelCause::kWorkerFailed) {
        throw common::AbortError(std::move(state));
      }
    };

    // ---- trace + telemetry setup (before any event is recorded) ---------
    // Every lane must exist before the first record() seals the recorder:
    // the driver's own phase-mark lane first, then one lane per worker.
    trace::Lane* driver_lane =
        recorder_ != nullptr ? &recorder_->lane("driver") : nullptr;
    // The IO lane's trace lane must also exist before the recorder seals.
    trace::Lane* io_lane = nullptr;
    if constexpr (kStreaming) {
      if (recorder_ != nullptr) io_lane = &recorder_->lane("io-lane");
    }
    TraceLanes lanes = TraceLanes::create(recorder_, pools_);
    if (telemetry_ != nullptr) {
      telemetry_->attach_pools(pools_.mapper_pool().os_tids(),
                               pools_.dual()
                                   ? pools_.combiner_pool().os_tids()
                                   : std::vector<std::int64_t>{});
      telemetry_->begin_run(recorder_ != nullptr ? recorder_->epoch()
                                                 : now());
    }
    // end_run (sampler stop) on every exit path, including aborts.
    struct TelemetryRunScope {
      telemetry::Session* session;
      ~TelemetryRunScope() {
        if (session != nullptr) session->end_run();
      }
    } run_scope{telemetry_};
    // Heartbeat time-series; handles must die before `beats` (they do:
    // declared after it, and removal is safe while the sampler runs).
    std::vector<telemetry::Sampler::ProbeHandle> beat_probes;
    if (telemetry_ != nullptr && telemetry_->sampler() != nullptr) {
      beat_probes.reserve(beats.size());
      for (std::size_t i = 0; i < beats.size(); ++i) {
        Heartbeats::Slot& slot = beats.slot(i);
        beat_probes.push_back(telemetry_->sampler()->scoped_probe(
            "heartbeat/" + beats.worker_name(i), [&slot] {
              return static_cast<double>(
                  slot.beats.load(std::memory_order_relaxed));
            }));
      }
    }
    const auto phase_begin = [&](Phase phase) {
      mark_phase(phase);
      if (telemetry_ != nullptr) telemetry_->begin_phase(phase);
      if (driver_lane != nullptr) {
        driver_lane->record(lanes.epoch, trace::EventKind::kPhaseStart,
                            static_cast<std::uint64_t>(phase));
      }
    };
    const auto phase_end = [&](Phase phase) {
      if (driver_lane != nullptr) {
        driver_lane->record(lanes.epoch, trace::EventKind::kPhaseEnd,
                            static_cast<std::uint64_t>(phase));
      }
      if (telemetry_ != nullptr) {
        telemetry_->end_phase(phase, result.timers.seconds(phase));
      }
    };

    // ---- split ----------------------------------------------------------
    phase_begin(Phase::kSplit);
    sched::TaskQueues queues(pools_.num_groups());
    // The pump's feeder thread must never outlive the run: on any unwind
    // before finish() (a worker failure, a watchdog abort, a strategy
    // ConfigError) this scope cancels the run token and joins the feeder.
    // finish() disarms it on the success path.
    struct PumpScope {
      Pump* pump = nullptr;
      common::CancellationToken* cancel = nullptr;
      ~PumpScope() {
        if (pump == nullptr) return;
        cancel->cancel(common::CancelCause::kWorkerFailed, "split",
                       "io-lane", "run unwound before the stream finished");
        pump->cancel_and_join();
      }
      void disarm() { pump = nullptr; }
    } pump_scope;
    {
      ScopedPhase t(result.timers, Phase::kSplit);
      if constexpr (kStreaming) {
        queues.open_stream();
        StreamHooks hooks;
        hooks.queues = &queues;
        hooks.cancel = &cancel;
        hooks.injector = &injector;
        hooks.lane = io_lane;
        hooks.epoch = lanes.epoch;
        hooks.task_size = options_.task_size;
        hooks.num_groups = pools_.num_groups();
        hooks.max_retries = options_.max_task_retries;
        pump.start(hooks);
        pump_scope.pump = &pump;
        pump_scope.cancel = &cancel;
      } else if (options_.split_distribution == SplitDistribution::kBlocked) {
        queues.distribute_blocked(app.num_splits(input), options_.task_size);
      } else {
        queues.distribute(app.num_splits(input), options_.task_size);
      }
    }
    phase_end(Phase::kSplit);

    // ---- map-combine (one timed phase, strategy-defined coupling) -------
    phase_begin(Phase::kMapCombine);
    // Skew profiler only under RAMR_OBS=1; the null pointer in the context
    // keeps the emit/task hot paths at one check when off.
    std::optional<SkewProfiler> skew;
    if (pools_.config().observability) {
      skew.emplace(pools_.num_mappers(), pools_.num_combiners());
    }
    MapCombineContext ctx{pools_,    queues,  lanes,
                          cancel,    injector, beats,
                          retry,     telemetry_, tuning_,
                          skew ? &*skew : nullptr};
    {
      ScopedPhase t(result.timers, Phase::kMapCombine);
      strategy.map_combine(ctx, app, input, result);
    }
    phase_end(Phase::kMapCombine);
    if (skew) {
      result.skew = skew->finalize(
          [&](std::size_t m) { return beats.worker_name(m); });
    }
    result.local_pops = queues.local_pops();
    result.steals = queues.steals();
    result.task_retries = retry.retries.load();
    result.task_aborts = retry.aborts.load();
    if constexpr (kStreaming) {
      // Join the IO lane and surface its failure before anything else —
      // the feeder cancels with cause kWorkerFailed, which
      // throw_if_aborted deliberately skips (workers unwound quietly; the
      // root cause is the stored feeder exception rethrown here).
      pump_scope.disarm();
      pump.finish();
      result.io = pump.stats();
      result.io.map_waits = queues.stream_waits();
    }
    throw_if_aborted();

    // ---- reduce ---------------------------------------------------------
    if constexpr (St::kHasReduce) {
      phase_begin(Phase::kReduce);
      {
        ScopedPhase t(result.timers, Phase::kReduce);
        strategy.reduce(pools_);
      }
      phase_end(Phase::kReduce);
      throw_if_aborted();
    }

    // ---- merge: collect + optional reducer + parallel key sort ----------
    phase_begin(Phase::kMerge);
    {
      ScopedPhase t(result.timers, Phase::kMerge);
      // Strategies that support parallel collection take the pools and
      // fan the copy-out over the general-purpose pool; the serial
      // signature stays the fallback.
      if constexpr (requires { strategy.collect(result, pools_); }) {
        strategy.collect(result, pools_);
      } else {
        strategy.collect(result);
      }
      mr::apply_reducer(app, result.pairs);
      sched::parallel_sort(
          pools_.mapper_pool(), result.pairs,
          [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    phase_end(Phase::kMerge);
    throw_if_aborted();

    // Memory-subsystem run boundary: reset every worker arena wholesale
    // (the pools are joined, nobody is allocating) and stamp the layer's
    // outcome into the result. No-op when RAMR_MEM is off.
    if (mem::MemoryLayer* ml = pools_.memory()) {
      const mem::LayerStats ls = ml->end_run();
      result.mem.mode = ls.mode;
      result.mem.arena_high_water = ls.arena_high_water;
      result.mem.arena_chunk_bytes = ls.arena_chunk_bytes;
      result.mem.arena_resets = ls.arena_resets;
      result.mem.ring_bytes = ls.ring_bytes;
      result.mem.ring_reuses = ls.ring_reuses;
      result.mem.hugepages = ls.hugepages;
      result.mem.mbind = ls.mbind;
    }

    // Stamp the plan this run executed under (satellite of the adaptive
    // controller: every result now records strategy + knobs + provenance).
    {
      const RuntimeConfig& cfg = pools_.config();
      if constexpr (requires { St::kName; }) {
        result.plan.strategy = St::kName;
      }
      result.plan.ratio = cfg.mapper_combiner_ratio;
      result.plan.batch_size =
          tuning_ != nullptr ? tuning_->batch_size() : cfg.batch_size;
      result.plan.queue_capacity = cfg.queue_capacity;
      result.plan.pin_policy = to_string(cfg.pin_policy);
      result.plan.source = options_.plan_source;
    }

    // Dispatch provenance: which kernel table the map loops could call
    // this run (RAMR_SIMD; shard count is stamped by AtomicGlobal itself).
    // Off leaves the fields empty so default output stays byte-identical.
    {
      const simd::Active& sa = simd::active();
      if (sa.mode != simd::Mode::kOff) {
        result.dispatch.simd_path = sa.path;
        result.dispatch.isa = common::to_string(sa.isa);
      }
    }

    // Memory high-water, stamped unconditionally (one syscall): the
    // streaming path's flat-memory claim is checkable from the run report
    // even with RAMR_MEM off.
    result.peak_rss_bytes = common::peak_rss_bytes();
    return result;
  }

  PoolSet& pools_;
  DriverOptions options_;
  trace::Recorder* recorder_ = nullptr;
  telemetry::Session* telemetry_ = nullptr;
  TuningControl* tuning_ = nullptr;
};

}  // namespace ramr::engine
