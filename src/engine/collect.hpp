// Parallel merge-phase collection (the copy-out that precedes the key
// sort).
//
// to_pairs walks the final container serially on the driver thread; for
// wide containers (a large fixed array, a deep hash table) that single
// thread becomes the merge phase's bottleneck once the sort itself is
// parallel. collect_pairs fans the walk over the general-purpose pool in
// two passes over the container's index space:
//
//   1. count    — each worker counts the present entries in its range;
//   2. copy     — an exclusive prefix sum over the counts pre-sizes the
//                 output ONCE, then each worker copies its range into its
//                 disjoint output window.
//
// Both passes use the same fencepost partition (sched::parallel_for_ranges),
// so the concatenated output reproduces the serial for_each order exactly —
// collect results stay byte-identical to the historical path. Containers
// opt in by providing index_count()/for_each_range (RangedContainer);
// anything else falls back to the serial to_pairs.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "sched/parallel_sort.hpp"
#include "sched/thread_pool.hpp"

namespace ramr::engine {

template <typename Ct>
concept RangedContainer = requires(const Ct& c) {
  { c.index_count() } -> std::convertible_to<std::size_t>;
  c.for_each_range(std::size_t{0}, std::size_t{0},
                   [](const typename Ct::key_type&,
                      const typename Ct::value_type&) {});
};

// Below this many index slots the two parallel regions cost more than the
// serial walk they replace (same spirit as parallel_sort's 4096 floor).
inline constexpr std::size_t kParallelCollectFloor = 4096;

template <typename Ct>
std::vector<std::pair<typename Ct::key_type, typename Ct::value_type>>
collect_pairs(sched::ThreadPool& pool, const Ct& container) {
  using Pair = std::pair<typename Ct::key_type, typename Ct::value_type>;
  if constexpr (RangedContainer<Ct> &&
                std::is_default_constructible_v<Pair>) {
    const std::size_t total = container.index_count();
    const std::size_t workers = pool.size();
    if (workers >= 2 && total >= kParallelCollectFloor) {
      std::vector<std::size_t> counts(workers, 0);
      sched::parallel_for_ranges(
          pool, total, [&](std::size_t w, std::size_t lo, std::size_t hi) {
            std::size_t n = 0;
            container.for_each_range(
                lo, hi, [&](const auto&, const auto&) { ++n; });
            counts[w] = n;
          });
      std::vector<std::size_t> offsets(workers + 1, 0);
      for (std::size_t w = 0; w < workers; ++w) {
        offsets[w + 1] = offsets[w] + counts[w];
      }
      std::vector<Pair> out(offsets[workers]);
      sched::parallel_for_ranges(
          pool, total, [&](std::size_t w, std::size_t lo, std::size_t hi) {
            std::size_t at = offsets[w];
            container.for_each_range(lo, hi,
                                     [&](const auto& k, const auto& v) {
                                       out[at].first = k;
                                       out[at].second = v;
                                       ++at;
                                     });
          });
      return out;
    }
  }
  // Serial fallback: equivalent to containers::to_pairs, but spelled out
  // so containers outside the IntermediateContainer concept (the atomic
  // global array) collect through the same entry point.
  std::vector<Pair> out;
  out.reserve(container.size());
  container.for_each(
      [&](const auto& k, const auto& v) { out.emplace_back(k, v); });
  return out;
}

}  // namespace ramr::engine
