// FusedCombine — the Phoenix++ coupling strategy.
//
// One general-purpose pool; each worker owns a thread-local intermediate
// container; the combine function is applied after *every* map emission on
// the same thread ("map-combine" is fused). The reduce phase tree-merges
// the per-worker containers; merge sorts by key (paper Sec. II / [4]).
//
// Failure protocol: single pool, so the join is simple — but workers still
// participate in cooperative cancellation (poll at task boundaries, quiet
// exit on CancelledError, attribute real failures on the token) so that a
// deadline/stall verdict or an injected fault behaves uniformly across the
// three strategies.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/cancellation.hpp"
#include "containers/container_traits.hpp"
#include "engine/app_model.hpp"
#include "engine/collect.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/result.hpp"
#include "sched/parallel_sort.hpp"

namespace ramr::engine {

template <mr::AppSpec App>
class FusedCombine {
 public:
  using Container = typename App::container_type;
  using key_type = mr::key_type_of<App>;
  using value_type = mr::value_type_of<App>;
  static constexpr bool kHasReduce = true;
  static constexpr const char* kName = "fused";

  void map_combine(MapCombineContext& ctx, const App& app,
                   const typename App::input_type& input,
                   RunResult<key_type, value_type>& result) {
    locals_.clear();
    locals_.reserve(ctx.pools.num_mappers());
    for (std::size_t w = 0; w < ctx.pools.num_mappers(); ++w) {
      ctx.injector.on_container_alloc();
      locals_.push_back(app.make_container());
    }
    std::atomic<std::size_t> tasks_executed{0};
    ctx.pools.mapper_pool().run_on_all([&](std::size_t worker) {
      TaskLoopControl ctl = TaskLoopControl::create(ctx, worker);
      ActiveScope live(ctl.beat);
      Container& mine = locals_[worker];
      const auto emit = [&](const key_type& k, const value_type& v) {
        ctx.injector.on_emit(worker);
        mine.emit(k, v);
      };
      try {
        const std::size_t executed =
            drain_map_tasks(ctl, app, input, emit, [] {});
        tasks_executed.fetch_add(executed, std::memory_order_relaxed);
      } catch (const common::CancelledError&) {
        // A peer failed or the watchdog cancelled: exit quietly.
      } catch (const std::exception& e) {
        ctx.cancel.cancel(common::CancelCause::kWorkerFailed, "map-combine",
                          "worker-" + std::to_string(worker), e.what());
        throw;
      }
    });
    result.tasks_executed = tasks_executed.load();
  }

  void reduce(PoolSet& pools) {
    sched::parallel_tree_merge(pools.mapper_pool(), locals_);
  }

  // Copy-out fanned over the general-purpose pool (serial for small
  // containers); the driver passes the pools through the two-argument
  // collect signature.
  void collect(RunResult<key_type, value_type>& result, PoolSet& pools) {
    result.pairs = collect_pairs(pools.mapper_pool(), locals_[0]);
  }

 private:
  std::vector<Container> locals_;
};

}  // namespace ramr::engine
