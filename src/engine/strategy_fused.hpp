// FusedCombine — the Phoenix++ coupling strategy.
//
// One general-purpose pool; each worker owns a thread-local intermediate
// container; the combine function is applied after *every* map emission on
// the same thread ("map-combine" is fused). The reduce phase tree-merges
// the per-worker containers; merge sorts by key (paper Sec. II / [4]).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "containers/container_traits.hpp"
#include "engine/app_model.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/result.hpp"
#include "sched/parallel_sort.hpp"

namespace ramr::engine {

template <mr::AppSpec App>
class FusedCombine {
 public:
  using Container = typename App::container_type;
  using key_type = mr::key_type_of<App>;
  using value_type = mr::value_type_of<App>;
  static constexpr bool kHasReduce = true;

  void map_combine(MapCombineContext& ctx, const App& app,
                   const typename App::input_type& input,
                   RunResult<key_type, value_type>& result) {
    locals_.clear();
    locals_.reserve(ctx.pools.num_mappers());
    for (std::size_t w = 0; w < ctx.pools.num_mappers(); ++w) {
      locals_.push_back(app.make_container());
    }
    std::atomic<std::size_t> tasks_executed{0};
    ctx.pools.mapper_pool().run_on_all([&](std::size_t worker) {
      Container& mine = locals_[worker];
      const auto emit = [&mine](const key_type& k, const value_type& v) {
        mine.emit(k, v);
      };
      const std::size_t executed = drain_map_tasks(
          ctx.queues, ctx.pools.group_of_mapper(worker), app, input,
          ctx.lanes.mapper[worker], ctx.lanes.epoch, emit, [] {});
      tasks_executed.fetch_add(executed, std::memory_order_relaxed);
    });
    result.tasks_executed = tasks_executed.load();
  }

  void reduce(PoolSet& pools) {
    sched::parallel_tree_merge(pools.mapper_pool(), locals_);
  }

  void collect(RunResult<key_type, value_type>& result) {
    result.pairs = containers::to_pairs(locals_[0]);
  }

 private:
  std::vector<Container> locals_;
};

}  // namespace ramr::engine
