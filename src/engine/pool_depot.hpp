// PoolDepot — a registry of warm PoolSets, leased out per run.
//
// The paper pins threads "throughout the MR invocation", but a one-shot
// Runtime still pays pool construction (thread spawn + setaffinity), the
// pinning plan, and arena setup on every instantiation — wrong for a
// resident runtime serving a stream of jobs, where setup/teardown dominates
// small and iterative work. The depot converts those per-run costs into
// per-shape costs: a finished run returns its PoolSet to the idle shelf
// instead of destroying it, and the next acquisition of the same structural
// shape (see PoolSet::shape_key) gets the warm set back — threads alive,
// pins held, arenas and recycled ring blocks in place — with only a
// rebind() of the per-run knobs.
//
// Concurrency: acquisitions remove the set from the shelf, so two live
// leases never alias one PoolSet — concurrent jobs on disjoint leased core
// sets each get their own (the shape key embeds the sub-topology name,
// which names the leased cores). Construction of a cold set happens outside
// the depot mutex; only the shelf bookkeeping is serialized.
//
// Ownership: leases must not outlive the depot (same contract as a
// PhaseDriver not outliving its PoolSet). The process() depot — used when
// RAMR_SERVICE=1 so pool sets survive individual Runtime instances — lives
// until exit.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "engine/pool_set.hpp"
#include "topology/topology.hpp"

namespace ramr::engine {

class PoolDepot {
 public:
  struct Stats {
    std::size_t built = 0;   // cold constructions (threads spawned + pinned)
    std::size_t reused = 0;  // warm acquisitions served from the shelf
    std::size_t idle = 0;    // sets currently parked
    std::size_t leased = 0;  // sets currently out
  };

  // RAII handle on one PoolSet; the destructor (or release()) parks the set
  // back on the depot's shelf for the next acquisition of the same shape.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        depot_ = std::exchange(other.depot_, nullptr);
        key_ = std::move(other.key_);
        set_ = std::move(other.set_);
        warm_ = other.warm_;
      }
      return *this;
    }
    ~Lease() { release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    explicit operator bool() const { return set_ != nullptr; }
    PoolSet& pools() { return *set_; }
    const PoolSet& pools() const { return *set_; }

    // True when this lease was served warm (no thread spawn, no pinning,
    // no arena construction).
    bool warm() const { return warm_; }

    // Return the set to the depot now (also done by the destructor).
    void release();

   private:
    friend class PoolDepot;
    Lease(PoolDepot* depot, std::string key, std::unique_ptr<PoolSet> set,
          bool warm)
        : depot_(depot), key_(std::move(key)), set_(std::move(set)),
          warm_(warm) {}

    PoolDepot* depot_ = nullptr;
    std::string key_;
    std::unique_ptr<PoolSet> set_;
    bool warm_ = false;
  };

  // `max_idle` bounds the total number of parked sets; a release beyond it
  // destroys the returned set (joining its threads) instead of shelving it.
  explicit PoolDepot(std::size_t max_idle = 8) : max_idle_(max_idle) {}

  PoolDepot(const PoolDepot&) = delete;
  PoolDepot& operator=(const PoolDepot&) = delete;

  // Dual-pool shape; the config is resolved against the topology exactly as
  // PoolSet's own constructor would. Throws ConfigError on impossible
  // configs, warm or cold.
  Lease acquire(const topo::Topology& topology, const RuntimeConfig& config);

  // Single-pool (fused) shape; `num_workers` 0 = one per logical CPU.
  Lease acquire_single(const topo::Topology& topology,
                       std::size_t num_workers, PinPolicy policy);

  Stats stats() const;

  // Destroy every idle set (threads join); live leases are unaffected.
  void clear();

  // The process-wide depot behind RAMR_SERVICE=1: pool sets parked here
  // survive individual Runtime instances, so a stream of run_once calls
  // amortizes spin-up across the whole process.
  static PoolDepot& process();

 private:
  friend class Lease;

  // Pops a warm set for `key` (bumping reused/leased) or returns null.
  std::unique_ptr<PoolSet> take(const std::string& key);
  void park(const std::string& key, std::unique_ptr<PoolSet> set);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<std::unique_ptr<PoolSet>>>
      shelf_;
  Stats stats_;
  std::size_t max_idle_;
};

}  // namespace ramr::engine
