// Run-health instrumentation: per-worker heartbeats and the watchdog that
// turns a hung or over-deadline run into a structured, attributed error
// instead of a forever-join.
//
// Heartbeats: one cache-line-aligned slot per worker (mappers first, then
// combiners). A worker marks itself active for the duration of the
// map-combine region and bumps its beat counter at every natural progress
// point — task start/end, failed-push retries, combiner sweeps. The slots
// are written by exactly one thread each and read only by the watchdog, so
// relaxed atomics suffice.
//
// Watchdog: one thread per run() (spawned only when a deadline or stall
// bound is configured — zero cost otherwise) that ticks every few
// milliseconds and cancels the run's CancellationToken when either
//
//   * the wall-clock deadline for the whole run elapses, or
//   * an *active* worker's beat counter stays unchanged for the stall
//     window while the map-combine phase is running (stall detection is
//     per-worker: other workers making progress does not mask one stuck
//     worker, and an idle-but-polling combiner keeps beating).
//
// The stall window must exceed the longest single map split the app can
// execute — a worker inside one long app.map call beats only at task
// boundaries. Both bounds default to off.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/cancellation.hpp"
#include "common/timing.hpp"

namespace ramr::engine {

class Heartbeats {
 public:
  struct Slot {
    std::atomic<std::uint64_t> beats{0};
    std::atomic<bool> active{false};

    void bump() { beats.fetch_add(1, std::memory_order_relaxed); }
    void enter() { active.store(true, std::memory_order_relaxed); }
    void leave() { active.store(false, std::memory_order_relaxed); }
  };

  Heartbeats(std::size_t num_mappers, std::size_t num_combiners, bool dual)
      : num_mappers_(num_mappers),
        num_combiners_(num_combiners),
        dual_(dual),
        slots_(std::make_unique<CacheAligned<Slot>[]>(num_mappers +
                                                      num_combiners)) {}

  std::size_t size() const { return num_mappers_ + num_combiners_; }

  Slot& mapper(std::size_t m) { return slots_[m].value; }
  Slot& combiner(std::size_t j) { return slots_[num_mappers_ + j].value; }
  Slot& slot(std::size_t i) { return slots_[i].value; }

  // Display name for slot i: mapper-/combiner- under the dual shape,
  // worker- under the single shape (matching the trace-lane names).
  std::string worker_name(std::size_t i) const {
    if (i < num_mappers_) {
      return (dual_ ? "mapper-" : "worker-") + std::to_string(i);
    }
    return "combiner-" + std::to_string(i - num_mappers_);
  }

 private:
  std::size_t num_mappers_;
  std::size_t num_combiners_;
  bool dual_;
  std::unique_ptr<CacheAligned<Slot>[]> slots_;
};

// RAII active-marker for one worker's slot.
class ActiveScope {
 public:
  explicit ActiveScope(Heartbeats::Slot& slot) : slot_(slot) { slot_.enter(); }
  ~ActiveScope() { slot_.leave(); }
  ActiveScope(const ActiveScope&) = delete;
  ActiveScope& operator=(const ActiveScope&) = delete;

 private:
  Heartbeats::Slot& slot_;
};

class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds deadline{0};  // whole-run bound; 0 = off
    std::chrono::milliseconds stall{0};     // per-worker bound; 0 = off

    // External cancellation source (e.g. a service job's per-job token):
    // when it trips, the watchdog forwards the signal into the run's own
    // token as kExternal, so workers unwind through the same cooperative
    // protocol as a deadline or stall verdict. Must outlive the watchdog;
    // nullptr = none.
    const common::CancellationToken* forward = nullptr;

    // Second external source, same semantics, so a service job can chain
    // both the scheduler's per-job token and a client-owned token without
    // an intermediate forwarding thread (first to trip wins).
    const common::CancellationToken* forward2 = nullptr;
  };

  Watchdog(Options options, common::CancellationToken& token,
           Heartbeats& beats)
      : options_(options), token_(token), beats_(beats) {
    last_seen_.resize(beats_.size());
    last_change_.resize(beats_.size(), Clock::now());
    thread_ = std::thread([this] { loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // The driver marks phase transitions; stall detection is armed only
  // during map-combine (the only phase whose workers beat).
  void set_phase(Phase phase) {
    phase_.store(static_cast<int>(phase), std::memory_order_release);
  }

 private:
  void loop() {
    const auto start = Clock::now();
    const auto tick = std::chrono::milliseconds(2);
    std::unique_lock lock(mutex_);
    while (!stopping_) {
      cv_.wait_for(lock, tick, [this] { return stopping_; });
      if (stopping_) return;
      const auto now = Clock::now();
      const Phase phase = static_cast<Phase>(
          phase_.load(std::memory_order_acquire));
      for (const common::CancellationToken* ext_token :
           {options_.forward, options_.forward2}) {
        if (ext_token != nullptr && ext_token->cancelled()) {
          common::CancelState ext = ext_token->snapshot();
          token_.cancel(common::CancelCause::kExternal, phase_name(phase),
                        ext.worker,
                        ext.detail.empty() ? "external cancellation"
                                           : ext.detail);
          return;
        }
      }
      if (options_.deadline.count() > 0 && now - start >= options_.deadline) {
        token_.cancel(
            common::CancelCause::kDeadline, phase_name(phase), "",
            "run deadline of " + std::to_string(options_.deadline.count()) +
                " ms exceeded");
        return;
      }
      if (options_.stall.count() > 0 && phase == Phase::kMapCombine &&
          check_stall(now)) {
        return;
      }
    }
  }

  // Returns true when a stall verdict was issued (watchdog's job is done).
  bool check_stall(Clock::time_point now) {
    for (std::size_t i = 0; i < beats_.size(); ++i) {
      Heartbeats::Slot& slot = beats_.slot(i);
      const std::uint64_t beats = slot.beats.load(std::memory_order_relaxed);
      if (!slot.active.load(std::memory_order_relaxed)) {
        // Not in the region (yet, or any more): no verdict, fresh window.
        last_seen_[i] = beats;
        last_change_[i] = now;
        continue;
      }
      if (beats != last_seen_[i]) {
        last_seen_[i] = beats;
        last_change_[i] = now;
        continue;
      }
      if (now - last_change_[i] >= options_.stall) {
        token_.cancel(
            common::CancelCause::kStall, phase_name(Phase::kMapCombine),
            beats_.worker_name(i),
            "no progress for " + std::to_string(options_.stall.count()) +
                " ms (stall watchdog)");
        return true;
      }
    }
    return false;
  }

  Options options_;
  common::CancellationToken& token_;
  Heartbeats& beats_;
  std::vector<std::uint64_t> last_seen_;
  std::vector<Clock::time_point> last_change_;
  std::atomic<int> phase_{static_cast<int>(Phase::kSplit)};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ramr::engine
