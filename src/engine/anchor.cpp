// Anchor translation unit for the (mostly header-only) engine library; the
// non-template machinery lives in pool_set.cpp.
#include "engine/phase_driver.hpp"
#include "engine/strategy_atomic.hpp"
#include "engine/strategy_fused.hpp"
#include "engine/strategy_pipelined.hpp"
