// Online-tuning surface of the engine: the shared control block the
// adaptive governor writes and the pipelined strategy reads, plus the
// TuningPolicy hook library users implement to drive it.
//
// Ownership/threading model (see docs/TUNING.md): exactly one writer — the
// governor thread run by adapt::Controller around PhaseDriver::run — and
// many readers (combiners re-read the batch size once per sweep, producer
// backoffs re-read the sleep cap once per sleep). Values are plain relaxed
// atomics: a worker acting on a one-sweep-stale knob is harmless, which is
// what lets retuning happen mid-phase without any synchronisation on the
// hot path. The knobs the governor may touch are deliberately the two that
// are safe to change mid-phase; strategy, ratio and pinning are committed
// before the pools start and stay fixed (repinning live threads is not).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace ramr::engine {

// Mutable steady-state knobs. Constructed with the plan's committed values;
// bounds are enforced by the governor (batch in [1, queue_capacity/2]), not
// here — the control block is a dumb mailbox.
class TuningControl {
 public:
  TuningControl(std::size_t batch_size, std::size_t sleep_cap_us,
                std::size_t emit_batch = 0)
      : batch_size_(batch_size),
        sleep_cap_us_(sleep_cap_us),
        emit_batch_(emit_batch) {}

  std::size_t batch_size() const {
    return static_cast<std::size_t>(
        batch_size_.load(std::memory_order_relaxed));
  }
  void set_batch_size(std::size_t value) {
    batch_size_.store(static_cast<std::uint64_t>(value),
                      std::memory_order_relaxed);
  }

  std::size_t sleep_cap_us() const {
    return static_cast<std::size_t>(
        sleep_cap_us_.load(std::memory_order_relaxed));
  }
  void set_sleep_cap_us(std::size_t value) {
    sleep_cap_us_.store(static_cast<std::uint64_t>(value),
                        std::memory_order_relaxed);
  }

  // Producer-side emit batch (0 = element-wise push). Mappers re-read it
  // per buffered emit, so a governor change resizes the next flush
  // threshold, never a flush in flight. The governor may only retune it
  // when the run started with batching on (> 0): the emit buffer itself is
  // created at pipeline start.
  std::size_t emit_batch() const {
    return static_cast<std::size_t>(
        emit_batch_.load(std::memory_order_relaxed));
  }
  void set_emit_batch(std::size_t value) {
    emit_batch_.store(static_cast<std::uint64_t>(value),
                      std::memory_order_relaxed);
  }

  // For ExponentialSleepBackoff::bind_cap: the backoff re-reads the cap
  // cell before each sleep so a governor adjustment takes effect on the
  // very next sleep, not the next run.
  const std::atomic<std::uint64_t>* sleep_cap_cell() const {
    return &sleep_cap_us_;
  }

 private:
  std::atomic<std::uint64_t> batch_size_;
  std::atomic<std::uint64_t> sleep_cap_us_;
  std::atomic<std::uint64_t> emit_batch_{0};
};

// One governor observation window, distilled from MetricRegistry deltas.
struct TuningObservation {
  double seconds = 0.0;            // since the governor started
  double failed_push_rate = 0.0;   // failed pushes / attempts this window
  double occupancy_fraction = 0.0; // max ring occupancy / queue capacity
  std::uint64_t batch_p50 = 0;     // median sweep batch so far (elements)
  std::size_t batch_size = 0;      // current control values …
  std::size_t sleep_cap_us = 0;
  std::size_t emit_batch = 0;      //   (0 = producer batching off)
  std::size_t queue_capacity = 0;  // … and the bound they live under
};

// What the policy wants changed this window (empty optionals = no change).
// The governor clamps decisions to the safe bounds before applying them.
struct TuningDecision {
  std::optional<std::size_t> batch_size;
  std::optional<std::size_t> sleep_cap_us;
  std::optional<std::size_t> emit_batch;  // ignored when batching is off
};

// User hook: called once per governor tick with the latest window. The
// default implementation lives in adapt/governor.hpp; pass a custom policy
// to core::Runtime::set_tuning_policy to drive the knobs yourself.
class TuningPolicy {
 public:
  virtual ~TuningPolicy() = default;
  virtual TuningDecision on_observation(const TuningObservation& obs) = 0;
};

// A knob change the governor actually applied (after clamping), surfaced
// in RunResult::governor_actions, the run report and the governor trace
// lane.
struct GovernorAction {
  double seconds = 0.0;  // run-relative timestamp
  std::string knob;      // "batch_size" | "sleep_cap_us" | "emit_batch"
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

}  // namespace ramr::engine
