// Mapper-side pre-combining — an extension beyond the paper.
//
// RAMR's losses (HG, LR; Figs. 8/9) are pure queue traffic: one record per
// input byte swamps the pipe when the map work is trivial. A small
// mapper-local buffer that coalesces emissions to the same key *before*
// they enter the ring trades a few mapper cycles for a large reduction in
// pipelined records — the combine function is associative and commutative
// by contract, so combining a prefix on the producer side is always legal.
//
// The buffer is a fixed open-addressing table with a bounded probe window:
//   * same key within the window  -> combine in place (no push);
//   * empty slot within the window -> claim it (no push);
//   * window full                  -> evict the slot's current record to
//                                     the ring and take its place.
// flush() drains the buffer (called at task boundaries so the pipeline
// keeps flowing, and before the ring closes).
//
// Enabled via RuntimeConfig::precombine_slots / RAMR_PRECOMBINE (0 = off,
// the paper's published behaviour).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "containers/container_traits.hpp"
#include "containers/hash_container.hpp"  // detail::mix_hash/round_up_pow2

namespace ramr::engine {

template <typename K, typename V, containers::Combiner C,
          typename Hash = std::hash<K>, typename KeyEq = std::equal_to<K>>
class PrecombineBuffer {
 public:
  using Record = containers::KeyValue<K, V>;
  static constexpr std::size_t kProbeWindow = 8;

  explicit PrecombineBuffer(std::size_t slots)
      : mask_(containers::detail::round_up_pow2(slots < 2 ? 2 : slots) - 1),
        slots_(mask_ + 1) {}

  std::size_t capacity() const { return slots_.size(); }
  std::size_t occupied() const { return occupied_; }
  std::size_t absorbed() const { return absorbed_; }
  std::size_t evictions() const { return evictions_; }

  // Feeds one emission through the buffer. Returns a record to forward to
  // the ring when the probe window is exhausted (the evicted entry);
  // std::nullopt when the emission was absorbed locally.
  std::optional<Record> absorb(const K& key, const V& value) {
    std::size_t i = containers::detail::mix_hash(Hash{}(key)) & mask_;
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      Slot& slot = slots_[(i + probe) & mask_];
      if (!slot.used) {
        slot.used = true;
        slot.record.key = key;
        slot.record.value = C::identity();
        C::combine(slot.record.value, value);
        ++occupied_;
        return std::nullopt;
      }
      if (KeyEq{}(slot.record.key, key)) {
        C::combine(slot.record.value, value);
        ++absorbed_;
        return std::nullopt;
      }
    }
    // Window full of other keys: evict the home slot's record.
    Slot& victim = slots_[i];
    Record out = std::move(victim.record);
    victim.record.key = key;
    victim.record.value = C::identity();
    C::combine(victim.record.value, value);
    ++evictions_;
    return out;
  }

  // Drains every resident record through `push(Record&&)`.
  template <typename Push>
  void flush(Push&& push) {
    for (Slot& slot : slots_) {
      if (slot.used) {
        push(std::move(slot.record));
        slot.used = false;
      }
    }
    occupied_ = 0;
  }

 private:
  struct Slot {
    bool used = false;
    Record record{};
  };

  std::size_t mask_;
  std::vector<Slot> slots_;
  std::size_t occupied_ = 0;
  std::size_t absorbed_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace ramr::engine
