// The unified result of one MapReduce invocation under ANY runtime.
//
// Every coupling strategy (fused, pipelined, atomic-global) reports through
// this one type: phase timers, task/steal scheduling counters, and the
// pipeline queue statistics (zero for the strategies that have no queues).
// `mr::Result` and `mrphi::Runtime::Result` are aliases of this type, so
// results compare and print uniformly across the three architectures.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/timing.hpp"

namespace ramr::engine {

template <typename K, typename V>
struct RunResult {
  // Key-sorted (key, combined value) pairs — the merge phase output.
  std::vector<std::pair<K, V>> pairs;

  // Wall-clock per phase (split / map-combine / reduce / merge) — the
  // quantities behind the paper's Fig. 1 breakdown.
  PhaseTimers timers;

  // Scheduling diagnostics.
  std::size_t tasks_executed = 0;
  std::size_t local_pops = 0;
  std::size_t steals = 0;

  // Pipeline diagnostics (nonzero only under the pipelined SPSC strategy).
  std::size_t queue_pushes = 0;
  std::size_t queue_failed_pushes = 0;
  std::size_t queue_batches = 0;
  std::size_t queue_max_occupancy = 0;  // deepest any ring ever got

  // Actual sleeps the producer/consumer backoffs performed (pipelined
  // strategy only; the backoff ablation bench compares policies on this).
  std::size_t backoff_sleeps = 0;

  // Task-level retry accounting: attempts re-executed after a transient
  // failure, and tasks abandoned after exhausting the retry budget.
  std::size_t task_retries = 0;
  std::size_t task_aborts = 0;

  std::string summary() const {
    std::string s = timers.summary();
    s += " pairs=" + std::to_string(pairs.size());
    // Pipeline diagnostics, suppressed when zero (the non-queue strategies
    // and an uncontended pipelined run stay terse).
    if (queue_pushes > 0) s += " qpush=" + std::to_string(queue_pushes);
    if (queue_failed_pushes > 0) {
      s += " qfail=" + std::to_string(queue_failed_pushes);
    }
    if (queue_batches > 0) s += " qbatch=" + std::to_string(queue_batches);
    if (queue_max_occupancy > 0) {
      s += " qmax=" + std::to_string(queue_max_occupancy);
    }
    if (backoff_sleeps > 0) s += " sleeps=" + std::to_string(backoff_sleeps);
    if (task_retries > 0) s += " retries=" + std::to_string(task_retries);
    if (task_aborts > 0) s += " aborts=" + std::to_string(task_aborts);
    return s;
  }
};

}  // namespace ramr::engine
