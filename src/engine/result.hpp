// The unified result of one MapReduce invocation under ANY runtime.
//
// Every coupling strategy (fused, pipelined, atomic-global) reports through
// this one type: phase timers, task/steal scheduling counters, and the
// pipeline queue statistics (zero for the strategies that have no queues).
// `mr::Result` and `mrphi::Runtime::Result` are aliases of this type, so
// results compare and print uniformly across the three architectures.
#pragma once

#include <cstdio>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/timing.hpp"
#include "engine/tuning.hpp"

namespace ramr::engine {

// Memory-subsystem outcome of one run (RAMR_MEM; see src/mem/). An empty
// mode means the subsystem was off — summary() and the run report then
// print nothing, keeping default output byte-identical.
struct MemStats {
  std::string mode;                  // "" (off) | "arena" | "numa"
  std::size_t arena_high_water = 0;  // deepest worker arena (bytes)
  std::size_t arena_chunk_bytes = 0; // arena backing storage held (bytes)
  std::size_t arena_resets = 0;      // wholesale resets so far
  std::size_t ring_bytes = 0;        // placed ring slot storage (bytes)
  std::size_t ring_reuses = 0;       // ring blocks recycled from spares
  bool hugepages = false;            // some block got MADV_HUGEPAGE
  bool mbind = false;                // some block was node-bound

  bool enabled() const { return !mode.empty(); }

  std::string summary() const {
    std::string s = "mem=" + mode +
                    " arena_hw=" + std::to_string(arena_high_water) +
                    " arena_bytes=" + std::to_string(arena_chunk_bytes) +
                    " arena_resets=" + std::to_string(arena_resets);
    if (ring_bytes > 0) s += " ring_bytes=" + std::to_string(ring_bytes);
    // Nonzero only when a warm pool set re-ran (service mode / depot reuse);
    // one-shot runs keep their historical line.
    if (ring_reuses > 0) s += " ring_reuse=" + std::to_string(ring_reuses);
    s += std::string(" huge=") + (hugepages ? "yes" : "no") + " mbind=" +
         (mbind ? "yes" : "no");
    return s;
  }
};

// Streaming-input outcome of one run (RAMR_IO; see src/io/). An empty mode
// means the run was fed by a materialized input, not an IO-lane source —
// summary() and the run report then print nothing, keeping default output
// byte-identical.
struct IoStats {
  std::string mode;    // "" (off) | "mmap" | "direct"
  std::string source;  // actual source after capability fallback:
                       // "mmap" | "direct" | "buffered" | "gzip"
  std::uint64_t bytes_read = 0;    // fresh bytes the IO lane delivered
  std::uint64_t windows = 0;       // windows published as map tasks
  std::uint64_t window_bytes = 0;  // configured window size (RAMR_IO_WINDOW)
  std::uint64_t depth = 0;         // in-flight window budget (RAMR_IO_DEPTH)
  std::uint64_t io_stalls = 0;     // feeder waits for a free window slot
                                   // (map compute behind the IO lane)
  std::uint64_t map_waits = 0;     // mapper polls on an open-but-empty
                                   // queue (IO lane behind map compute)
  std::uint64_t io_retries = 0;    // transient read faults retried
  std::uint64_t carry_bytes = 0;   // record-boundary carry-over copied

  bool enabled() const { return !mode.empty(); }

  std::string summary() const {
    std::string s = "io=" + mode;
    if (source != mode && !source.empty()) s += "(" + source + ")";
    s += " bytes=" + std::to_string(bytes_read) +
         " windows=" + std::to_string(windows) +
         " window_bytes=" + std::to_string(window_bytes) +
         " depth=" + std::to_string(depth);
    if (io_stalls > 0) s += " io_stalls=" + std::to_string(io_stalls);
    if (map_waits > 0) s += " map_waits=" + std::to_string(map_waits);
    if (io_retries > 0) s += " io_retries=" + std::to_string(io_retries);
    if (carry_bytes > 0) s += " carry=" + std::to_string(carry_bytes);
    return s;
  }
};

// The execution plan a run actually used, and where it came from. Stamped
// by PhaseDriver::run from the resolved config + strategy; the adaptive
// controller overwrites `source` with "probe" or "cache" when it decided;
// the service scheduler stamps "degraded" on retries that run under a
// safer plan (see service/scheduler.hpp, the degradation ladder).
struct PlanInfo {
  std::string strategy;  // "fused" | "pipelined" | "atomic-global"
  std::size_t ratio = 0;
  std::size_t batch_size = 0;
  std::size_t queue_capacity = 0;
  std::string pin_policy;
  std::string source;  // "env" | "cache" | "probe" | "degraded" | "default"

  // True when something other than the built-in defaults chose the plan —
  // the summary() line only mentions the plan then, so default runs keep
  // their historical output byte-for-byte.
  bool decided() const { return !source.empty() && source != "default"; }

  std::string summary() const {
    std::string s = "plan=" + strategy + " src=" + source +
                    " ratio=" + std::to_string(ratio) +
                    " batch=" + std::to_string(batch_size);
    if (queue_capacity > 0) {
      s += " qcap=" + std::to_string(queue_capacity);
    }
    if (!pin_policy.empty()) s += " pin=" + pin_policy;
    return s;
  }
};

// Hot-path dispatch provenance of one run (RAMR_SIMD / RAMR_ATOMIC_SHARDS;
// see src/simd/ and strategy_atomic.hpp). Default-configured runs leave
// every field at its zero value — enabled() is false and summary() / the
// run report print nothing, keeping default output byte-identical.
struct DispatchStats {
  std::string simd_path;  // "" (RAMR_SIMD off) | "scalar" | "sse2" | "avx2"
  std::string isa;        // probed ISA tier, stamped alongside simd_path
  std::size_t atomic_shards = 0;  // >1 only for sharded atomic-global runs

  bool enabled() const { return !simd_path.empty() || atomic_shards > 1; }

  std::string summary() const {
    std::string s = "dispatch:";
    if (!simd_path.empty()) s += " simd=" + simd_path + " isa=" + isa;
    if (atomic_shards > 1) {
      s += " shards=" + std::to_string(atomic_shards);
    }
    return s;
  }
};

// Straggler/skew profile of one run (RAMR_OBS=1; see
// src/engine/skew_profiler.hpp). enabled is false — and summary() / the
// run report print nothing — unless the profiler ran, keeping default
// output byte-identical.
struct SkewStats {
  struct HotKey {
    std::string key;           // printable form (truncated to 32 chars)
    std::uint64_t est_count;   // count-min estimate over sampled emits
    double share;              // est_count / sampled
  };

  bool enabled = false;
  double map_imbalance = 0.0;    // max/mean per-mapper busy time
  double drain_imbalance = 0.0;  // max/mean per-combiner drained elements
  std::string straggler;         // worker name with the worst busy time
  std::uint64_t sampled = 0;     // emissions the sketch actually saw
  std::uint64_t ring_depth = 0;  // deepest ring across combiners
  std::vector<HotKey> hot_keys;  // top-K, hottest first

  std::string summary() const {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "skew: map_imb=%.2f drain_imb=%.2f", map_imbalance,
                  drain_imbalance);
    std::string s = buf;
    if (!straggler.empty()) s += " straggler=" + straggler;
    if (!hot_keys.empty()) {
      std::snprintf(buf, sizeof(buf), " hot=%s(%.0f%%)",
                    hot_keys.front().key.c_str(),
                    100.0 * hot_keys.front().share);
      s += buf;
    }
    return s;
  }
};

template <typename K, typename V>
struct RunResult {
  // Key-sorted (key, combined value) pairs — the merge phase output.
  std::vector<std::pair<K, V>> pairs;

  // Wall-clock per phase (split / map-combine / reduce / merge) — the
  // quantities behind the paper's Fig. 1 breakdown.
  PhaseTimers timers;

  // Scheduling diagnostics.
  std::size_t tasks_executed = 0;
  std::size_t local_pops = 0;
  std::size_t steals = 0;

  // Pipeline diagnostics (nonzero only under the pipelined SPSC strategy).
  std::size_t queue_pushes = 0;
  std::size_t queue_failed_pushes = 0;
  std::size_t queue_batches = 0;
  std::size_t queue_push_batches = 0;   // producer-side batched publishes
  std::size_t queue_max_occupancy = 0;  // deepest any ring ever got

  // Actual sleeps the producer/consumer backoffs performed (pipelined
  // strategy only; the backoff ablation bench compares policies on this).
  std::size_t backoff_sleeps = 0;

  // Task-level retry accounting: attempts re-executed after a transient
  // failure, and tasks abandoned after exhausting the retry budget.
  std::size_t task_retries = 0;
  std::size_t task_aborts = 0;

  // The plan this run executed under (see PlanInfo) and the knob changes
  // the steady-state governor applied during it (empty unless
  // RAMR_ADAPT=full engaged the governor).
  PlanInfo plan;
  std::vector<GovernorAction> governor_actions;

  // Memory-subsystem stats; enabled() is false (and nothing is printed)
  // unless RAMR_MEM was on.
  MemStats mem;

  // Streaming-input stats; enabled() only when the run was fed by an
  // IO-lane source (RAMR_IO / PhaseDriver::run_stream).
  IoStats io;

  // Process-wide peak RSS (bytes) sampled as the run finishes — always
  // stamped (getrusage is one syscall) so the flat-memory claim of the
  // streaming path is checkable from the run report even with RAMR_MEM
  // off. Deliberately absent from summary(): it is monotonic across a
  // process, so the console line would drift between otherwise identical
  // runs; consumers read it from the report's "memory" object.
  std::size_t peak_rss_bytes = 0;

  // Straggler/skew profile; enabled only under RAMR_OBS=1.
  SkewStats skew;

  // Hot-path dispatch provenance (SIMD kernel path, atomic-global shard
  // count); enabled() only when RAMR_SIMD or RAMR_ATOMIC_SHARDS departed
  // from the defaults.
  DispatchStats dispatch;

  std::string summary() const {
    std::string s = timers.summary();
    s += " pairs=" + std::to_string(pairs.size());
    // Pipeline diagnostics, suppressed when zero (the non-queue strategies
    // and an uncontended pipelined run stay terse).
    if (queue_pushes > 0) s += " qpush=" + std::to_string(queue_pushes);
    if (queue_failed_pushes > 0) {
      s += " qfail=" + std::to_string(queue_failed_pushes);
      // The raw count is misleading once producers batch (one blocked
      // *block* retries as one failed push regardless of its size), so
      // report the rate over push attempts alongside it.
      const double attempts =
          static_cast<double>(queue_pushes + queue_failed_pushes);
      if (attempts > 0.0) {
        char rate[32];
        std::snprintf(rate, sizeof(rate), " qfail_rate=%.1f%%",
                      100.0 * static_cast<double>(queue_failed_pushes) /
                          attempts);
        s += rate;
      }
    }
    if (queue_batches > 0) s += " qbatch=" + std::to_string(queue_batches);
    if (queue_push_batches > 0) {
      s += " qpbatch=" + std::to_string(queue_push_batches);
    }
    if (queue_max_occupancy > 0) {
      s += " qmax=" + std::to_string(queue_max_occupancy);
    }
    if (backoff_sleeps > 0) s += " sleeps=" + std::to_string(backoff_sleeps);
    if (task_retries > 0) s += " retries=" + std::to_string(task_retries);
    if (task_aborts > 0) s += " aborts=" + std::to_string(task_aborts);
    // Plan provenance, suppressed for default-sourced plans so existing
    // bench/test output is unchanged when the controller never ran.
    if (plan.decided()) s += " " + plan.summary();
    if (!governor_actions.empty()) {
      s += " governor=" + std::to_string(governor_actions.size());
    }
    // Streaming-IO stats only when an IO-lane source fed the run.
    if (io.enabled()) s += " " + io.summary();
    // Memory stats only when RAMR_MEM was on; the default line stays
    // byte-stable.
    if (mem.enabled()) s += " " + mem.summary();
    // Skew profile only under RAMR_OBS=1.
    if (skew.enabled) s += " " + skew.summary();
    // Dispatch provenance only when a hot-path knob was set.
    if (dispatch.enabled()) s += " " + dispatch.summary();
    return s;
  }
};

}  // namespace ramr::engine
