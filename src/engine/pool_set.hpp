// Thread-pool construction and PinPolicy resolution — the one place that
// turns (topology, policy, worker counts) into pinned, long-lived pools.
//
// Every runtime used to re-implement this (with subtle divergence in how
// the single-pool runtimes interpreted the paired policy); they now all
// hold a PoolSet in one of two shapes:
//
//   * dual   — the decoupled RAMR shape: a general-purpose mapper pool plus
//     a combiner pool, placed by topo::make_plan (paper Sec. III-B);
//   * single — the Phoenix++/MRPhi shape: one general-purpose pool; round-
//     robin pins threads in OS-id order, the paired policy (which has no
//     pair structure without a combiner pool) degenerates to the
//     topology's proximity order.
//
// Threads are created and pinned once at construction and live "throughout
// the MR invocation" (paper Sec. III-B); pools persist across run() calls.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "mem/layer.hpp"
#include "sched/thread_pool.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"

namespace ramr::engine {

// The wait-both-pools / rethrow-first-error join protocol: always wait for
// BOTH pools before rethrowing, because leaving a region in flight would
// poison the next run() (the pools are long-lived). This is the single
// definition of the pattern — strategies must not hand-roll it.
//
// When both pools fail, the second pool's exception is *suppressed*, not
// silently dropped: join_pools_collect reports its count and message so
// callers can surface them (join_pools_rethrow_first prints a one-line
// stderr note before rethrowing the first error).
struct JoinOutcome {
  std::exception_ptr first_error;  // null when both pools completed cleanly
  std::size_t suppressed = 0;      // additional errors beyond the first
  std::string suppressed_message;  // what() of the first suppressed error
};

JoinOutcome join_pools_collect(sched::ThreadPool& first,
                               sched::ThreadPool& second);

void join_pools_rethrow_first(sched::ThreadPool& first,
                              sched::ThreadPool& second);

class PoolSet {
 public:
  // Dual-pool (decoupled) shape. The config is resolved against the
  // topology (worker counts derived from the machine when left at 0) and
  // the pinning plan computed once. Throws ConfigError on impossible
  // configs (see RuntimeConfig::resolved).
  PoolSet(topo::Topology topology, const RuntimeConfig& config);

  // Single-pool shape. `num_workers` 0 = one worker per logical CPU.
  // Throws ConfigError when the topology has no CPUs to derive from.
  PoolSet(topo::Topology topology, std::size_t num_workers, PinPolicy policy);

  PoolSet(const PoolSet&) = delete;
  PoolSet& operator=(const PoolSet&) = delete;

  // Structural identity of a pool set: everything whose change would force
  // the thread pools, pins, or memory layer to be rebuilt. Two resolved
  // configs with equal shape keys can share one warm PoolSet — rebind()
  // swaps the per-run knobs (batch size, backoff, task size, ...) that the
  // strategies read through config(). The key is what PoolDepot shelves
  // warm sets under.
  static std::string shape_key(const topo::Topology& topology,
                               const RuntimeConfig& resolved);
  static std::string shape_key_single(const topo::Topology& topology,
                                      std::size_t num_workers,
                                      PinPolicy policy);
  const std::string& shape() const { return shape_; }

  // Re-aim a warm set at a new resolved config of the same shape; threads,
  // pins, plan and arenas are untouched. Throws ConfigError when the shape
  // differs or this is the single shape (which carries no per-run knobs).
  void rebind(const RuntimeConfig& resolved);

  bool dual() const { return combiner_pool_ != nullptr; }

  const topo::Topology& topology() const { return topo_; }

  // Resolved config; meaningful for the dual shape (the single shape
  // synthesizes one carrying num_mappers = worker count, pin policy, and
  // defaults elsewhere).
  const RuntimeConfig& config() const { return cfg_; }

  // Placement plan; empty CPU vectors under the single shape or kOsDefault.
  const topo::PinningPlan& plan() const { return plan_; }

  // The general-purpose pool: map tasks, and between phases reduce and
  // merge ("the top pool ... will be used to execute the tasks of map,
  // reduce and merge").
  sched::ThreadPool& mapper_pool() { return *mapper_pool_; }

  // The combiner pool; only present under the dual shape.
  sched::ThreadPool& combiner_pool() { return *combiner_pool_; }

  std::size_t num_mappers() const { return mapper_pool_->size(); }
  std::size_t num_combiners() const {
    return combiner_pool_ ? combiner_pool_->size() : 0;
  }

  // Locality groups: one task queue per socket the pools span.
  std::size_t num_groups() const { return num_groups_; }

  // Which locality-group queue mapper/worker `m` prefers: the socket of its
  // pinned CPU when placement is known, round-robin otherwise.
  std::size_t group_of_mapper(std::size_t m) const;

  // The RAMR_MEM memory layer (per-worker arenas, placed ring storage);
  // nullptr when mem_mode is off — every engine allocation site checks
  // this one pointer and takes the historical heap path when null.
  mem::MemoryLayer* memory() const { return memory_.get(); }

  // The pin each thread was requested to run on (std::nullopt = unpinned);
  // exposed so tests can verify policy resolution without digging into the
  // OS. Pins that fail on a small host degrade silently to unpinned.
  const std::vector<std::optional<std::size_t>>& mapper_pins() const {
    return mapper_pins_;
  }
  const std::vector<std::optional<std::size_t>>& combiner_pins() const {
    return combiner_pins_;
  }

 private:
  topo::Topology topo_;
  RuntimeConfig cfg_;
  std::string shape_;
  topo::PinningPlan plan_;
  std::vector<std::optional<std::size_t>> mapper_pins_;
  std::vector<std::optional<std::size_t>> combiner_pins_;
  std::unique_ptr<sched::ThreadPool> mapper_pool_;
  std::unique_ptr<sched::ThreadPool> combiner_pool_;
  std::unique_ptr<mem::MemoryLayer> memory_;
  std::size_t num_groups_ = 1;
};

}  // namespace ramr::engine
