// Straggler/skew profiler (RAMR_OBS=1): answers "which worker is the
// straggler and which key caused it" for one run.
//
// Three signals, all cheap enough to leave on for a whole service:
//
//   * per-mapper busy time — drain_map_tasks times each task (two clock
//     reads per task, not per record) into a cache-line-aligned
//     single-writer slot; the max/mean ratio is the map-phase imbalance
//     score (1.0 = perfectly balanced);
//   * per-combiner drained elements + deepest ring — the pipelined
//     strategy attributes its end-of-phase ring stats to the combiner that
//     drained each ring (zero hot-path cost: the numbers are read once,
//     after the pools join); the drained-element imbalance is the direct
//     signature of a hot-key-skewed hash partition;
//   * sampled hot keys — every 64th emission per mapper feeds a count-min
//     sketch (two rows of relaxed atomic cells, write-only on the hot
//     path) and a per-mapper single-writer candidate table; finalize()
//     merges the tables into a top-K estimate with per-key shares.
//
// Off (the default) the whole thing is one null-pointer check per emission
// and per task; nothing is allocated. The results land in
// RunResult::skew / summary() / the ramr-run-report-v1 "skew" object.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "engine/result.hpp"

namespace ramr::engine {

class SkewProfiler {
 public:
  // Sample every (kSampleMask + 1)-th emission per mapper: dense enough to
  // rank hot keys on any non-trivial input, sparse enough that the hash +
  // two sketch bumps disappear next to the emit itself.
  static constexpr std::uint64_t kSampleMask = 63;

  static constexpr std::size_t kSketchRows = 2;
  static constexpr std::size_t kSketchCols = 2048;  // power of two
  static constexpr std::size_t kCandidates = 8;     // per-mapper table
  static constexpr std::size_t kTopK = 5;           // reported hot keys

  SkewProfiler(std::size_t num_mappers, std::size_t num_combiners)
      : mappers_(num_mappers), drained_(num_combiners, 0),
        ring_depth_(num_combiners, 0) {
    for (auto& row : sketch_) {
      for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
    }
  }

  // ---- hot path (one writer per mapper slot) ----------------------------

  // Called by drain_map_tasks around each task attempt.
  void add_busy(std::size_t mapper, double seconds) {
    mappers_[mapper].busy_seconds += seconds;
  }

  // Emission-count tick; returns true when this emission should be
  // sampled. Kept separate from sample_key so callers hash only on the
  // sampled path.
  bool tick(std::size_t mapper) {
    return (mappers_[mapper].emits++ & kSampleMask) == 0;
  }

  // Sketch + candidate update for one sampled key. K must be hashable;
  // the key's printable form is captured lazily (only when it enters the
  // candidate table).
  template <typename K>
  void sample_key(std::size_t mapper, const K& key) {
    const std::uint64_t h = mix(std::hash<K>{}(key));
    const std::uint32_t est = sketch_bump(h);
    note_candidate(mappers_[mapper], h, est,
                   [&] { return printable(key); });
  }

  // ---- end-of-phase accounting (pools joined, single thread) ------------

  void add_drained(std::size_t combiner, std::uint64_t elements,
                   std::uint64_t max_occupancy) {
    drained_[combiner] += elements;
    ring_depth_[combiner] =
        std::max(ring_depth_[combiner], max_occupancy);
  }

  // Folds everything into the result's SkewStats. worker_name(i) labels
  // the straggler (e.g. Heartbeats::worker_name).
  SkewStats finalize(
      const std::function<std::string(std::size_t)>& mapper_name) const {
    SkewStats s;
    s.enabled = true;

    double total = 0.0, worst = 0.0;
    std::size_t straggler = 0;
    for (std::size_t m = 0; m < mappers_.size(); ++m) {
      const double busy = mappers_[m].busy_seconds;
      total += busy;
      if (busy > worst) {
        worst = busy;
        straggler = m;
      }
      s.sampled += (mappers_[m].emits + kSampleMask) / (kSampleMask + 1);
    }
    if (!mappers_.empty() && total > 0.0) {
      const double mean = total / static_cast<double>(mappers_.size());
      s.map_imbalance = worst / mean;
      s.straggler = mapper_name ? mapper_name(straggler)
                                : "mapper-" + std::to_string(straggler);
    }

    std::uint64_t drained_total = 0, drained_worst = 0;
    for (std::size_t j = 0; j < drained_.size(); ++j) {
      drained_total += drained_[j];
      drained_worst = std::max(drained_worst, drained_[j]);
      s.ring_depth = std::max(s.ring_depth, ring_depth_[j]);
    }
    if (!drained_.empty() && drained_total > 0) {
      const double mean = static_cast<double>(drained_total) /
                          static_cast<double>(drained_.size());
      s.drain_imbalance = static_cast<double>(drained_worst) / mean;
    }

    // Merge the per-mapper candidate tables by hash (counts are sketch
    // estimates of the same global stream, so the max — not the sum — is
    // the per-key estimate).
    std::vector<Candidate> merged;
    for (const MapperSlot& slot : mappers_) {
      for (const Candidate& c : slot.candidates) {
        if (c.count == 0) continue;
        auto it = std::find_if(merged.begin(), merged.end(),
                               [&](const Candidate& m) {
                                 return m.hash == c.hash;
                               });
        if (it == merged.end()) {
          merged.push_back(c);
        } else if (c.count > it->count) {
          *it = c;
        }
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.count > b.count;
              });
    if (merged.size() > kTopK) merged.resize(kTopK);
    std::uint64_t sampled_nonzero = std::max<std::uint64_t>(1, s.sampled);
    for (const Candidate& c : merged) {
      s.hot_keys.push_back(SkewStats::HotKey{
          c.name, c.count,
          static_cast<double>(c.count) /
              static_cast<double>(sampled_nonzero)});
    }
    return s;
  }

 private:
  struct Candidate {
    std::uint64_t hash = 0;
    std::uint32_t count = 0;  // sketch estimate when last touched
    std::string name;
  };

  // One cache line per mapper: busy time, emit tick, candidate table —
  // written by exactly one thread, read after the pools join.
  struct alignas(64) MapperSlot {
    double busy_seconds = 0.0;
    std::uint64_t emits = 0;
    std::vector<Candidate> candidates = std::vector<Candidate>(kCandidates);
  };

  // SplitMix64 finalizer: decorrelates std::hash's identity-like integer
  // hashing before the sketch rows slice bits off it.
  static std::uint64_t mix(std::uint64_t h) {
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
  }

  std::uint32_t sketch_bump(std::uint64_t h) {
    std::uint32_t est = ~std::uint32_t{0};
    for (std::size_t row = 0; row < kSketchRows; ++row) {
      const std::size_t col =
          static_cast<std::size_t>(h >> (row * 16)) & (kSketchCols - 1);
      // Relaxed RMW: concurrent mappers may interleave, which only ever
      // over-counts — the usual count-min bias direction.
      const std::uint32_t v =
          sketch_[row][col].fetch_add(1, std::memory_order_relaxed) + 1;
      est = std::min(est, v);
    }
    return est;
  }

  template <typename K>
  static std::string printable(const K& key) {
    if constexpr (requires(std::ostream& os, const K& k) { os << k; }) {
      std::ostringstream os;
      os << key;
      std::string s = os.str();
      if (s.size() > 32) {
        s.resize(29);
        s += "...";
      }
      return s;
    } else {
      return "<unprintable>";
    }
  }

  template <typename NameFn>
  static void note_candidate(MapperSlot& slot, std::uint64_t h,
                             std::uint32_t est, NameFn&& name) {
    Candidate* weakest = &slot.candidates[0];
    for (Candidate& c : slot.candidates) {
      if (c.hash == h && c.count != 0) {
        c.count = std::max(c.count, est);
        return;
      }
      if (c.count < weakest->count) weakest = &c;
    }
    if (est > weakest->count) {
      weakest->hash = h;
      weakest->count = est;
      weakest->name = name();
    }
  }

  std::vector<MapperSlot> mappers_;
  std::vector<std::uint64_t> drained_;     // per combiner
  std::vector<std::uint64_t> ring_depth_;  // per combiner
  std::array<std::array<std::atomic<std::uint32_t>, kSketchCols>,
             kSketchRows>
      sketch_;
};

}  // namespace ramr::engine
