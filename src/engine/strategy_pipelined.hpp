// PipelinedSpsc — the RAMR coupling strategy (paper Sec. III, Fig. 2).
//
// Map tasks run on the general-purpose pool; each mapper emits its
// intermediate key/value pairs into its own fixed-capacity SPSC ring
// instead of combining them inline. Combiners run *concurrently* with
// mappers on the second pool: each one drains its assigned set of rings in
// batches, applies the combine function, and stores results in a private
// container. When all map tasks are done each mapper closes its ring; a
// combiner exits once all of its rings are closed and drained.
//
// The three resource-aware mechanisms:
//   * batched reads       — Ring::consume_batch (Sec. III-A, Figs. 6/7);
//   * sleep on failed push — spsc::SleepBackoff or the exponential capped
//     ladder (Sec. III-A; selected by RuntimeConfig::backoff);
//   * contention-aware pinning — topo::make_plan(kRamrPaired) places each
//     combiner on a logical CPU adjacent to its mappers (Sec. III-B).
//
// Failure protocol (docs/ARCHITECTURE.md §6): the first failing worker
// records an attributed cancel on the run's CancellationToken and rethrows
// its exception; every peer polls the token — mappers at task boundaries
// and inside the full-ring push loop, combiners every sweep, backoffs
// before every sleep — and exits quietly, so the pool carrying the root
// cause is the only one that reports. A mapper that dies still closes its
// ring (so combiners can terminate even mid-cancel), and the pools are
// joined through engine::join_pools_rethrow_first (which surfaces, not
// drops, a second pool's suppressed error).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "containers/container_traits.hpp"
#include "engine/app_model.hpp"
#include "engine/collect.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/precombine.hpp"
#include "engine/result.hpp"
#include "mem/arena.hpp"
#include "mem/layer.hpp"
#include "sched/parallel_sort.hpp"
#include "spsc/backoff.hpp"
#include "spsc/ring.hpp"
#include "spsc/ring_set.hpp"

namespace ramr::engine {

template <mr::AppSpec App>
class PipelinedSpsc {
 public:
  using Container = typename App::container_type;
  using key_type = mr::key_type_of<App>;
  using value_type = mr::value_type_of<App>;
  using Record = containers::KeyValue<key_type, value_type>;
  static constexpr bool kHasReduce = true;
  static constexpr const char* kName = "pipelined";

  void map_combine(MapCombineContext& ctx, const App& app,
                   const typename App::input_type& input,
                   RunResult<key_type, value_type>& result) {
    const RuntimeConfig& cfg = ctx.pools.config();
    const topo::PinningPlan& plan = ctx.pools.plan();
    if (!ctx.pools.dual() || cfg.num_combiners == 0) {
      throw ConfigError(
          "PipelinedSpsc requires a dual-pool PoolSet with at least one "
          "combiner (got a single-pool/zero-combiner configuration)");
    }

    // One ring per mapper (single producer); each combiner drains a
    // disjoint ring set (single consumer) — SPSC suffices (Sec. III-A).
    // With the memory layer on, slot storage is placed for the ring's
    // *consumer*: huge-page-backed, and in numa mode bound to the node of
    // the combiner that drains it (the consumer reads every slot; the
    // producer writes each one once).
    mem::MemoryLayer* memlayer = ctx.pools.memory();
    rings_.clear();
    rings_.reserve(cfg.num_mappers);
    for (std::size_t m = 0; m < cfg.num_mappers; ++m) {
      if (memlayer != nullptr) {
        const int node =
            memlayer->node_of_combiner(plan.combiner_of_mapper(m));
        rings_.push_back(std::make_unique<spsc::Ring<Record>>(
            cfg.queue_capacity, memlayer->ring_storage(node)));
      } else {
        rings_.push_back(
            std::make_unique<spsc::Ring<Record>>(cfg.queue_capacity));
      }
    }
    combiner_containers_.clear();
    combiner_containers_.reserve(cfg.num_combiners);
    for (std::size_t j = 0; j < cfg.num_combiners; ++j) {
      ctx.injector.on_container_alloc();
      combiner_containers_.push_back(app.make_container());
    }

    std::atomic<std::size_t> tasks_executed{0};
    std::atomic<std::size_t> backoff_sleeps{0};

    // Producer-side emit batching: 0 keeps the historical element-wise
    // try_push path. The initial size comes from the resolved config (via
    // the tuning mailbox when the adaptive controller runs, so a governor
    // retune is visible mid-phase).
    const std::size_t emit_init =
        ctx.tuning != nullptr ? ctx.tuning->emit_batch() : cfg.emit_batch;

    // Ring-occupancy time-series: total elements queued across all rings,
    // snapshotted by the sampler thread (Ring::size() is a cross-thread-safe
    // approximation). Removed before map_combine returns, so the probe
    // never outlives the rings it reads.
    telemetry::Sampler::ProbeHandle occupancy_probe;
    if (ctx.telemetry != nullptr && ctx.telemetry->sampler() != nullptr) {
      occupancy_probe = ctx.telemetry->sampler()->scoped_probe(
          "queue_occupancy_total", [this] {
            std::size_t total = 0;
            for (const auto& ring : rings_) total += ring->size();
            return static_cast<double>(total);
          });
    }

    const auto combiner_job = [&](std::size_t j) {
      Heartbeats::Slot& beat = ctx.beats.combiner(j);
      ActiveScope live(beat);
      std::vector<spsc::Ring<Record>*> mine;
      for (std::size_t m : plan.mappers_of_combiner[j]) {
        mine.push_back(rings_[m].get());
      }
      spsc::RingSet<Record> set(std::move(mine));
      Container& container = combiner_containers_[j];
      trace::Lane* lane = ctx.lanes.combiner[j];
      telemetry::EngineMetrics* tm = ctx.metrics();
      const std::size_t slot = tm != nullptr ? tm->combiner_slot(j) : 0;
      auto idle = make_consumer_backoff(cfg);
      idle.bind(&ctx.cancel.flag());
      if (ctx.tuning != nullptr) {
        idle.bind_cap(ctx.tuning->sleep_cap_cell());
      }
      const auto consume = [&container](std::span<Record> block) {
        for (Record& r : block) {
          container.emit(r.key, r.value);
        }
      };
      // Flushes sleep/batch accounting into metrics and the shared counter;
      // runs on success and on the failure paths alike (the consumer-side
      // ring stats are safe to read here: this thread is the consumer).
      const auto account = [&] {
        backoff_sleeps.fetch_add(idle.sleep_count(),
                                 std::memory_order_relaxed);
        if (tm == nullptr) return;
        tm->backoff_sleeps->add(slot, idle.sleep_count());
        std::uint64_t batch_total = 0;
        std::size_t max_occupancy = 0;
        for (std::size_t m : plan.mappers_of_combiner[j]) {
          const auto& cs = rings_[m]->consumer_stats();
          batch_total += cs.batches;
          max_occupancy = std::max(max_occupancy, cs.max_occupancy);
        }
        tm->queue_batches->add(slot, batch_total);
        tm->queue_max_occupancy->set(slot,
                                     static_cast<double>(max_occupancy));
      };
      std::size_t batches = 0;
      try {
        for (;;) {
          if (ctx.cancel.cancelled()) break;
          // The batch size is re-read per sweep so the governor can retune
          // it mid-phase; a sweep in flight always completes at the size it
          // started with (changes are never applied mid-batch).
          const std::size_t batch = ctx.tuning != nullptr
                                        ? ctx.tuning->batch_size()
                                        : cfg.batch_size;
          const std::size_t got = set.sweep(consume, batch);
          beat.bump();
          if (lane != nullptr) {
            lane->record(ctx.lanes.epoch,
                         got > 0 ? trace::EventKind::kDrainActive
                                 : trace::EventKind::kDrainIdle,
                         got);
          }
          if (got == 0) {
            if (set.finished()) break;
            const std::size_t before = idle.sleep_count();
            idle.wait();
            const std::size_t slept = idle.sleep_count() - before;
            if (slept > 0 && lane != nullptr) {
              lane->record(ctx.lanes.epoch, trace::EventKind::kBackoffSleep,
                           slept);
            }
          } else {
            if (tm != nullptr) tm->batch_sizes->record(slot, got);
            ctx.injector.on_combiner_batch(j, ++batches);
            // Periodic live occupancy sample for the governor (the final
            // value still lands via account()); every 32nd batch keeps the
            // sweep loop lean.
            if (tm != nullptr && (batches & 31U) == 0) {
              std::size_t occ = 0;
              for (std::size_t m : plan.mappers_of_combiner[j]) {
                occ = std::max(occ, rings_[m]->consumer_stats().max_occupancy);
              }
              tm->queue_max_occupancy->set(slot, static_cast<double>(occ));
            }
            idle.reset();
          }
        }
      } catch (const std::exception& e) {
        ctx.cancel.cancel(common::CancelCause::kWorkerFailed, "map-combine",
                          "combiner-" + std::to_string(j), e.what());
        account();
        throw;
      }
      account();
      if (lane != nullptr) {
        lane->record(ctx.lanes.epoch, trace::EventKind::kDrainDone, j);
      }
    };

    const auto mapper_job = [&](std::size_t m) {
      spsc::Ring<Record>& ring = *rings_[m];
      TaskLoopControl ctl = TaskLoopControl::create(ctx, m);
      ActiveScope live(ctl.beat);
      trace::Lane* lane = ctl.lane;
      telemetry::EngineMetrics* tm = ctl.metrics;
      std::size_t executed = 0;
      // `emit` feeds records toward the ring — directly, or staged through
      // the emit buffer when producer batching is on; the per-task hook
      // flushes the pre-combining and emit buffers so the combiners keep
      // receiving data at task granularity (an idle/stalling mapper never
      // sits on buffered records).
      auto run_with = [&](auto backoff, auto& emit_buf) {
        backoff.bind(&ctx.cancel.flag());
        if constexpr (requires { backoff.bind_cap(nullptr); }) {
          if (ctx.tuning != nullptr) {
            backoff.bind_cap(ctx.tuning->sleep_cap_cell());
          }
        }
        // One blocked-on-full-ring wait step, shared by the element-wise
        // push loop and the batched flush loop.
        auto wait_full = [&] {
          // Live mirror of the ring's failed-push count (the governor's
          // congestion signal must be visible mid-phase, not at join).
          // This is the slow path — the ring was full and we are about
          // to back off anyway.
          if (tm != nullptr) tm->queue_failed_pushes->increment(m);
          if (ctx.cancel.cancelled()) {
            // Unwind out of app.map; the wrapper below exits quietly
            // (the peer that caused the cancel reports the error).
            throw common::CancelledError(
                "mapper-" + std::to_string(m) +
                ": run cancelled while blocked on a full ring");
          }
          ctl.beat.bump();
          const std::size_t before = backoff.sleep_count();
          backoff.wait();
          const std::size_t slept = backoff.sleep_count() - before;
          if (slept > 0 && lane != nullptr) {
            lane->record(ctx.lanes.epoch, trace::EventKind::kBackoffSleep,
                         slept);
          }
        };
        // Publishes the buffered block through try_push_batch: one release
        // store (and at most one cached-head refresh) per accepted span
        // instead of per element, backing off whenever the ring is full.
        auto flush = [&] {
          std::span<Record> rest(emit_buf.data(), emit_buf.size());
          while (!rest.empty()) {
            const std::size_t n = ring.try_push_batch(rest);
            if (n == 0) {
              wait_full();
              continue;
            }
            rest = rest.subspan(n);
            backoff.reset();
          }
          emit_buf.clear();
        };
        auto push_record = [&](Record&& r) {
          ctx.injector.on_emit(m);
          if (emit_init == 0) {
            while (!ring.try_push(std::move(r))) wait_full();
            backoff.reset();
            return;
          }
          emit_buf.push_back(std::move(r));
          // The batch size is re-read per emit so the governor can retune
          // it mid-phase; a change never splits a block mid-flush.
          const std::size_t want = ctx.tuning != nullptr
                                       ? ctx.tuning->emit_batch()
                                       : emit_init;
          if (emit_buf.size() >= std::max<std::size_t>(1, want)) flush();
        };
        if (cfg.precombine_slots > 0) {
          PrecombineBuffer<key_type, value_type, typename Container::combiner>
              buffer(cfg.precombine_slots);
          executed = drain_map_tasks(
              ctl, app, input,
              [&](const key_type& k, const value_type& v) {
                if (auto evicted = buffer.absorb(k, v)) {
                  push_record(std::move(*evicted));
                }
              },
              [&] {
                buffer.flush(push_record);
                if (!emit_buf.empty()) flush();
              });
        } else {
          executed = drain_map_tasks(
              ctl, app, input,
              [&](const key_type& k, const value_type& v) {
                push_record(Record{k, v});
              },
              [&] {
                if (!emit_buf.empty()) flush();
              });
        }
        // Close-time flush: nothing buffered may be lost when the stream
        // ends (the per-task hook normally leaves this empty).
        if (!emit_buf.empty()) flush();
        backoff_sleeps.fetch_add(backoff.sleep_count(),
                                 std::memory_order_relaxed);
        if (tm != nullptr) {
          tm->backoff_sleeps->add(m, backoff.sleep_count());
        }
      };
      auto dispatch = [&](auto& emit_buf) {
        switch (cfg.backoff) {
          case BackoffKind::kBusyWait:
            run_with(spsc::BusyWaitBackoff{}, emit_buf);
            break;
          case BackoffKind::kExponential:
            run_with(spsc::ExponentialSleepBackoff(
                         std::chrono::microseconds(cfg.sleep_micros),
                         std::chrono::microseconds(cfg.sleep_cap_micros)),
                     emit_buf);
            break;
          case BackoffKind::kSleep:
            run_with(spsc::SleepBackoff(
                         std::chrono::microseconds(cfg.sleep_micros)),
                     emit_buf);
            break;
        }
      };
      // Reserving the governor's upper clamp up front keeps an
      // arena-backed buffer from abandoning grown-out blocks
      // (ArenaAllocator never reclaims) and the heap one from reallocating
      // mid-phase.
      const std::size_t emit_cap =
          emit_init == 0
              ? 0
              : std::max(emit_init, std::max<std::size_t>(
                                        1, cfg.queue_capacity / 2));
      try {
        if (memlayer != nullptr) {
          // KV records staged in this mapper's arena: node-local in numa
          // mode, reclaimed wholesale by the layer's end-of-run reset.
          std::vector<Record, mem::ArenaAllocator<Record>> emit_buf(
              mem::ArenaAllocator<Record>(&memlayer->mapper_arena(m)));
          emit_buf.reserve(emit_cap);
          dispatch(emit_buf);
        } else {
          std::vector<Record> emit_buf;
          emit_buf.reserve(emit_cap);
          dispatch(emit_buf);
        }
      } catch (const common::CancelledError&) {
        // Cooperative unwind: a peer failed or a watchdog verdict landed.
        // Close even here: combiners must be able to terminate.
        ring.close();
        tasks_executed.fetch_add(executed, std::memory_order_relaxed);
        return;
      } catch (const std::exception& e) {
        ctx.cancel.cancel(common::CancelCause::kWorkerFailed, "map-combine",
                          "mapper-" + std::to_string(m), e.what());
        ring.close();
        throw;
      } catch (...) {
        ctx.cancel.cancel(common::CancelCause::kWorkerFailed, "map-combine",
                          "mapper-" + std::to_string(m),
                          "<non-standard exception>");
        ring.close();
        throw;
      }
      // Map phase over for this mapper: notify the combiner side.
      ring.close();
      if (lane != nullptr) {
        lane->record(ctx.lanes.epoch, trace::EventKind::kStreamClose, m);
      }
      tasks_executed.fetch_add(executed, std::memory_order_relaxed);
      if (tm != nullptr) {
        // Producer-side ring stats, read by their single writer (this
        // thread) after it stopped pushing. Failed pushes were already
        // mirrored live on the full-ring path above.
        tm->queue_pushes->add(m, ring.producer_stats().pushes);
        tm->queue_push_batches->add(m, ring.producer_stats().push_batches);
        if (memlayer != nullptr) {
          tm->arena_high_water->set(
              m, static_cast<double>(
                     memlayer->mapper_arena(m).stats().high_water));
        }
      }
    };

    // Consumer-side first-touch: in numa mode each combiner touches its
    // rings' slot pages before the pipeline starts, so the kernel backs
    // them on the consumer's node (this complements the mbind hint, and is
    // the whole placement mechanism when mbind is unavailable). Blocking
    // pass — no producer has pushed yet, so prefault cannot race.
    if (memlayer != nullptr && memlayer->placement()) {
      ctx.pools.combiner_pool().run_on_all([&](std::size_t j) {
        for (std::size_t m : plan.mappers_of_combiner[j]) {
          rings_[m]->prefault();
        }
      });
    }

    ctx.pools.combiner_pool().start(combiner_job);
    ctx.pools.mapper_pool().start(mapper_job);
    join_pools_rethrow_first(ctx.pools.mapper_pool(),
                             ctx.pools.combiner_pool());

    result.tasks_executed = tasks_executed.load();
    result.backoff_sleeps = backoff_sleeps.load();
    for (const auto& ring : rings_) {
      result.queue_pushes += ring->producer_stats().pushes;
      result.queue_failed_pushes += ring->producer_stats().failed_pushes;
      result.queue_batches += ring->consumer_stats().batches;
      result.queue_push_batches += ring->producer_stats().push_batches;
      result.queue_max_occupancy = std::max(
          result.queue_max_occupancy, ring->consumer_stats().max_occupancy);
    }
    // Skew profiler (RAMR_OBS=1): attribute each ring's end-of-run stats
    // to the combiner that drained it. Pools are joined — single-threaded
    // reads, zero hot-path cost.
    if (ctx.skew != nullptr) {
      for (std::size_t j = 0; j < plan.mappers_of_combiner.size(); ++j) {
        std::uint64_t elements = 0;
        std::uint64_t occupancy = 0;
        for (std::size_t m : plan.mappers_of_combiner[j]) {
          elements += rings_[m]->producer_stats().pushes;
          occupancy = std::max<std::uint64_t>(
              occupancy, rings_[m]->consumer_stats().max_occupancy);
        }
        ctx.skew->add_drained(j, elements, occupancy);
      }
    }
  }

  // Reduce and merge run on the general-purpose pool ("the top pool ...
  // will be used to execute the tasks of map, reduce and merge").
  void reduce(PoolSet& pools) {
    sched::parallel_tree_merge(pools.mapper_pool(), combiner_containers_);
  }

  // Copy-out fanned over the general-purpose pool (serial for small
  // containers); the driver passes the pools through the two-argument
  // collect signature.
  void collect(RunResult<key_type, value_type>& result, PoolSet& pools) {
    if (combiner_containers_.empty()) {
      throw Error("PipelinedSpsc::collect: no combiner containers (was "
                  "map_combine run?)");
    }
    result.pairs = collect_pairs(pools.mapper_pool(), combiner_containers_[0]);
  }

 private:
  // Consumer-side idle policy: the exponential ladder applies when
  // selected; busy-wait producers still pair with a sleeping consumer
  // (the combiner has nothing to do on an empty sweep either way).
  static auto make_consumer_backoff(const RuntimeConfig& cfg) {
    return spsc::ExponentialSleepBackoff(
        std::chrono::microseconds(cfg.sleep_micros),
        std::chrono::microseconds(cfg.backoff == BackoffKind::kExponential
                                      ? cfg.sleep_cap_micros
                                      : cfg.sleep_micros));
  }

  std::vector<std::unique_ptr<spsc::Ring<Record>>> rings_;
  std::vector<Container> combiner_containers_;
};

}  // namespace ramr::engine
