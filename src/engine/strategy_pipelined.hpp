// PipelinedSpsc — the RAMR coupling strategy (paper Sec. III, Fig. 2).
//
// Map tasks run on the general-purpose pool; each mapper emits its
// intermediate key/value pairs into its own fixed-capacity SPSC ring
// instead of combining them inline. Combiners run *concurrently* with
// mappers on the second pool: each one drains its assigned set of rings in
// batches, applies the combine function, and stores results in a private
// container. When all map tasks are done each mapper closes its ring; a
// combiner exits once all of its rings are closed and drained.
//
// The three resource-aware mechanisms:
//   * batched reads       — Ring::consume_batch (Sec. III-A, Figs. 6/7);
//   * sleep on failed push — spsc::SleepBackoff (Sec. III-A);
//   * contention-aware pinning — topo::make_plan(kRamrPaired) places each
//     combiner on a logical CPU adjacent to its mappers (Sec. III-B).
//
// Failure protocol: a mapper that dies still closes its ring (so combiners
// terminate); a combiner that dies raises a shared flag (so mappers blocked
// on its full rings abort instead of waiting forever); the pools are joined
// through engine::join_pools_rethrow_first.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "containers/container_traits.hpp"
#include "engine/app_model.hpp"
#include "engine/emit_strategy.hpp"
#include "engine/precombine.hpp"
#include "engine/result.hpp"
#include "sched/parallel_sort.hpp"
#include "spsc/backoff.hpp"
#include "spsc/ring.hpp"
#include "spsc/ring_set.hpp"

namespace ramr::engine {

template <mr::AppSpec App>
class PipelinedSpsc {
 public:
  using Container = typename App::container_type;
  using key_type = mr::key_type_of<App>;
  using value_type = mr::value_type_of<App>;
  using Record = containers::KeyValue<key_type, value_type>;
  static constexpr bool kHasReduce = true;

  void map_combine(MapCombineContext& ctx, const App& app,
                   const typename App::input_type& input,
                   RunResult<key_type, value_type>& result) {
    const RuntimeConfig& cfg = ctx.pools.config();
    const topo::PinningPlan& plan = ctx.pools.plan();

    // One ring per mapper (single producer); each combiner drains a
    // disjoint ring set (single consumer) — SPSC suffices (Sec. III-A).
    rings_.clear();
    rings_.reserve(cfg.num_mappers);
    for (std::size_t m = 0; m < cfg.num_mappers; ++m) {
      rings_.push_back(std::make_unique<spsc::Ring<Record>>(cfg.queue_capacity));
    }
    combiner_containers_.clear();
    combiner_containers_.reserve(cfg.num_combiners);
    for (std::size_t j = 0; j < cfg.num_combiners; ++j) {
      combiner_containers_.push_back(app.make_container());
    }

    std::atomic<std::size_t> tasks_executed{0};
    std::atomic<bool> combiner_failed{false};

    const auto combiner_job = [&](std::size_t j) {
      std::vector<spsc::Ring<Record>*> mine;
      for (std::size_t m : plan.mappers_of_combiner[j]) {
        mine.push_back(rings_[m].get());
      }
      spsc::RingSet<Record> set(std::move(mine));
      Container& container = combiner_containers_[j];
      trace::Lane* lane = ctx.lanes.combiner[j];
      spsc::SleepBackoff idle(std::chrono::microseconds(cfg.sleep_micros));
      const auto consume = [&container](std::span<Record> block) {
        for (Record& r : block) {
          container.emit(r.key, r.value);
        }
      };
      try {
        for (;;) {
          const std::size_t got = set.sweep(consume, cfg.batch_size);
          if (lane != nullptr) {
            lane->record(ctx.lanes.epoch,
                         got > 0 ? trace::EventKind::kDrainActive
                                 : trace::EventKind::kDrainIdle,
                         got);
          }
          if (got == 0) {
            if (set.finished()) break;
            idle.wait();
          } else {
            idle.reset();
          }
        }
      } catch (...) {
        combiner_failed.store(true, std::memory_order_release);
        throw;
      }
      if (lane != nullptr) {
        lane->record(ctx.lanes.epoch, trace::EventKind::kDrainDone, j);
      }
    };

    const auto mapper_job = [&](std::size_t m) {
      spsc::Ring<Record>& ring = *rings_[m];
      const std::size_t group = ctx.pools.group_of_mapper(m);
      trace::Lane* lane = ctx.lanes.mapper[m];
      std::size_t executed = 0;
      // `emit` feeds records toward the ring; the per-task hook flushes the
      // pre-combining buffer (when enabled) so the combiners keep receiving
      // data at task granularity.
      auto run_with = [&](auto backoff) {
        auto push_record = [&](Record&& r) {
          while (!ring.try_push(std::move(r))) {
            if (combiner_failed.load(std::memory_order_acquire)) {
              throw Error("RAMR: combiner thread failed; aborting map");
            }
            backoff.wait();
          }
          backoff.reset();
        };
        if (cfg.precombine_slots > 0) {
          PrecombineBuffer<key_type, value_type, typename Container::combiner>
              buffer(cfg.precombine_slots);
          executed = drain_map_tasks(
              ctx.queues, group, app, input, lane, ctx.lanes.epoch,
              [&](const key_type& k, const value_type& v) {
                if (auto evicted = buffer.absorb(k, v)) {
                  push_record(std::move(*evicted));
                }
              },
              [&] { buffer.flush(push_record); });
        } else {
          executed = drain_map_tasks(
              ctx.queues, group, app, input, lane, ctx.lanes.epoch,
              [&](const key_type& k, const value_type& v) {
                push_record(Record{k, v});
              },
              [] {});
        }
      };
      try {
        if (cfg.sleep_on_full) {
          run_with(
              spsc::SleepBackoff(std::chrono::microseconds(cfg.sleep_micros)));
        } else {
          run_with(spsc::BusyWaitBackoff{});
        }
      } catch (...) {
        // Close even on failure: combiners must be able to terminate.
        ring.close();
        throw;
      }
      // Map phase over for this mapper: notify the combiner side.
      ring.close();
      if (lane != nullptr) {
        lane->record(ctx.lanes.epoch, trace::EventKind::kStreamClose, m);
      }
      tasks_executed.fetch_add(executed, std::memory_order_relaxed);
    };

    ctx.pools.combiner_pool().start(combiner_job);
    ctx.pools.mapper_pool().start(mapper_job);
    join_pools_rethrow_first(ctx.pools.mapper_pool(),
                             ctx.pools.combiner_pool());

    result.tasks_executed = tasks_executed.load();
    for (const auto& ring : rings_) {
      result.queue_pushes += ring->producer_stats().pushes;
      result.queue_failed_pushes += ring->producer_stats().failed_pushes;
      result.queue_batches += ring->consumer_stats().batches;
      result.queue_max_occupancy = std::max(
          result.queue_max_occupancy, ring->consumer_stats().max_occupancy);
    }
  }

  // Reduce and merge run on the general-purpose pool ("the top pool ...
  // will be used to execute the tasks of map, reduce and merge").
  void reduce(PoolSet& pools) {
    sched::parallel_tree_merge(pools.mapper_pool(), combiner_containers_);
  }

  void collect(RunResult<key_type, value_type>& result) {
    result.pairs = containers::to_pairs(combiner_containers_[0]);
  }

 private:
  std::vector<std::unique_ptr<spsc::Ring<Record>>> rings_;
  std::vector<Container> combiner_containers_;
};

}  // namespace ramr::engine
