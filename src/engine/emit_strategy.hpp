// The EmitStrategy concept: how map output couples to the combine side.
//
// The paper's three architectures are one runtime skeleton (split →
// map-combine → reduce → merge, see engine/phase_driver.hpp) with different
// map→combine coupling strategies:
//
//   * FusedCombine   (Phoenix++) — combine inline after every emission into
//     a thread-local container;               engine/strategy_fused.hpp
//   * PipelinedSpsc  (RAMR)      — emissions stream through SPSC rings to a
//     concurrent combiner pool;               engine/strategy_pipelined.hpp
//   * AtomicGlobal   (MRPhi)     — emissions fetch-op on one shared
//     atomically-accessed container;          engine/strategy_atomic.hpp
//
// A strategy owns the per-run intermediate state (containers, rings) and
// implements:
//
//   using key_type / value_type;               // of the pipelined records
//   static constexpr bool kHasReduce;          // false = no reduce phase at
//                                              // all (its timer stays 0)
//   void map_combine(ctx, app, input, result); // the overlapped phase
//   void reduce(PoolSet&);                     // merge down to one container
//   void collect(result);                      // fill result.pairs, unsorted
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "engine/pool_set.hpp"
#include "sched/task_queue.hpp"
#include "trace/trace.hpp"

namespace ramr::engine {

// Per-run trace lanes, one per thread. Lanes must exist before the pools
// start (Recorder setup is not thread-safe); each lane is then written by
// exactly one thread. Disabled (all null) without a recorder.
struct TraceLanes {
  std::vector<trace::Lane*> mapper;    // one per general-purpose worker
  std::vector<trace::Lane*> combiner;  // one per combiner (dual shape only)
  Clock::time_point epoch{};

  // Lane names: "mapper-i"/"combiner-j" under the dual shape, "worker-i"
  // under the single shape (one pool, no distinct combiner role).
  static TraceLanes create(trace::Recorder* recorder, const PoolSet& pools) {
    TraceLanes lanes;
    lanes.mapper.assign(pools.num_mappers(), nullptr);
    lanes.combiner.assign(pools.num_combiners(), nullptr);
    if (recorder == nullptr) return lanes;
    lanes.epoch = recorder->epoch();
    const std::string mapper_prefix = pools.dual() ? "mapper-" : "worker-";
    for (std::size_t m = 0; m < lanes.mapper.size(); ++m) {
      lanes.mapper[m] = &recorder->lane(mapper_prefix + std::to_string(m));
    }
    for (std::size_t j = 0; j < lanes.combiner.size(); ++j) {
      lanes.combiner[j] = &recorder->lane("combiner-" + std::to_string(j));
    }
    return lanes;
  }
};

// Everything a strategy needs during the map-combine phase.
struct MapCombineContext {
  PoolSet& pools;
  sched::TaskQueues& queues;
  TraceLanes& lanes;
};

// The shared mapper task loop: pops TaskRanges from the group's queue,
// maps every split through `emit`, runs `on_task_end` between tasks (the
// pre-combining strategy flushes its buffer there), and records task
// start/end trace events. Returns the number of tasks executed.
template <typename App, typename Emit, typename OnTaskEnd>
std::size_t drain_map_tasks(sched::TaskQueues& queues, std::size_t group,
                            const App& app,
                            const typename App::input_type& input,
                            trace::Lane* lane, Clock::time_point epoch,
                            Emit&& emit, OnTaskEnd&& on_task_end) {
  std::size_t executed = 0;
  while (auto task = queues.pop(group)) {
    if (lane != nullptr) {
      lane->record(epoch, trace::EventKind::kTaskStart, task->begin);
    }
    for (std::size_t split = task->begin; split < task->end; ++split) {
      app.map(input, split, emit);
    }
    on_task_end();
    if (lane != nullptr) {
      lane->record(epoch, trace::EventKind::kTaskEnd, task->begin);
    }
    ++executed;
  }
  return executed;
}

template <typename St>
concept EmitStrategy = requires {
  typename St::key_type;
  typename St::value_type;
  { St::kHasReduce } -> std::convertible_to<bool>;
};

}  // namespace ramr::engine
