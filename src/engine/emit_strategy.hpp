// The EmitStrategy concept: how map output couples to the combine side.
//
// The paper's three architectures are one runtime skeleton (split →
// map-combine → reduce → merge, see engine/phase_driver.hpp) with different
// map→combine coupling strategies:
//
//   * FusedCombine   (Phoenix++) — combine inline after every emission into
//     a thread-local container;               engine/strategy_fused.hpp
//   * PipelinedSpsc  (RAMR)      — emissions stream through SPSC rings to a
//     concurrent combiner pool;               engine/strategy_pipelined.hpp
//   * AtomicGlobal   (MRPhi)     — emissions fetch-op on one shared
//     atomically-accessed container;          engine/strategy_atomic.hpp
//
// A strategy owns the per-run intermediate state (containers, rings) and
// implements:
//
//   using key_type / value_type;               // of the pipelined records
//   static constexpr bool kHasReduce;          // false = no reduce phase at
//                                              // all (its timer stays 0)
//   void map_combine(ctx, app, input, result); // the overlapped phase
//   void reduce(PoolSet&);                     // merge down to one container
//   void collect(result[, pools]);             // fill result.pairs, unsorted
//                                              // (pools overload = parallel
//                                              // copy-out, engine/collect.hpp)
//
// Robustness plumbing (all owned by PhaseDriver::run, threaded through the
// context): a CancellationToken every worker polls at its scheduling
// points, a fault Injector (zero-cost when disabled), per-worker
// Heartbeats for the stall watchdog, and the task-retry state. Workers
// observing cancellation exit *quietly* so the pool that carries the
// root-cause exception is the only one that reports an error.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/timing.hpp"
#include "engine/health.hpp"
#include "engine/pool_set.hpp"
#include "engine/skew_profiler.hpp"
#include "engine/tuning.hpp"
#include "faults/injector.hpp"
#include "sched/task_queue.hpp"
#include "telemetry/session.hpp"
#include "trace/trace.hpp"

namespace ramr::engine {

// Per-run trace lanes, one per thread. Lanes must exist before the pools
// start (Recorder setup is not thread-safe); each lane is then written by
// exactly one thread. Disabled (all null) without a recorder.
struct TraceLanes {
  std::vector<trace::Lane*> mapper;    // one per general-purpose worker
  std::vector<trace::Lane*> combiner;  // one per combiner (dual shape only)
  Clock::time_point epoch{};

  // Lane names: "mapper-i"/"combiner-j" under the dual shape, "worker-i"
  // under the single shape (one pool, no distinct combiner role).
  static TraceLanes create(trace::Recorder* recorder, const PoolSet& pools) {
    TraceLanes lanes;
    lanes.mapper.assign(pools.num_mappers(), nullptr);
    lanes.combiner.assign(pools.num_combiners(), nullptr);
    if (recorder == nullptr) return lanes;
    lanes.epoch = recorder->epoch();
    const std::string mapper_prefix = pools.dual() ? "mapper-" : "worker-";
    for (std::size_t m = 0; m < lanes.mapper.size(); ++m) {
      lanes.mapper[m] = &recorder->lane(mapper_prefix + std::to_string(m));
    }
    for (std::size_t j = 0; j < lanes.combiner.size(); ++j) {
      lanes.combiner[j] = &recorder->lane("combiner-" + std::to_string(j));
    }
    return lanes;
  }
};

// Shared counters for bounded task-level retry (owned by the driver; the
// totals land in RunResult::task_retries / task_aborts).
struct RetryState {
  std::size_t max_retries = 0;
  std::atomic<std::size_t> retries{0};  // retry attempts performed
  std::atomic<std::size_t> aborts{0};   // tasks that exhausted the budget
};

// Everything a strategy needs during the map-combine phase.
struct MapCombineContext {
  PoolSet& pools;
  sched::TaskQueues& queues;
  TraceLanes& lanes;
  common::CancellationToken& cancel;
  faults::Injector& injector;
  Heartbeats& beats;
  RetryState& retry;
  // Telemetry session, null when disabled (every site is one check). Slot
  // convention: mapper m -> slot m, combiner j -> combiner_slot(j).
  telemetry::Session* telemetry = nullptr;
  // Live tuning knobs, null when no governor is attached (the strategy
  // then uses the static config values). Combiners re-read the batch size
  // per sweep; producer backoffs bind the sleep-cap cell.
  TuningControl* tuning = nullptr;
  // Straggler/skew profiler, null unless RAMR_OBS=1 (one pointer check on
  // the emit and task paths when off).
  SkewProfiler* skew = nullptr;

  telemetry::EngineMetrics* metrics() const {
    return telemetry != nullptr ? telemetry->engine_metrics() : nullptr;
  }
};

// Per-worker control block for drain_map_tasks, bundling the scheduling
// inputs with the robustness plumbing.
struct TaskLoopControl {
  sched::TaskQueues& queues;
  std::size_t group;
  trace::Lane* lane;
  Clock::time_point epoch;
  common::CancellationToken& cancel;
  faults::Injector& injector;
  Heartbeats::Slot& beat;
  RetryState& retry;
  std::size_t worker;
  telemetry::EngineMetrics* metrics;  // null when telemetry is off
  SkewProfiler* skew;                 // null unless RAMR_OBS=1

  static TaskLoopControl create(MapCombineContext& ctx, std::size_t worker) {
    return TaskLoopControl{ctx.queues,
                           ctx.pools.group_of_mapper(worker),
                           ctx.lanes.mapper[worker],
                           ctx.lanes.epoch,
                           ctx.cancel,
                           ctx.injector,
                           ctx.beats.mapper(worker),
                           ctx.retry,
                           worker,
                           ctx.metrics(),
                           ctx.skew};
  }
};

// The shared mapper task loop: pops TaskRanges from the group's queue,
// maps every split through `emit`, runs `on_task_end` between tasks (the
// pre-combining strategy flushes its buffer there), and records task
// start/end trace events. Returns the number of tasks executed.
//
// Robustness semantics:
//  * cancellation is polled between tasks — a worker whose peer failed (or
//    whose run hit a deadline/stall verdict) stops pulling work and
//    returns normally with a partial count;
//  * a task attempt that throws a TransientError is re-executed up to
//    ctl.retry.max_retries times (the fault site fires *before* the task
//    body, so injected transient faults retry exactly-once-semantically;
//    an app that throws mid-emission is retried with at-least-once
//    emission semantics — see docs/ARCHITECTURE.md §6);
//  * any other exception (and a transient one past the budget) propagates
//    to the strategy's worker wrapper, which attributes it on the token
//    and rethrows.
template <typename App, typename Emit, typename OnTaskEnd>
std::size_t drain_map_tasks(const TaskLoopControl& ctl, const App& app,
                            const typename App::input_type& input,
                            Emit&& emit, OnTaskEnd&& on_task_end) {
  std::size_t executed = 0;
  // Skew-profiler emit shim: one null check per emission when profiling is
  // off; a tick + (1-in-64) sketch sample when on. Forwards to the
  // strategy's emit untouched either way.
  auto profiled_emit = [&](auto&& key, auto&&... rest) {
    if (ctl.skew != nullptr && ctl.skew->tick(ctl.worker)) {
      ctl.skew->sample_key(ctl.worker, key);
    }
    emit(std::forward<decltype(key)>(key),
         std::forward<decltype(rest)>(rest)...);
  };
  for (;;) {
    std::optional<sched::TaskRange> task = ctl.queues.pop(ctl.group);
    if (!task) {
      // Streaming mode (src/io/): an empty pop while the feeder's stream
      // is open means "wait, more windows are coming". The closed-then-
      // repop order matters: close_stream() is release-ordered after the
      // feeder's final push, so re-popping after observing the closed flag
      // sees every task (a plain break could strand the last window).
      if (ctl.queues.stream_open()) {
        if (ctl.cancel.cancelled()) break;
        ctl.beat.bump();
        ctl.queues.note_stream_wait();
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      task = ctl.queues.pop(ctl.group);
      if (!task) break;
    }
    if (ctl.cancel.cancelled()) break;
    ctl.beat.bump();
    if (ctl.lane != nullptr) {
      ctl.lane->record(ctl.epoch, trace::EventKind::kTaskStart, task->begin);
    }
    const Clock::time_point task_start =
        ctl.skew != nullptr ? Clock::now() : Clock::time_point{};
    std::size_t attempt = 0;
    for (;;) {
      try {
        ctl.injector.on_map_task(ctl.worker);
        for (std::size_t split = task->begin; split < task->end; ++split) {
          app.map(input, split, profiled_emit);
        }
        on_task_end();
        break;
      } catch (const TransientError&) {
        if (attempt >= ctl.retry.max_retries || ctl.cancel.cancelled()) {
          ctl.retry.aborts.fetch_add(1, std::memory_order_relaxed);
          if (ctl.metrics != nullptr) {
            ctl.metrics->task_aborts->increment(ctl.worker);
          }
          throw;
        }
        ++attempt;
        ctl.retry.retries.fetch_add(1, std::memory_order_relaxed);
        if (ctl.lane != nullptr) {
          ctl.lane->record(ctl.epoch, trace::EventKind::kTaskRetry,
                           task->begin);
        }
        if (ctl.metrics != nullptr) {
          ctl.metrics->task_retries->increment(ctl.worker);
        }
        ctl.beat.bump();
      }
    }
    if (ctl.skew != nullptr) {
      ctl.skew->add_busy(ctl.worker, seconds_between(task_start, Clock::now()));
    }
    if (ctl.lane != nullptr) {
      ctl.lane->record(ctl.epoch, trace::EventKind::kTaskEnd, task->begin);
    }
    ctl.beat.bump();
    ++executed;
    if (ctl.metrics != nullptr) {
      ctl.metrics->tasks_executed->increment(ctl.worker);
    }
    // Streaming backpressure: report the completed task so its window slot
    // can retire (one pointer check outside streaming mode). Only fully
    // successful tasks report — an aborted task leaves its slot pending
    // and the feeder's cancel-aware slot wait bails instead.
    ctl.queues.notify_complete(*task);
  }
  return executed;
}

template <typename St>
concept EmitStrategy = requires {
  typename St::key_type;
  typename St::value_type;
  { St::kHasReduce } -> std::convertible_to<bool>;
};

}  // namespace ramr::engine
