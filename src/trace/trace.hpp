// Lightweight execution tracing for the pipelined runtime.
//
// The point of RAMR is *overlap*: mappers and combiners active at the same
// time on complementary resources. This subsystem records per-thread event
// timelines (task execution, drain activity, blocking) with one single-
// writer lane per thread — no locks or atomics on the hot path beyond a
// relaxed enabled-check — and renders them as an ASCII Gantt chart so the
// overlap is visible (see examples/pipeline_trace.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/timing.hpp"

namespace ramr::trace {

enum class EventKind : std::uint8_t {
  kTaskStart,    // mapper begins a task        (arg = first split)
  kTaskEnd,      // mapper finished the task    (arg = first split)
  kStreamClose,  // mapper closed its ring      (arg = mapper index)
  kDrainActive,  // combiner consumed a batch   (arg = elements consumed)
  kDrainIdle,    // combiner found all queues empty (arg unused)
  kDrainDone,     // combiner observed all queues closed+drained
  kPhaseStart,    // arg = Phase enum value
  kPhaseEnd,      // arg = Phase enum value
  kBackoffSleep,  // a backoff wait actually slept (arg = sleeps performed)
  kTaskRetry,     // a map task is re-executed after a transient failure
                  // (arg = first split of the retried task)
  kGovernorAction,  // the adaptive governor applied a knob change
                    // (arg = the new value; see RunResult::governor_actions
                    // for which knob and the old value)
  kIoWindow,        // the IO lane published an input window as map tasks
                    // (arg = window ordinal; streaming runs only)
  kIoStall,         // the IO lane blocked waiting for a free window slot
                    // (arg = window ordinal it was trying to fill)
};

const char* to_string(EventKind kind);

struct Event {
  double seconds = 0.0;  // relative to Recorder construction
  EventKind kind = EventKind::kTaskStart;
  std::uint32_t lane = 0;  // thread lane index
  std::uint64_t arg = 0;
};

// One single-writer event buffer. Bounded: events beyond the capacity are
// counted (dropped_) but not stored, so tracing can never blow memory.
class Lane {
 public:
  explicit Lane(std::string name, std::size_t capacity);

  const std::string& name() const { return name_; }
  void record(Clock::time_point epoch, EventKind kind, std::uint64_t arg);
  const std::vector<Event>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }
  void set_index(std::uint32_t index) { index_ = index; }

  // Recorder wiring: the lane's first record() seals its recorder against
  // further lane creation (one release store per lane, then free).
  void bind_seal(std::atomic<bool>* seal) { seal_ = seal; }

 private:
  std::string name_;
  std::size_t capacity_;
  std::uint32_t index_ = 0;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
  std::atomic<bool>* seal_ = nullptr;
  bool recording_marked_ = false;
};

// The recorder owns the lanes. Thread-safety contract: lanes are created
// up front (before the traced region starts); each lane is then written by
// exactly one thread; collect() runs after the region quiesces.
class Recorder {
 public:
  explicit Recorder(std::size_t per_lane_capacity = 1 << 16);

  // Creates (or returns) the lane with this name. Not thread-safe; call
  // during setup only — the contract is enforced: once any lane has
  // recorded an event the recorder is sealed, and creating a NEW lane
  // throws Error (looking up an existing lane stays valid, so long-lived
  // recorders work across run() calls).
  Lane& lane(const std::string& name);

  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  std::size_t lane_count() const { return lanes_.size(); }
  const Lane& lane_at(std::size_t i) const { return *lanes_[i]; }
  Clock::time_point epoch() const { return epoch_; }

  // All events from all lanes, time-sorted.
  std::vector<Event> collect() const;

  // Total time span covered by recorded events (seconds).
  double span() const;

 private:
  Clock::time_point epoch_;
  std::size_t per_lane_capacity_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> sealed_{false};
};

// ASCII Gantt chart: one row per lane, `width` time buckets; a bucket
// prints '#' if the lane was actively working in it, '.' if it was idle/
// blocked, ' ' if no events fell there. "Active" means inside a
// TaskStart/TaskEnd pair or a DrainActive event.
std::string render_timeline(const Recorder& recorder, std::size_t width = 72);

// Text summary: events per lane, drops, per-kind counts.
std::string summarize(const Recorder& recorder);

}  // namespace ramr::trace
