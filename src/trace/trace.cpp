#include "trace/trace.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace ramr::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskStart: return "task-start";
    case EventKind::kTaskEnd: return "task-end";
    case EventKind::kStreamClose: return "stream-close";
    case EventKind::kDrainActive: return "drain-active";
    case EventKind::kDrainIdle: return "drain-idle";
    case EventKind::kDrainDone: return "drain-done";
    case EventKind::kPhaseStart: return "phase-start";
    case EventKind::kPhaseEnd: return "phase-end";
    case EventKind::kBackoffSleep: return "backoff-sleep";
    case EventKind::kTaskRetry: return "task-retry";
    case EventKind::kGovernorAction: return "governor-action";
    case EventKind::kIoWindow: return "io-window";
    case EventKind::kIoStall: return "io-stall";
  }
  return "?";
}

Lane::Lane(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {
  events_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void Lane::record(Clock::time_point epoch, EventKind kind,
                  std::uint64_t arg) {
  if (!recording_marked_) {
    recording_marked_ = true;
    if (seal_ != nullptr) seal_->store(true, std::memory_order_release);
  }
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{seconds_between(epoch, now()), kind, index_, arg});
}

Recorder::Recorder(std::size_t per_lane_capacity)
    : epoch_(now()), per_lane_capacity_(per_lane_capacity) {}

Lane& Recorder::lane(const std::string& name) {
  for (auto& l : lanes_) {
    if (l->name() == name) return *l;
  }
  if (sealed()) {
    throw Error("trace::Recorder::lane: cannot create lane '" + name +
                "' after recording has started (lanes are setup-only; "
                "create every lane before the traced region runs)");
  }
  lanes_.push_back(std::make_unique<Lane>(name, per_lane_capacity_));
  lanes_.back()->set_index(static_cast<std::uint32_t>(lanes_.size() - 1));
  lanes_.back()->bind_seal(&sealed_);
  return *lanes_.back();
}

std::vector<Event> Recorder::collect() const {
  std::vector<Event> all;
  for (const auto& l : lanes_) {
    all.insert(all.end(), l->events().begin(), l->events().end());
  }
  std::sort(all.begin(), all.end(),
            [](const Event& a, const Event& b) { return a.seconds < b.seconds; });
  return all;
}

double Recorder::span() const {
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  for (const auto& l : lanes_) {
    for (const Event& e : l->events()) {
      if (!any) {
        lo = hi = e.seconds;
        any = true;
      } else {
        lo = std::min(lo, e.seconds);
        hi = std::max(hi, e.seconds);
      }
    }
  }
  return any ? hi - lo : 0.0;
}

std::string render_timeline(const Recorder& recorder, std::size_t width) {
  if (width == 0) throw Error("render_timeline: width must be >= 1");
  const auto events = recorder.collect();
  if (events.empty()) return "(no events)\n";
  const double t0 = events.front().seconds;
  const double t1 = events.back().seconds;
  const double span = std::max(t1 - t0, 1e-9);

  std::ostringstream os;
  std::size_t name_width = 0;
  for (std::size_t i = 0; i < recorder.lane_count(); ++i) {
    name_width = std::max(name_width, recorder.lane_at(i).name().size());
  }
  for (std::size_t i = 0; i < recorder.lane_count(); ++i) {
    const Lane& lane = recorder.lane_at(i);
    std::string row(width, ' ');
    auto bucket_of = [&](double s) {
      const auto b = static_cast<std::size_t>((s - t0) / span *
                                              static_cast<double>(width));
      return std::min(b, width - 1);
    };
    // Active intervals: task start..end pairs; instantaneous marks for
    // drain activity; idle dots.
    double open_task = -1.0;
    for (const Event& e : lane.events()) {
      switch (e.kind) {
        case EventKind::kTaskStart:
          open_task = e.seconds;
          break;
        case EventKind::kTaskEnd:
          if (open_task >= 0.0) {
            for (std::size_t b = bucket_of(open_task);
                 b <= bucket_of(e.seconds); ++b) {
              row[b] = '#';
            }
            open_task = -1.0;
          }
          break;
        case EventKind::kDrainActive:
          row[bucket_of(e.seconds)] = '#';
          break;
        case EventKind::kDrainIdle:
          if (row[bucket_of(e.seconds)] == ' ') row[bucket_of(e.seconds)] = '.';
          break;
        case EventKind::kStreamClose:
        case EventKind::kDrainDone:
          if (row[bucket_of(e.seconds)] == ' ') row[bucket_of(e.seconds)] = '|';
          break;
        default:
          break;
      }
    }
    os << lane.name();
    os << std::string(name_width - lane.name().size(), ' ') << " [" << row
       << "]\n";
  }
  os << std::string(name_width, ' ') << "  0" << std::string(width - 2, '-')
     << "> " << span * 1e3 << " ms\n";
  return os.str();
}

std::string summarize(const Recorder& recorder) {
  std::ostringstream os;
  for (std::size_t i = 0; i < recorder.lane_count(); ++i) {
    const Lane& lane = recorder.lane_at(i);
    std::map<EventKind, std::size_t> counts;
    for (const Event& e : lane.events()) counts[e.kind]++;
    os << lane.name() << ": " << lane.events().size() << " events";
    if (lane.dropped() > 0) os << " (" << lane.dropped() << " dropped)";
    for (const auto& [kind, n] : counts) {
      os << ", " << to_string(kind) << "=" << n;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ramr::trace
