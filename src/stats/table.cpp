#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace ramr::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };
  std::size_t total = 1;
  for (std::size_t w : width) total += w + 3;
  const std::string rule(total, '-');
  os << rule << '\n';
  print_row(header_);
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
  os << rule << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void print_series(std::ostream& os, const std::string& x_label,
                  const std::vector<Series>& series, int precision) {
  if (series.empty()) return;
  const auto& x0 = series.front().x;
  for (const auto& s : series) {
    if (s.x != x0) {
      throw Error("print_series: series '" + s.name +
                  "' has a different x vector than '" + series.front().name +
                  "'");
    }
    if (s.y.size() != s.x.size()) {
      throw Error("print_series: series '" + s.name + "' has " +
                  std::to_string(s.y.size()) + " y values for " +
                  std::to_string(s.x.size()) + " x values");
    }
  }
  std::vector<std::string> header{x_label};
  for (const auto& s : series) header.push_back(s.name);
  Table table(std::move(header));
  for (std::size_t i = 0; i < x0.size(); ++i) {
    std::vector<std::string> row{Table::fmt(x0[i], precision)};
    for (const auto& s : series) row.push_back(Table::fmt(s.y[i], precision));
    table.add_row(std::move(row));
  }
  table.print(os);
}

}  // namespace ramr::stats
