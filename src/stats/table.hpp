// Plain-text table writer used by the bench harness to print the same
// rows/series the paper's tables and figures report. Columns auto-size;
// optional CSV output for plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ramr::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 3);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  // Aligned, boxed-with-dashes rendering.
  void print(std::ostream& os) const;
  // RFC-4180-ish CSV (fields with commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// A named (x, y) series, the unit of "one curve in a figure".
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
};

// Prints a set of series as one table: first column x, one column per series.
// All series must share the same x vector (checked; throws ramr::Error).
void print_series(std::ostream& os, const std::string& x_label,
                  const std::vector<Series>& series, int precision = 3);

}  // namespace ramr::stats
