// Streaming statistics over repeated measurements.
//
// The paper reports every plotted value as "the average of 20 runs, with a
// standard deviation of ~1%"; RunStats is the accumulator benches use for
// that (Welford's online algorithm: numerically stable, single pass).
#pragma once

#include <cstddef>

namespace ramr::stats {

class RunStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  // Sample variance/stddev (n-1 denominator); 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;

  // Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const;

  void reset() { *this = RunStats{}; }

  // Merge another accumulator (parallel reduction of per-thread stats).
  void merge(const RunStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ramr::stats
