// Anchor translation unit: instantiates the MRPhi-style runtime once.
#include "mrphi/runtime.hpp"

namespace ramr::mrphi {
namespace {

struct AnchorApp {
  using input_type = std::vector<std::size_t>;
  using container_type =
      containers::AtomicArrayContainer<std::uint64_t,
                                       containers::AtomicOp::kAdd>;

  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_global_container() const { return container_type(16); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    emit(in[split] % 16, std::uint64_t{1});
  }
};

static_assert(GlobalAppSpec<AnchorApp>);

}  // namespace

template class Runtime<AnchorApp>;

}  // namespace ramr::mrphi
