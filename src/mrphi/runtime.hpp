// MRPhi-style runtime (paper Sec. II related work: Lu et al., "Optimizing
// the MapReduce framework on Intel Xeon Phi coprocessor").
//
// The third architecture in the paper's design space, reproduced for
// comparison: ONE worker pool, ONE globally shared atomically-accessed
// container (no thread-local containers, no combine phase, no reduce-phase
// merging — the paper: "an atomically-accessed global container was
// favored instead of thread-local containers"). Map emissions go straight
// to the global array with atomic fetch-ops; the merge phase reads it out
// sorted. Where Phoenix++ pays reduce-phase merging and RAMR pays queue
// traffic, MRPhi pays coherence contention on hot keys.
//
// Restricted, like the original, to apps whose combiner is an atomic
// fetch-op over an a-priori key range (AtomicArrayContainer) — HG/LR-class
// workloads; WC-class arbitrary keys do not fit this design.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/timing.hpp"
#include "containers/atomic_array_container.hpp"
#include "sched/parallel_sort.hpp"
#include "sched/task_queue.hpp"
#include "sched/thread_pool.hpp"
#include "topology/topology.hpp"

namespace ramr::mrphi {

// The MRPhi app model: like mr::AppSpec but with a *shared* container —
// make_global_container() is called once per run, and map's emit writes to
// it concurrently from every worker.
template <typename S>
concept GlobalAppSpec = requires(const S& app,
                                 const typename S::input_type& in) {
  typename S::input_type;
  typename S::container_type;  // an AtomicArrayContainer instantiation
  { app.num_splits(in) } -> std::convertible_to<std::size_t>;
  { app.make_global_container() } -> std::same_as<typename S::container_type>;
};

struct Options {
  std::size_t num_workers = 0;  // 0 = one per logical CPU
  std::size_t task_size = 4;
  PinPolicy pin_policy = PinPolicy::kRoundRobin;
};

template <GlobalAppSpec S>
class Runtime {
 public:
  using Container = typename S::container_type;
  using K = typename Container::key_type;
  using V = typename Container::value_type;

  struct Result {
    std::vector<std::pair<K, V>> pairs;
    PhaseTimers timers;
    std::size_t tasks_executed = 0;
  };

  explicit Runtime(topo::Topology topology, Options options = {})
      : topo_(std::move(topology)), options_(options) {
    num_workers_ = options_.num_workers == 0 ? topo_.num_logical()
                                             : options_.num_workers;
    if (num_workers_ == 0) {
      throw ConfigError("mrphi::Runtime needs at least one worker");
    }
    std::vector<std::optional<std::size_t>> pins(num_workers_);
    if (options_.pin_policy != PinPolicy::kOsDefault) {
      for (std::size_t i = 0; i < num_workers_; ++i) {
        pins[i] = topo_.cpus()[i % topo_.num_logical()].os_id;
      }
    }
    pool_ = std::make_unique<sched::ThreadPool>(num_workers_, std::move(pins));
  }

  std::size_t num_workers() const { return num_workers_; }

  Result run(const S& app, const typename S::input_type& input) {
    Result result;

    sched::TaskQueues queues(topo_.num_sockets());
    {
      ScopedPhase t(result.timers, Phase::kSplit);
      queues.distribute(app.num_splits(input), options_.task_size);
    }

    Container global = app.make_global_container();
    std::atomic<std::size_t> tasks_executed{0};
    {
      // The whole map IS the combine: atomic fetch-ops on the shared array.
      ScopedPhase t(result.timers, Phase::kMapCombine);
      pool_->run_on_all([&](std::size_t worker) {
        const std::size_t group = worker % queues.num_groups();
        auto emit = [&global](const K& k, const V& v) { global.emit(k, v); };
        std::size_t executed = 0;
        while (auto task = queues.pop(group)) {
          for (std::size_t split = task->begin; split < task->end; ++split) {
            app.map(input, split, emit);
          }
          ++executed;
        }
        tasks_executed.fetch_add(executed, std::memory_order_relaxed);
      });
    }
    result.tasks_executed = tasks_executed.load();

    // No reduce phase: the container is already global.
    {
      ScopedPhase t(result.timers, Phase::kMerge);
      result.pairs.reserve(global.size());
      global.for_each(
          [&](const K& k, const V& v) { result.pairs.emplace_back(k, v); });
      sched::parallel_sort(
          *pool_, result.pairs,
          [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return result;
  }

 private:
  topo::Topology topo_;
  Options options_;
  std::size_t num_workers_ = 0;
  std::unique_ptr<sched::ThreadPool> pool_;
};

}  // namespace ramr::mrphi
