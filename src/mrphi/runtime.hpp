// MRPhi-style runtime (paper Sec. II related work: Lu et al., "Optimizing
// the MapReduce framework on Intel Xeon Phi coprocessor").
//
// The third architecture in the paper's design space, expressed as a thin
// configuration of the shared execution engine: a single-pool
// engine::PoolSet plus the engine::AtomicGlobal emit strategy (one
// atomically-accessed global container, no reduce phase) driven through
// engine::PhaseDriver. See engine/strategy_atomic.hpp for the design's
// trade-offs and restrictions.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "common/config.hpp"
#include "containers/atomic_array_container.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_atomic.hpp"
#include "topology/topology.hpp"

namespace ramr::mrphi {

// Historical spelling of the MRPhi app model; the concept now lives with
// the rest of the application model in engine/app_model.hpp.
template <typename S>
concept GlobalAppSpec = mr::GlobalAppSpec<S>;

struct Options {
  std::size_t num_workers = 0;  // 0 = one per logical CPU
  std::size_t task_size = 4;
  PinPolicy pin_policy = PinPolicy::kRoundRobin;
  // Robustness knobs (see docs/ARCHITECTURE.md §6).
  std::size_t max_task_retries = 0;
  std::size_t deadline_ms = 0;
  std::size_t stall_timeout_ms = 0;
  std::string fault_spec;
};

template <mr::GlobalAppSpec S>
class Runtime {
 public:
  using Container = typename S::container_type;
  using K = typename Container::key_type;
  using V = typename Container::value_type;

  // The unified engine result; kept under the historical name.
  using Result = engine::RunResult<K, V>;

  explicit Runtime(topo::Topology topology, Options options = {})
      : pools_(std::move(topology), options.num_workers, options.pin_policy),
        driver_(pools_,
                engine::DriverOptions{
                    options.task_size, SplitDistribution::kRoundRobin,
                    options.max_task_retries, options.deadline_ms,
                    options.stall_timeout_ms, options.fault_spec,
                    // Static single-strategy runtime: the plan is always the
                    // built-in default (RunResult::plan records it).
                    "default"}) {}

  std::size_t num_workers() const { return pools_.num_mappers(); }

  // Optional execution tracing (see src/trace/): one lane per worker,
  // task events. The recorder must outlive every run().
  void set_recorder(trace::Recorder* recorder) {
    driver_.set_recorder(recorder);
  }

  // Optional telemetry session (see src/telemetry/); caller-owned, must
  // outlive every run(); nullptr disables (the default).
  void set_telemetry(telemetry::Session* session) {
    driver_.set_telemetry(session);
  }

  Result run(const S& app, const typename S::input_type& input) {
    engine::AtomicGlobal<S> strategy;
    return driver_.run(strategy, app, input);
  }

 private:
  engine::PoolSet pools_;
  engine::PhaseDriver driver_;
};

}  // namespace ramr::mrphi
