// Compatibility shim: the application model (ramr::mr) moved into the
// engine layer when the runtimes were unified over one execution engine —
// see engine/app_model.hpp. Existing "phoenix/app_model.hpp" includes keep
// working; the declared names live in namespace ramr::mr as before.
#pragma once

#include "engine/app_model.hpp"
