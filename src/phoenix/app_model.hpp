// The application model shared by the Phoenix++ baseline and the RAMR
// runtime: what an application must provide to run under either.
//
// Mirrors Phoenix++'s design: an application supplies its input type, an
// intermediate container type (fixed array / fixed hash / regular hash), a
// splitter, and a map function that emits key/value pairs. Combining is the
// container's combiner; the reduce phase merges per-thread containers; the
// merge phase produces key-sorted output.
#pragma once

#include <concepts>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/timing.hpp"
#include "containers/container_traits.hpp"

namespace ramr::mr {

// An application specification. `map` is templated on the emit callable so
// the exact same app code drives both runtimes: Phoenix++ passes an emitter
// that combines straight into the worker's container, RAMR passes one that
// pushes into the mapper's SPSC ring.
//
//   struct MyApp {
//     using input_type = ...;
//     using container_type = ...;   // satisfies IntermediateContainer
//     std::size_t num_splits(const input_type&) const;
//     container_type make_container() const;
//     template <typename Emit>
//     void map(const input_type&, std::size_t split, Emit&& emit) const;
//     // Optional: a per-key reducer applied to every combined value during
//     // the reduce phase (e.g. divide a sum by a count). Detected via
//     // `requires`; apps without it get the identity.
//     void reduce(const key_type&, value_type&) const;
//   };
template <typename S>
concept AppSpec = requires(const S& app, const typename S::input_type& in) {
  typename S::input_type;
  typename S::container_type;
  requires containers::IntermediateContainer<typename S::container_type>;
  { app.num_splits(in) } -> std::convertible_to<std::size_t>;
  { app.make_container() } -> std::same_as<typename S::container_type>;
};

template <AppSpec S>
using key_type_of = typename S::container_type::key_type;

template <AppSpec S>
using value_type_of = typename S::container_type::value_type;

// Result of one MapReduce invocation under either runtime.
template <typename K, typename V>
struct Result {
  // Key-sorted (key, combined value) pairs — the merge phase output.
  std::vector<std::pair<K, V>> pairs;

  // Wall-clock per phase (split / map-combine / reduce / merge) — the
  // quantities behind the paper's Fig. 1 breakdown.
  PhaseTimers timers;

  // Scheduling diagnostics.
  std::size_t tasks_executed = 0;
  std::size_t local_pops = 0;
  std::size_t steals = 0;

  // RAMR-only pipeline diagnostics (zero under the baseline).
  std::size_t queue_pushes = 0;
  std::size_t queue_failed_pushes = 0;
  std::size_t queue_batches = 0;
  std::size_t queue_max_occupancy = 0;  // deepest any ring ever got

  std::string summary() const {
    std::string s = timers.summary();
    s += " pairs=" + std::to_string(pairs.size());
    return s;
  }
};

template <AppSpec S>
using result_of = Result<key_type_of<S>, value_type_of<S>>;

// Whether the app supplies the optional per-key reducer.
template <typename S>
concept HasReducer = requires(const S& app, const key_type_of<S>& k,
                              value_type_of<S>& v) {
  { app.reduce(k, v) };
};

// Applies the app's reducer to every pair (no-op when absent). Called by
// both runtimes at the end of the reduce phase, after containers merged.
template <AppSpec S, typename Pairs>
void apply_reducer(const S& app, Pairs& pairs) {
  if constexpr (HasReducer<S>) {
    for (auto& [key, value] : pairs) {
      app.reduce(key, value);
    }
  } else {
    (void)app;
    (void)pairs;
  }
}

}  // namespace ramr::mr
