// Anchor translation unit: instantiates the baseline runtime against a
// minimal app so the templated headers are compiled with the library.
#include "phoenix/runtime.hpp"

#include "containers/fixed_array_container.hpp"

namespace ramr::phoenix {
namespace {

struct AnchorApp {
  using input_type = std::vector<std::size_t>;
  using container_type =
      containers::FixedArrayContainer<std::uint64_t, containers::CountCombiner>;

  std::size_t num_splits(const input_type& in) const { return in.size(); }
  container_type make_container() const { return container_type(16); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    emit(in[split] % 16, std::uint64_t{1});
  }
};

static_assert(mr::AppSpec<AnchorApp>);

}  // namespace

template class Runtime<AnchorApp>;

}  // namespace ramr::phoenix
