// Phoenix++-style baseline MapReduce runtime.
//
// Faithful re-implementation of the architecture RAMR is measured against
// (paper Sec. II / [4]): one general-purpose worker pool; each worker owns a
// thread-local intermediate container; the combine function is applied
// after *every* map emission on the same thread ("map-combine" is fused);
// reduce merges the per-worker containers; merge sorts by key. Workers pull
// split-range tasks from per-locality-group queues with stealing.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/timing.hpp"
#include "phoenix/app_model.hpp"
#include "sched/parallel_sort.hpp"
#include "sched/task_queue.hpp"
#include "sched/thread_pool.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"

namespace ramr::phoenix {

struct Options {
  // Worker threads; 0 = one per logical CPU of the topology.
  std::size_t num_workers = 0;
  // Splits per task (paper Sec. III's task-size knob).
  std::size_t task_size = 4;
  // Placement of the single pool. Phoenix++ binds threads to consecutive
  // CPUs, which our round-robin policy reproduces.
  PinPolicy pin_policy = PinPolicy::kRoundRobin;
  // Task dealing across the per-socket queues.
  SplitDistribution split_distribution = SplitDistribution::kRoundRobin;
};

template <mr::AppSpec S>
class Runtime {
 public:
  using Container = typename S::container_type;
  using K = mr::key_type_of<S>;
  using V = mr::value_type_of<S>;

  explicit Runtime(topo::Topology topology, Options options = {})
      : topo_(std::move(topology)), options_(options) {
    num_workers_ = options_.num_workers == 0 ? topo_.num_logical()
                                             : options_.num_workers;
    if (num_workers_ == 0) {
      throw ConfigError("phoenix::Runtime needs at least one worker");
    }
    std::vector<std::optional<std::size_t>> pins(num_workers_);
    if (options_.pin_policy != PinPolicy::kOsDefault) {
      const auto order = topo_.proximity_order();
      for (std::size_t i = 0; i < num_workers_; ++i) {
        // RR uses plain OS-id order; the paired policy has no pair structure
        // here (single pool), so it degenerates to proximity order.
        const std::size_t cpu =
            options_.pin_policy == PinPolicy::kRoundRobin
                ? topo_.cpus()[i % topo_.num_logical()].os_id
                : order[i % order.size()];
        pins[i] = cpu;
      }
    }
    pool_ = std::make_unique<sched::ThreadPool>(num_workers_, std::move(pins));
    // Locality groups: one task queue per socket the pool spans.
    num_groups_ = topo_.num_sockets();
  }

  std::size_t num_workers() const { return num_workers_; }

  mr::result_of<S> run(const S& app, const typename S::input_type& input) {
    mr::result_of<S> result;

    // ---- split ----------------------------------------------------------
    std::size_t num_splits = 0;
    sched::TaskQueues queues(num_groups_);
    {
      ScopedPhase t(result.timers, Phase::kSplit);
      num_splits = app.num_splits(input);
      if (options_.split_distribution == SplitDistribution::kBlocked) {
        queues.distribute_blocked(num_splits, options_.task_size);
      } else {
        queues.distribute(num_splits, options_.task_size);
      }
    }

    // ---- map + inline combine ------------------------------------------
    std::vector<Container> locals;
    locals.reserve(num_workers_);
    for (std::size_t w = 0; w < num_workers_; ++w) {
      locals.push_back(app.make_container());
    }
    std::atomic<std::size_t> tasks_executed{0};
    {
      ScopedPhase t(result.timers, Phase::kMapCombine);
      pool_->run_on_all([&](std::size_t worker) {
        Container& mine = locals[worker];
        const std::size_t group = worker % num_groups_;
        auto emit = [&mine](const K& k, const V& v) { mine.emit(k, v); };
        std::size_t executed = 0;
        while (auto task = queues.pop(group)) {
          for (std::size_t split = task->begin; split < task->end; ++split) {
            app.map(input, split, emit);
          }
          ++executed;
        }
        tasks_executed.fetch_add(executed, std::memory_order_relaxed);
      });
    }
    result.tasks_executed = tasks_executed.load();
    result.local_pops = queues.local_pops();
    result.steals = queues.steals();

    // ---- reduce: parallel tree-merge of thread-local containers ----------
    {
      ScopedPhase t(result.timers, Phase::kReduce);
      sched::parallel_tree_merge(*pool_, locals);
    }

    // ---- merge: parallel key sort on the same pool ------------------------
    {
      ScopedPhase t(result.timers, Phase::kMerge);
      result.pairs = containers::to_pairs(locals[0]);
      mr::apply_reducer(app, result.pairs);
      sched::parallel_sort(
          *pool_, result.pairs,
          [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return result;
  }

 private:
  topo::Topology topo_;
  Options options_;
  std::size_t num_workers_ = 0;
  std::size_t num_groups_ = 1;
  std::unique_ptr<sched::ThreadPool> pool_;
};

// Convenience: run an app once on the host topology with default options.
template <mr::AppSpec S>
mr::result_of<S> run_once(const S& app, const typename S::input_type& input,
                          Options options = {}) {
  Runtime<S> rt(topo::host(), options);
  return rt.run(app, input);
}

}  // namespace ramr::phoenix
