// Phoenix++-style baseline MapReduce runtime.
//
// The architecture RAMR is measured against (paper Sec. II / [4]),
// expressed as a thin configuration of the shared execution engine: a
// single-pool engine::PoolSet plus the engine::FusedCombine emit strategy
// (thread-local containers, combine applied after every map emission on the
// same thread) driven through engine::PhaseDriver.
#pragma once

#include <cstddef>
#include <string>

#include "common/config.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_fused.hpp"
#include "topology/topology.hpp"

namespace ramr::phoenix {

struct Options {
  // Worker threads; 0 = one per logical CPU of the topology.
  std::size_t num_workers = 0;
  // Splits per task (paper Sec. III's task-size knob).
  std::size_t task_size = 4;
  // Placement of the single pool. Phoenix++ binds threads to consecutive
  // CPUs, which our round-robin policy reproduces.
  PinPolicy pin_policy = PinPolicy::kRoundRobin;
  // Task dealing across the per-socket queues.
  SplitDistribution split_distribution = SplitDistribution::kRoundRobin;
  // Robustness knobs (see docs/ARCHITECTURE.md §6): bounded retry of
  // transient map-task failures, run deadline, per-worker stall watchdog,
  // and the fault-injection plan (empty = disabled).
  std::size_t max_task_retries = 0;
  std::size_t deadline_ms = 0;
  std::size_t stall_timeout_ms = 0;
  std::string fault_spec;
};

template <mr::AppSpec S>
class Runtime {
 public:
  using Container = typename S::container_type;
  using K = mr::key_type_of<S>;
  using V = mr::value_type_of<S>;

  explicit Runtime(topo::Topology topology, Options options = {})
      : pools_(std::move(topology), options.num_workers, options.pin_policy),
        driver_(pools_,
                engine::DriverOptions{
                    options.task_size, options.split_distribution,
                    options.max_task_retries, options.deadline_ms,
                    options.stall_timeout_ms, options.fault_spec,
                    // Static single-strategy runtime: the plan is always the
                    // built-in default (RunResult::plan records it).
                    "default"}) {}

  std::size_t num_workers() const { return pools_.num_mappers(); }

  // Optional execution tracing (see src/trace/): one lane per worker,
  // task events, phase marks. The recorder must outlive every run(); pass
  // nullptr to disable (the default).
  void set_recorder(trace::Recorder* recorder) {
    driver_.set_recorder(recorder);
  }

  // Optional telemetry session (see src/telemetry/); caller-owned, must
  // outlive every run(); nullptr disables (the default).
  void set_telemetry(telemetry::Session* session) {
    driver_.set_telemetry(session);
  }

  mr::result_of<S> run(const S& app, const typename S::input_type& input) {
    engine::FusedCombine<S> strategy;
    return driver_.run(strategy, app, input);
  }

 private:
  engine::PoolSet pools_;
  engine::PhaseDriver driver_;
};

// Convenience: run an app once on the host topology with default options.
template <mr::AppSpec S>
mr::result_of<S> run_once(const S& app, const typename S::input_type& input,
                          Options options = {}) {
  Runtime<S> rt(topo::host(), options);
  return rt.run(app, input);
}

}  // namespace ramr::phoenix
