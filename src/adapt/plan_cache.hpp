// Persistent plan cache: repeated runs of the same (app, input bucket,
// topology) skip the probe phase entirely.
//
// Storage is one JSON file ("ramr-plan-cache-v1", flat objects under a
// "plans" array), written with telemetry::JsonWriter and read back by a
// deliberately tolerant scanner scoped to exactly that shape — the repo
// has no general JSON dependency and does not want one. A file that fails
// to parse (corrupt, truncated, or a future schema) is treated as empty
// and `corrupt()` reports it; the next store() rewrites the file whole,
// which is the recovery path the tests exercise.
//
// The cache is advisory: every I/O failure degrades to a probe, never to
// an error. Concurrent writers last-write-win a whole file (plans are
// deterministic per key, so losing a race loses nothing).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adapt/plan.hpp"
#include "engine/result.hpp"

namespace ramr::adapt {

class PlanCache {
 public:
  // Empty path = default_path(). The file is loaded eagerly; a missing
  // file is an empty cache (not corrupt).
  explicit PlanCache(std::string path = "");

  const std::string& path() const { return path_; }

  // True when the backing file existed but did not parse; lookups miss and
  // the next store() rewrites it from scratch.
  bool corrupt() const { return corrupt_; }

  std::size_t size() const { return entries_.size(); }

  // The cached plan for this key, with source set to "cache".
  std::optional<engine::PlanInfo> lookup(const PlanKey& key) const;

  // Insert-or-replace, then rewrite the file (best-effort: an unwritable
  // path keeps the in-memory entry and degrades silently — the cache must
  // never fail a run).
  void store(const PlanKey& key, const engine::PlanInfo& plan);

  // $RAMR_PLAN_CACHE is resolved by RuntimeConfig::from_env before it gets
  // here; this is the fallback: $XDG_CACHE_HOME/ramr/plans.json, else
  // $HOME/.cache/ramr/plans.json, else ./ramr_plans.json.
  static std::string default_path();

 private:
  void load();
  void save() const;

  std::string path_;
  bool corrupt_ = false;
  std::vector<std::pair<std::string, engine::PlanInfo>> entries_;
};

}  // namespace ramr::adapt
