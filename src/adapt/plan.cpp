#include "adapt/plan.hpp"

#include <bit>
#include <ostream>
#include <sstream>

#include "telemetry/json.hpp"

namespace ramr::adapt {

std::string PlanKey::cache_key() const {
  std::ostringstream os;
  os << app << "/b" << size_bucket << "/t" << std::hex << topo_hash;
  return os.str();
}

std::size_t input_size_bucket(std::size_t num_splits) {
  return static_cast<std::size_t>(std::bit_width(num_splits));
}

std::uint64_t topology_hash(const topo::Topology& topology) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (char c : topology.name()) mix(static_cast<std::uint64_t>(c));
  mix(topology.num_logical());
  mix(topology.num_sockets());
  mix(topology.num_cores());
  mix(topology.smt_per_core());
  return h;
}

void write_plan_report(std::ostream& out, const PlanKey& key,
                       const PlanDecision& decision) {
  telemetry::JsonWriter w(out);
  w.begin_object();
  w.field("schema", "ramr-adapt-plan-v1");
  w.begin_object("key");
  w.field("app", key.app);
  w.field("size_bucket", static_cast<std::uint64_t>(key.size_bucket));
  w.field("topology_hash", key.topo_hash);
  w.end_object();
  w.begin_object("plan");
  w.field("strategy", decision.plan.strategy);
  w.field("ratio", static_cast<std::uint64_t>(decision.plan.ratio));
  w.field("batch_size", static_cast<std::uint64_t>(decision.plan.batch_size));
  w.field("queue_capacity",
          static_cast<std::uint64_t>(decision.plan.queue_capacity));
  w.field("pin_policy", decision.plan.pin_policy);
  w.field("source", decision.plan.source);
  w.end_object();
  w.begin_array("candidates");
  for (const CandidateScore& c : decision.candidates) {
    w.begin_object();
    w.field("label", c.label);
    w.field("strategy", c.strategy);
    w.field("ratio", static_cast<std::uint64_t>(c.ratio));
    w.field("probe_seconds", c.probe_seconds);
    w.field("score", c.score);
    w.field("pipelined_verdict", c.pipelined_verdict);
    w.field("reason", c.reason);
    w.end_object();
  }
  w.end_array();
  w.field("probe_splits_used",
          static_cast<std::uint64_t>(decision.probe_splits_used));
  w.field("governor_actions",
          static_cast<std::uint64_t>(decision.governor_actions));
  w.end_object();
  out << '\n';
}

}  // namespace ramr::adapt
