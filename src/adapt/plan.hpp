// Execution-plan identity and the adapt decision record.
//
// A plan is cached per (app name x input-size bucket x topology hash): the
// suitability verdict depends on what the app does per record, how much
// input there is relative to fixed costs, and the machine shape — nothing
// else the controller can observe up front. Input sizes are bucketed by
// split-count power of two so "the same workload, a bit more data" reuses
// the cached plan while a 100x change re-probes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/result.hpp"
#include "topology/topology.hpp"

namespace ramr::adapt {

struct PlanKey {
  std::string app;
  std::size_t size_bucket = 0;
  std::uint64_t topo_hash = 0;

  // Stable string identity used in the plan-cache JSON.
  std::string cache_key() const;
};

// floor(log2(num_splits)) + 1; 0 for an empty input.
std::size_t input_size_bucket(std::size_t num_splits);

// FNV-1a over the shape fields (name, logical CPUs, sockets, cores, SMT).
std::uint64_t topology_hash(const topo::Topology& topology);

// One probed candidate and how it scored.
struct CandidateScore {
  std::string label;     // "fused", "pipelined@2", ...
  std::string strategy;  // engine strategy kName
  std::size_t ratio = 0;
  double probe_seconds = 0.0;  // wall-clock of the calibration slice
  double score = 0.0;          // suitability margin (see adapt/suitability.hpp)
  bool pipelined_verdict = false;
  std::string reason;
};

// The controller's full decision: the committed plan plus every candidate
// it considered (surfaced in the adapt plan report and tests).
struct PlanDecision {
  engine::PlanInfo plan;
  std::vector<CandidateScore> candidates;
  std::size_t probe_splits_used = 0;   // input consumed by calibration
  std::size_t governor_actions = 0;    // filled after the main run
};

// Writes the `ramr-adapt-plan-v1` JSON document (RAMR_ADAPT_REPORT and the
// CI adaptive-smoke step consume this).
void write_plan_report(std::ostream& out, const PlanKey& key,
                       const PlanDecision& decision);

}  // namespace ramr::adapt
