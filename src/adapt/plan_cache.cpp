#include "adapt/plan_cache.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/env.hpp"
#include "telemetry/json.hpp"

namespace ramr::adapt {

namespace {

// ---- a tiny scanner for the one JSON shape this cache writes --------------
//
// Grammar handled: an object whose "plans" member is an array of flat
// objects with string and non-negative-integer members. Anything outside
// that shape makes parse() return false, which the cache maps to "corrupt,
// treat as empty". Tolerant of whitespace and member order; not a general
// JSON parser and not meant to be one.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : s_(text) {}

  bool parse(std::vector<std::pair<std::string, engine::PlanInfo>>& out) {
    skip_ws();
    if (!consume('{')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (consume('}')) return true;
      if (!first && !consume(',')) return false;
      skip_ws();
      first = false;
      std::string key;
      if (!read_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (key == "plans") {
        if (!read_plans(out)) return false;
      } else {
        if (!skip_scalar()) return false;
      }
    }
  }

 private:
  bool read_plans(std::vector<std::pair<std::string, engine::PlanInfo>>& out) {
    if (!consume('[')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (consume(']')) return true;
      if (!first && !consume(',')) return false;
      skip_ws();
      first = false;
      std::string cache_key;
      engine::PlanInfo plan;
      if (!read_plan_object(cache_key, plan)) return false;
      if (cache_key.empty() || plan.strategy.empty()) return false;
      out.emplace_back(std::move(cache_key), std::move(plan));
    }
  }

  bool read_plan_object(std::string& cache_key, engine::PlanInfo& plan) {
    if (!consume('{')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (consume('}')) return true;
      if (!first && !consume(',')) return false;
      skip_ws();
      first = false;
      std::string key;
      if (!read_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (key == "key") {
        if (!read_string(cache_key)) return false;
      } else if (key == "strategy") {
        if (!read_string(plan.strategy)) return false;
      } else if (key == "pin_policy") {
        if (!read_string(plan.pin_policy)) return false;
      } else if (key == "ratio") {
        if (!read_uint(plan.ratio)) return false;
      } else if (key == "batch_size") {
        if (!read_uint(plan.batch_size)) return false;
      } else if (key == "queue_capacity") {
        if (!read_uint(plan.queue_capacity)) return false;
      } else {
        if (!skip_scalar()) return false;  // forward-compatible members
      }
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool read_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return false;  // \uXXXX etc. never appear in our keys
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool read_uint(std::size_t& out) {
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return false;
    }
    std::size_t value = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      value = value * 10 + static_cast<std::size_t>(s_[pos_++] - '0');
    }
    out = value;
    return true;
  }

  // Skips one string or number value (the only scalars this schema has).
  bool skip_scalar() {
    std::string ignored;
    if (pos_ < s_.size() && s_[pos_] == '"') return read_string(ignored);
    std::size_t n = 0;
    return read_uint(n);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

PlanCache::PlanCache(std::string path) : path_(std::move(path)) {
  if (path_.empty()) path_ = default_path();
  load();
}

std::string PlanCache::default_path() {
  if (auto xdg = env::get("XDG_CACHE_HOME"); xdg && !xdg->empty()) {
    return *xdg + "/ramr/plans.json";
  }
  if (auto home = env::get("HOME"); home && !home->empty()) {
    return *home + "/.cache/ramr/plans.json";
  }
  return "ramr_plans.json";
}

void PlanCache::load() {
  std::ifstream in(path_);
  if (!in) return;  // missing file = empty cache, not corrupt
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return;
  Scanner scanner(text);
  std::vector<std::pair<std::string, engine::PlanInfo>> parsed;
  if (!scanner.parse(parsed)) {
    corrupt_ = true;
    entries_.clear();
    return;
  }
  entries_ = std::move(parsed);
}

std::optional<engine::PlanInfo> PlanCache::lookup(const PlanKey& key) const {
  const std::string k = key.cache_key();
  for (const auto& [entry_key, plan] : entries_) {
    if (entry_key == k) {
      engine::PlanInfo hit = plan;
      hit.source = "cache";
      return hit;
    }
  }
  return std::nullopt;
}

void PlanCache::store(const PlanKey& key, const engine::PlanInfo& plan) {
  const std::string k = key.cache_key();
  engine::PlanInfo stored = plan;
  stored.source.clear();  // provenance is a property of a run, not a plan
  bool replaced = false;
  for (auto& [entry_key, entry_plan] : entries_) {
    if (entry_key == k) {
      entry_plan = stored;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries_.emplace_back(k, std::move(stored));
  save();
  corrupt_ = false;  // a full rewrite is the corrupt-file recovery
}

void PlanCache::save() const {
  std::error_code ec;
  const std::filesystem::path p(path_);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    // ec intentionally ignored: open() below fails and we degrade.
  }
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return;  // advisory cache: unwritable path degrades silently
  telemetry::JsonWriter w(out);
  w.begin_object();
  w.field("schema", "ramr-plan-cache-v1");
  w.begin_array("plans");
  for (const auto& [entry_key, plan] : entries_) {
    w.begin_object();
    w.field("key", entry_key);
    w.field("strategy", plan.strategy);
    w.field("ratio", static_cast<std::uint64_t>(plan.ratio));
    w.field("batch_size", static_cast<std::uint64_t>(plan.batch_size));
    w.field("queue_capacity",
            static_cast<std::uint64_t>(plan.queue_capacity));
    w.field("pin_policy", plan.pin_policy);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace ramr::adapt
