// The adaptive runtime controller — closes the paper's resource-aware loop.
//
// The paper reads Fig. 10 offline: a human compares IPB/MSPI/RSPI across
// apps and decides which ones deserve the decoupled architecture. This
// controller makes that decision online, per run:
//
//   probe   Burn a bounded calibration slice of the *real* input under the
//           candidate plans (fused, pipelined at 1-2 ratios). Probe output
//           is real work — partial results are kept and stitched into the
//           final result, so probing costs overhead, never correctness.
//   score   Per-pool thread CPU time (workload-intrinsic, stable even when
//           the probe time-slices on an oversubscribed host) through the
//           suitability model (adapt/suitability.hpp).
//   commit  The winner runs the rest of the input. Explicit env knobs are
//           never overridden: precedence is env > cache > probe > defaults.
//   govern  (RAMR_ADAPT=full, pipelined winner) a Governor thread retunes
//           batch size and backoff cap within safe bounds while the phase
//           runs (adapt/governor.hpp).
//   cache   The committed plan persists per (app, input bucket, topology),
//           so the next run skips the probe entirely.
//
// Entry point: run_adaptive(), called by the runtime front-ends when
// RAMR_ADAPT != off. Everything here is additive — with the knob off, no
// code in this header runs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <memory>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#include "adapt/governor.hpp"
#include "adapt/plan.hpp"
#include "adapt/plan_cache.hpp"
#include "adapt/suitability.hpp"
#include "common/config.hpp"
#include "common/env.hpp"
#include "common/timing.hpp"
#include "containers/container_traits.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_depot.hpp"
#include "engine/pool_set.hpp"
#include "engine/strategy_fused.hpp"
#include "engine/strategy_pipelined.hpp"
#include "telemetry/session.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace ramr::adapt {

struct ControllerOptions {
  // Calibration budget: tasks per candidate (splits = tasks * task_size),
  // and the hard ceiling on the input fraction probing may consume. When
  // the input is too small to afford every candidate, probing is skipped
  // outright and the run proceeds under the static plan.
  std::size_t probe_tasks_per_candidate = 4;
  double max_probe_fraction = 0.5;

  SuitabilityModel model;

  // Where to write the ramr-adapt-plan-v1 JSON ("" = $RAMR_ADAPT_REPORT,
  // and no report when that is unset too).
  std::string report_path;

  std::chrono::microseconds governor_interval{5000};
};

// Cache identity of the app: its declared kName when present, the mangled
// type name otherwise (stable within a build, which is all a local plan
// cache needs).
template <typename S>
std::string app_label() {
  if constexpr (requires { S::kName; }) {
    return S::kName;
  } else {
    return typeid(S).name();
  }
}

// A window of [offset, offset+count) splits of the wrapped app. Satisfies
// AppSpec but deliberately does NOT forward the optional reducer: slices
// produce *partial* aggregates, and the reducer (e.g. divide-by-count) is
// only correct once, on the fully merged pairs — the controller applies it
// after stitching.
template <mr::AppSpec S>
struct SliceView {
  using input_type = typename S::input_type;
  using container_type = typename S::container_type;

  const S* app = nullptr;
  std::size_t offset = 0;
  std::size_t count = 0;

  std::size_t num_splits(const input_type&) const { return count; }
  container_type make_container() const { return app->make_container(); }

  template <typename Emit>
  void map(const input_type& input, std::size_t split, Emit&& emit) const {
    app->map(input, offset + split, std::forward<Emit>(emit));
  }
};

namespace detail {

// Folds a probe run's timers and diagnostics into the final result so the
// reported totals cover the whole input, not just the post-probe slice.
template <typename K, typename V>
void accumulate_run(engine::RunResult<K, V>& into,
                    const engine::RunResult<K, V>& part) {
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    into.timers.add(phase, part.timers.seconds(phase));
  }
  into.tasks_executed += part.tasks_executed;
  into.local_pops += part.local_pops;
  into.steals += part.steals;
  into.queue_pushes += part.queue_pushes;
  into.queue_failed_pushes += part.queue_failed_pushes;
  into.queue_batches += part.queue_batches;
  into.queue_max_occupancy =
      std::max(into.queue_max_occupancy, part.queue_max_occupancy);
  into.backoff_sleeps += part.backoff_sleeps;
  into.task_retries += part.task_retries;
  into.task_aborts += part.task_aborts;
}

}  // namespace detail

// Runs `app` over `input` under the adaptive controller. `recorder` may be
// null (no tracing); `policy` may be null (DefaultTuningPolicy). The base
// config's adapt_mode selects probe-only vs probe+governor; callers should
// not invoke this with AdaptMode::kOff (it would still work — one probe-less
// default run — but the static path is cheaper).
//
// Every pool set (probe and main run) is leased from `depot`: a caller that
// passes a long-lived depot (core::Runtime does) amortizes pool spin-up
// across a stream of invocations exactly like the plan cache amortizes the
// probe. With no depot a function-local one is used — single-run behaviour,
// single code path.
template <mr::AppSpec S>
mr::result_of<S> run_adaptive(const topo::Topology& topology,
                              const RuntimeConfig& base, const S& app,
                              const typename S::input_type& input,
                              trace::Recorder* recorder = nullptr,
                              engine::TuningPolicy* policy = nullptr,
                              ControllerOptions options = {},
                              engine::PoolDepot* depot = nullptr) {
  engine::PoolDepot local_depot;
  engine::PoolDepot& pools_from = depot != nullptr ? *depot : local_depot;
  if (options.report_path.empty()) {
    options.report_path = env::get(kEnvAdaptReport).value_or("");
  }
  const RuntimeConfig cfg = base.resolved(topology.num_logical());
  const std::size_t total_splits = app.num_splits(input);

  const PlanKey key{app_label<S>(), input_size_bucket(total_splits),
                    topology_hash(topology)};
  PlanCache cache(cfg.plan_cache_path);

  PlanDecision decision;
  engine::PlanInfo plan;  // empty strategy = nothing decided yet
  std::size_t probe_used = 0;
  std::vector<mr::result_of<S>> partials;

  // ---- cache lookup, then probe ------------------------------------------
  if (auto hit = cache.lookup(key)) {
    plan = *hit;
    // Env-pinned knobs beat the cache; unset cached fields fall back to the
    // config so old cache entries stay usable.
    if (cfg.env_overrides.ratio || cfg.env_overrides.workers ||
        plan.ratio == 0) {
      plan.ratio = cfg.mapper_combiner_ratio;
    }
    if (cfg.env_overrides.batch_size || plan.batch_size == 0) {
      plan.batch_size = cfg.batch_size;
    }
    if (cfg.env_overrides.queue_capacity || plan.queue_capacity == 0) {
      plan.queue_capacity = cfg.queue_capacity;
    }
    if (cfg.env_overrides.pin_policy || plan.pin_policy.empty()) {
      plan.pin_policy = to_string(cfg.pin_policy);
    }
  } else {
    const std::size_t per = options.probe_tasks_per_candidate * cfg.task_size;
    const bool ratio_pinned =
        cfg.env_overrides.ratio || cfg.env_overrides.workers;
    const std::size_t planned_candidates = ratio_pinned ? 2 : 3;
    const bool budget_ok =
        per > 0 && total_splits > 0 &&
        static_cast<double>(planned_candidates * per) <=
            options.max_probe_fraction * static_cast<double>(total_splits);
    if (budget_ok) {
      const engine::DriverOptions probe_opts = engine::driver_options_from(cfg);

      // Fused candidate: one general-purpose pool sized like the dual
      // shape's total. Its slice contributes work and a wall-clock
      // reference; the verdict itself comes from the pipelined probe.
      double fused_wall = 0.0;
      {
        auto lease = pools_from.acquire_single(
            topology, cfg.num_mappers + cfg.num_combiners, cfg.pin_policy);
        engine::PoolSet& pools = lease.pools();
        engine::PhaseDriver driver(pools, probe_opts);
        engine::FusedCombine<SliceView<S>> strategy;
        const SliceView<S> slice{&app, probe_used, per};
        const auto t0 = now();
        partials.push_back(driver.run(strategy, slice, input));
        fused_wall = seconds_between(t0, now());
        probe_used += per;
      }
      decision.candidates.push_back({"fused", "fused",
                                     cfg.mapper_combiner_ratio, fused_wall,
                                     0.0, false, "baseline calibration slice"});

      const auto probe_pipelined =
          [&](std::size_t ratio) -> std::pair<EmpiricalSample, double> {
        RuntimeConfig pcfg = cfg;
        if (ratio != cfg.mapper_combiner_ratio) {
          pcfg.mapper_combiner_ratio = ratio;
          pcfg.num_mappers = 0;  // re-derive the pool split from the ratio
          pcfg.num_combiners = 0;
        }
        auto lease = pools_from.acquire(topology, pcfg);
        engine::PoolSet& pools = lease.pools();
        engine::PhaseDriver driver(pools, probe_opts);
        engine::PipelinedSpsc<SliceView<S>> strategy;
        const SliceView<S> slice{&app, probe_used, per};
        const double map_cpu0 = pools.mapper_pool().cpu_seconds();
        const double combine_cpu0 = pools.combiner_pool().cpu_seconds();
        const auto t0 = now();
        auto res = driver.run(strategy, slice, input);
        const double wall = seconds_between(t0, now());
        EmpiricalSample sample;
        sample.map_cpu_seconds = pools.mapper_pool().cpu_seconds() - map_cpu0;
        sample.combine_cpu_seconds =
            pools.combiner_pool().cpu_seconds() - combine_cpu0;
        sample.records = res.queue_pushes;
        sample.wall_seconds = wall;
        probe_used += per;
        partials.push_back(std::move(res));
        return {sample, wall};
      };

      std::size_t ratio = cfg.mapper_combiner_ratio;
      const auto [base_sample, base_wall] = probe_pipelined(ratio);
      const Verdict verdict = judge_empirical(options.model, base_sample);
      decision.candidates.push_back(
          {"pipelined@" + std::to_string(ratio), "pipelined", ratio, base_wall,
           verdict.score, verdict.pipelined, verdict.reason});

      if (verdict.pipelined && !ratio_pinned &&
          base_sample.combine_cpu_seconds > 0.0) {
        // The balanced ratio equalizes per-thread load across the pools:
        // each combiner keeps up with `ratio` mappers when map is `ratio`
        // times the CPU of combine (paper Sec. III-B).
        const std::size_t suggested = std::clamp<std::size_t>(
            static_cast<std::size_t>(
                std::lround(base_sample.map_cpu_seconds /
                            base_sample.combine_cpu_seconds)),
            1, 8);
        if (suggested != ratio) {
          const auto [alt_sample, alt_wall] = probe_pipelined(suggested);
          const Verdict alt = judge_empirical(options.model, alt_sample);
          decision.candidates.push_back({"pipelined@" +
                                             std::to_string(suggested),
                                         "pipelined", suggested, alt_wall,
                                         alt.score, alt.pipelined, alt.reason});
          if (alt_wall < base_wall) ratio = suggested;
        }
      }

      plan.strategy = verdict.pipelined ? "pipelined" : "fused";
      plan.ratio = ratio;
      plan.batch_size = cfg.batch_size;
      plan.queue_capacity = cfg.queue_capacity;
      plan.pin_policy = to_string(cfg.pin_policy);
      plan.source = "probe";
      cache.store(key, plan);
    }
    // Budget too small: leave `plan` undecided — the main run below uses
    // the static config and the driver stamps env/default provenance.
  }
  decision.probe_splits_used = probe_used;

  // ---- commit: build the main-run config from the plan -------------------
  const bool decided = !plan.strategy.empty();
  RuntimeConfig mcfg = cfg;
  if (decided && plan.strategy == "pipelined") {
    if (!cfg.env_overrides.ratio && !cfg.env_overrides.workers &&
        plan.ratio != cfg.mapper_combiner_ratio) {
      mcfg.mapper_combiner_ratio = plan.ratio;
      mcfg.num_mappers = 0;
      mcfg.num_combiners = 0;
    }
    if (!cfg.env_overrides.batch_size && plan.batch_size > 0) {
      mcfg.batch_size = plan.batch_size;
    }
    if (!cfg.env_overrides.queue_capacity && plan.queue_capacity > 0) {
      mcfg.queue_capacity = plan.queue_capacity;
    }
    if (!cfg.env_overrides.pin_policy && !plan.pin_policy.empty()) {
      mcfg.pin_policy = parse_pin_policy(plan.pin_policy);
    }
  }

  // Runs the committed plan, wiring telemetry, tracing and (full mode,
  // pipelined) the governor around the driver.
  const auto run_main = [&](auto& strategy, engine::PoolSet& pools,
                            const auto& main_app) -> mr::result_of<S> {
    engine::DriverOptions dopts = engine::driver_options_from(mcfg);
    if (decided) dopts.plan_source = plan.source;
    engine::PhaseDriver driver(pools, dopts);
    driver.set_recorder(recorder);

    const bool want_governor =
        cfg.adapt_mode == AdaptMode::kFull && pools.dual();
    std::unique_ptr<telemetry::Session> session;
    if (cfg.telemetry || want_governor) {
      // The governor needs live engine metrics even when the user left
      // telemetry off; a metrics-only session (no PMU, no sampler) is the
      // cheapest way to get them.
      telemetry::SessionOptions so;
      so.pmu = cfg.telemetry ? telemetry::parse_pmu_mode(cfg.pmu_mode)
                             : telemetry::PmuMode::kOff;
      so.sample_interval_us = cfg.telemetry ? cfg.sample_interval_us : 0;
      so.num_mappers = pools.num_mappers();
      so.num_combiners = pools.num_combiners();
      session = std::make_unique<telemetry::Session>(so);
    }
    driver.set_telemetry(session.get());

    engine::TuningControl control(mcfg.batch_size, mcfg.sleep_cap_micros,
                                  mcfg.emit_batch);
    DefaultTuningPolicy default_policy;
    std::unique_ptr<Governor> governor;
    if (want_governor) {
      driver.set_tuning(&control);
      trace::Lane* governor_lane = nullptr;
      if (recorder != nullptr) {
        // The governor thread may record before the driver finishes its
        // lane setup, and the first record seals the recorder — so create
        // every lane the driver will ask for, plus the governor's, now.
        recorder->lane("driver");
        engine::TraceLanes::create(recorder, pools);
        governor_lane = &recorder->lane("governor");
      }
      GovernorOptions gopts;
      gopts.interval = options.governor_interval;
      gopts.queue_capacity = mcfg.queue_capacity;
      gopts.sleep_cap_floor = std::max<std::size_t>(1, mcfg.sleep_micros);
      gopts.tune_emit_batch = !cfg.env_overrides.emit_batch;
      governor = std::make_unique<Governor>(
          control, policy != nullptr ? *policy : default_policy,
          session->registry(), gopts, governor_lane,
          recorder != nullptr ? recorder->epoch() : now());
      governor->start();
    }

    auto res = driver.run(strategy, main_app, input);
    if (governor != nullptr) {
      governor->stop();
      res.governor_actions = governor->actions();
    }
    return res;
  };

  mr::result_of<S> result;
  if (probe_used > 0) {
    // The probes consumed a prefix; the main run covers the rest through a
    // SliceView (no reducer — it is applied once, after stitching).
    const SliceView<S> rest{&app, probe_used, total_splits - probe_used};
    if (plan.strategy == "fused") {
      auto lease = pools_from.acquire_single(
          topology, mcfg.num_mappers + mcfg.num_combiners, mcfg.pin_policy);
      engine::FusedCombine<SliceView<S>> strategy;
      result = run_main(strategy, lease.pools(), rest);
    } else {
      auto lease = pools_from.acquire(topology, mcfg);
      engine::PipelinedSpsc<SliceView<S>> strategy;
      result = run_main(strategy, lease.pools(), rest);
    }
    // Stitch: partial aggregates re-combine through a fresh container
    // (associative combiners make emitting partials equivalent to the
    // tree-merge the strategies do), then the reducer, then the key sort.
    auto merged = app.make_container();
    for (const auto& part : partials) {
      for (const auto& [k, v] : part.pairs) merged.emit(k, v);
    }
    for (const auto& [k, v] : result.pairs) merged.emit(k, v);
    result.pairs = containers::to_pairs(merged);
    mr::apply_reducer(app, result.pairs);
    std::sort(result.pairs.begin(), result.pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& part : partials) detail::accumulate_run(result, part);
  } else if (decided && plan.strategy == "fused") {
    auto lease = pools_from.acquire_single(
        topology, mcfg.num_mappers + mcfg.num_combiners, mcfg.pin_policy);
    engine::FusedCombine<S> strategy;
    result = run_main(strategy, lease.pools(), app);
  } else {
    auto lease = pools_from.acquire(topology, mcfg);
    engine::PipelinedSpsc<S> strategy;
    result = run_main(strategy, lease.pools(), app);
  }

  // The single-pool shape synthesizes a default config, so a fused run's
  // stamped knob fields describe the wrong thing — restore the plan's.
  if (decided && plan.strategy == "fused") {
    result.plan.ratio = plan.ratio;
    result.plan.batch_size = plan.batch_size;
    result.plan.queue_capacity = plan.queue_capacity;
    result.plan.pin_policy = plan.pin_policy;
  }

  decision.plan = result.plan;
  decision.governor_actions = result.governor_actions.size();
  if (!options.report_path.empty()) {
    std::ofstream out(options.report_path, std::ios::trunc);
    if (out) write_plan_report(out, key, decision);
  }
  return result;
}

}  // namespace ramr::adapt
