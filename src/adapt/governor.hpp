// Steady-state governor: retunes the safe mid-phase knobs while the
// pipelined phase runs.
//
// A dedicated low-cadence thread (started by adapt::Controller around
// PhaseDriver::run, never owned by the driver — the engine stays free of
// control loops) collects MetricRegistry snapshots, turns the window delta
// into a TuningObservation (failed-push rate, batch-size histogram median,
// ring occupancy), asks the TuningPolicy for a decision, clamps it to the
// safe bounds, and applies it through engine::TuningControl:
//
//   batch size    in [1, queue_capacity / 2]  — a batch can never pin the
//                 consumer to a ring for more than half its capacity, and
//                 the combiner re-reads the value per sweep so a change is
//                 never applied mid-batch;
//   sleep cap     in [1, 10'000'000] us       — producer backoff ladders
//                 re-read the cap per sleep;
//   emit batch    in [1, queue_capacity / 2]  — only when the run started
//                 with producer batching on (RAMR_MEM-era emit buffer) and
//                 the knob is not pinned via RAMR_EMIT_BATCH; mappers
//                 re-read it per buffered emit, never mid-flush.
//
// Ratio and pinning are committed before the pools start and are never
// touched here (repinning live threads is not safe mid-phase).
// Every applied change is recorded as a GovernorAction and, when a trace
// lane was provided, as a kGovernorAction event.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timing.hpp"
#include "engine/tuning.hpp"
#include "telemetry/metrics.hpp"
#include "trace/trace.hpp"

namespace ramr::adapt {

// The built-in policy (used when the library user installs none):
// additive-increase is deliberately avoided — both knobs move in powers of
// two, mirroring the paper's sweep granularity (Figs. 6/7).
//  * congestion (failed-push rate above 5%): double the batch (drain more
//    per sweep) and double the producer sleep cap (blocked mappers should
//    stay off the combiner's core longer);
//  * clear underrun (no failed pushes, near-empty rings, and the median
//    sweep drains less than half the configured batch): halve the batch —
//    a smaller batch reduces latency without costing throughput when
//    sweeps never fill it anyway.
class DefaultTuningPolicy : public engine::TuningPolicy {
 public:
  engine::TuningDecision on_observation(
      const engine::TuningObservation& obs) override;
};

struct GovernorOptions {
  std::chrono::microseconds interval{5000};
  std::size_t queue_capacity = 0;   // bound for the batch clamp
  std::size_t sleep_cap_floor = 1;  // never sleep-cap below this (us)
  // Whether the emit-batch knob may be retuned (false when pinned via
  // RAMR_EMIT_BATCH; it is also ignored whenever the run started with
  // producer batching off — see engine::TuningControl::emit_batch).
  bool tune_emit_batch = false;
};

class Governor {
 public:
  // All referenced objects must outlive the governor. `lane` may be null
  // (no tracing); it must have been created before recording starts.
  Governor(engine::TuningControl& control, engine::TuningPolicy& policy,
           telemetry::MetricRegistry& registry, GovernorOptions options,
           trace::Lane* lane = nullptr, Clock::time_point epoch = now());
  ~Governor();

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  void start();
  void stop();

  std::vector<engine::GovernorAction> actions() const;

 private:
  void run();
  void tick();

  engine::TuningControl& control_;
  engine::TuningPolicy& policy_;
  telemetry::MetricRegistry& registry_;
  GovernorOptions options_;
  trace::Lane* lane_;
  Clock::time_point epoch_;

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;

  telemetry::MetricsSnapshot previous_;
  mutable std::mutex actions_mutex_;
  std::vector<engine::GovernorAction> actions_;
};

}  // namespace ramr::adapt
