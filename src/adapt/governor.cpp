#include "adapt/governor.hpp"

#include <algorithm>

namespace ramr::adapt {

namespace {

// Approximate number of elements a batch-size histogram delta represents:
// samples weighted by their bucket midpoint (the histogram stores powers
// of two; exact counts are not needed — this feeds a rate in [0,1]).
double approx_elements(const telemetry::HistogramSnapshot& h) {
  double total = 0.0;
  for (std::size_t b = 0; b < telemetry::Histogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    const double hi = static_cast<double>(telemetry::Histogram::upper_bound(b));
    const double lo = b == 0 ? 0.0 : hi / 2.0;
    total += static_cast<double>(h.buckets[b]) * (lo + hi) / 2.0;
  }
  return total;
}

}  // namespace

engine::TuningDecision DefaultTuningPolicy::on_observation(
    const engine::TuningObservation& obs) {
  engine::TuningDecision d;
  if (obs.failed_push_rate > 0.05) {
    d.batch_size = obs.batch_size * 2;
    d.sleep_cap_us = obs.sleep_cap_us * 2;
    // Congested producers are already paying full-ring waits; larger emit
    // blocks amortise the remaining per-element publication cost.
    if (obs.emit_batch > 0) d.emit_batch = obs.emit_batch * 2;
  } else if (obs.failed_push_rate == 0.0 && obs.occupancy_fraction < 0.10 &&
             obs.batch_p50 > 0 &&
             obs.batch_size > 2 * static_cast<std::size_t>(obs.batch_p50)) {
    d.batch_size = obs.batch_size / 2;
    // Starving consumers: shrink the producer-side buffer too — records
    // held back in a half-full emit buffer are pure added latency when the
    // rings are near-empty anyway.
    if (obs.emit_batch > 1) d.emit_batch = obs.emit_batch / 2;
  }
  return d;
}

Governor::Governor(engine::TuningControl& control,
                   engine::TuningPolicy& policy,
                   telemetry::MetricRegistry& registry,
                   GovernorOptions options, trace::Lane* lane,
                   Clock::time_point epoch)
    : control_(control),
      policy_(policy),
      registry_(registry),
      options_(options),
      lane_(lane),
      epoch_(epoch) {}

Governor::~Governor() { stop(); }

void Governor::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = false;
  }
  previous_ = registry_.collect();
  thread_ = std::thread([this] { run(); });
}

void Governor::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::vector<engine::GovernorAction> Governor::actions() const {
  std::lock_guard lock(actions_mutex_);
  return actions_;
}

void Governor::run() {
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, options_.interval,
                     [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    tick();
    lock.lock();
  }
}

void Governor::tick() {
  const telemetry::MetricsSnapshot current = registry_.collect();
  const telemetry::MetricsSnapshot delta =
      telemetry::snapshot_delta(current, previous_);
  previous_ = current;

  engine::TuningObservation obs;
  obs.seconds = seconds_between(epoch_, now());
  obs.batch_size = control_.batch_size();
  obs.sleep_cap_us = control_.sleep_cap_us();
  obs.emit_batch = control_.emit_batch();
  obs.queue_capacity = options_.queue_capacity;

  double failed = 0.0;
  if (const auto* c = delta.find_counter("queue_failed_pushes")) {
    failed = static_cast<double>(c->total);
  }
  double drained = 0.0;
  if (const auto* h = delta.find_histogram("batch_sizes")) {
    drained = approx_elements(*h);
    obs.batch_p50 = h->quantile(0.5);
  }
  // Drained elements stand in for successful pushes (producers and
  // consumers move the same records; the success counter is only flushed
  // at pool join, too late for a live window).
  const double attempts = failed + drained;
  obs.failed_push_rate = attempts > 0.0 ? failed / attempts : 0.0;
  if (options_.queue_capacity > 0) {
    if (const auto* g = delta.find_gauge("queue_max_occupancy")) {
      obs.occupancy_fraction =
          g->max / static_cast<double>(options_.queue_capacity);
    }
  }

  // Nothing moved this window (e.g. the run is in a non-pipelined phase):
  // leave the knobs alone rather than react to silence.
  if (attempts == 0.0) return;

  const engine::TuningDecision decision = policy_.on_observation(obs);

  if (decision.batch_size) {
    const std::size_t upper =
        std::max<std::size_t>(1, options_.queue_capacity / 2);
    const std::size_t target =
        std::clamp<std::size_t>(*decision.batch_size, 1, upper);
    if (target != obs.batch_size) {
      control_.set_batch_size(target);
      engine::GovernorAction action{obs.seconds, "batch_size",
                                    static_cast<std::uint64_t>(obs.batch_size),
                                    static_cast<std::uint64_t>(target)};
      if (lane_ != nullptr) {
        lane_->record(epoch_, trace::EventKind::kGovernorAction, action.to);
      }
      std::lock_guard lock(actions_mutex_);
      actions_.push_back(std::move(action));
    }
  }
  if (decision.sleep_cap_us) {
    const std::size_t target = std::clamp<std::size_t>(
        *decision.sleep_cap_us, options_.sleep_cap_floor, 10'000'000);
    if (target != obs.sleep_cap_us) {
      control_.set_sleep_cap_us(target);
      engine::GovernorAction action{
          obs.seconds, "sleep_cap_us",
          static_cast<std::uint64_t>(obs.sleep_cap_us),
          static_cast<std::uint64_t>(target)};
      if (lane_ != nullptr) {
        lane_->record(epoch_, trace::EventKind::kGovernorAction, action.to);
      }
      std::lock_guard lock(actions_mutex_);
      actions_.push_back(std::move(action));
    }
  }
  // Emit batch: only tunable when the run started with producer batching
  // on (the emit buffer exists) and the user did not pin it via env.
  if (decision.emit_batch && options_.tune_emit_batch &&
      obs.emit_batch > 0) {
    const std::size_t upper =
        std::max<std::size_t>(1, options_.queue_capacity / 2);
    const std::size_t target =
        std::clamp<std::size_t>(*decision.emit_batch, 1, upper);
    if (target != obs.emit_batch) {
      control_.set_emit_batch(target);
      engine::GovernorAction action{obs.seconds, "emit_batch",
                                    static_cast<std::uint64_t>(obs.emit_batch),
                                    static_cast<std::uint64_t>(target)};
      if (lane_ != nullptr) {
        lane_->record(epoch_, trace::EventKind::kGovernorAction, action.to);
      }
      std::lock_guard lock(actions_mutex_);
      actions_.push_back(std::move(action));
    }
  }
}

}  // namespace ramr::adapt
