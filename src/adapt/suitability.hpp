// Suitability model: when does the decoupled pipelined strategy beat
// Phoenix-style fusion? (Paper Sec. IV-E, Fig. 10.)
//
// The paper's reading of Fig. 10: an application benefits from RAMR when
// its map/combine phase is *heavy enough* (instructions per input byte
// above a threshold — HG and LR are "too light" to amortize the queue
// traffic) AND *stall-prone* (memory/resource stalls per instruction —
// PCA has a high IPB but runs stall-free, so decoupling buys nothing).
// The metrics "are only meaningful comparatively", so the floors here are
// calibrated against the repo's own Fig. 10 reproduction
// (bench_fig10_suitability over the Haswell model) such that the paper's
// verdicts come out: KM/MM (and hashed WC) pipelined, HG/LR/PCA fused.
//
// Two scoring entry points:
//  * judge_counters / judge_split_counters — the Fig. 10 rule over PMU (or
//    modeled) counters, for hosts where perf_event is available and for
//    the recorded-fixture tests;
//  * judge_empirical — a byte-free fallback over per-pool thread CPU time,
//    for hosts without PMU access (containers, CI): cost per emitted
//    record stands in for IPB, and the combine pool's share of the CPU
//    stands in for the stall complementarity (a heavy combine side is
//    exactly the work the decoupled pool absorbs). CPU time, unlike
//    wall-clock, is workload-intrinsic, so the verdict is stable even on
//    an oversubscribed 1-core host where the probe runs time-slice.
#pragma once

#include <cstdint>
#include <string>

#include "perf/counters.hpp"

namespace ramr::adapt {

// Thresholds; defaults calibrated against the Fig. 10a reproduction.
struct SuitabilityModel {
  // Counter rule: pipelined iff ipb >= ipb_floor AND mspi+rspi >= stall_floor.
  double ipb_floor = 10.0;
  double stall_floor = 0.10;
  // Empirical rule: pipelined iff cpu-per-record >= intensity floor AND the
  // combine pool burns at least combine_share_floor of the total CPU.
  double cpu_per_record_floor_ns = 200.0;
  double combine_share_floor = 0.30;
};

struct Verdict {
  bool pipelined = false;
  // Continuous margin, > 1 favouring pipelined (product of the two rule
  // components, each clamped to [0, 4]); reported per candidate in the
  // adapt plan JSON.
  double score = 0.0;
  std::string reason;
};

// The Fig. 10 rule over one map/combine-phase counter set (input_bytes
// must be filled — IPB is instructions per input byte).
Verdict judge_counters(const SuitabilityModel& model,
                       const perf::Counters& map_combine);

// Split-pool variant: per-pool counters from a pipelined probe run. The
// totals feed the Fig. 10 rule; additionally, when the combine side
// concentrates the stalls (its stalls-per-instruction exceed the map
// side's), the complementarity strengthens the pipelined score — stalls
// that live in combine are precisely what the decoupled pool overlaps.
Verdict judge_split_counters(const SuitabilityModel& model,
                             const perf::Counters& map_side,
                             const perf::Counters& combine_side);

// What a PMU-less probe run measures.
struct EmpiricalSample {
  double map_cpu_seconds = 0.0;
  double combine_cpu_seconds = 0.0;
  std::uint64_t records = 0;  // elements emitted through the rings
  double wall_seconds = 0.0;  // informational (reported, not scored)
};

Verdict judge_empirical(const SuitabilityModel& model,
                        const EmpiricalSample& sample);

}  // namespace ramr::adapt
