#include "adapt/suitability.hpp"

#include <algorithm>
#include <sstream>

namespace ramr::adapt {

namespace {

// Rule component: value relative to its floor, clamped to [0, 4] so one
// extreme axis cannot buy a verdict on its own.
double component(double value, double floor) {
  if (floor <= 0.0) return 0.0;
  return std::clamp(value / floor, 0.0, 4.0);
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace

Verdict judge_counters(const SuitabilityModel& model,
                       const perf::Counters& map_combine) {
  const double ipb = map_combine.ipb();
  const double stalls = map_combine.mspi() + map_combine.rspi();
  Verdict v;
  v.pipelined = ipb >= model.ipb_floor && stalls >= model.stall_floor;
  v.score = component(ipb, model.ipb_floor) *
            component(stalls, model.stall_floor);
  std::ostringstream os;
  os << "ipb=" << fmt(ipb) << (ipb >= model.ipb_floor ? ">=" : "<")
     << fmt(model.ipb_floor) << " mspi+rspi=" << fmt(stalls)
     << (stalls >= model.stall_floor ? ">=" : "<") << fmt(model.stall_floor);
  if (!v.pipelined) {
    os << (ipb < model.ipb_floor ? " (too light to amortize queue traffic)"
                                 : " (stall-free; decoupling buys nothing)");
  }
  v.reason = os.str();
  return v;
}

Verdict judge_split_counters(const SuitabilityModel& model,
                             const perf::Counters& map_side,
                             const perf::Counters& combine_side) {
  // Phase totals feed the Fig. 10 rule. input_bytes describes the same
  // input for both pools, so take the larger, not the sum.
  perf::Counters total;
  total.instructions = map_side.instructions + combine_side.instructions;
  total.mem_stall_cycles =
      map_side.mem_stall_cycles + combine_side.mem_stall_cycles;
  total.resource_stall_cycles =
      map_side.resource_stall_cycles + combine_side.resource_stall_cycles;
  total.input_bytes = std::max(map_side.input_bytes, combine_side.input_bytes);
  Verdict v = judge_counters(model, total);

  // MSPI/RSPI complementarity of map vs. combine: stalls concentrated on
  // the combine side are exactly the cycles the decoupled pool overlaps
  // with useful map work, so they strengthen the pipelined score.
  const double map_stalls = map_side.mspi() + map_side.rspi();
  const double combine_stalls = combine_side.mspi() + combine_side.rspi();
  if (combine_stalls > map_stalls && combine_stalls > 0.0) {
    v.score *= 1.5;
    v.reason += " combine-side stalls dominate (" + fmt(combine_stalls) +
                " vs " + fmt(map_stalls) + "/instr): complementary";
  }
  return v;
}

Verdict judge_empirical(const SuitabilityModel& model,
                        const EmpiricalSample& sample) {
  const double total_cpu = sample.map_cpu_seconds + sample.combine_cpu_seconds;
  const double share =
      total_cpu > 0.0 ? sample.combine_cpu_seconds / total_cpu : 0.0;
  const double per_record_ns =
      sample.records > 0 ? total_cpu / static_cast<double>(sample.records) * 1e9
                         : 0.0;
  Verdict v;
  v.pipelined = per_record_ns >= model.cpu_per_record_floor_ns &&
                share >= model.combine_share_floor;
  v.score = component(per_record_ns, model.cpu_per_record_floor_ns) *
            component(share, model.combine_share_floor);
  std::ostringstream os;
  os << "cpu/record=" << fmt(per_record_ns) << "ns"
     << (per_record_ns >= model.cpu_per_record_floor_ns ? ">=" : "<")
     << fmt(model.cpu_per_record_floor_ns) << "ns combine_share="
     << fmt(share) << (share >= model.combine_share_floor ? ">=" : "<")
     << fmt(model.combine_share_floor);
  if (!v.pipelined) {
    os << (per_record_ns < model.cpu_per_record_floor_ns
               ? " (records too cheap to amortize queue traffic)"
               : " (combine too light to deserve its own pool)");
  }
  v.reason = os.str();
  return v;
}

}  // namespace ramr::adapt
