#include "service/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ramr::service {

Scheduler::Scheduler(topo::Topology topology, Options options)
    : topo_(std::move(topology)), opts_(options), cores_(topo_) {
  max_jobs_ = opts_.max_concurrent_jobs != 0
                  ? opts_.max_concurrent_jobs
                  : std::max<std::size_t>(1, topo_.num_sockets());
  // Default grant when a spec leaves cores=0: an even split of the machine
  // across the concurrency cap, floored at 3 so a resolved dual shape
  // (>=1 mapper + >=1 combiner) plus one spare always fits the lease.
  fair_share_ = std::max(std::min<std::size_t>(3, cores_.total()),
                         cores_.total() / max_jobs_);
  dispatcher_ = std::thread(&Scheduler::dispatch_loop, this);
}

Scheduler::~Scheduler() { shutdown(); }

JobId Scheduler::submit(JobSpec spec, std::function<void(JobContext&)> body) {
  std::lock_guard lock(mutex_);
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->body = std::move(body);
  job->id = next_id_++;
  job->submitted = now();
  jobs_[job->id] = job;

  const std::size_t want =
      job->spec.cores != 0 ? job->spec.cores : fair_share_;
  if (stopping_) {
    finish_locked(*job, JobStatus::kRejected, "scheduler is shutting down");
  } else if (want > cores_.total()) {
    finish_locked(*job, JobStatus::kRejected,
                  "requested " + std::to_string(want) +
                      " cores; topology has " +
                      std::to_string(cores_.total()));
  } else if (queue_.size() >= opts_.queue_depth) {
    finish_locked(*job, JobStatus::kRejected,
                  "queue full (depth " + std::to_string(opts_.queue_depth) +
                      ")");
  } else {
    queue_.push_back(job);
    cv_.notify_all();
  }
  return job->id;
}

bool Scheduler::cancel(JobId id) {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (terminal(job.status)) return false;
  job.cancel.cancel(common::CancelCause::kExternal, {}, {},
                    "cancelled by client");
  if (job.status == JobStatus::kQueued) {
    auto pos = std::find(queue_.begin(), queue_.end(), it->second);
    if (pos != queue_.end()) queue_.erase(pos);
    finish_locked(job, JobStatus::kCancelled, "cancelled while queued");
  }
  cv_.notify_all();
  return true;
}

JobReport Scheduler::wait(JobId id) {
  std::unique_lock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw Error("service: unknown job id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  cv_.wait(lock, [&] { return terminal(job->status); });
  JobReport report = report_locked(*job);
  std::vector<std::thread> zombies = grab_zombies_locked();
  lock.unlock();
  for (std::thread& t : zombies) t.join();
  return report;
}

JobReport Scheduler::report(JobId id) {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw Error("service: unknown job id " + std::to_string(id));
  }
  return report_locked(*it->second);
}

std::vector<JobReport> Scheduler::drain() {
  std::vector<JobId> ids;
  {
    std::lock_guard lock(mutex_);
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::vector<JobReport> reports;
  reports.reserve(ids.size());
  for (JobId id : ids) reports.push_back(wait(id));
  return reports;
}

void Scheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (!stopping_) {
      stopping_ = true;
      while (!queue_.empty()) {
        std::shared_ptr<Job> job = queue_.front();
        queue_.pop_front();
        job->cancel.cancel(common::CancelCause::kExternal, {}, {},
                           "scheduler shutdown");
        finish_locked(*job, JobStatus::kCancelled, "scheduler shutdown");
      }
      for (auto& [id, job] : jobs_) {
        if (job->status == JobStatus::kRunning) {
          job->cancel.cancel(common::CancelCause::kExternal, {}, {},
                             "scheduler shutdown");
        }
      }
    }
    cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  std::vector<std::thread> zombies;
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return running_ == 0; });
    zombies = grab_zombies_locked();
  }
  for (std::thread& t : zombies) t.join();
}

void Scheduler::dispatch_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] {
      return stopping_ || !zombies_.empty() ||
             (!queue_.empty() && running_ < max_jobs_);
    });
    if (!zombies_.empty()) {
      std::vector<std::thread> zombies = grab_zombies_locked();
      lock.unlock();
      for (std::thread& t : zombies) t.join();
      lock.lock();
      continue;
    }
    if (stopping_) break;

    // Strict head-of-line FIFO: the job at the head waits for its cores
    // before anything behind it dispatches, so big jobs cannot starve.
    std::shared_ptr<Job> job = queue_.front();
    const std::size_t want =
        job->spec.cores != 0 ? job->spec.cores : fair_share_;
    std::optional<CoreLease> lease = cores_.try_acquire(want);
    if (!lease) {
      const std::uint64_t gen = completion_gen_;
      cv_.wait(lock, [&] {
        return stopping_ || completion_gen_ != gen || queue_.empty();
      });
      continue;
    }
    queue_.pop_front();
    job->lease = std::move(*lease);
    job->status = JobStatus::kRunning;
    job->started = now();
    job->queued_seconds = seconds_between(job->submitted, job->started);
    ++running_;
    job->runner = std::thread(&Scheduler::run_job, this, job);
  }
}

void Scheduler::run_job(const std::shared_ptr<Job>& job) {
  // The job's private slice of the machine: a sub-topology of exactly the
  // leased CPUs. The lease ids go into the name so the depot's shape keys
  // of different core sets never alias.
  std::vector<topo::LogicalCpu> cpus;
  cpus.reserve(job->lease.size());
  std::string label = topo_.name() + "+lease[";
  for (std::size_t i = 0; i < job->lease.cpu_os_ids.size(); ++i) {
    const std::size_t os_id = job->lease.cpu_os_ids[i];
    cpus.push_back(topo_.by_os_id(os_id));
    if (i > 0) label += ",";
    label += std::to_string(os_id);
  }
  label += "]";

  JobContext ctx(topo::Topology(std::move(label), std::move(cpus),
                                topo_.uniform_l2()),
                 job->lease, job->spec.config, &job->cancel,
                 job->spec.deadline_ms, &depot_);

  JobStatus status = JobStatus::kDone;
  std::string error;
  try {
    job->body(ctx);
    // A body that observed the token and returned early still counts as
    // cancelled — the client asked for the job to stop and it did.
    if (job->cancel.cancelled()) {
      status = JobStatus::kCancelled;
      error = job->cancel.snapshot().detail;
    }
  } catch (const common::AbortError& e) {
    status = job->cancel.cancelled() ? JobStatus::kCancelled
                                     : JobStatus::kFailed;
    error = e.what();
  } catch (const std::exception& e) {
    status = JobStatus::kFailed;
    error = e.what();
  }

  // Return the cores first (a waiting head-of-line job can take them as
  // soon as the completion is published below), then publish.
  cores_.release(job->lease);

  std::lock_guard lock(mutex_);
  job->warm = ctx.warm_;
  job->plan = ctx.plan_;
  job->run_summary = ctx.run_summary_;
  finish_locked(*job, status, std::move(error));
  --running_;
  // This thread cannot join itself; park the handle for the dispatcher,
  // wait(), or shutdown() to reap.
  zombies_.push_back(std::move(job->runner));
}

void Scheduler::finish_locked(Job& job, JobStatus status, std::string error) {
  job.status = status;
  job.error = std::move(error);
  if (job.started != Clock::time_point{}) {
    job.run_seconds = seconds_between(job.started, now());
  }
  ++completion_gen_;
  cv_.notify_all();
}

JobReport Scheduler::report_locked(const Job& job) const {
  JobReport report;
  report.id = job.id;
  report.name = job.spec.name;
  report.status = job.status;
  report.cores = job.lease.cpu_os_ids;
  report.queued_seconds = job.queued_seconds;
  report.run_seconds = job.run_seconds;
  report.warm_pools = job.warm;
  report.run_summary = job.run_summary;
  report.plan = job.plan;
  report.error = job.error;
  return report;
}

std::vector<std::thread> Scheduler::grab_zombies_locked() {
  std::vector<std::thread> zombies;
  zombies.swap(zombies_);
  return zombies;
}

}  // namespace ramr::service
