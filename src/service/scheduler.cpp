#include "service/scheduler.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"

namespace ramr::service {

namespace {

const char* to_string(AppStats::Breaker breaker) {
  switch (breaker) {
    case AppStats::Breaker::kClosed:
      return "closed";
    case AppStats::Breaker::kOpen:
      return "open";
    case AppStats::Breaker::kHalfOpen:
      return "half-open";
  }
  return "?";
}

// The resilience counters in their canonical order, shared by stats_json
// and the metrics frame so the two surfaces can never disagree.
std::vector<std::pair<std::string, std::uint64_t>> counter_pairs(
    const ServiceStats& s) {
  return {{"submitted", s.submitted},
          {"done", s.done},
          {"failed", s.failed},
          {"cancelled", s.cancelled},
          {"rejected", s.rejected},
          {"shed", s.shed},
          {"retries", s.retries},
          {"degraded", s.degraded},
          {"hedges", s.hedges},
          {"hedge_wins", s.hedge_wins},
          {"breaker_trips", s.breaker_trips},
          {"breaker_rejects", s.breaker_rejects},
          {"job_faults", s.job_faults}};
}

}  // namespace

// The observability plane: one stitched trace + one flight recorder + a
// low-cadence sampler thread producing metrics frames. Exists only when
// Options::observability is on; everything the hot paths touch is a null
// check on obs_.
struct Scheduler::Obs {
  telemetry::ServiceTrace trace;
  telemetry::FlightRecorder flight;
  std::string metrics_path;
  std::string postmortem_path;
  std::size_t interval_ms = 250;

  // Last few sampler frames, kept for post-mortems (own lock: the sampler
  // appends without the scheduler mutex; finish_locked reads while holding
  // it — strictly one direction, no ordering cycle).
  std::mutex frames_mutex;
  std::deque<telemetry::ServiceMetricsFrame> frames;
  static constexpr std::size_t kMaxFrames = 8;

  std::thread sampler;
  std::mutex stop_mutex;
  std::condition_variable stop_cv;
  bool stop = false;

  explicit Obs(std::size_t flight_events) : flight(flight_events) {}
};

std::string ServiceStats::summary() const {
  std::ostringstream os;
  os << "service_stats submitted=" << submitted << " done=" << done
     << " failed=" << failed << " cancelled=" << cancelled
     << " rejected=" << rejected << " shed=" << shed
     << " retries=" << retries << " degraded=" << degraded
     << " hedges=" << hedges << " hedge_wins=" << hedge_wins
     << " breaker_trips=" << breaker_trips
     << " breaker_rejects=" << breaker_rejects
     << " job_faults=" << job_faults;
  return os.str();
}

Scheduler::Scheduler(topo::Topology topology, Options options)
    : topo_(std::move(topology)), opts_(options), start_time_(now()),
      cores_(topo_), injector_(faults::FaultPlan::parse(options.fault_spec)) {
  max_jobs_ = opts_.max_concurrent_jobs != 0
                  ? opts_.max_concurrent_jobs
                  : std::max<std::size_t>(1, topo_.num_sockets());
  // Default grant when a spec leaves cores=0: an even split of the machine
  // across the concurrency cap, floored at 3 so a resolved dual shape
  // (>=1 mapper + >=1 combiner) plus one spare always fits the lease.
  fair_share_ = std::max(std::min<std::size_t>(3, cores_.total()),
                         cores_.total() / max_jobs_);
  if (opts_.observability) {
    obs_ = std::make_unique<Obs>(opts_.flight_events);
    obs_->metrics_path = opts_.metrics_path;
    obs_->postmortem_path = opts_.postmortem_path;
    obs_->interval_ms = std::max<std::size_t>(1, opts_.metrics_interval_ms);
    std::ostringstream cfg;
    cfg << "service topo=" << topo_.name() << " cores=" << cores_.total()
        << " max_jobs=" << max_jobs_ << " queue_depth=" << opts_.queue_depth
        << " retries=" << opts_.max_retries
        << " breaker_k=" << opts_.breaker_k
        << " hedge_factor=" << opts_.hedge_factor
        << " shed_watermark=" << opts_.shed_watermark
        << " flight_events=" << opts_.flight_events;
    if (!opts_.fault_spec.empty()) cfg << " faults=" << opts_.fault_spec;
    obs_->flight.set_config(cfg.str());
    obs_->sampler = std::thread(&Scheduler::obs_loop, this);
  }
  dispatcher_ = std::thread(&Scheduler::dispatch_loop, this);
}

Scheduler::~Scheduler() { shutdown(); }

JobId Scheduler::submit(JobSpec spec, std::function<void(JobContext&)> body) {
  return submit_internal(std::move(spec), std::move(body), nullptr);
}

JobId Scheduler::submit_internal(JobSpec spec,
                                 std::function<void(JobContext&)> body,
                                 TerminalCallback on_terminal) {
  std::lock_guard lock(mutex_);
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->body = std::move(body);
  job->on_terminal = std::move(on_terminal);
  job->id = next_id_++;
  job->submitted = now();
  job->max_retries = job->spec.max_retries == JobSpec::kInheritRetries
                         ? opts_.max_retries
                         : job->spec.max_retries;
  job->want_cores = job->spec.cores != 0 ? job->spec.cores : fair_share_;
  jobs_[job->id] = job;
  ++stats_.submitted;
  if (obs_ != nullptr) {
    obs_->trace.set_job_name(job->id, trace_id(*job));
    obs_->flight.record(job->id, "submit",
                        trace_id(*job) + " cores=" +
                            std::to_string(job->want_cores));
  }

  if (stopping_) {
    finish_locked(*job, JobStatus::kRejected, "scheduler is shutting down");
  } else if (job->spec.cancel != nullptr && job->spec.cancel->cancelled()) {
    // Satellite fix: a pre-tripped client token is a cancellation, not a
    // failure — and it must never reach the queue or consume a core lease.
    finish_locked(*job, JobStatus::kCancelled,
                  "client token cancelled before admission");
  } else if (job->want_cores > cores_.total()) {
    finish_locked(*job, JobStatus::kRejected,
                  "requested " + std::to_string(job->want_cores) +
                      " cores; topology has " +
                      std::to_string(cores_.total()));
  } else if (!app_stats_.admit(job->spec.name, opts_.breaker_k, now())) {
    ++stats_.breaker_rejects;
    finish_locked(*job, JobStatus::kRejected,
                  "circuit breaker open for app '" + job->spec.name + "'");
  } else if (queue_.size() >= opts_.queue_depth) {
    finish_locked(*job, JobStatus::kRejected,
                  "queue full (depth " + std::to_string(opts_.queue_depth) +
                      ")");
  } else {
    if (obs_ != nullptr) obs_->trace.begin(job->id, "queued");
    queue_.push_back(job);
    shed_locked();
    cv_.notify_all();
  }
  return job->id;
}

bool Scheduler::cancel(JobId id) {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (terminal(job.status)) return false;
  job.cancel.cancel(common::CancelCause::kExternal, {}, {},
                    "cancelled by client");
  if (job.status == JobStatus::kQueued) {
    auto pos = std::find(queue_.begin(), queue_.end(), it->second);
    if (pos != queue_.end()) queue_.erase(pos);
    finish_locked(job, JobStatus::kCancelled, "cancelled while queued");
  }
  cv_.notify_all();
  return true;
}

JobReport Scheduler::wait(JobId id) {
  std::unique_lock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw Error("service: unknown job id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  cv_.wait(lock, [&] { return terminal(job->status); });
  JobReport report = report_locked(*job);
  std::vector<std::thread> zombies = grab_zombies_locked();
  lock.unlock();
  for (std::thread& t : zombies) t.join();
  return report;
}

JobReport Scheduler::report(JobId id) {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw Error("service: unknown job id " + std::to_string(id));
  }
  return report_locked(*it->second);
}

std::vector<JobReport> Scheduler::drain() {
  std::vector<JobId> ids;
  {
    std::lock_guard lock(mutex_);
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::vector<JobReport> reports;
  reports.reserve(ids.size());
  for (JobId id : ids) reports.push_back(wait(id));
  return reports;
}

ServiceStats Scheduler::stats() const {
  std::lock_guard lock(mutex_);
  ServiceStats s = stats_;
  s.job_faults = injector_.injected();
  return s;
}

std::string Scheduler::stats_json() const {
  return telemetry::counters_json("ramr-service-stats-v1",
                                  counter_pairs(stats()));
}

telemetry::ServiceMetricsFrame Scheduler::metrics_frame_locked() const {
  telemetry::ServiceMetricsFrame frame;
  frame.uptime_seconds = seconds_between(start_time_, now());
  frame.queue_depth = queue_.size();
  frame.running = running_;
  frame.cores_total = cores_.total();
  frame.cores_leased = cores_.total() - cores_.available();
  const engine::PoolDepot::Stats depot = depot_.stats();
  frame.depot_built = depot.built;
  frame.depot_reused = depot.reused;
  frame.depot_shelved = depot.idle;
  frame.depot_leased = depot.leased;
  ServiceStats s = stats_;
  s.job_faults = injector_.injected();
  frame.counters = counter_pairs(s);
  for (const auto& [name, app] : app_stats_.all()) {
    telemetry::ServiceMetricsFrame::AppEntry entry;
    entry.name = name;
    entry.ewma_seconds = app.ewma_seconds;
    entry.samples = app.samples;
    entry.consecutive_failures = app.consecutive_failures;
    entry.breaker = to_string(app.breaker);
    frame.apps.push_back(std::move(entry));
  }
  return frame;
}

telemetry::ServiceMetricsFrame Scheduler::metrics_frame() const {
  std::lock_guard lock(mutex_);
  return metrics_frame_locked();
}

std::string Scheduler::metrics_text() const {
  return telemetry::metrics_prometheus(metrics_frame());
}

std::string Scheduler::metrics_json() const {
  return telemetry::metrics_json(metrics_frame());
}

void Scheduler::write_trace(std::ostream& out) const {
  if (obs_ == nullptr) {
    throw Error("service: observability is off (set RAMR_OBS=1)");
  }
  obs_->trace.write_chrome(out);
}

std::string Scheduler::trace_id(const Job& job) {
  return job.spec.name + "#" + std::to_string(job.id);
}

void Scheduler::obs_event_locked(const Job& job, const char* kind,
                                 const std::string& detail) {
  if (obs_ == nullptr) return;
  obs_->flight.record(job.id, kind, detail);
  obs_->trace.instant(job.id, kind, detail);
}

// One post-mortem document per trigger: flight events + config + the
// failing job's identity + counters + the last sampler frames. Runs under
// mutex_ on paths that are already exceptional; file I/O is best-effort.
void Scheduler::obs_postmortem_locked(const std::string& reason,
                                      const Job* job) {
  if (obs_ == nullptr || obs_->postmortem_path.empty()) return;
  ServiceStats s = stats_;
  s.job_faults = injector_.injected();
  std::vector<telemetry::ServiceMetricsFrame> frames;
  {
    std::lock_guard frames_lock(obs_->frames_mutex);
    frames.assign(obs_->frames.begin(), obs_->frames.end());
  }
  obs_->flight.dump_file(
      obs_->postmortem_path, reason, [&](telemetry::JsonWriter& w) {
        if (job != nullptr) {
          w.begin_object("job");
          w.field("trace_id", trace_id(*job));
          w.field("id", job->id);
          w.field("name", job->spec.name);
          w.field("status", service::to_string(job->status));
          w.field("error", job->error);
          w.field("attempts", static_cast<std::uint64_t>(job->attempt));
          w.begin_array("degraded_steps");
          for (const std::string& step : job->degraded_steps) {
            w.element(step);
          }
          w.end_array();
          w.end_object();
        }
        w.begin_object("stats");
        for (const auto& [name, value] : counter_pairs(s)) {
          w.field(name, value);
        }
        w.end_object();
        w.begin_array("recent_frames");
        for (const telemetry::ServiceMetricsFrame& f : frames) {
          w.begin_object();
          w.field("uptime_seconds", f.uptime_seconds);
          w.field("queue_depth", f.queue_depth);
          w.field("running", f.running);
          w.field("cores_leased", f.cores_leased);
          w.end_object();
        }
        w.end_array();
      });
}

void Scheduler::obs_sample_frame() {
  const telemetry::ServiceMetricsFrame frame = metrics_frame();
  obs_->trace.counter("cores_leased", static_cast<double>(frame.cores_leased));
  obs_->trace.counter("queue_depth", static_cast<double>(frame.queue_depth));
  obs_->trace.counter("running_jobs", static_cast<double>(frame.running));
  {
    std::lock_guard lock(obs_->frames_mutex);
    obs_->frames.push_back(frame);
    if (obs_->frames.size() > Obs::kMaxFrames) obs_->frames.pop_front();
  }
  if (!obs_->metrics_path.empty()) {
    try {
      std::ofstream out(obs_->metrics_path);
      if (out) {
        const bool prom =
            obs_->metrics_path.size() >= 5 &&
            obs_->metrics_path.rfind(".prom") == obs_->metrics_path.size() - 5;
        out << (prom ? telemetry::metrics_prometheus(frame)
                     : telemetry::metrics_json(frame));
      }
    } catch (...) {
      // Scrape dumps are best-effort; the next tick retries.
    }
  }
}

void Scheduler::obs_loop() {
  for (;;) {
    {
      std::unique_lock lock(obs_->stop_mutex);
      if (obs_->stop_cv.wait_for(lock,
                                 std::chrono::milliseconds(obs_->interval_ms),
                                 [&] { return obs_->stop; })) {
        break;
      }
    }
    obs_sample_frame();
  }
  obs_sample_frame();  // final frame so short-lived services still scrape
}

void Scheduler::stop_obs() {
  if (obs_ == nullptr || !obs_->sampler.joinable()) return;
  {
    std::lock_guard lock(obs_->stop_mutex);
    obs_->stop = true;
  }
  obs_->stop_cv.notify_all();
  obs_->sampler.join();
}

void Scheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (!stopping_) {
      stopping_ = true;
      while (!queue_.empty()) {
        std::shared_ptr<Job> job = queue_.front();
        queue_.pop_front();
        job->cancel.cancel(common::CancelCause::kExternal, {}, {},
                           "scheduler shutdown");
        finish_locked(*job, JobStatus::kCancelled, "scheduler shutdown");
      }
      for (auto& [id, job] : jobs_) {
        if (job->status == JobStatus::kRunning) {
          job->cancel.cancel(common::CancelCause::kExternal, {}, {},
                             "scheduler shutdown");
        }
      }
    }
    cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  std::vector<std::thread> zombies;
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return running_ == 0; });
    zombies = grab_zombies_locked();
  }
  for (std::thread& t : zombies) t.join();
  // Everything is quiescent now: a shutdown that leaves failed jobs
  // behind dumps one final post-mortem, then the sampler stops (its last
  // tick writes the final metrics frame).
  {
    std::lock_guard lock(mutex_);
    if (obs_ != nullptr && stats_.failed > 0) {
      // Name the most recent failed job so the dump points somewhere even
      // when the per-failure dump was overwritten.
      const Job* last_failed = nullptr;
      for (const auto& [id, j] : jobs_) {
        if (j->status == JobStatus::kFailed) last_failed = j.get();
      }
      obs_postmortem_locked("shutdown-with-failures", last_failed);
    }
  }
  stop_obs();
}

// First queued job whose retry backoff (if any) has elapsed. The queue is
// kept in arrival (id) order, so this is the head-of-line job among the
// dispatchable ones; jobs still backing off do not block the line.
std::shared_ptr<Scheduler::Job> Scheduler::first_eligible_locked(
    Clock::time_point t) const {
  for (const auto& job : queue_) {
    if (job->not_before <= t) return job;
  }
  return nullptr;
}

bool Scheduler::backoff_pending_locked(Clock::time_point t) const {
  for (const auto& job : queue_) {
    if (job->not_before > t) return true;
  }
  return false;
}

void Scheduler::dispatch_loop() {
  std::unique_lock lock(mutex_);
  const auto tick = std::chrono::milliseconds(1);
  while (true) {
    // Timed waits only when something needs polling: a retry backoff about
    // to elapse, or hedge triggers while jobs run. Otherwise the dispatcher
    // sleeps until submit/completion/cancel notifies.
    const bool timed = backoff_pending_locked(now()) ||
                       (opts_.hedge_factor > 0.0 && running_ > 0);
    const auto ready = [&] {
      return stopping_ || !zombies_.empty() ||
             (running_primary_ < max_jobs_ &&
              first_eligible_locked(now()) != nullptr);
    };
    if (timed) {
      cv_.wait_for(lock, tick, ready);
    } else {
      cv_.wait(lock, ready);
    }
    if (!zombies_.empty()) {
      std::vector<std::thread> zombies = grab_zombies_locked();
      lock.unlock();
      for (std::thread& t : zombies) t.join();
      lock.lock();
      continue;
    }
    if (stopping_) break;
    maybe_hedge_locked();

    std::shared_ptr<Job> job = first_eligible_locked(now());
    if (!job || running_primary_ >= max_jobs_) continue;

    // A client token tripped while the job sat in the queue cancels it in
    // place — before any core lease is taken.
    if (job->spec.cancel != nullptr && job->spec.cancel->cancelled()) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), job));
      finish_locked(*job, JobStatus::kCancelled,
                    "client token cancelled while queued");
      continue;
    }

    // Head-of-line among dispatchable jobs: this job waits for its cores
    // before anything behind it dispatches, so big jobs cannot starve.
    std::optional<CoreLease> lease = cores_.try_acquire(job->want_cores);
    if (!lease) {
      const std::uint64_t gen = completion_gen_;
      const auto cores_freed = [&] {
        return stopping_ || completion_gen_ != gen || queue_.empty();
      };
      if (timed) {
        cv_.wait_for(lock, tick, cores_freed);
      } else {
        cv_.wait(lock, cores_freed);
      }
      continue;
    }
    queue_.erase(std::find(queue_.begin(), queue_.end(), job));
    job->lease = std::move(*lease);
    job->status = JobStatus::kRunning;
    job->started = now();
    job->queued_seconds = seconds_between(job->submitted, job->started);
    if (obs_ != nullptr) {
      obs_->trace.end(job->id, "queued");
      obs_->flight.record(job->id, "lease",
                          std::to_string(job->lease.size()) + " cores");
      obs_->trace.begin(job->id, "run");
    }
    ++running_;
    ++running_primary_;
    job->runner = std::thread(&Scheduler::run_job, this, job);
  }
}

// Launch hedge twins for stragglers: a running, un-hedged primary whose
// elapsed time exceeds hedge_factor × its app's EWMA runtime, when the
// queue is empty and spare cores exist. Twins run beyond max_jobs_ — they
// consume only cores nobody else is waiting for.
void Scheduler::maybe_hedge_locked() {
  if (opts_.hedge_factor <= 0.0 || stopping_ || !queue_.empty()) return;
  const auto t = now();
  for (auto& [id, job] : jobs_) {
    if (job->status != JobStatus::kRunning || job->hedge || job->hedged) {
      continue;
    }
    const AppStats::App* app = app_stats_.find(job->spec.name);
    if (app == nullptr || app->samples < opts_.hedge_min_samples) continue;
    if (seconds_between(job->started, t) <
        opts_.hedge_factor * app->ewma_seconds) {
      continue;
    }
    std::optional<CoreLease> lease = cores_.try_acquire(job->want_cores);
    if (!lease) continue;
    auto hedge = std::make_shared<Job>();
    hedge->spec = job->spec;
    hedge->body = job->body;  // shares the primary's captured state
    hedge->id = next_id_++;
    hedge->submitted = t;
    hedge->max_retries = 0;  // a hedge never retries
    hedge->want_cores = job->want_cores;
    hedge->hedge = true;
    hedge->hedge_of = job->id;
    hedge->lease = std::move(*lease);
    hedge->status = JobStatus::kRunning;
    hedge->started = t;
    jobs_[hedge->id] = hedge;
    job->hedge_id = hedge->id;
    job->hedged = true;
    ++running_;
    ++stats_.hedges;
    if (obs_ != nullptr) {
      obs_->trace.set_job_name(
          hedge->id,
          trace_id(*hedge) + " (hedge of " + std::to_string(job->id) + ")");
      obs_->trace.begin(hedge->id, "run");
      obs_event_locked(*job, "hedge",
                       "twin job " + std::to_string(hedge->id));
    }
    hedge->runner = std::thread(&Scheduler::run_job, this, hedge);
  }
}

void Scheduler::run_job(const std::shared_ptr<Job>& job) {
  // The job's private slice of the machine: a sub-topology of exactly the
  // leased CPUs. The lease ids go into the name so the depot's shape keys
  // of different core sets never alias.
  std::vector<topo::LogicalCpu> cpus;
  cpus.reserve(job->lease.size());
  std::string label = topo_.name() + "+lease[";
  for (std::size_t i = 0; i < job->lease.cpu_os_ids.size(); ++i) {
    const std::size_t os_id = job->lease.cpu_os_ids[i];
    cpus.push_back(topo_.by_os_id(os_id));
    if (i > 0) label += ",";
    label += std::to_string(os_id);
  }
  label += "]";

  JobContext ctx(topo::Topology(std::move(label), std::move(cpus),
                                topo_.uniform_l2()),
                 job->lease, job->spec.config, &job->cancel, job->spec.cancel,
                 job->spec.deadline_ms, &depot_, job->degrade_fused,
                 job->degrade_level > 0 ? "degraded" : "",
                 obs_ != nullptr ? &obs_->trace : nullptr, job->id);

  JobStatus status = JobStatus::kDone;
  std::string error;
  std::exception_ptr error_ep;
  bool degradable = false;
  const auto externally_cancelled = [&] {
    return job->cancel.cancelled() ||
           (job->spec.cancel != nullptr && job->spec.cancel->cancelled());
  };
  try {
    if (job->spec.cancel != nullptr && job->spec.cancel->cancelled()) {
      // Pre-tripped client token: never run the body.
      status = JobStatus::kCancelled;
      error = "client token cancelled";
    } else {
      injector_.on_job_run(job->spec.name);
      job->body(ctx);
      // A body that observed the token and returned early still counts as
      // cancelled — the client asked for the job to stop and it did.
      if (externally_cancelled()) {
        status = JobStatus::kCancelled;
        error = job->cancel.snapshot().detail;
      }
    }
  } catch (const common::AbortError& e) {
    status = externally_cancelled() ? JobStatus::kCancelled
                                    : JobStatus::kFailed;
    error = e.what();
    error_ep = std::current_exception();
    // A watchdog verdict (the run blew its deadline or stalled) is what
    // the degradation ladder exists for: retry under a safer plan.
    degradable = e.cause() == common::CancelCause::kDeadline ||
                 e.cause() == common::CancelCause::kStall;
  } catch (const ConfigError& e) {
    status = JobStatus::kFailed;
    error = e.what();
    error_ep = std::current_exception();
    degradable = true;  // strategy/plan failure: a safer plan may resolve it
  } catch (const std::exception& e) {
    status = JobStatus::kFailed;
    error = e.what();
    error_ep = std::current_exception();
  }

  // Return the cores first (a waiting head-of-line job can take them as
  // soon as the completion is published below), then publish.
  cores_.release(job->lease);

  std::lock_guard lock(mutex_);
  ++job->attempt;
  if (obs_ != nullptr) {
    obs_->trace.end(job->id, "run");
    // A watchdog verdict is worth its own flight event even when a retry
    // absorbs it (the post-mortem question is "how often does this app
    // blow its deadline", not just "did the last one").
    if (degradable && status == JobStatus::kFailed) {
      obs_event_locked(*job, "watchdog", error);
    }
  }
  // If a hedge twin won while this (primary) attempt was unwinding, the
  // job as a whole succeeded: the twin's result already fulfilled the
  // future and its run accounting was copied onto this job.
  const bool hedge_won = !job->hedge && job->hedge_winner == "hedge";
  if (hedge_won) {
    status = JobStatus::kDone;
    error.clear();
    error_ep = nullptr;
  } else {
    job->warm = ctx.warm_;
    job->plan = ctx.plan_;
    job->run_summary = ctx.run_summary_;
    job->error_ep = error_ep;
  }

  bool retried = false;
  if (status == JobStatus::kFailed && !job->hedge && !stopping_ &&
      !job->cancel.cancelled() && job->attempt <= job->max_retries) {
    if (degradable) apply_degrade_locked(*job);
    requeue_locked(job);
    ++stats_.retries;
    retried = true;
    obs_event_locked(*job, "retry",
                     "attempt " + std::to_string(job->attempt) + " failed: " +
                         error);
    if (obs_ != nullptr) obs_->trace.begin(job->id, "queued");
  }
  if (!retried) finish_locked(*job, status, std::move(error));
  --running_;
  if (!job->hedge) --running_primary_;
  // This thread cannot join itself; park the handle for the dispatcher,
  // wait(), or shutdown() to reap.
  zombies_.push_back(std::move(job->runner));
  cv_.notify_all();
}

// Re-admission for a failed attempt with retry budget left: back into the
// queue at the job's original arrival position (the queue is id-ordered),
// gated by an exponential backoff with deterministic jitter — the same
// doubling-to-cap ladder spsc::ExponentialSleepBackoff uses for ring waits,
// lifted to the job level.
void Scheduler::requeue_locked(const std::shared_ptr<Job>& job) {
  const std::size_t shift =
      std::min<std::size_t>(job->attempt > 0 ? job->attempt - 1 : 0, 20);
  std::uint64_t delay_us = std::min<std::uint64_t>(
      opts_.retry_backoff_cap_us,
      static_cast<std::uint64_t>(opts_.retry_backoff_us) << shift);
  // ±25% jitter, deterministic in (job id, attempt) so reruns reproduce.
  Xoshiro256 rng(job->id * 0x9e3779b97f4a7c15ULL ^ job->attempt);
  delay_us = static_cast<std::uint64_t>(
      static_cast<double>(delay_us) * rng.uniform(0.75, 1.25));
  job->status = JobStatus::kQueued;
  job->lease = CoreLease{};
  job->not_before =
      now() + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::microseconds(delay_us));
  auto pos = std::find_if(queue_.begin(), queue_.end(),
                          [&](const std::shared_ptr<Job>& queued) {
                            return queued->id > job->id;
                          });
  queue_.insert(pos, job);
  ++completion_gen_;  // wake a head-of-line core wait to re-evaluate
  cv_.notify_all();
}

// One rung further down the graceful-degradation ladder, consumed by the
// retry that follows: pipelined -> fused, then half the core ask, then the
// memory subsystem off. Each step is recorded on the report.
void Scheduler::apply_degrade_locked(Job& job) {
  ++job.degrade_level;
  ++stats_.degraded;
  switch (job.degrade_level) {
    case 1:
      job.degrade_fused = true;
      job.degraded_steps.push_back("strategy=fused");
      break;
    case 2: {
      const std::size_t floor_cores = std::min<std::size_t>(3, cores_.total());
      const std::size_t halved =
          std::max(floor_cores, job.want_cores / 2);
      job.degraded_steps.push_back("cores=" + std::to_string(job.want_cores) +
                                   "->" + std::to_string(halved));
      job.want_cores = halved;
      // Re-derive worker counts from the smaller lease instead of failing
      // resolution against explicit counts sized for the original lease.
      job.spec.config.num_mappers = 0;
      job.spec.config.num_combiners = 0;
      break;
    }
    case 3:
      job.spec.config.mem_mode = MemMode::kOff;
      job.degraded_steps.push_back("mem=off");
      break;
    default:
      // Ladder exhausted: further retries rerun the safest plan as-is.
      job.degraded_steps.push_back("retry");
      break;
  }
  obs_event_locked(job, "degrade", job.degraded_steps.back());
}

// Overload protection: when the total queued admission cost exceeds the
// high watermark, shed lowest-priority queued jobs (ties: newest first)
// until the cost reaches the low watermark (half the high one).
void Scheduler::shed_locked() {
  if (opts_.shed_watermark == 0) return;
  const auto queued_cost = [&] {
    std::size_t c = 0;
    for (const auto& job : queue_) {
      c += std::max<std::size_t>(1, job->spec.cost);
    }
    return c;
  };
  std::size_t total = queued_cost();
  if (total <= opts_.shed_watermark) return;
  const std::size_t low = std::max<std::size_t>(1, opts_.shed_watermark / 2);
  while (total > low && !queue_.empty()) {
    auto victim = queue_.begin();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->spec.priority < (*victim)->spec.priority ||
          ((*it)->spec.priority == (*victim)->spec.priority &&
           (*it)->id > (*victim)->id)) {
        victim = it;
      }
    }
    std::shared_ptr<Job> job = *victim;
    total -= std::max<std::size_t>(1, job->spec.cost);
    queue_.erase(victim);
    finish_locked(*job, JobStatus::kShed,
                  "shed: queued cost above watermark " +
                      std::to_string(opts_.shed_watermark));
  }
}

void Scheduler::finish_locked(Job& job, JobStatus status, std::string error) {
  // Idempotent: hedge races can try to finish a job twice; the first
  // terminal transition wins (matching the token's first-cancel-wins rule).
  if (terminal(job.status)) return;
  job.status = status;
  job.error = std::move(error);
  if (job.started != Clock::time_point{}) {
    job.run_seconds = seconds_between(job.started, now());
  }

  switch (status) {
    case JobStatus::kDone:
      ++stats_.done;
      break;
    case JobStatus::kFailed:
      ++stats_.failed;
      break;
    case JobStatus::kCancelled:
      ++stats_.cancelled;
      break;
    case JobStatus::kRejected:
      ++stats_.rejected;
      break;
    case JobStatus::kShed:
      ++stats_.shed;
      break;
    default:
      break;
  }

  // App history: successes feed the hedging EWMA and close the breaker;
  // final failures (budget exhausted) advance the breaker. Hedge twins are
  // accounted through their primary, and cancel/shed outcomes say nothing
  // about the app's health.
  bool breaker_tripped = false;
  if (!job.hedge) {
    if (status == JobStatus::kDone) {
      app_stats_.record_success(job.spec.name, job.run_seconds);
    } else if (status == JobStatus::kFailed) {
      if (app_stats_.record_failure(
              job.spec.name, opts_.breaker_k, now(),
              std::chrono::milliseconds(opts_.breaker_cooldown_ms))) {
        ++stats_.breaker_trips;
        breaker_tripped = true;
      }
    }
  }
  // Observability: terminal instant, breaker transition, and the
  // post-mortem triggers (job abort — which covers watchdog-fired
  // deadline/stall failures — and breaker-open).
  if (obs_ != nullptr) {
    obs_event_locked(job, service::to_string(status), job.error);
    if (breaker_tripped) {
      obs_event_locked(job, "breaker-open", "app '" + job.spec.name + "'");
    }
    if (status == JobStatus::kFailed) {
      obs_postmortem_locked(breaker_tripped ? "breaker-open" : "job-failed",
                            &job);
    }
  }

  // Hedge linkage: first finisher wins, loser is cancelled through the
  // external-cancel path.
  if (job.hedge) {
    auto it = jobs_.find(job.hedge_of);
    if (it != jobs_.end() && it->second->hedge_id == job.id) {
      Job& primary = *it->second;
      if (status == JobStatus::kDone && !terminal(primary.status)) {
        // The twin won the race: stamp its run accounting onto the primary
        // and cancel the straggling attempt. run_job flips the primary's
        // resulting kCancelled to kDone (the job, as a whole, succeeded).
        primary.hedge_winner = "hedge";
        primary.warm = job.warm;
        primary.plan = job.plan;
        primary.run_summary = job.run_summary;
        ++stats_.hedge_wins;
        primary.cancel.cancel(common::CancelCause::kExternal, {}, {},
                              "hedge twin finished first");
      }
    }
  } else if (job.hedge_id != 0) {
    auto it = jobs_.find(job.hedge_id);
    if (it != jobs_.end() && !terminal(it->second->status)) {
      if (status == JobStatus::kDone && job.hedge_winner.empty()) {
        job.hedge_winner = "primary";
      }
      it->second->cancel.cancel(common::CancelCause::kExternal, {}, {},
                                "primary finished first");
    }
  }

  // Fulfill the typed-submit future for non-done terminal outcomes
  // (exactly once; the callback clears itself).
  if (job.on_terminal) {
    TerminalCallback cb = std::move(job.on_terminal);
    job.on_terminal = nullptr;
    cb(job.status, job.error, job.error_ep);
  }

  ++completion_gen_;
  cv_.notify_all();
}

JobReport Scheduler::report_locked(const Job& job) const {
  JobReport report;
  report.id = job.id;
  report.name = job.spec.name;
  report.trace_id = trace_id(job);
  report.status = job.status;
  report.cores = job.lease.cpu_os_ids;
  report.queued_seconds = job.queued_seconds;
  report.run_seconds = job.run_seconds;
  report.warm_pools = job.warm;
  report.run_summary = job.run_summary;
  report.plan = job.plan;
  report.error = job.error;
  report.attempts = job.attempt;
  report.degraded_steps = job.degraded_steps;
  report.hedge_of = job.hedge_of;
  report.hedge_winner = job.hedge_winner;
  return report;
}

std::vector<std::thread> Scheduler::grab_zombies_locked() {
  std::vector<std::thread> zombies;
  zombies.swap(zombies_);
  return zombies;
}

}  // namespace ramr::service
