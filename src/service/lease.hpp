// Explicit core allocation for the multi-job scheduler (Corey-style: the
// application — here the service layer — decides which cores a job may use,
// instead of letting the OS time-slice every job over every core).
//
// The registry owns the topology's logical CPUs and hands out *disjoint*
// leases: a core is in at most one live lease, so two concurrent jobs never
// share a logical CPU and their pinned pools never contend for the same
// caches. Cores are granted in the topology's proximity order (the paper's
// thridtocpu() remap), so one lease occupies physically adjacent resources
// — SMT siblings first, then cores within a socket — and a job's mapper/
// combiner pairs still land on shared caches inside its lease.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "topology/topology.hpp"

namespace ramr::service {

// One granted core set: OS CPU ids, disjoint from every other live lease.
struct CoreLease {
  std::vector<std::size_t> cpu_os_ids;

  bool empty() const { return cpu_os_ids.empty(); }
  std::size_t size() const { return cpu_os_ids.size(); }
};

class CoreLeaseRegistry {
 public:
  explicit CoreLeaseRegistry(const topo::Topology& topology);

  CoreLeaseRegistry(const CoreLeaseRegistry&) = delete;
  CoreLeaseRegistry& operator=(const CoreLeaseRegistry&) = delete;

  // Grants `cores` CPUs (the first free ones in proximity order), or
  // nullopt when fewer are free — all-or-nothing, never a partial grant.
  std::optional<CoreLease> try_acquire(std::size_t cores);

  // Returns a lease's CPUs to the free set. Unknown/already-free ids are
  // ignored (release is idempotent).
  void release(const CoreLease& lease);

  std::size_t total() const { return order_.size(); }
  std::size_t available() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::size_t> order_;  // proximity-ordered OS CPU ids
  std::vector<bool> leased_;        // parallel to order_
};

}  // namespace ramr::service
