#include "service/app_stats.hpp"

namespace ramr::service {

namespace {
// Smoothing for the runtime EWMA: heavy enough that one outlier does not
// move the hedging threshold much, light enough to track a drifting app.
constexpr double kAlpha = 0.3;
}  // namespace

bool AppStats::admit(const std::string& app, std::size_t breaker_k,
                     Clock::time_point now) {
  if (breaker_k == 0) return true;
  auto it = apps_.find(app);
  if (it == apps_.end()) return true;
  App& a = it->second;
  switch (a.breaker) {
    case Breaker::kClosed:
    case Breaker::kHalfOpen:
      return true;
    case Breaker::kOpen:
      if (now < a.open_until) return false;
      a.breaker = Breaker::kHalfOpen;  // this caller is the trial
      return true;
  }
  return true;
}

void AppStats::record_success(const std::string& app, double run_seconds) {
  App& a = apps_[app];
  a.consecutive_failures = 0;
  a.breaker = Breaker::kClosed;
  a.ewma_seconds = a.samples == 0
                       ? run_seconds
                       : kAlpha * run_seconds + (1.0 - kAlpha) * a.ewma_seconds;
  ++a.samples;
}

bool AppStats::record_failure(const std::string& app, std::size_t breaker_k,
                              Clock::time_point now,
                              std::chrono::milliseconds cooldown) {
  App& a = apps_[app];
  ++a.consecutive_failures;
  if (breaker_k == 0) return false;
  const bool trip = a.breaker == Breaker::kHalfOpen ||
                    (a.breaker == Breaker::kClosed &&
                     a.consecutive_failures >= breaker_k);
  if (trip || a.breaker == Breaker::kOpen) {
    a.breaker = Breaker::kOpen;
    a.open_until = now + cooldown;
  }
  return trip;
}

const AppStats::App* AppStats::find(const std::string& app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

}  // namespace ramr::service
