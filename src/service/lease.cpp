#include "service/lease.hpp"

#include <algorithm>

namespace ramr::service {

CoreLeaseRegistry::CoreLeaseRegistry(const topo::Topology& topology)
    : order_(topology.proximity_order()), leased_(order_.size(), false) {}

std::optional<CoreLease> CoreLeaseRegistry::try_acquire(std::size_t cores) {
  if (cores == 0 || cores > order_.size()) return std::nullopt;
  std::lock_guard lock(mutex_);
  std::vector<std::size_t> picked;
  picked.reserve(cores);
  for (std::size_t i = 0; i < order_.size() && picked.size() < cores; ++i) {
    if (!leased_[i]) picked.push_back(i);
  }
  if (picked.size() < cores) return std::nullopt;
  CoreLease lease;
  lease.cpu_os_ids.reserve(cores);
  for (std::size_t slot : picked) {
    leased_[slot] = true;
    lease.cpu_os_ids.push_back(order_[slot]);
  }
  return lease;
}

void CoreLeaseRegistry::release(const CoreLease& lease) {
  std::lock_guard lock(mutex_);
  for (std::size_t os_id : lease.cpu_os_ids) {
    auto it = std::find(order_.begin(), order_.end(), os_id);
    if (it != order_.end()) {
      leased_[static_cast<std::size_t>(it - order_.begin())] = false;
    }
  }
}

std::size_t CoreLeaseRegistry::available() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count(leased_.begin(), leased_.end(), false));
}

}  // namespace ramr::service
