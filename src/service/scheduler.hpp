// Multi-job scheduler: a bounded JobQueue plus a dispatcher that leases
// disjoint core sets to concurrent jobs (service mode, RAMR_SERVICE).
//
// The ROADMAP north-star is a *resident* runtime serving a stream of jobs;
// this is the serving layer. One Scheduler owns
//
//   * a CoreLeaseRegistry over its topology — explicit core allocation:
//     each dispatched job gets a disjoint CPU set in proximity order, so
//     concurrent jobs never share a logical CPU;
//   * an engine::PoolDepot — the pool sets a job builds over its leased
//     sub-topology are parked warm when the job finishes, and the next job
//     on the same core set reuses them (threads alive, pins held, arenas
//     and ring blocks recycled);
//   * a FIFO queue with admission control — at most queue_depth jobs wait;
//     a submit beyond that (or asking for more cores than the topology
//     has) is rejected immediately, never silently dropped;
//   * one dispatcher thread (head-of-line FIFO: a big job at the head
//     waits for cores before later jobs dispatch — deliberate, so large
//     jobs cannot starve) and one runner thread per running job.
//
// Per-job isolation reuses the engine's cooperative-cancellation protocol:
// every job carries its own CancellationToken; Scheduler::cancel(id) trips
// it, the run watchdog forwards it into the active run (AbortError with
// cause kExternal), and neighbouring jobs — own tokens, own pools, own
// cores — are untouched. A client-owned token (JobSpec::cancel) chains
// through the same path.
//
// Resilience layer (all features default off; see ARCHITECTURE.md §13):
//
//   * job-level retry — a failed job re-enters the queue at its original
//     arrival position after an exponential backoff with deterministic
//     jitter (same doubling-to-cap ladder as spsc::ExponentialSleepBackoff),
//     up to Options::max_retries / JobSpec::max_retries attempts;
//   * degradation ladder — a retry after a watchdog abort (deadline/stall)
//     or a strategy ConfigError runs under a safer plan: first forced
//     FusedCombine (no rings to back up), then half the core ask, then
//     RAMR_MEM off; each step is recorded in JobReport::degraded_steps and
//     the run's plan provenance becomes "degraded";
//   * hedged execution — when a running job exceeds hedge_factor × its
//     app's EWMA runtime (AppStats), and the queue is empty with spare
//     cores free, a duplicate launches beyond the concurrency cap; the
//     first finisher wins and the loser is cancelled through the external-
//     cancel path. Hedging re-runs the job body concurrently, so it is
//     only safe for idempotent bodies (the typed submit qualifies);
//   * circuit breaker — after breaker_k consecutive final failures of one
//     app, its submissions fast-fail (kRejected) until the breaker
//     half-opens on a timer (AppStats);
//   * overload shedding — when the queued admission cost exceeds
//     shed_watermark, the lowest-priority queued jobs are shed (kShed)
//     until the cost falls to watermark/2;
//   * job-boundary fault site — Options::fault_spec arms a faults::Injector
//     whose on_job_run fires before job bodies (job_run/job_p/job_fires
//     keys of RAMR_FAULTS), exercising the retry path end to end.
//
// Nothing here runs unless a Scheduler is constructed; the one-shot
// Runtime path is byte-identical with the subsystem unused.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"
#include "common/config.hpp"
#include "common/timing.hpp"
#include "engine/app_model.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_depot.hpp"
#include "engine/strategy_fused.hpp"
#include "engine/strategy_pipelined.hpp"
#include "faults/injector.hpp"
#include "service/app_stats.hpp"
#include "service/job.hpp"
#include "service/lease.hpp"
#include "telemetry/metrics_export.hpp"
#include "telemetry/service_trace.hpp"
#include "telemetry/session.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace ramr::service {

// Scheduler-wide resilience counters (a snapshot; see Scheduler::stats).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;        // re-queued attempts
  std::uint64_t degraded = 0;       // ladder steps applied
  std::uint64_t hedges = 0;         // hedge twins launched
  std::uint64_t hedge_wins = 0;     // races the hedge won
  std::uint64_t breaker_trips = 0;  // closed/half-open -> open transitions
  std::uint64_t breaker_rejects = 0;
  std::uint64_t job_faults = 0;  // injected job-boundary faults

  std::string summary() const;
};

// Handed to a job's body while it runs: the leased sub-topology, the job's
// cancellation token, and run() — the way a body executes MapReduce work
// on its leased cores through the scheduler's warm pool depot.
class JobContext {
 public:
  // The job's private slice of the machine: only the leased CPUs, named
  // after them (the name reaches PoolSet::shape_key, so pool sets of
  // different core sets never alias in the depot).
  const topo::Topology& topology() const { return topo_; }
  const CoreLease& lease() const { return lease_; }

  // The job's own token; bodies doing non-MapReduce work between runs
  // should poll it and wind down when tripped.
  common::CancellationToken& cancel_token() { return *cancel_; }

  // Executes one MapReduce invocation on the leased cores. Pools are
  // leased from the scheduler's depot (warm after the first run on this
  // core set); the job's token — and the client token, when the spec set
  // one — is wired into the run as an external cancellation source, and
  // the job's deadline into the watchdog. Throws common::AbortError when
  // cancelled mid-run. A degraded retry (see the ladder above) runs under
  // FusedCombine instead of PipelinedSpsc and stamps plan source
  // "degraded".
  template <mr::AppSpec S>
  mr::result_of<S> run(const S& app, const typename S::input_type& input) {
    return run_with<S>([&](engine::PhaseDriver& driver, auto& strategy) {
      return driver.run(strategy, app, input);
    });
  }

  // Streaming variant (src/io/): one MapReduce invocation fed live by an
  // IO-lane task pump instead of a materialized split count. The pump must
  // be freshly constructed for this call — a retried job body re-enters
  // run_stream and must build a new source + pump (a stream cannot be
  // rewound mid-object). Everything else (warm pools, cancellation wiring,
  // deadline, degraded-plan ladder, per-attempt trace) matches run().
  template <mr::AppSpec S, engine::TaskPump Pump>
  mr::result_of<S> run_stream(const S& app,
                              const typename S::input_type& input,
                              Pump& pump) {
    return run_with<S>([&](engine::PhaseDriver& driver, auto& strategy) {
      return driver.run_stream(strategy, app, input, pump);
    });
  }

  // True when the last run() executed on a warm pool set.
  bool warm_pools() const { return warm_; }

 private:
  // Shared attempt plumbing behind run()/run_stream(): lease warm pools,
  // wire cancellation + deadline into the driver, build the per-attempt
  // telemetry session and (under RAMR_OBS) trace recorder, pick the
  // strategy (FusedCombine on a degraded retry — no rings to stall —
  // PipelinedSpsc otherwise), and stamp plan/summary for the job report.
  template <mr::AppSpec S, typename Invoke>
  mr::result_of<S> run_with(Invoke&& invoke) {
    auto lease = depot_->acquire(topo_, cfg_);
    warm_ = lease.warm();
    engine::DriverOptions dopts =
        engine::driver_options_from(lease.pools().config());
    dopts.external_cancel = cancel_;
    dopts.external_cancel2 = client_cancel_;
    if (deadline_ms_ > 0) dopts.deadline_ms = deadline_ms_;
    if (!plan_source_.empty()) dopts.plan_source = plan_source_;
    engine::PhaseDriver driver(lease.pools(), dopts);
    std::unique_ptr<telemetry::Session> session =
        telemetry::Session::from_config(lease.pools().config());
    driver.set_telemetry(session.get());
    // Observability (RAMR_OBS=1): a per-attempt recorder whose lanes land
    // under this job's process in the stitched service trace, added on
    // every exit path — an aborted run's partial lanes are exactly what a
    // post-mortem wants to see.
    std::optional<trace::Recorder> recorder;
    if (service_trace_ != nullptr) recorder.emplace();
    if (recorder) driver.set_recorder(&*recorder);
    struct RunTraceScope {
      telemetry::ServiceTrace* strace;
      JobId job;
      trace::Recorder* rec;
      ~RunTraceScope() {
        if (strace != nullptr && rec != nullptr) strace->add_run(job, *rec);
      }
    } trace_scope{service_trace_, job_id_, recorder ? &*recorder : nullptr};
    mr::result_of<S> result;
    if (fused_) {
      // Degraded plan: the fused strategy runs on the mapper pool of the
      // same (dual) pool set — no rings, no combiner pool to stall.
      engine::FusedCombine<S> strategy;
      result = invoke(driver, strategy);
    } else {
      engine::PipelinedSpsc<S> strategy;
      result = invoke(driver, strategy);
    }
    plan_ = result.plan;
    run_summary_ = result.summary();
    return result;
  }

  friend class Scheduler;
  JobContext(topo::Topology topo, CoreLease lease, RuntimeConfig cfg,
             common::CancellationToken* cancel,
             common::CancellationToken* client_cancel,
             std::size_t deadline_ms, engine::PoolDepot* depot, bool fused,
             std::string plan_source,
             telemetry::ServiceTrace* service_trace = nullptr,
             JobId job_id = 0)
      : topo_(std::move(topo)), lease_(std::move(lease)),
        cfg_(std::move(cfg)), cancel_(cancel), client_cancel_(client_cancel),
        deadline_ms_(deadline_ms), depot_(depot), fused_(fused),
        plan_source_(std::move(plan_source)), service_trace_(service_trace),
        job_id_(job_id) {}

  topo::Topology topo_;
  CoreLease lease_;
  RuntimeConfig cfg_;
  common::CancellationToken* cancel_;
  common::CancellationToken* client_cancel_;
  std::size_t deadline_ms_;
  engine::PoolDepot* depot_;
  bool fused_;
  std::string plan_source_;
  telemetry::ServiceTrace* service_trace_ = nullptr;
  JobId job_id_ = 0;
  bool warm_ = false;
  engine::PlanInfo plan_;
  std::string run_summary_;
};

class Scheduler {
 public:
  struct Options {
    // Concurrent-job cap; 0 = one job per socket (min 1). Hedge twins run
    // beyond the cap (they only launch when the queue is empty and spare
    // cores exist).
    std::size_t max_concurrent_jobs = 0;

    // Jobs allowed to *wait*; a submit finding the queue at this depth is
    // rejected. Running jobs do not count against it.
    std::size_t queue_depth = 16;

    // ---- resilience knobs (all default off) ------------------------------

    // Default per-job retry budget (JobSpec::max_retries overrides).
    std::size_t max_retries = 0;

    // Retry backoff ladder: initial delay doubling per attempt up to the
    // cap, with deterministic ±25% jitter keyed by (job id, attempt).
    std::size_t retry_backoff_us = 1'000;
    std::size_t retry_backoff_cap_us = 200'000;

    // Hedge when a job runs longer than factor × its app's EWMA runtime
    // (0 = off). The EWMA needs hedge_min_samples successes first.
    double hedge_factor = 0.0;
    std::size_t hedge_min_samples = 3;

    // Circuit breaker: open after k consecutive final failures of one app
    // (0 = off); half-open after cooldown_ms.
    std::size_t breaker_k = 0;
    std::size_t breaker_cooldown_ms = 1'000;

    // Overload shedding: high watermark on the total queued JobSpec::cost
    // (0 = off); shedding drains to watermark / 2.
    std::size_t shed_watermark = 0;

    // Fault spec for the job-boundary injection site (job_run/job_p keys;
    // other sites in the spec are inert at this level). Empty = disabled.
    std::string fault_spec;

    // ---- observability knobs (default off; docs/OBSERVABILITY.md) --------

    // Master switch (RAMR_OBS): lifecycle tracing into the stitched
    // service trace, the flight recorder, the metrics sampler thread, and
    // post-mortem dumps. Off = none of it exists and the scheduler's
    // behaviour and output are byte-identical.
    bool observability = false;

    // Periodic metrics dump target (RAMR_METRICS_PATH; "" = no dump).
    // A ".prom" suffix selects Prometheus text, anything else JSON.
    std::string metrics_path;

    // Flight-recorder ring capacity (RAMR_FLIGHT_EVENTS).
    std::size_t flight_events = 256;

    // Cadence of the observability sampler thread.
    std::size_t metrics_interval_ms = 250;

    // Post-mortem dump target for the flight recorder ("" = no dumps).
    std::string postmortem_path = "ramr_postmortem.json";

    // Reads RAMR_SERVICE_JOBS / RAMR_SERVICE_QUEUE plus the resilience
    // knobs RAMR_SERVICE_RETRIES / RAMR_HEDGE_FACTOR / RAMR_BREAKER_K /
    // RAMR_SHED_WATERMARK, RAMR_FAULTS, and the observability knobs
    // RAMR_OBS / RAMR_METRICS_PATH / RAMR_FLIGHT_EVENTS.
    static Options from_env() {
      const RuntimeConfig cfg = RuntimeConfig::from_env();
      Options o;
      o.max_concurrent_jobs = cfg.service_max_jobs;
      o.queue_depth = cfg.service_queue_depth;
      o.max_retries = cfg.service_max_retries;
      o.hedge_factor = cfg.service_hedge_factor;
      o.breaker_k = cfg.service_breaker_k;
      o.shed_watermark = cfg.service_shed_watermark;
      o.fault_spec = cfg.fault_spec;
      o.observability = cfg.observability;
      o.metrics_path = cfg.metrics_path;
      o.flight_events = cfg.flight_events;
      return o;
    }
  };

  explicit Scheduler(topo::Topology topology)
      : Scheduler(std::move(topology), Options{}) {}
  Scheduler(topo::Topology topology, Options options);
  ~Scheduler();  // shutdown()

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Admits a job whose body runs arbitrary work (typically a loop of
  // JobContext::run calls) on the leased cores. Always returns an id;
  // admission failures surface as status kRejected on its report.
  JobId submit(JobSpec spec, std::function<void(JobContext&)> body);

  // Typed convenience: one MapReduce invocation as a job. The app and
  // input must outlive the job. The future is always fulfilled once the
  // job is terminal: with the run's result on kDone (possibly produced by
  // a retry or a winning hedge), or with an exception describing the
  // terminal status otherwise.
  template <mr::AppSpec S>
  std::pair<JobId, std::shared_future<mr::result_of<S>>> submit(
      JobSpec spec, const S& app, const typename S::input_type& input) {
    auto promise = std::make_shared<std::promise<mr::result_of<S>>>();
    auto fulfilled = std::make_shared<std::atomic<bool>>(false);
    std::shared_future<mr::result_of<S>> future =
        promise->get_future().share();
    JobId id = submit_internal(
        std::move(spec),
        [&app, &input, promise, fulfilled](JobContext& ctx) {
          auto result = ctx.run(app, input);
          // First finisher wins (the primary and a hedge twin share this
          // body); a retried attempt only fulfills on its success.
          if (!fulfilled->exchange(true)) {
            promise->set_value(std::move(result));
          }
        },
        [promise, fulfilled](JobStatus status, const std::string& error,
                             std::exception_ptr ep) {
          if (status == JobStatus::kDone) return;  // value already set
          if (fulfilled->exchange(true)) return;
          if (ep != nullptr) {
            promise->set_exception(std::move(ep));
          } else {
            promise->set_exception(std::make_exception_ptr(Error(
                "job " + std::string(to_string(status)) +
                (error.empty() ? "" : ": " + error))));
          }
        });
    return {id, std::move(future)};
  }

  // Trips the job's token: a queued job is cancelled in place, a running
  // one aborts cooperatively at its next poll. False when the id is
  // unknown or the job already reached a terminal status.
  bool cancel(JobId id);

  // Blocks until the job is terminal and returns its report. Throws
  // ramr::Error for unknown ids.
  JobReport wait(JobId id);

  // Report without waiting (whatever state the job is in right now).
  JobReport report(JobId id);

  // Waits for every submitted job to reach a terminal status and returns
  // all reports in submission order (hedge twins included).
  std::vector<JobReport> drain();

  // Cancels queued and running jobs, waits for runners, stops the
  // dispatcher. Idempotent; the destructor calls it.
  void shutdown();

  const topo::Topology& topology() const { return topo_; }
  std::size_t max_concurrent_jobs() const { return max_jobs_; }
  std::size_t queue_depth() const { return opts_.queue_depth; }
  std::size_t fair_share_cores() const { return fair_share_; }

  // Snapshot of the resilience counters (includes injected job faults).
  ServiceStats stats() const;

  // The same counters as a ramr-service-stats-v1 JSON document.
  std::string stats_json() const;

  // ---- observability scrape surface (docs/OBSERVABILITY.md) --------------
  // The frame/text/json accessors work regardless of Options::observability
  // (an on-demand scrape needs no background plane); the stitched trace
  // only exists when the plane is on.

  // One consistent snapshot of queue/lease/depot/counter/per-app state.
  telemetry::ServiceMetricsFrame metrics_frame() const;

  // The snapshot in Prometheus text exposition format ("ramr_" prefix).
  std::string metrics_text() const;

  // The snapshot as a ramr-metrics-v1 JSON document.
  std::string metrics_json() const;

  // True when the observability plane is on (Options::observability).
  bool observability() const { return obs_ != nullptr; }

  // Writes the stitched Chrome/Perfetto service trace (per-job tracks +
  // core-lease timeline). Throws ramr::Error when the plane is off.
  void write_trace(std::ostream& out) const;

  // The warm-pool depot shared by this scheduler's jobs (stats for tests
  // and the amortization bench).
  engine::PoolDepot& depot() { return depot_; }

  CoreLeaseRegistry& cores() { return cores_; }

 private:
  // Invoked exactly once under mutex_ when the job turns terminal.
  using TerminalCallback =
      std::function<void(JobStatus, const std::string&, std::exception_ptr)>;

  struct Job {
    JobSpec spec;
    std::function<void(JobContext&)> body;
    JobId id = 0;
    JobStatus status = JobStatus::kQueued;
    common::CancellationToken cancel;
    CoreLease lease;
    Clock::time_point submitted{};
    Clock::time_point started{};
    double queued_seconds = 0.0;
    double run_seconds = 0.0;
    bool warm = false;
    engine::PlanInfo plan;
    std::string run_summary;
    std::string error;
    std::exception_ptr error_ep;
    std::thread runner;

    // Resilience state.
    std::size_t max_retries = 0;  // resolved budget for this job
    std::size_t attempt = 0;      // completed run attempts
    std::size_t want_cores = 0;   // current core ask (ladder may halve it)
    Clock::time_point not_before{};  // backoff gate for a retried job
    std::size_t degrade_level = 0;
    bool degrade_fused = false;
    std::vector<std::string> degraded_steps;
    bool hedge = false;   // this job is a hedge twin
    JobId hedge_of = 0;   // twin -> primary
    JobId hedge_id = 0;   // primary -> twin (0 = none)
    bool hedged = false;  // primary already hedged once
    std::string hedge_winner;
    TerminalCallback on_terminal;
  };

  JobId submit_internal(JobSpec spec, std::function<void(JobContext&)> body,
                        TerminalCallback on_terminal);
  void dispatch_loop();
  void run_job(const std::shared_ptr<Job>& job);

  // Observability plane (only exists when Options::observability is on):
  // stitched service trace + flight recorder + sampler thread state.
  struct Obs;
  static std::string trace_id(const Job& job);
  void obs_loop();
  void obs_sample_frame();
  void stop_obs();

  // All *_locked helpers require mutex_ held.
  void obs_event_locked(const Job& job, const char* kind,
                        const std::string& detail = {});
  void obs_postmortem_locked(const std::string& reason, const Job* job);
  telemetry::ServiceMetricsFrame metrics_frame_locked() const;
  void finish_locked(Job& job, JobStatus status, std::string error);
  void requeue_locked(const std::shared_ptr<Job>& job);
  void apply_degrade_locked(Job& job);
  void shed_locked();
  void maybe_hedge_locked();
  std::shared_ptr<Job> first_eligible_locked(Clock::time_point t) const;
  bool backoff_pending_locked(Clock::time_point t) const;
  JobReport report_locked(const Job& job) const;
  std::vector<std::thread> grab_zombies_locked();

  topo::Topology topo_;
  Options opts_;
  std::size_t max_jobs_ = 1;
  std::size_t fair_share_ = 1;
  Clock::time_point start_time_{};
  CoreLeaseRegistry cores_;
  engine::PoolDepot depot_;
  faults::Injector injector_;
  std::unique_ptr<Obs> obs_;  // null when observability is off

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  JobId next_id_ = 1;
  std::deque<std::shared_ptr<Job>> queue_;  // id-ordered (arrival order)
  std::map<JobId, std::shared_ptr<Job>> jobs_;
  std::size_t running_ = 0;          // all runner threads (hedges included)
  std::size_t running_primary_ = 0;  // counts against max_jobs_
  std::uint64_t completion_gen_ = 0;
  std::vector<std::thread> zombies_;  // finished runners awaiting join
  ServiceStats stats_;
  AppStats app_stats_;

  std::thread dispatcher_;
};

}  // namespace ramr::service
