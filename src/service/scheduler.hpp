// Multi-job scheduler: a bounded JobQueue plus a dispatcher that leases
// disjoint core sets to concurrent jobs (service mode, RAMR_SERVICE).
//
// The ROADMAP north-star is a *resident* runtime serving a stream of jobs;
// this is the serving layer. One Scheduler owns
//
//   * a CoreLeaseRegistry over its topology — explicit core allocation:
//     each dispatched job gets a disjoint CPU set in proximity order, so
//     concurrent jobs never share a logical CPU;
//   * an engine::PoolDepot — the pool sets a job builds over its leased
//     sub-topology are parked warm when the job finishes, and the next job
//     on the same core set reuses them (threads alive, pins held, arenas
//     and ring blocks recycled);
//   * a FIFO queue with admission control — at most queue_depth jobs wait;
//     a submit beyond that (or asking for more cores than the topology
//     has) is rejected immediately, never silently dropped;
//   * one dispatcher thread (head-of-line FIFO: a big job at the head
//     waits for cores before later jobs dispatch — deliberate, so large
//     jobs cannot starve) and one runner thread per running job.
//
// Per-job isolation reuses the engine's cooperative-cancellation protocol:
// every job carries its own CancellationToken; Scheduler::cancel(id) trips
// it, the run watchdog forwards it into the active run (AbortError with
// cause kExternal), and neighbouring jobs — own tokens, own pools, own
// cores — are untouched.
//
// Nothing here runs unless a Scheduler is constructed; the one-shot
// Runtime path is byte-identical with the subsystem unused.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"
#include "common/config.hpp"
#include "common/timing.hpp"
#include "engine/app_model.hpp"
#include "engine/phase_driver.hpp"
#include "engine/pool_depot.hpp"
#include "engine/strategy_pipelined.hpp"
#include "service/job.hpp"
#include "service/lease.hpp"
#include "telemetry/session.hpp"
#include "topology/topology.hpp"

namespace ramr::service {

// Handed to a job's body while it runs: the leased sub-topology, the job's
// cancellation token, and run() — the way a body executes MapReduce work
// on its leased cores through the scheduler's warm pool depot.
class JobContext {
 public:
  // The job's private slice of the machine: only the leased CPUs, named
  // after them (the name reaches PoolSet::shape_key, so pool sets of
  // different core sets never alias in the depot).
  const topo::Topology& topology() const { return topo_; }
  const CoreLease& lease() const { return lease_; }

  // The job's own token; bodies doing non-MapReduce work between runs
  // should poll it and wind down when tripped.
  common::CancellationToken& cancel_token() { return *cancel_; }

  // Executes one MapReduce invocation on the leased cores. Pools are
  // leased from the scheduler's depot (warm after the first run on this
  // core set); the job's token is wired into the run as the external
  // cancellation source, and the job's deadline into the watchdog. Throws
  // common::AbortError when cancelled mid-run.
  template <mr::AppSpec S>
  mr::result_of<S> run(const S& app, const typename S::input_type& input) {
    auto lease = depot_->acquire(topo_, cfg_);
    warm_ = lease.warm();
    engine::DriverOptions dopts =
        engine::driver_options_from(lease.pools().config());
    dopts.external_cancel = cancel_;
    if (deadline_ms_ > 0) dopts.deadline_ms = deadline_ms_;
    engine::PhaseDriver driver(lease.pools(), dopts);
    std::unique_ptr<telemetry::Session> session =
        telemetry::Session::from_config(lease.pools().config());
    driver.set_telemetry(session.get());
    engine::PipelinedSpsc<S> strategy;
    auto result = driver.run(strategy, app, input);
    plan_ = result.plan;
    run_summary_ = result.summary();
    return result;
  }

  // True when the last run() executed on a warm pool set.
  bool warm_pools() const { return warm_; }

 private:
  friend class Scheduler;
  JobContext(topo::Topology topo, CoreLease lease, RuntimeConfig cfg,
             common::CancellationToken* cancel, std::size_t deadline_ms,
             engine::PoolDepot* depot)
      : topo_(std::move(topo)), lease_(std::move(lease)),
        cfg_(std::move(cfg)), cancel_(cancel), deadline_ms_(deadline_ms),
        depot_(depot) {}

  topo::Topology topo_;
  CoreLease lease_;
  RuntimeConfig cfg_;
  common::CancellationToken* cancel_;
  std::size_t deadline_ms_;
  engine::PoolDepot* depot_;
  bool warm_ = false;
  engine::PlanInfo plan_;
  std::string run_summary_;
};

class Scheduler {
 public:
  struct Options {
    // Concurrent-job cap; 0 = one job per socket (min 1).
    std::size_t max_concurrent_jobs = 0;

    // Jobs allowed to *wait*; a submit finding the queue at this depth is
    // rejected. Running jobs do not count against it.
    std::size_t queue_depth = 16;

    // Reads the RAMR_SERVICE_JOBS / RAMR_SERVICE_QUEUE knobs.
    static Options from_env() {
      const RuntimeConfig cfg = RuntimeConfig::from_env();
      Options o;
      o.max_concurrent_jobs = cfg.service_max_jobs;
      o.queue_depth = cfg.service_queue_depth;
      return o;
    }
  };

  explicit Scheduler(topo::Topology topology)
      : Scheduler(std::move(topology), Options{}) {}
  Scheduler(topo::Topology topology, Options options);
  ~Scheduler();  // shutdown()

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Admits a job whose body runs arbitrary work (typically a loop of
  // JobContext::run calls) on the leased cores. Always returns an id;
  // admission failures surface as status kRejected on its report.
  JobId submit(JobSpec spec, std::function<void(JobContext&)> body);

  // Typed convenience: one MapReduce invocation as a job. The app and
  // input must outlive the job; collect the result via the future *after*
  // wait(id) reports kDone (a rejected or queue-cancelled job never
  // fulfills it).
  template <mr::AppSpec S>
  std::pair<JobId, std::shared_future<mr::result_of<S>>> submit(
      JobSpec spec, const S& app, const typename S::input_type& input) {
    auto promise = std::make_shared<std::promise<mr::result_of<S>>>();
    std::shared_future<mr::result_of<S>> future =
        promise->get_future().share();
    JobId id = submit(std::move(spec), [&app, &input, promise](
                                           JobContext& ctx) {
      try {
        promise->set_value(ctx.run(app, input));
      } catch (...) {
        promise->set_exception(std::current_exception());
        throw;
      }
    });
    return {id, std::move(future)};
  }

  // Trips the job's token: a queued job is cancelled in place, a running
  // one aborts cooperatively at its next poll. False when the id is
  // unknown or the job already reached a terminal status.
  bool cancel(JobId id);

  // Blocks until the job is terminal and returns its report. Throws
  // ramr::Error for unknown ids.
  JobReport wait(JobId id);

  // Report without waiting (whatever state the job is in right now).
  JobReport report(JobId id);

  // Waits for every submitted job to reach a terminal status and returns
  // all reports in submission order.
  std::vector<JobReport> drain();

  // Cancels queued and running jobs, waits for runners, stops the
  // dispatcher. Idempotent; the destructor calls it.
  void shutdown();

  const topo::Topology& topology() const { return topo_; }
  std::size_t max_concurrent_jobs() const { return max_jobs_; }
  std::size_t queue_depth() const { return opts_.queue_depth; }
  std::size_t fair_share_cores() const { return fair_share_; }

  // The warm-pool depot shared by this scheduler's jobs (stats for tests
  // and the amortization bench).
  engine::PoolDepot& depot() { return depot_; }

  CoreLeaseRegistry& cores() { return cores_; }

 private:
  struct Job {
    JobSpec spec;
    std::function<void(JobContext&)> body;
    JobId id = 0;
    JobStatus status = JobStatus::kQueued;
    common::CancellationToken cancel;
    CoreLease lease;
    Clock::time_point submitted{};
    Clock::time_point started{};
    double queued_seconds = 0.0;
    double run_seconds = 0.0;
    bool warm = false;
    engine::PlanInfo plan;
    std::string run_summary;
    std::string error;
    std::thread runner;
  };

  void dispatch_loop();
  void run_job(const std::shared_ptr<Job>& job);

  // All *_locked helpers require mutex_ held.
  void finish_locked(Job& job, JobStatus status, std::string error);
  JobReport report_locked(const Job& job) const;
  std::vector<std::thread> grab_zombies_locked();

  topo::Topology topo_;
  Options opts_;
  std::size_t max_jobs_ = 1;
  std::size_t fair_share_ = 1;
  CoreLeaseRegistry cores_;
  engine::PoolDepot depot_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  JobId next_id_ = 1;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<JobId, std::shared_ptr<Job>> jobs_;
  std::size_t running_ = 0;
  std::uint64_t completion_gen_ = 0;
  std::vector<std::thread> zombies_;  // finished runners awaiting join

  std::thread dispatcher_;
};

}  // namespace ramr::service
