// Job model of the service layer: what a client submits (JobSpec), where a
// job is in its lifecycle (JobStatus), and what the scheduler reports back
// per job (JobReport — the service-mode analogue of one run's summary
// line, carrying the leased core set and queue/run accounting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cancellation.hpp"
#include "common/config.hpp"
#include "engine/result.hpp"

namespace ramr::service {

using JobId = std::uint64_t;

enum class JobStatus {
  kQueued,     // admitted, waiting for cores or a dispatch slot
  kRunning,    // executing on a leased core set
  kDone,       // body returned normally
  kFailed,     // body threw (deadline, worker failure, app error)
  kCancelled,  // external cancel (Scheduler::cancel or shutdown) won
  kRejected,   // admission control refused it (queue full, impossible cores)
  kShed,       // dropped from the queue by overload protection
};

inline const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kRejected:
      return "rejected";
    case JobStatus::kShed:
      return "shed";
  }
  return "?";
}

inline bool terminal(JobStatus status) {
  return status == JobStatus::kDone || status == JobStatus::kFailed ||
         status == JobStatus::kCancelled || status == JobStatus::kRejected ||
         status == JobStatus::kShed;
}

struct JobSpec {
  std::string name;

  // Cores to lease (0 = the scheduler's fair share: total / max jobs).
  // A request beyond the topology is rejected at submission.
  std::size_t cores = 0;

  // Per-job runtime knobs; resolved against the *leased* sub-topology, so
  // worker counts left at 0 derive from the lease size, not the machine.
  RuntimeConfig config;

  // Per-job wall-clock budget forwarded to the run watchdog (0 = none).
  std::size_t deadline_ms = 0;

  // Job-level retry budget. The default inherits the scheduler's
  // Options::max_retries; any other value overrides it for this job
  // (0 = never retry this job even when the scheduler retries).
  static constexpr std::size_t kInheritRetries =
      static_cast<std::size_t>(-1);
  std::size_t max_retries = kInheritRetries;

  // Overload-shedding inputs: when the queued cost exceeds the scheduler's
  // watermark, the lowest-priority queued jobs are shed first (ties: newest
  // first). Cost is the job's admission weight (1 = one typical job).
  int priority = 0;
  std::size_t cost = 1;

  // Optional client-owned cancellation token. A token already tripped at
  // submit() makes the job terminal kCancelled without consuming a queue
  // slot or core lease; tripping it later cancels the job exactly like
  // Scheduler::cancel(id). Must outlive the job; nullptr = none.
  common::CancellationToken* cancel = nullptr;
};

struct JobReport {
  JobId id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;

  // Stable per-job trace identity ("<name>#<id>"), matching the job's
  // track in the stitched service trace and the flight-recorder
  // post-mortems. Always stamped; only *used* by the observability plane,
  // and deliberately absent from describe() so default output is unchanged.
  std::string trace_id;

  // The disjoint core set this job ran on (empty when never dispatched).
  std::vector<std::size_t> cores;

  double queued_seconds = 0.0;  // submit -> dispatch
  double run_seconds = 0.0;     // dispatch -> terminal

  // True when the job's last run executed on a warm pool set (leased from
  // the scheduler's depot without spawning threads).
  bool warm_pools = false;

  // RunResult accounting of the job's last run (empty when it never ran).
  std::string run_summary;
  engine::PlanInfo plan;

  // Failure/rejection detail ("" when the job succeeded).
  std::string error;

  // ---- resilience accounting (all default/empty when the features are
  // off, so existing report output is unchanged) --------------------------

  // Completed run attempts (0 = never dispatched; >1 = the job retried).
  std::size_t attempts = 0;

  // Degradation-ladder steps applied across retries, in order (e.g.
  // "strategy=fused", "cores=8->4", "mem=off").
  std::vector<std::string> degraded_steps;

  // Hedged execution: non-zero marks this report as the hedge twin of job
  // `hedge_of`; on a hedged primary, `hedge_winner` records which copy
  // finished first ("primary" | "hedge").
  JobId hedge_of = 0;
  std::string hedge_winner;

  std::string describe() const {
    std::string s = "job=" + (name.empty() ? "?" : name) +
                    " id=" + std::to_string(id) +
                    " status=" + to_string(status);
    if (!cores.empty()) {
      s += " cores=[";
      for (std::size_t i = 0; i < cores.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(cores[i]);
      }
      s += "]";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), " wait=%.3fs run=%.3fs", queued_seconds,
                  run_seconds);
    s += buf;
    s += std::string(" warm=") + (warm_pools ? "yes" : "no");
    if (attempts > 1) s += " attempts=" + std::to_string(attempts);
    if (!degraded_steps.empty()) {
      s += " degraded=[";
      for (std::size_t i = 0; i < degraded_steps.size(); ++i) {
        if (i > 0) s += ";";
        s += degraded_steps[i];
      }
      s += "]";
    }
    if (hedge_of != 0) s += " hedge_of=" + std::to_string(hedge_of);
    if (!hedge_winner.empty()) s += " hedge_winner=" + hedge_winner;
    if (!error.empty()) s += " error=" + error;
    return s;
  }
};

}  // namespace ramr::service
